"""Integration tests for the SMT pipeline."""

import pytest

from conftest import assert_counter_consistency
from repro import build_processor
from repro.smt.config import SMTConfig
from repro.smt.pipeline import SchedulerHook, SMTProcessor
from repro.workloads.tracegen import make_generators


class TestConstruction:
    def test_too_many_traces_rejected(self, small_config):
        traces = make_generators(["gzip"] * 5)
        with pytest.raises(ValueError):
            SMTProcessor(small_config, traces)

    def test_bad_quantum_rejected(self, small_config):
        traces = make_generators(["gzip"])
        with pytest.raises(ValueError):
            SMTProcessor(small_config, traces, quantum_cycles=0)

    def test_policy_by_name_or_instance(self, small_config):
        from repro.policies.icount import ICountPolicy

        traces = make_generators(["gzip", "mcf"])
        p1 = SMTProcessor(small_config, traces, policy="brcount")
        assert p1.policy_name == "brcount"
        traces = make_generators(["gzip", "mcf"])
        p2 = SMTProcessor(small_config, traces, policy=ICountPolicy())
        assert p2.policy_name == "icount"


class TestBasicExecution:
    def test_single_thread_commits(self, small_config):
        proc = SMTProcessor(small_config, make_generators(["gzip"]), quantum_cycles=512)
        proc.run(2000)
        assert proc.stats.committed > 200
        assert 0 < proc.stats.ipc < 8

    def test_multithread_beats_single_thread(self, quick_proc, small_config):
        single = SMTProcessor(small_config, make_generators(["gzip"]), quantum_cycles=512)
        single.run(3000)
        multi = quick_proc()
        multi.run(3000)
        assert multi.stats.ipc > single.stats.ipc

    def test_all_threads_make_progress(self, quick_proc):
        proc = quick_proc()
        proc.run(4000)
        for t in range(4):
            assert proc.stats.per_thread_committed.get(t, 0) > 0, f"thread {t} starved"

    def test_deterministic_given_seed(self, quick_proc):
        a = quick_proc(seed=3)
        b = quick_proc(seed=3)
        a.run(2000)
        b.run(2000)
        assert a.stats.committed == b.stats.committed
        assert a.stats.fetched == b.stats.fetched

    def test_different_seeds_differ(self, quick_proc):
        a = quick_proc(seed=1)
        b = quick_proc(seed=2)
        a.run(2000)
        b.run(2000)
        assert a.stats.committed != b.stats.committed

    def test_cycles_tracked(self, quick_proc):
        proc = quick_proc()
        proc.run(123)
        assert proc.now == 123
        assert proc.stats.cycles == 123

    def test_run_quanta(self, quick_proc):
        proc = quick_proc()
        proc.run_quanta(3)
        assert proc.now == 3 * 512
        assert len(proc.stats.quantum_history) == 3


class TestCounterConsistency:
    def test_occupancy_counters_match_structures(self, quick_proc):
        proc = quick_proc()
        for _ in range(20):
            proc.run(100)
            assert_counter_consistency(proc)

    def test_consistency_under_each_policy(self, quick_proc):
        for policy in ("icount", "brcount", "l1misscount", "rr", "accipc"):
            proc = quick_proc(policy=policy)
            proc.run(1500)
            assert_counter_consistency(proc)


class TestBranchHandling:
    def test_mispredictions_occur_and_squash(self, quick_proc):
        proc = quick_proc()
        proc.run(4000)
        assert proc.stats.mispredicted_branches > 0
        assert proc.stats.squashed > 0
        assert proc.stats.wrong_path_fetched > 0

    def test_mispredict_rate_sane(self, quick_proc):
        proc = quick_proc()
        proc.run(6000)
        assert 0.0 < proc.stats.mispredict_rate < 0.35

    def test_wrong_path_mode_clears(self, quick_proc):
        proc = quick_proc()
        proc.run(5000)
        # No thread should be stuck permanently on the wrong path.
        stuck = [c.tid for c in proc.contexts if c.wrong_path]
        proc.run(1500)
        still = [c.tid for c in proc.contexts if c.wrong_path and c.tid in stuck]
        assert not still

    def test_btb_trains(self, quick_proc):
        proc = quick_proc()
        proc.run(4000)
        assert proc.btb.hit_rate > 0.3


class TestQuantumBoundaries:
    def test_quantum_records_partition_committed(self, quick_proc):
        proc = quick_proc()
        proc.run_quanta(4)
        total = sum(q.committed for q in proc.stats.quantum_history)
        assert total == proc.stats.committed

    def test_quantum_records_carry_policy(self, quick_proc):
        proc = quick_proc(policy="brcount")
        proc.run_quanta(2)
        assert all(q.policy == "brcount" for q in proc.stats.quantum_history)

    def test_hook_receives_quantum_events(self, quick_proc):
        events = []

        class Recorder(SchedulerHook):
            def on_quantum_end(self, now, record, snapshots):
                events.append((now, record.index, len(snapshots)))

        proc = quick_proc(hook=Recorder())
        proc.run_quanta(3)
        assert [e[1] for e in events] == [0, 1, 2]
        assert all(e[2] == 4 for e in events)

    def test_hook_on_cycle_sees_idle_slots(self, quick_proc):
        seen = []

        class Recorder(SchedulerHook):
            def on_cycle(self, now, idle_slots):
                seen.append(idle_slots)
                return 0

        proc = quick_proc(hook=Recorder())
        proc.run(200)
        assert len(seen) == 200
        assert all(0 <= s <= 8 for s in seen)

    def test_hook_consumed_slots_accounted(self, quick_proc):
        class Eater(SchedulerHook):
            def on_cycle(self, now, idle_slots):
                return min(idle_slots, 2)

        proc = quick_proc(hook=Eater())
        proc.run(500)
        assert proc.stats.detector_slots_consumed > 0


class TestPolicySwitching:
    def test_set_policy_mid_run(self, quick_proc):
        proc = quick_proc()
        proc.run(500)
        proc.set_policy("brcount")
        proc.run(500)
        assert proc.policy_name == "brcount"

    def test_policies_change_behaviour(self, quick_proc):
        results = {}
        for policy in ("icount", "rr"):
            proc = quick_proc(policy=policy)
            proc.run(6000)
            results[policy] = proc.stats.ipc
        assert results["icount"] != results["rr"]


class TestFetchMechanics:
    def test_idle_slots_bounded(self, quick_proc):
        proc = quick_proc()
        proc.run(1000)
        assert proc.stats.idle_fetch_slots <= 1000 * 8

    def test_fetch_buffer_capacity_respected(self, quick_proc, small_config):
        proc = quick_proc()
        for _ in range(50):
            proc.run(20)
            total = sum(len(q) for q in proc.front_q)
            assert total <= small_config.fetch_buffer_entries

    def test_fetchable_flag_stops_thread(self, quick_proc):
        proc = quick_proc()
        proc.contexts[0].fetchable = False
        proc.run(2000)
        assert proc.stats.per_thread_committed.get(0, 0) == 0
        assert proc.stats.per_thread_committed.get(1, 0) > 0

    def test_suspension_stops_thread(self, quick_proc):
        proc = quick_proc()
        proc.run(1000)
        before = proc.stats.per_thread_committed.get(2, 0)
        proc.contexts[2].suspended = True
        proc.run(1500)
        after = proc.stats.per_thread_committed.get(2, 0)
        # Only in-flight instructions may still drain.
        assert after - before < 100
