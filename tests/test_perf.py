"""Benchmark harness (repro.perf) tests.

Structural behaviour — report shape, baseline comparison, stage profiler
bookkeeping — runs in tier-1 with no wall-clock sensitivity.  The actual
quick benchmark suite is marked ``perf`` and runs in CI's perf-smoke job.
"""

from __future__ import annotations

import json

import pytest

from repro import build_processor
from repro.perf import (
    PRE_PR_BASELINE,
    BenchReport,
    StageProfiler,
    compare_to_baseline,
    run_benchmarks,
)


def _report_with(benchmarks):
    return BenchReport(
        quick=True, seed=0, machine={}, git={}, benchmarks=benchmarks
    )


def test_compare_to_baseline_flags_rate_regressions(tmp_path):
    baseline = {
        "benchmarks": {
            "detailed_icount_mix07": {"cycles_per_s": 1000.0, "instr_per_s": 2000.0},
        }
    }
    path = tmp_path / "base.json"
    path.write_text(json.dumps(baseline))

    ok = _report_with(
        {"detailed_icount_mix07": {"cycles_per_s": 700.0, "instr_per_s": 1400.0}}
    )
    assert compare_to_baseline(ok, str(path), band=0.40) == []

    slow = _report_with(
        {"detailed_icount_mix07": {"cycles_per_s": 500.0, "instr_per_s": 1400.0}}
    )
    failures = compare_to_baseline(slow, str(path), band=0.40)
    assert len(failures) == 1
    assert "cycles_per_s" in failures[0]


def test_compare_to_baseline_flags_fingerprint_divergence(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({"benchmarks": {}}))
    bad = _report_with({"trace_cache": {"bit_identical": False, "cache": {}}})
    failures = compare_to_baseline(bad, str(path))
    assert any("diverged" in f for f in failures)


def test_report_to_dict_carries_provenance():
    report = _report_with({})
    payload = report.to_dict()
    assert payload["pre_pr_baseline"] == PRE_PR_BASELINE
    assert set(payload) >= {"quick", "seed", "machine", "git", "benchmarks"}


def test_stage_profiler_accounts_stage_time():
    proc = build_processor(mix="mix05", seed=0, quantum_cycles=256)
    prof = StageProfiler(proc)
    with prof:
        proc.run_quanta(1)
    report = prof.report()
    assert set(report) == set(StageProfiler.STAGES)
    total_share = sum(entry["share"] for entry in report.values())
    assert total_share == pytest.approx(1.0)
    assert report["_issue"]["seconds"] > 0.0
    # Wrappers must be gone and idle-skip restored after uninstall.
    assert "_issue" not in proc.__dict__
    proc.run_quanta(1)  # still functional


def test_stage_profiler_preserves_fingerprint():
    fps = []
    for profile in (False, True):
        proc = build_processor(mix="mix05", seed=0, quantum_cycles=256)
        if profile:
            with StageProfiler(proc):
                proc.run_quanta(2)
        else:
            proc.run_quanta(2)
        fps.append(proc.fingerprint())
    assert fps[0] == fps[1]


@pytest.mark.perf
def test_quick_benchmark_suite_runs_and_is_self_consistent():
    report = run_benchmarks(quick=True, seed=0)
    detailed = report.benchmarks["detailed_icount_mix07"]
    assert detailed["sim_cycles"] > 0
    assert detailed["cycles_per_s"] > 0
    warm = report.benchmarks["detailed_icount_mix07_warm"]
    assert warm["sim_cycles"] == detailed["sim_cycles"]
    assert warm["instructions"] == detailed["instructions"]
    tc = report.benchmarks["trace_cache"]
    assert tc["bit_identical"]
    assert tc["cache"]["hits"] > 0
