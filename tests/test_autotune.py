"""Tests for threshold auto-tuning (§4.3.2's update-kernel extension)."""

import numpy as np
import pytest

from repro.core.autotune import QuantileTracker, RunningMean, ThresholdAutoTuner
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig


def obs(index, ipc, l1=0.1, lsq=1.0, mis=0.02, cbr=0.3):
    return QuantumObservation(
        index=index, cycles=1000, ipc=ipc, prev_ipc=0.0,
        l1_miss_rate=l1, lsq_full_rate=lsq, mispredict_rate=mis, cond_branch_rate=cbr,
    )


class TestQuantileTracker:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            QuantileTracker(0.0)
        with pytest.raises(ValueError):
            QuantileTracker(1.0)
        with pytest.raises(ValueError):
            QuantileTracker(0.5, step=0)

    def test_converges_to_median(self):
        rng = np.random.default_rng(0)
        t = QuantileTracker(0.5, initial=0.0, step=0.05)
        for _ in range(4000):
            t.update(rng.normal(10.0, 2.0))
        assert t.estimate == pytest.approx(10.0, abs=1.0)

    def test_low_quantile_below_high_quantile(self):
        rng = np.random.default_rng(1)
        lo, hi = QuantileTracker(0.2, 5.0), QuantileTracker(0.8, 5.0)
        for _ in range(4000):
            x = rng.normal(10.0, 3.0)
            lo.update(x)
            hi.update(x)
        assert lo.estimate < hi.estimate


class TestRunningMean:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            RunningMean(0.0)

    def test_first_sample_adopted(self):
        m = RunningMean(0.1)
        m.update(7.0)
        assert m.value == 7.0

    def test_tracks_mean(self):
        m = RunningMean(0.2)
        for _ in range(200):
            m.update(3.0)
        assert m.value == pytest.approx(3.0)

    def test_adapts_to_shift(self):
        m = RunningMean(0.3, initial=0.0)
        m.update(0.0)
        for _ in range(50):
            m.update(10.0)
        assert m.value > 9.0


class TestThresholdAutoTuner:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ThresholdAutoTuner(update_interval=0)

    def test_no_update_before_interval(self):
        t = ThresholdAutoTuner(update_interval=8)
        initial = t.thresholds
        for i in range(7):
            t.observe(obs(i, ipc=1.0))
        assert t.thresholds is initial
        assert t.num_updates == 0

    def test_updates_at_interval(self):
        t = ThresholdAutoTuner(update_interval=4)
        for i in range(4):
            t.observe(obs(i, ipc=1.0))
        assert t.num_updates == 1

    def test_ipc_threshold_tracks_low_quantile(self):
        t = ThresholdAutoTuner(
            initial=ThresholdConfig(ipc_threshold=2.0),
            ipc_quantile=0.3, update_interval=4,
        )
        # Feed a workload running around IPC 6: the threshold must rise
        # well above the stale value of 2 (so "low" means low *here*).
        rng = np.random.default_rng(2)
        for i in range(400):
            t.observe(obs(i, ipc=float(rng.normal(6.0, 0.5))))
        assert t.thresholds.ipc_threshold > 4.0
        assert t.thresholds.ipc_threshold < 6.5

    def test_condition_constants_track_means(self):
        t = ThresholdAutoTuner(update_interval=4, alpha=0.3)
        for i in range(40):
            t.observe(obs(i, ipc=2.0, l1=0.4, mis=0.08))
        assert t.thresholds.l1_miss_rate == pytest.approx(0.4, rel=0.1)
        assert t.thresholds.mispredict_rate == pytest.approx(0.08, rel=0.1)

    def test_integration_with_adts(self, quick_proc):
        from repro.core.adts import ADTSController

        tuner = ThresholdAutoTuner(update_interval=2)
        adts = ADTSController(heuristic="type3", autotune=tuner, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(8)
        assert tuner.num_updates >= 3
        # The controller and heuristic follow the tuned thresholds.
        assert adts.thresholds is tuner.thresholds
        assert adts.heuristic.thresholds is tuner.thresholds


class TestInhibitCloggers:
    def test_inhibition_lifts_next_quantum(self, quick_proc):
        from repro.core.adts import ADTSController
        from repro.core.thresholds import ThresholdConfig

        adts = ADTSController(
            heuristic="type3",
            thresholds=ThresholdConfig(ipc_threshold=99.0),
            instant_dt=True,
            inhibit_cloggers=True,
        )
        proc = quick_proc(hook=adts)
        proc.run_quanta(10)
        # At rest (after a boundary) no thread is left permanently inhibited.
        assert all(ctx.fetchable or ctx.tid in adts._inhibited for ctx in proc.contexts)
        proc.run_quanta(1)
        # And the machine still commits work.
        assert proc.stats.committed > 0
