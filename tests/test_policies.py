"""Tests for the ten fetch policies."""

import pytest

from repro.policies import POLICY_NAMES, create_policy, policy_class
from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


def bank(n=4):
    return CounterBank(n)


class TestRegistry:
    def test_exactly_ten_policies(self):
        assert len(POLICY_NAMES) == 10

    def test_table1_names(self):
        expected = {
            "icount", "brcount", "ldcount", "memcount", "l1misscount",
            "l1imisscount", "l1dmisscount", "accipc", "stallcount", "rr",
        }
        assert set(POLICY_NAMES) == expected

    def test_create_all(self):
        for name in POLICY_NAMES:
            policy = create_policy(name)
            assert policy.name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown fetch policy"):
            create_policy("magic")
        with pytest.raises(KeyError):
            policy_class("magic")

    def test_base_requires_name(self):
        class Nameless(FetchPolicy):
            def key(self, tid, counters):
                return 0

        with pytest.raises(TypeError):
            Nameless()


class TestKeys:
    def test_icount_prefers_emptier_thread(self):
        b = bank()
        b[0].iq_int = 10
        b[1].front_end = 2
        p = create_policy("icount")
        ranked = p.rank([0, 1], b)
        assert ranked[0] == 1

    def test_brcount_prefers_fewer_inflight_branches(self):
        b = bank()
        b[0].in_flight_branches = 5
        p = create_policy("brcount")
        assert p.rank([0, 1], b)[0] == 1

    def test_ldcount(self):
        b = bank()
        b[1].in_flight_loads = 3
        assert create_policy("ldcount").rank([0, 1], b)[0] == 0

    def test_memcount(self):
        b = bank()
        b[0].in_flight_mem = 4
        assert create_policy("memcount").rank([0, 1], b)[0] == 1

    def test_l1dmisscount(self):
        b = bank()
        b[0].outstanding_l1d_misses = 2
        assert create_policy("l1dmisscount").rank([0, 1], b)[0] == 1

    def test_l1imisscount(self):
        b = bank()
        b[1].recent_l1i_misses = 3.0
        assert create_policy("l1imisscount").rank([0, 1], b)[0] == 0

    def test_l1misscount_combines_both(self):
        b = bank()
        b[0].outstanding_l1d_misses = 1
        b[1].recent_l1i_misses = 0.5
        b[2].outstanding_l1d_misses = 1
        b[2].recent_l1i_misses = 2.0
        ranked = create_policy("l1misscount").rank([0, 1, 2], b)
        assert ranked[-1] == 2

    def test_accipc_prefers_high_throughput_thread(self):
        b = bank()
        b[0].total_committed, b[0].active_cycles = 100, 100
        b[1].total_committed, b[1].active_cycles = 20, 100
        assert create_policy("accipc").rank([0, 1], b)[0] == 0

    def test_stallcount(self):
        b = bank()
        b[0].recent_stalls = 9.0
        assert create_policy("stallcount").rank([0, 1], b)[0] == 1


class TestRanking:
    def test_rank_returns_all_candidates(self):
        b = bank()
        p = create_policy("icount")
        assert sorted(p.rank([2, 0, 3], b)) == [0, 2, 3]

    def test_tie_break_rotates(self):
        b = bank()  # all keys equal
        p = create_policy("icount")
        firsts = {tuple(p.rank([0, 1, 2, 3], b))[0] for _ in range(8)}
        assert len(firsts) > 1, "equal-key threads must share the top slot"

    def test_rr_cycles_through_threads(self):
        b = bank()
        p = create_policy("rr")
        firsts = [p.rank([0, 1, 2, 3], b)[0] for _ in range(4)]
        assert sorted(firsts) == [0, 1, 2, 3]

    def test_rr_ignores_counters(self):
        b = bank()
        b[0].iq_int = 99
        p = create_policy("rr")
        firsts = {p.rank([0, 1], b)[0] for _ in range(4)}
        assert 0 in firsts  # still gets its turn despite huge icount
