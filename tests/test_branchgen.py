"""Tests for the control-flow generator."""

import numpy as np
import pytest

from repro.workloads.branchgen import ControlFlowGenerator
from repro.workloads.profiles import get_profile


def gen(name="gzip", tid=0, seed=0):
    return ControlFlowGenerator(get_profile(name), tid, np.random.default_rng(seed))


def drive(g, n_branches=200):
    """Walk blocks, returning the branch records."""
    records = []
    for _ in range(n_branches):
        length = g.next_block_length()
        for _ in range(length - 1):
            g.advance()
        records.append(g.branch())
    return records


class TestBlockStructure:
    def test_block_length_at_least_two(self):
        g = gen()
        for _ in range(200):
            assert g.next_block_length() >= 2

    def test_block_length_cached_per_start_pc(self):
        g = gen()
        start = g.pc
        length = g.next_block_length()
        assert g._block_lengths[start] == length
        # Same start address must yield the same length.
        assert g.next_block_length() == length

    def test_pc_advances_by_word(self):
        g = gen()
        a = g.advance()
        b = g.advance()
        assert b == a + 4


class TestBranchSites:
    def test_site_params_stable(self):
        g = gen()
        p1 = g._site_params(0x1234)
        p2 = g._site_params(0x1234)
        assert p1 == p2

    def test_revisited_sites_replay_same_target(self):
        g = gen("gzip", seed=3)
        records = drive(g, 400)
        by_pc = {}
        stable = 0
        total = 0
        for pc, is_cond, taken, target, noise in records:
            if not taken:
                continue
            if pc in by_pc:
                total += 1
                if by_pc[pc] == target:
                    stable += 1
            by_pc[pc] = target
        assert total > 10, "loops should revisit branch sites"
        assert stable / total > 0.8, "targets must be mostly static (CFG edges)"

    def test_taken_fraction_reasonable(self):
        g = gen()
        records = drive(g, 500)
        taken = sum(1 for r in records if r[2])
        assert 0.4 < taken / len(records) < 0.95

    def test_conditional_fraction_ordering_across_profiles(self):
        # The dynamic conditional fraction exceeds the per-site parameter
        # (loops concentrate on conditional chains), but profile ordering
        # must survive: lucas sites are conditional 55% vs gzip's 85%.
        counts = {}
        for name in ("gzip", "lucas"):
            g = gen(name, seed=11)
            records = drive(g, 800)
            counts[name] = sum(1 for r in records if r[1]) / len(records)
        assert counts["gzip"] > 0.5
        assert counts["gzip"] > counts["lucas"] - 0.05

    def test_unconditional_always_taken(self):
        g = gen()
        for r in drive(g, 500):
            if not r[1]:
                assert r[2], "unconditional branches must be taken"

    def test_noise_zero_for_unconditional(self):
        g = gen()
        for r in drive(g, 300):
            if not r[1]:
                assert r[4] == 0.0

    def test_minority_rate_tracks_target(self):
        g = gen("crafty", seed=1)  # mispredict_target 0.085
        # Mean per-site noise equals the profile target (large sample
        # directly over sites; the dynamic walk is a small biased sample).
        noises = [g._site_params(pc * 4)[0] for pc in range(20_000)]
        assert np.mean(noises) == pytest.approx(
            get_profile("crafty").mispredict_target, rel=0.1
        )

    def test_mispredict_scale_amplifies_noise(self):
        g = gen("crafty", seed=1)
        g.set_phase_scale(4.0)
        records = drive(g, 2000)
        cond = [r for r in records if r[1]]
        mean_noise = np.mean([r[4] for r in cond])
        assert mean_noise > 1.5 * get_profile("crafty").mispredict_target


class TestCodeFootprint:
    def test_pcs_stay_in_code_region(self):
        g = gen("gcc", tid=2)
        records = drive(g, 500)
        lo = g.code_base
        hi = g.code_base + g.code_bytes + 64
        for pc, *_ in records:
            assert lo <= pc <= hi

    def test_known_sites_grow_then_saturate(self):
        g = gen("gzip", seed=2)
        drive(g, 300)
        early = g.known_sites
        drive(g, 3000)
        late = g.known_sites
        # Sites accumulate but sub-linearly (loops revisit old blocks).
        assert late > early
        assert late < early * 11
