"""Chaos-day campaigns: drain contract, report reproducibility, the
regression gate, and the hypothesis conservation property."""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.harness.chaosday import (
    CampaignConfig,
    check_contract,
    format_report,
    run_campaign,
)
from repro.harness.regression import verify_campaign
from repro.service import (
    ServiceConfig,
    SimulationService,
    TrafficSpec,
    VirtualClock,
    generate_traffic,
    replay_traffic,
)


def ok_full(request):
    return {"ipc": 1.0}


def flaky_full(request):
    """Deterministically fails a slice of requests (id-derived, not
    random): exercises retry, degradation-on-failure and breaker paths."""
    if int(request.request_id.split("-")[-1]) % 5 == 0:
        raise RuntimeError("synthetic full-tier failure")
    return {"ipc": 1.0}


def ok_fast(request):
    return {"ipc": 0.9}


def small_cfg(**kw):
    defaults = dict(seed=0, requests=40, duration_s=8.0, fault_rate=0.15)
    defaults.update(kw)
    return CampaignConfig(**defaults)


class TestCampaign:
    def test_seeded_campaign_drains_cleanly(self, tmp_path):
        report, code = run_campaign(
            small_cfg(), tmp_path, full_runner=flaky_full, fast_runner=ok_fast
        )
        assert code == 0
        contract = report["contract"]
        assert contract["ok"]
        assert contract["answered"] == contract["submitted"] == 40
        assert contract["unaccounted"] == 0
        assert contract["refusals_without_reason"] == 0
        assert report["fsck"]["exit_code"] == 0
        assert report["deterministic"] is True
        assert (tmp_path / "campaign.json").exists()
        assert (tmp_path / "traffic.json").exists()
        assert (tmp_path / "journal.jsonl").exists()
        format_report(report)  # renders without blowing up

    def test_same_seed_same_report(self, tmp_path):
        reports = []
        for sub in ("a", "b"):
            r, code = run_campaign(
                small_cfg(seed=11), tmp_path / sub,
                full_runner=flaky_full, fast_runner=ok_fast,
            )
            assert code == 0
            reports.append(r)
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_different_seed_different_traffic(self, tmp_path):
        a, _ = run_campaign(small_cfg(seed=1), tmp_path / "a",
                            full_runner=ok_full, fast_runner=ok_fast)
        b, _ = run_campaign(small_cfg(seed=2), tmp_path / "b",
                            full_runner=ok_full, fast_runner=ok_fast)
        assert a["traffic_fingerprint"] != b["traffic_fingerprint"]

    def test_recording_replay_campaign(self, tmp_path):
        """A campaign replayed from a recorded stream uses it verbatim."""
        from repro.service import save_recording

        events = generate_traffic(TrafficSpec(requests=20, duration_s=4.0, seed=3))
        rec = tmp_path / "rec.json"
        save_recording(rec, events)
        report, code = run_campaign(
            small_cfg(recording=str(rec)), tmp_path / "out",
            full_runner=ok_full, fast_runner=ok_fast,
        )
        assert code == 0
        assert report["contract"]["submitted"] == 20

    def test_chaos_day_plan_excludes_unrepairable_disk_faults(self):
        plan = FaultPlan.chaos_day(seed=0, rate=0.2)
        assert plan.service_overload_rate == 0.2
        assert plan.disk_torn_write_rate == 0.2
        assert plan.disk_bitrot_rate == 0.0
        assert plan.disk_read_eio_rate == 0.0


class TestShardedCampaign:
    def test_sharded_campaign_satisfies_the_contract(self, tmp_path):
        """The combined-fault day routed through the 2-shard front-door:
        drain contract holds, per-shard journals and the result store
        come out fsck-clean, and no lease survives the drain."""
        report, code = run_campaign(
            small_cfg(shards=2), tmp_path,
            full_runner=flaky_full, fast_runner=ok_fast,
        )
        assert code == 0
        assert report["contract"]["ok"]
        assert report["fsck"]["exit_code"] == 0
        sharding = report["sharding"]
        assert sharding["shards"] == 2
        assert sharding["summary"]["submitted"] == 40
        assert sharding["summary"]["answered"] == 40
        # Per-shard journals, not one contended file.
        assert (tmp_path / "journal-s00.jsonl").exists()
        assert (tmp_path / "journal-s01.jsonl").exists()
        assert not (tmp_path / "journal.jsonl").exists()
        # Every full answer that reached the store is addressable…
        assert (tmp_path / "resultstore").is_dir()
        # …and the drain released every coalescing lease.
        leases = tmp_path / "resultstore" / "leases"
        assert not leases.is_dir() or not list(leases.glob("*.lease"))
        assert verify_campaign(tmp_path / "campaign.json").ok
        format_report(report)  # renders the sharding block

    def test_sharded_campaign_reproducible(self, tmp_path):
        reports = []
        for sub in ("a", "b"):
            r, code = run_campaign(
                small_cfg(seed=5, shards=2), tmp_path / sub,
                full_runner=ok_full, fast_runner=ok_fast,
            )
            assert code == 0
            reports.append(r)
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_second_campaign_over_same_store_resimulates_nothing(self, tmp_path):
        """A recording replayed twice against one campaign directory:
        pass 2 is pure result-store hits — zero simulations."""
        from repro.service import SimRequest, TimedRequest, save_recording

        events = [
            TimedRequest(
                at_s=i * 0.05,
                request=SimRequest(
                    request_id=f"q-{i}", client="c", mix="mix05",
                    mode="adts", quanta=4, warmup_quanta=1, seed=i % 3,
                ),
            )
            for i in range(12)
        ]
        rec = tmp_path / "rec.json"
        save_recording(rec, events)
        summaries = []
        for _ in range(2):
            report, code = run_campaign(
                small_cfg(recording=str(rec), fault_rate=0.0, shards=2),
                tmp_path / "day", full_runner=ok_full, fast_runner=ok_fast,
            )
            assert code == 0
            assert report["breakdown"]["outcomes"] == {"full": 12}
            summaries.append(report["sharding"]["summary"])
        cold, warm = summaries
        assert cold["simulations"] == 3  # one per distinct identity
        assert warm["simulations"] == 0  # pass 2: all from the store
        assert warm["cache"]["store_hits"] == 12


class TestCheckContract:
    def test_detects_silent_drop_duplicate_and_reasonless(self):
        events = generate_traffic(TrafficSpec(requests=4, duration_s=1.0, seed=0))
        clock = VirtualClock()
        service = SimulationService(
            ServiceConfig(workers=0), full_runner=ok_full,
            fast_runner=ok_fast, clock=clock,
        )
        responses = replay_traffic(service, events, clock)
        clock.auto_advance_s = 0.05
        stats = service.drain(5.0)
        responses.extend(service.take_completed())
        good = check_contract(events, responses, stats)
        assert good["ok"]
        # Drop one response: conservation must flag it.
        dropped = check_contract(events, responses[1:], stats)
        assert not dropped["ok"] and dropped["unaccounted"] == 1
        # Duplicate one: also flagged.
        duped = check_contract(events, responses + [responses[0]], stats)
        assert not duped["ok"] and duped["unaccounted"] == 1


class TestVerifyCampaign:
    def test_good_report_passes(self, tmp_path):
        run_campaign(small_cfg(), tmp_path,
                     full_runner=ok_full, fast_runner=ok_fast)
        gate = verify_campaign(tmp_path / "campaign.json")
        assert gate.ok, gate.summary()
        assert gate.files_compared == 1

    def test_tampered_report_fails_the_gate(self, tmp_path):
        run_campaign(small_cfg(), tmp_path,
                     full_runner=ok_full, fast_runner=ok_fast)
        path = tmp_path / "campaign.json"
        doc = json.loads(path.read_text())
        doc["contract"]["unaccounted"] = 3  # breaks the embedded checksum
        path.write_text(json.dumps(doc))
        gate = verify_campaign(path)
        assert not gate.ok

    def test_violating_report_fails_the_gate(self, tmp_path):
        from repro.storage import atomic_write_bytes, embed_json_artifact

        bad = {
            "kind": "chaos-campaign",
            "exit_code": 1,
            "contract": {"ok": False, "submitted": 10, "answered": 9,
                         "unaccounted": 1, "refusals_without_reason": 0},
            "fsck": {"exit_code": 0},
        }
        doc = embed_json_artifact(bad, "chaos-campaign", 1)
        path = tmp_path / "campaign.json"
        atomic_write_bytes(path, json.dumps(doc).encode())
        gate = verify_campaign(path)
        assert not gate.ok
        paths = {m.path for m in gate.mismatches}
        assert "$.contract.ok" in paths and "$.contract.unaccounted" in paths

    def test_missing_file_fails_loudly(self, tmp_path):
        gate = verify_campaign(tmp_path / "nope.json")
        assert not gate.ok


class TestChaosdayCli:
    def test_cli_campaign_exits_zero_and_fscks_clean(self, tmp_path):
        """The acceptance-criteria invocation, in-process: a seeded
        combined-fault diurnal campaign with autoscaling, real engines."""
        from repro.harness.cli import main
        from repro.storage import fsck_tree

        out = tmp_path / "campaign"
        rc = main([
            "chaosday", "--out", str(out), "--requests", "25",
            "--duration", "6", "--seed", "3", "--json",
        ])
        assert rc == 0
        report = json.loads((out / "campaign.json").read_text())
        assert report["contract"]["ok"]
        assert verify_campaign(out / "campaign.json").ok
        assert fsck_tree(out, repair=False).exit_code == 0


@given(
    seed=st.integers(0, 2**16),
    fault_rate=st.floats(0.0, 0.5),
    shape=st.sampled_from(("uniform", "diurnal", "bursty", "ramp")),
    flaky=st.booleans(),
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_request_conservation_under_any_seeded_fault_schedule(
    seed, fault_rate, shape, flaky
):
    """The property the whole PR hangs on: for ANY seed, fault schedule,
    traffic shape and engine flakiness — admitted == answered + refused-
    with-a-reason; nothing is ever silently dropped or double-answered."""
    events = generate_traffic(TrafficSpec(
        shape=shape, requests=25, duration_s=5.0, seed=seed,
        expired_fraction=0.2, deadline_fraction=0.3,
        deadline_range_s=(0.1, 1.0),
    ))
    clock = VirtualClock()
    service = SimulationService(
        ServiceConfig(
            workers=0, queue_capacity=8, max_attempts=2,
            breaker_failures=2, breaker_cooldown_s=0.5,
            fault_plan=FaultPlan.chaos_day(seed=seed, rate=fault_rate),
        ),
        full_runner=flaky_full if flaky else ok_full,
        fast_runner=ok_fast,
        clock=clock,
    )
    responses = replay_traffic(service, events, clock, tick_s=0.05,
                               max_virtual_s=60.0)
    clock.auto_advance_s = 0.05
    stats = service.drain(10.0)
    responses.extend(service.take_completed())
    contract = check_contract(events, responses, stats)
    assert contract["ok"], contract
    counters = stats["counters"]
    answered = (counters["completed_full"] + counters["journal_hits"]
                + counters["degraded"] + counters["rejected"]
                + counters["shed"] + counters["failed"])
    assert answered == counters["submitted"] == len(events)


class TestCorruptionCampaign:
    def test_injected_corruption_is_caught_and_campaign_passes(self, tmp_path):
        """The tentpole gate: with silent corruption injected into every
        served result and verification at 100%, the campaign passes ONLY
        because every tainted digest was neutralized — quarantined as
        proven-divergent, or fail-safe evicted when chaos shed its shadow
        probe — and the report proves it."""
        report, code = run_campaign(
            small_cfg(shards=2, verify_rate=1.0, corrupt_rate=1.0,
                      dlq_threshold=3),
            tmp_path, full_runner=ok_full, fast_runner=ok_fast,
        )
        assert code == 0
        audit = report["verification"]
        assert audit["ok"] is True
        assert audit["corrupted_injected"] > 0
        assert audit["caught"] > 0
        assert audit["neutralized"] == audit["tainted_digests"]
        assert audit["uncaught"] == []
        assert audit["live_divergent"] == 0
        assert audit["integrity"]["divergent_evidence"] > 0
        assert report["contract"]["verification"]["ok"] is True
        assert report["fsck"]["exit_code"] == 0
        assert "integrity: OK" in format_report(report)
        gate = verify_campaign(tmp_path / "campaign.json")
        assert gate.ok, gate.mismatches

    def test_uncaught_corruption_fails_the_campaign(self, tmp_path):
        """Corruption injected with verification OFF: the tainted results
        sit in the store, the audit reports them uncaught, and the
        campaign (and the regression gate) fail."""
        report, code = run_campaign(
            small_cfg(shards=2, corrupt_rate=1.0),
            tmp_path, full_runner=ok_full, fast_runner=ok_fast,
        )
        assert code == 1
        audit = report["verification"]
        assert audit["ok"] is False
        assert len(audit["uncaught"]) > 0
        assert report["contract"]["ok"] is False
        gate = verify_campaign(tmp_path / "campaign.json")
        assert not gate.ok

    def test_corruption_campaign_reproducible(self, tmp_path):
        reports = []
        for sub in ("a", "b"):
            r, code = run_campaign(
                small_cfg(seed=7, shards=2, verify_rate=1.0,
                          corrupt_rate=0.3, dlq_threshold=3),
                tmp_path / sub, full_runner=ok_full, fast_runner=ok_fast,
            )
            assert code == 0
            reports.append(r)
        assert json.dumps(reports[0], sort_keys=True) == json.dumps(
            reports[1], sort_keys=True
        )

    def test_verify_rate_alone_forces_the_sharded_path(self, tmp_path):
        report, code = run_campaign(
            small_cfg(verify_rate=1.0),
            tmp_path, full_runner=ok_full, fast_runner=ok_fast,
        )
        assert code == 0
        assert report["sharding"] is not None
        assert report["verification"]["counters"]["sampled"] > 0

    def test_contract_folds_audit_in(self):
        clock = VirtualClock()
        svc = SimulationService(
            ServiceConfig(workers=0), full_runner=ok_full,
            fast_runner=ok_fast, clock=clock,
        )
        events = generate_traffic(
            TrafficSpec(shape="uniform", requests=5, duration_s=1.0, seed=0)
        )
        responses = replay_traffic(svc, events, clock, tick_s=0.05)
        clock.auto_advance_s = 0.05
        stats = svc.drain(5.0)
        responses.extend(svc.take_completed())
        good = check_contract(events, responses, stats)
        assert good["ok"] and "verification" not in good
        bad_audit = {"ok": False, "uncaught": ["d" * 64]}
        folded = check_contract(events, responses, stats, audit=bad_audit)
        assert folded["ok"] is False
        assert folded["verification"] == bad_audit
