"""Property-based service tests: under ANY mix of priorities, deadlines,
client identities, degradability flags, queue capacities, and full-tier
failure patterns, the service must (a) answer every submitted request
exactly once — admitted + degraded + shed + rejected + failed conserves the
request count, no silent drops, no duplicates — and (b) never let a
fast-model answer masquerade as full fidelity: every fast-tier response is
explicitly ``degraded: true`` with a non-empty reason, and every full
outcome came from the full tier."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.errors import (
    OUTCOME_DEGRADED,
    OUTCOME_FULL,
    OUTCOME_KINDS,
)
from repro.service import (
    ServiceConfig,
    SimRequest,
    SimulationService,
    TIER_FAST,
    TIER_FULL,
    TIER_KINDS,
)

_REQUESTS = st.lists(
    st.tuples(
        st.sampled_from(["alice", "bob", "carol"]),   # client
        st.integers(0, 3),                            # priority
        st.sampled_from([None, 0.0, 60.0]),           # deadline_s
        st.booleans(),                                # degradable
    ),
    min_size=1,
    max_size=40,
)

_FAIL_EVERY = st.sampled_from([0, 2, 3])  # 0 = full tier never fails


def _fake_payload(request):
    return {"ipc": 1.0, "switches": 0, "benign_probability": 0.5}


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(reqs=_REQUESTS, capacity=st.integers(1, 8),
       per_client=st.integers(1, 8), fail_every=_FAIL_EVERY,
       pause_submit=st.booleans())
def test_every_request_answered_exactly_once_and_tiers_honest(
        reqs, capacity, per_client, fail_every, pause_submit):
    calls = {"n": 0}

    def full_runner(request):
        calls["n"] += 1
        if fail_every and calls["n"] % fail_every == 0:
            raise RuntimeError("synthetic full-tier failure")
        return _fake_payload(request)

    svc = SimulationService(
        ServiceConfig(workers=0, queue_capacity=capacity,
                      per_client_cap=per_client, breaker_failures=2,
                      breaker_cooldown_s=1e-6),
        full_runner=full_runner, fast_runner=_fake_payload)
    svc.paused = pause_submit
    ids = []
    for i, (client, priority, deadline_s, degradable) in enumerate(reqs):
        rid = f"p{i:03d}"
        ids.append(rid)
        svc.submit(SimRequest(request_id=rid, client=client,
                              priority=priority, deadline_s=deadline_s,
                              degradable=degradable, quanta=1,
                              warmup_quanta=0, quantum_cycles=128))
    svc.paused = False
    svc.run_until_idle(timeout_s=30)
    svc.drain(5.0)
    responses = svc.take_completed()

    # (a) conservation: one response per request, no drops, no duplicates.
    assert sorted(r.request_id for r in responses) == sorted(ids)
    c = svc.counters
    accounted = (c["completed_full"] + c["journal_hits"] + c["degraded"]
                 + c["rejected"] + c["shed"] + c["failed"])
    assert accounted == c["submitted"] == len(reqs)

    # (b) honesty: tiers and outcomes from the closed taxonomies; every
    # fast-tier answer marked degraded with a reason; full means full.
    for r in responses:
        assert r.outcome in OUTCOME_KINDS
        assert r.tier in TIER_KINDS
        if r.tier == TIER_FAST:
            assert r.degraded is True
            assert r.reason
            assert r.outcome == OUTCOME_DEGRADED
        if r.outcome == OUTCOME_FULL:
            assert r.tier == TIER_FULL
            assert r.degraded is False
            assert r.payload is not None

    # Degradable requests never fail outright when the fast tier works.
    degradable_ids = {f"p{i:03d}" for i, (_, _, _, d) in enumerate(reqs) if d}
    for r in responses:
        if r.request_id in degradable_ids:
            assert r.outcome != "failed"


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(reqs=_REQUESTS, capacity=st.integers(1, 8))
def test_paused_burst_breakdown_is_deterministic(reqs, capacity):
    """Admission decisions depend only on queue state: submitting the same
    burst to two identically configured paused services yields identical
    per-request dispositions."""

    def run_once():
        svc = SimulationService(
            ServiceConfig(workers=0, queue_capacity=capacity),
            full_runner=_fake_payload, fast_runner=_fake_payload)
        svc.paused = True
        for i, (client, priority, deadline_s, degradable) in enumerate(reqs):
            svc.submit(SimRequest(request_id=f"p{i:03d}", client=client,
                                  priority=priority, deadline_s=deadline_s,
                                  degradable=degradable, quanta=1,
                                  warmup_quanta=0, quantum_cycles=128))
        svc.paused = False
        svc.run_until_idle(timeout_s=30)
        svc.drain(5.0)
        return sorted((r.request_id, r.outcome, r.tier, r.reason)
                      for r in svc.take_completed())

    assert run_once() == run_once()
