"""Isolation and regression-band tests.

Two properties a simulation library must not lose: (1) simulator instances
share no hidden global state — interleaving two machines' cycle loops gives
exactly the results of running each alone; (2) the calibrated operating
point stays inside a coarse band (catches accidental order-of-magnitude
behaviour changes without pinning exact values).
"""

import pytest

from repro import build_processor


class TestInstanceIsolation:
    def test_interleaved_processors_match_solo_runs(self):
        solo_a = build_processor(mix="mix09", seed=3, quantum_cycles=512)
        solo_a.run(2000)
        solo_b = build_processor(mix="mix10", seed=4, quantum_cycles=512)
        solo_b.run(2000)

        inter_a = build_processor(mix="mix09", seed=3, quantum_cycles=512)
        inter_b = build_processor(mix="mix10", seed=4, quantum_cycles=512)
        for _ in range(200):
            inter_a.run(10)
            inter_b.run(10)

        assert inter_a.stats.committed == solo_a.stats.committed
        assert inter_b.stats.committed == solo_b.stats.committed
        assert inter_a.stats.mispredicted_branches == solo_a.stats.mispredicted_branches

    def test_two_identical_processors_stay_identical(self):
        a = build_processor(mix="mix05", seed=7, quantum_cycles=512)
        b = build_processor(mix="mix05", seed=7, quantum_cycles=512)
        for _ in range(50):
            a.run(37)
            b.run(37)
            assert a.stats.committed == b.stats.committed
            assert a.now == b.now


class TestOperatingBands:
    """Coarse bands around the calibrated operating point (EXPERIMENTS.md).

    Wide on purpose: they should only trip on accidental regressions
    (deadlocks, runaway wrong-path, broken caches), not on retuning.
    """

    def run_mix(self, mix, quanta=10):
        proc = build_processor(mix=mix, seed=0, quantum_cycles=2048)
        proc.run_quanta(quanta)
        return proc

    def test_balanced_mix_band(self):
        proc = self.run_mix("mix05")
        assert 1.0 < proc.stats.ipc < 4.0
        assert proc.stats.mispredict_rate < 0.20
        assert proc.stats.wrong_path_fraction < 0.50

    def test_memory_mix_band(self):
        proc = self.run_mix("mix10")
        assert 0.2 < proc.stats.ipc < 2.5

    def test_homogeneous_cpu_mix_band(self):
        proc = self.run_mix("mix09")
        assert 1.5 < proc.stats.ipc < 5.0

    def test_predictor_accuracy_band(self):
        proc = self.run_mix("mix05")
        assert proc.predictor.accuracy > 0.80

    def test_cache_behaviour_band(self):
        proc = self.run_mix("mix05")
        assert proc.hierarchy.l1d.miss_rate < 0.5
        assert proc.hierarchy.l1i.miss_rate < 0.3
