"""Behaviour profiles, baselines, drift, and the in-service DriftGuard.

The contract under test, end to end:

* capture is deterministic and content-addressed — the same measured
  behaviour snapshots to the same profile id, byte-identically;
* drift math is a pure function with a three-way verdict — a profile
  against itself is always ``ok`` with every delta exactly zero, and a
  seeded perturbation beyond tolerance is always ``drift`` (hypothesis
  properties);
* the DriftGuard escalates only on *sustained* drift (streaks +
  cooldown, autoscaler-style hysteresis — no flapping at the tolerance
  boundary) and never costs a response: with the guard attached and
  degradation active, every submitted request is still answered exactly
  once;
* profiles are first-class storage artifacts: fsck classifies them
  (healthy / migratable / corrupt+quarantine), and the committed bench
  reports import as baseline-comparable history;
* `verify_profile` turns drift into the regression gate CI keys on.
"""

import io
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.behavior import (
    BehaviorProfile,
    DriftConfig,
    DriftGuard,
    DriftGuardConfig,
    ProfileStore,
    compute_drift,
    flatten_metrics,
    is_noisy_metric,
    load_profile,
    profile_from_bench,
    profile_from_campaign,
    profile_from_service,
    profile_from_sim,
    service_rates,
)
from repro.harness.regression import verify_profile
from repro.service import ServeLoop, ServiceConfig, SimRequest, SimulationService
from repro.storage import fsck_tree

REPO = Path(__file__).resolve().parents[1]


def make_profile(metrics=None, label="t", source="test"):
    return BehaviorProfile(
        label=label,
        source=source,
        metrics=metrics or {"rate.answered": 0.9, "sim.ipc": 1.5},
        identity={"seed": 0},
        window={"requests": 10},
    )


# -- capture ------------------------------------------------------------------
class TestFlatten:
    def test_nested_numeric_leaves_only(self):
        flat = flatten_metrics({
            "a": {"b": 1, "c": 2.5},
            "flag": True,
            "name": "dropped",
            "none": None,
            "list": [1, 2],
        })
        assert flat == {"a.b": 1.0, "a.c": 2.5, "flag": 1.0}

    def test_service_rates_whole_run_and_delta(self):
        now = {"submitted": 20.0, "answered": 18.0, "cache.journal_hits": 4.0}
        rates = service_rates(now)
        assert rates["rate.answered"] == pytest.approx(0.9)
        assert rates["rate.journal_hits"] == pytest.approx(0.2)
        then = {"submitted": 10.0, "answered": 10.0, "cache.journal_hits": 4.0}
        windowed = service_rates(now, then)
        assert windowed["rate.answered"] == pytest.approx(0.8)
        assert windowed["rate.journal_hits"] == 0.0
        assert service_rates(then, then) == {}  # no traffic, no behaviour


class TestProfile:
    def test_content_addressed_id_is_stable(self):
        assert make_profile().profile_id == make_profile().profile_id
        changed = make_profile(metrics={"rate.answered": 0.8, "sim.ipc": 1.5})
        assert changed.profile_id != make_profile().profile_id

    def test_label_sanitized_and_validation(self):
        assert BehaviorProfile(
            label="we ird/label", source="t", metrics={"m": 1.0}
        ).label == "we-ird-label"
        with pytest.raises(ValueError):
            BehaviorProfile(label="x", source="t", metrics={})
        with pytest.raises(ValueError):
            BehaviorProfile(label="x", source="t", metrics={"m": "nan"})

    def test_payload_round_trip(self):
        p = make_profile()
        q = BehaviorProfile.from_payload(p.to_payload())
        assert q == p and q.profile_id == p.profile_id

    def test_profile_from_sim_prefixes(self):
        p = profile_from_sim(
            {"ipc": 1.2, "switches": 4},
            "simrun",
            switching={"num_switches": 4, "benign_probability": 0.5},
            batch_telemetry={"forks": 2},
            seed=7,
        )
        assert p.metrics["sim.ipc"] == 1.2
        assert p.metrics["switching.num_switches"] == 4.0
        assert p.metrics["batch.forks"] == 2.0
        assert p.identity["seed"] == 7

    def test_profile_from_bench_keeps_report_provenance(self):
        payload = json.loads((REPO / "BENCH_PR4.json").read_text())
        p = profile_from_bench(payload, "pr4")
        assert any(k.startswith("bench.") for k in p.metrics)
        # The imported report's commit, not the capturing checkout's.
        assert p.identity["commit"] == payload["git"]["commit"]


# -- store --------------------------------------------------------------------
class TestStore:
    def test_round_trip_and_baseline_pointer(self, tmp_path):
        store = ProfileStore(tmp_path / "store")
        pid = store.save(make_profile())
        assert store.load(pid) == make_profile()
        assert store.baseline_id() is None and store.load_baseline() is None
        store.set_baseline(pid)
        assert store.baseline_id() == pid
        assert store.load_baseline() == make_profile()
        with pytest.raises(FileNotFoundError):
            store.set_baseline("nope")

    def test_save_is_idempotent(self, tmp_path):
        store = ProfileStore(tmp_path)
        a = store.save(make_profile())
        blob = (tmp_path / f"{a}.json").read_bytes()
        assert store.save(make_profile()) == a
        assert (tmp_path / f"{a}.json").read_bytes() == blob  # byte-identical
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_listing_marks_baseline_and_damage(self, tmp_path):
        store = ProfileStore(tmp_path)
        pid = store.save(make_profile())
        store.set_baseline(pid)
        (tmp_path / "broken.json").write_text("{not json")
        entries = {e["id"]: e for e in store.list_profiles()}
        assert entries[pid]["baseline"] is True
        assert entries[pid]["source"] == "test"
        assert "error" in entries["broken"]

    def test_import_committed_bench_history(self, tmp_path):
        store = ProfileStore(tmp_path)
        pr4 = store.import_report(REPO / "BENCH_PR4.json")  # legacy plain JSON
        pr9 = store.import_report(REPO / "BENCH_PR9.json")  # enveloped
        assert pr4.startswith("bench_pr4-") and pr9.startswith("bench_pr9-")
        store.set_baseline(pr4)
        report = compute_drift(store.load(pr4), store.load(pr9))
        assert report.verdict in ("ok", "warn", "drift")  # comparable history
        assert store.load(pr4).source == "imported"

    def test_import_rejects_unknown_documents(self, tmp_path):
        alien = tmp_path / "alien.json"
        alien.write_text(json.dumps({"whatever": 1}))
        with pytest.raises(ValueError):
            ProfileStore(tmp_path / "s").import_report(alien)


# -- drift math ---------------------------------------------------------------
_METRIC_NAMES = st.sampled_from(
    ["sim.ipc", "rate.answered", "counters.shed", "bench.detailed.rate",
     "switching.num_switches", "breakdown.degraded_share"]
)
_METRICS = st.dictionaries(
    _METRIC_NAMES,
    st.floats(min_value=-1e9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=6,
)


class TestDrift:
    @settings(max_examples=100, deadline=None)
    @given(metrics=_METRICS)
    def test_self_comparison_is_always_ok_with_zero_drift(self, metrics):
        profile = BehaviorProfile(label="p", source="test", metrics=metrics)
        report = compute_drift(profile, profile)
        assert report.ok and report.verdict == "ok"
        assert not report.missing and not report.extra
        assert all(m.rel_delta == 0.0 and m.verdict == "ok"
                   for m in report.metrics)

    @settings(max_examples=100, deadline=None)
    @given(
        base=st.floats(min_value=1.0, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
        bump=st.floats(min_value=0.2, max_value=10.0),
        sign=st.sampled_from([1.0, -1.0]),
    )
    def test_perturbation_beyond_tolerance_is_always_drift(
            self, base, bump, sign):
        # delta/(1+delta) >= 0.2/1.2 > the 5% deterministic tolerance,
        # in either direction, for any magnitude above the floor.
        current = base * (1.0 + sign * bump) if sign > 0 else base / (1.0 + bump)
        report = compute_drift(
            {"counters.shed": base}, {"counters.shed": current}
        )
        assert report.verdict == "drift"
        assert report.worst is not None
        assert report.worst.metric == "counters.shed"

    def test_boundary_is_ok_not_drift(self):
        # rel_delta == rel_tol exactly: inside tolerance by definition
        # (strict >), so repeated comparison at the boundary cannot flap.
        cfg = DriftConfig(rel_tol=0.05, warn_fraction=1.0)
        report = compute_drift({"m": 100.0}, {"m": 95.0}, cfg)
        assert report.metrics[0].rel_delta == pytest.approx(0.05)
        assert report.verdict == "ok"

    def test_warn_band_between_ok_and_drift(self):
        cfg = DriftConfig(rel_tol=0.10, warn_fraction=0.5)
        assert compute_drift({"m": 100.0}, {"m": 96.0}, cfg).verdict == "ok"
        assert compute_drift({"m": 100.0}, {"m": 92.0}, cfg).verdict == "warn"
        assert compute_drift({"m": 100.0}, {"m": 85.0}, cfg).verdict == "drift"

    def test_noisy_metrics_get_wide_tolerance(self):
        assert is_noisy_metric("bench.detailed.quanta_per_s")
        assert not is_noisy_metric("sim.ipc")
        # 40% swing on a wall-clock rate: inside the noisy band.
        report = compute_drift(
            {"bench.x.quanta_per_s": 100.0}, {"bench.x.quanta_per_s": 60.0}
        )
        assert report.verdict != "drift"

    def test_missing_and_extra_are_warn_not_drift(self):
        report = compute_drift({"a": 1.0, "b": 2.0}, {"a": 1.0, "c": 3.0})
        assert report.verdict == "warn"
        assert report.missing == ["b"] and report.extra == ["c"]

    def test_overrides_and_ignore(self):
        cfg = DriftConfig(
            rel_tol=0.05,
            overrides={"counters.": 1.0, "counters.shed": 0.01},
            ignore=("fsck",),
        )
        assert cfg.tolerance_for("counters.shed") == 0.01   # exact beats prefix
        assert cfg.tolerance_for("counters.other") == 1.0   # longest prefix
        assert cfg.ignored("fsck.exit_code")
        report = compute_drift(
            {"fsck.exit_code": 0.0, "m": 1.0}, {"fsck.exit_code": 1.0, "m": 1.0},
            cfg,
        )
        assert report.ok and len(report.metrics) == 1

    def test_report_dict_is_deterministic(self):
        a = make_profile(metrics={"m": 1.0, "n": 5.0})
        b = make_profile(metrics={"m": 1.3, "n": 5.0}, label="other")
        one = json.dumps(compute_drift(a, b).to_dict(), sort_keys=True)
        two = json.dumps(compute_drift(a, b).to_dict(), sort_keys=True)
        assert one == two


# -- the guard ----------------------------------------------------------------
def feed(guard, now, submitted, answered):
    guard.observe(now, {"submitted": submitted, "answered": answered})


class TestDriftGuard:
    def cfg(self, **kw):
        defaults = dict(window=8, min_submitted=4, warn_streak=2,
                        drift_streak=3, clear_streak=4, cooldown_s=0.0)
        defaults.update(kw)
        return DriftGuardConfig(**defaults)

    def test_requires_rate_metrics(self):
        with pytest.raises(ValueError):
            DriftGuard({"sim.ipc": 1.0})

    def test_escalates_on_sustained_drift_and_recovers(self):
        guard = DriftGuard(make_profile(), self.cfg(degrade_on_drift=True))
        now, sub, ans = 0.0, 0, 0
        for _ in range(10):  # matching behaviour: stays steady
            sub, ans = sub + 5, ans + 4  # ~0.9 within tolerance
            feed(guard, now, sub, ans)
            now += 1
        assert guard.level == 0 and guard.last_verdict == "ok"
        for _ in range(10):  # behaviour collapses: answered flatlines
            sub += 5
            feed(guard, now, sub, ans)
            now += 1
        assert guard.level == 2 and guard.state == "drifting"
        assert guard.degrade_active
        kinds = [e.kind for e in guard.take_events()]
        assert kinds == ["escalate", "escalate"]
        assert guard.take_events() == []  # drained
        for _ in range(30):  # recovery steps down one level at a time
            sub, ans = sub + 5, ans + 4
            feed(guard, now, sub, ans)
            now += 1
        assert guard.level == 0 and not guard.degrade_active
        assert guard.clears == 2

    def test_single_bad_window_never_escalates(self):
        guard = DriftGuard(make_profile(), self.cfg())
        now, sub, ans = 0.0, 0, 0
        for i in range(40):
            sub += 5
            # One drifting window in every warn_streak-sized stretch;
            # the ok observations in between reset the streaks.
            ans += 0 if i % 3 == 0 else 5
            feed(guard, now, sub, ans)
            now += 1
        assert guard.level == 0 and guard.escalations == 0

    def test_cooldown_throttles_level_changes(self):
        guard = DriftGuard(make_profile(), self.cfg(cooldown_s=100.0))
        now, sub, ans = 0.0, 0, 0
        for _ in range(30):
            sub += 5
            feed(guard, now, sub, ans)  # permanent drift
            now += 1
        # One escalation at most: the second is inside the cooldown.
        assert guard.level == 1 and guard.escalations == 1

    def test_schema_growth_is_not_drift(self):
        guard = DriftGuard(
            {"rate.answered": 1.0}, self.cfg()
        )
        now, sub = 0.0, 0
        for _ in range(10):
            sub += 5
            guard.observe(now, {
                "submitted": sub, "answered": sub,
                "brand_new_subsystem": {"metric": sub * 3},
            })
            now += 1
        assert guard.comparisons > 0 and guard.level == 0

    def test_on_escalate_hook_fires(self):
        seen = []
        guard = DriftGuard(make_profile(), self.cfg(),
                           on_escalate=seen.append)
        now, sub, ans = 0.0, 0, 0
        for _ in range(20):
            sub += 5
            feed(guard, now, sub, ans)
            now += 1
        assert seen and seen[0].kind == "escalate"
        assert guard.summary()["events"]


class TestGuardInService:
    def run_service(self, *, degrade_on_drift, n=30):
        clock = {"t": 0.0}
        svc = SimulationService(
            ServiceConfig(workers=0, queue_capacity=64),
            full_runner=lambda r: {"ipc": 1.0},
            fast_runner=lambda r: {"ipc": 0.5},
            clock=lambda: clock["t"],
        )
        # Baseline promises zero answering; the live service answers
        # everything, so every comparable window reads as drift.
        guard = DriftGuard(
            {"rate.answered": 0.0},
            DriftGuardConfig(window=6, min_submitted=2, warn_streak=1,
                             drift_streak=2, clear_streak=2, cooldown_s=0.0,
                             degrade_on_drift=degrade_on_drift),
        )
        svc.attach_drift_guard(guard)
        for i in range(n):
            svc.submit(SimRequest(request_id=f"r{i}", client="c", mix="mix05",
                                  mode="adts", quanta=4, warmup_quanta=1,
                                  seed=1))
            clock["t"] += 1.0
            svc.pump()
        svc.drain(5.0)
        # The completed stream is the single source of truth: immediate
        # dispositions land there too, so it alone proves conservation.
        return svc, guard, svc.take_completed()

    def test_escalation_telemetry_without_losing_requests(self):
        svc, guard, responses = self.run_service(degrade_on_drift=True)
        assert guard.escalations > 0  # the guard did fire...
        ids = [r.request_id for r in responses]
        assert len(ids) == 30 and len(set(ids)) == 30  # ...and cost nothing
        assert any(r.outcome == "degraded" and r.reason == "drift-guard"
                   for r in responses)
        behavior = svc.summary()["behavior"]
        assert behavior["guard"]["escalations"] == guard.escalations
        assert svc.stats()["drift_guard"]["state"] == guard.state

    def test_observe_only_guard_never_degrades(self):
        svc, guard, responses = self.run_service(degrade_on_drift=False)
        assert guard.escalations > 0
        assert not any(r.reason == "drift-guard" for r in responses)
        assert len(responses) == 30

    def test_serve_loop_emits_drift_events(self):
        lines = [
            json.dumps({"op": "submit", "request": {
                "request_id": f"r{i}", "mix": "mix05", "mode": "adts",
                "quanta": 4, "warmup_quanta": 1, "seed": 1}})
            for i in range(12)
        ]
        infile = io.StringIO("\n".join(lines) + "\n")
        outfile = io.StringIO()
        svc = SimulationService(
            ServiceConfig(workers=0, queue_capacity=64, poll_interval_s=0.001),
            full_runner=lambda r: {"ipc": 1.0},
            fast_runner=lambda r: {"ipc": 0.5},
        )
        svc.profile_label = "looptest"
        guard = DriftGuard(
            {"rate.answered": 0.0},  # absurd baseline: answering is drift
            DriftGuardConfig(window=4, min_submitted=1, warn_streak=1,
                             drift_streak=2, clear_streak=2, cooldown_s=0.0),
        )
        svc.attach_drift_guard(guard)
        # Escalate the guard before the loop starts (a StringIO feed hands
        # the whole burst to one iteration, so the in-loop window never
        # spans traffic); the loop must then drain the pending events.
        for t in range(6):
            guard.observe(float(t), {"submitted": 5 * (t + 1),
                                     "answered": 5 * (t + 1)})
        assert guard.escalations > 0
        assert ServeLoop(svc, infile=infile, outfile=outfile).run() == 0
        events = [json.loads(l) for l in outfile.getvalue().splitlines()]
        drift = [e for e in events if e["event"] == "drift"]
        assert drift and drift[0]["kind"] == "escalate"
        assert drift[0]["state"] in ("warning", "drifting")
        drained = next(e for e in events if e["event"] == "drained")
        assert drained["summary"]["behavior"]["profile_label"] == "looptest"
        assert drained["summary"]["behavior"]["guard"]["escalations"] >= 1
        assert len([e for e in events if e["event"] == "response"]) == 12


# -- storage integration ------------------------------------------------------
class TestProfileFsck:
    def test_healthy_store_and_pointer_ignored(self, tmp_path):
        store = ProfileStore(tmp_path)
        store.set_baseline(store.save(make_profile()))
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 0 and report.counts == {"healthy": 1}

    def test_crc_damage_is_quarantined(self, tmp_path):
        store = ProfileStore(tmp_path)
        pid = store.save(make_profile())
        path = tmp_path / f"{pid}.json"
        doc = json.loads(path.read_text())
        doc["metrics"]["sim.ipc"] = 99.0  # bytes no longer match the CRC
        path.write_text(json.dumps(doc, indent=2, sort_keys=True))
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 1 and report.counts.get("corrupt") == 1
        assert path.with_suffix(".json.corrupt").exists()

    def test_structural_damage_is_quarantined(self, tmp_path):
        from repro.storage import atomic_write_bytes, embed_json_artifact

        doc = embed_json_artifact(
            {"kind": "behaviour-profile", "label": "x", "source": "t",
             "metrics": {}, "identity": {}},  # no metrics: poison baseline
            "behaviour-profile", 1,
        )
        atomic_write_bytes(tmp_path / "empty.json",
                           json.dumps(doc).encode("utf-8"))
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 1 and report.counts.get("corrupt") == 1

    def test_plain_json_profile_is_migratable(self, tmp_path):
        (tmp_path / "legacy.json").write_text(
            json.dumps(make_profile().to_payload())
        )
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 0
        assert report.counts.get("migratable") == 1
        # and still loadable through the normal path
        assert load_profile(tmp_path / "legacy.json") == make_profile()


# -- offline gating -----------------------------------------------------------
class TestVerifyProfile:
    def save_pair(self, tmp_path, base_metrics, cur_metrics):
        store = ProfileStore(tmp_path)
        base = store.save(make_profile(metrics=base_metrics, label="base"))
        cur = store.save(make_profile(metrics=cur_metrics, label="cur"))
        return store.path_for(cur), store.path_for(base)

    def test_identical_profiles_pass(self, tmp_path):
        cur, base = self.save_pair(
            tmp_path, {"m": 1.0, "n": 2.0}, {"m": 1.0, "n": 2.0})
        report = verify_profile(cur, base)
        assert report.ok and report.files_compared == 1

    def test_drift_fails_with_metric_paths(self, tmp_path):
        cur, base = self.save_pair(
            tmp_path, {"counters.shed": 10.0}, {"counters.shed": 30.0})
        report = verify_profile(cur, base)
        assert not report.ok
        assert report.mismatches[0].path == "$.metrics.counters.shed"

    def test_missing_metric_fails_extra_does_not(self, tmp_path):
        cur, base = self.save_pair(
            tmp_path, {"m": 1.0, "gone": 5.0}, {"m": 1.0, "new": 7.0})
        report = verify_profile(cur, base)
        assert [m.kind for m in report.mismatches] == ["missing"]
        assert "gone" in report.mismatches[0].path

    def test_warn_only_fails_when_asked(self, tmp_path):
        cur, base = self.save_pair(tmp_path, {"m": 100.0}, {"m": 96.0})
        assert verify_profile(cur, base).ok
        assert not verify_profile(cur, base, fail_on_warn=True).ok

    def test_unloadable_side_is_reported_not_raised(self, tmp_path):
        cur, base = self.save_pair(tmp_path, {"m": 1.0}, {"m": 1.0})
        report = verify_profile(tmp_path / "absent.json", base)
        assert not report.ok and report.mismatches[0].kind == "missing"


# -- capture from live layers -------------------------------------------------
class TestCaptureHelpers:
    def test_profile_from_service_speaks_guard_namespace(self):
        svc = SimulationService(
            ServiceConfig(workers=0, queue_capacity=16),
            full_runner=lambda r: {"ipc": 1.0},
            fast_runner=lambda r: {"ipc": 0.5},
        )
        for i in range(6):
            svc.submit(SimRequest(
                request_id=f"r{i}", client="c", mix="mix05", mode="adts",
                quanta=4, warmup_quanta=1, seed=1))
            svc.pump()
        svc.drain(5.0)
        svc.take_completed()
        profile = profile_from_service(svc, "svc", seed=1)
        assert profile.metrics["submitted"] == 6.0
        assert 0.0 <= profile.metrics["rate.answered"] <= 1.0
        # A service profile can seed a guard directly.
        DriftGuard(profile)
        assert profile.identity["config_digest"]

    def test_profile_from_campaign_requires_contract(self):
        with pytest.raises(ValueError):
            profile_from_campaign({"no": "contract"}, "x")
