"""Tests for the fairness metrics."""

import pytest

from repro.analysis.fairness import (
    FairnessReport,
    fairness_report,
    hmean_speedup,
    jain_index,
    weighted_speedup,
)
from repro.smt.stats import SimStats


class TestJainIndex:
    def test_equal_shares_give_one(self):
        assert jain_index({0: 1.0, 1: 1.0, 2: 1.0}) == pytest.approx(1.0)

    def test_total_starvation_gives_one_over_n(self):
        assert jain_index({0: 1.0, 1: 0.0, 2: 0.0, 3: 0.0}) == pytest.approx(0.25)

    def test_empty_is_zero(self):
        assert jain_index({}) == 0.0
        assert jain_index({0: 0.0}) == 0.0

    def test_bounded(self):
        v = jain_index({0: 0.3, 1: 0.5, 2: 0.1})
        assert 1 / 3 <= v <= 1.0


class TestSpeedups:
    BASE = {0: 1.0, 1: 2.0}

    def test_weighted_speedup(self):
        assert weighted_speedup({0: 0.5, 1: 1.0}, self.BASE) == pytest.approx(1.0)

    def test_hmean_equal_speedups(self):
        assert hmean_speedup({0: 0.5, 1: 1.0}, self.BASE) == pytest.approx(0.5)

    def test_hmean_penalizes_imbalance(self):
        balanced = hmean_speedup({0: 0.5, 1: 1.0}, self.BASE)  # 0.5, 0.5
        skewed = hmean_speedup({0: 0.9, 1: 0.2}, self.BASE)  # 0.9, 0.1
        assert skewed < balanced

    def test_missing_baselines_skipped(self):
        assert weighted_speedup({0: 1.0, 5: 1.0}, self.BASE) == pytest.approx(1.0)

    def test_zero_thread_kills_hmean(self):
        assert hmean_speedup({0: 0.0, 1: 1.0}, self.BASE) == 0.0

    def test_empty(self):
        assert hmean_speedup({}, {}) == 0.0


class TestFairnessReport:
    def test_from_stats_without_baselines(self):
        stats = SimStats(cycles=100, committed=150,
                         per_thread_committed={0: 100, 1: 50})
        rep = fairness_report(stats)
        assert rep.aggregate_ipc == pytest.approx(1.5)
        assert 0.5 < rep.jain <= 1.0
        assert rep.weighted_speedup is None

    def test_with_baselines(self):
        stats = SimStats(cycles=100, committed=150,
                         per_thread_committed={0: 100, 1: 50})
        rep = fairness_report(stats, {0: 2.0, 1: 1.0})
        assert rep.weighted_speedup == pytest.approx(1.0)
        assert rep.hmean_speedup == pytest.approx(0.5)
        assert rep.as_dict()["jain"] == rep.jain

    def test_integration_with_real_run(self, quick_proc):
        proc = quick_proc()
        proc.run(3000)
        rep = fairness_report(proc.stats)
        assert 0.0 < rep.jain <= 1.0
        assert rep.aggregate_ipc > 0
