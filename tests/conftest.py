"""Shared fixtures: small machines and quick processor builders.

Pipeline tests run on reduced configurations (2–4 threads, small caches,
short quanta) so the suite stays fast while still exercising every
mechanism; full-size behaviour is covered by the benchmarks.
"""

from __future__ import annotations

import pytest

from repro import build_processor
from repro.memory.hierarchy import HierarchyConfig
from repro.memory.cache import CacheConfig
from repro.smt.config import SMTConfig


@pytest.fixture
def small_hierarchy() -> HierarchyConfig:
    """A tiny hierarchy whose capacity effects show up within a few
    thousand accesses."""
    return HierarchyConfig(
        l1i=CacheConfig(4 * 1024, 64, 2, "l1i"),
        l1d=CacheConfig(4 * 1024, 64, 2, "l1d"),
        l2=CacheConfig(64 * 1024, 64, 4, "l2"),
        l2_latency=8,
        mem_latency=40,
        mshr_entries=8,
    )


@pytest.fixture
def small_config(small_hierarchy) -> SMTConfig:
    return SMTConfig(
        num_threads=4,
        int_iq_entries=24,
        fp_iq_entries=24,
        lsq_entries=16,
        rob_entries_per_thread=32,
        fetch_buffer_entries=16,
        hierarchy=small_hierarchy,
    )


@pytest.fixture
def quick_proc(small_config):
    """4-thread processor on a small mixed workload, 512-cycle quanta."""

    def build(mix=("gzip", "crafty", "swim", "mcf"), policy="icount", hook=None, seed=1):
        return build_processor(
            mix=list(mix),
            config=small_config,
            policy=policy,
            hook=hook,
            seed=seed,
            quantum_cycles=512,
        )

    return build


def assert_counter_consistency(proc) -> None:
    """The live occupancy counters must match the physical structures."""
    for ctx in proc.contexts:
        tc = proc.counters[ctx.tid]
        assert tc.front_end == len(proc.front_q[ctx.tid]), f"front_end t{ctx.tid}"
        assert tc.rob == len(ctx.rob), f"rob t{ctx.tid}"
        assert tc.lsq == proc.lsq.occupancy_of(ctx.tid), f"lsq t{ctx.tid}"
        assert tc.iq_int == proc.iq_int.occupancy_of(ctx.tid), f"iq_int t{ctx.tid}"
        assert tc.iq_fp == proc.iq_fp.occupancy_of(ctx.tid), f"iq_fp t{ctx.tid}"
        assert tc.front_end >= 0 and tc.rob >= 0 and tc.lsq >= 0
        assert tc.in_flight_branches >= 0
        assert tc.in_flight_loads >= 0
        assert tc.in_flight_mem >= 0
    total_front = sum(len(q) for q in proc.front_q)
    assert proc._front_total == total_front
    # Rename-register pool: attribution sums to usage; never over capacity.
    held = sum(proc.regs.occupancy_of(ctx.tid) for ctx in proc.contexts)
    assert held == proc.regs.in_use
    assert 0 <= proc.regs.in_use <= proc.regs.capacity
