"""Tests for the data-address generator."""

import numpy as np
import pytest

from repro.workloads.addrgen import DataAddressGenerator, _THREAD_REGION
from repro.workloads.profiles import get_profile


def gen(name="gzip", tid=0, seed=0):
    return DataAddressGenerator(get_profile(name), tid, np.random.default_rng(seed))


class TestAddressRanges:
    def test_addresses_stay_in_thread_region(self):
        for tid in (0, 3, 7):
            g = gen("mcf", tid=tid)
            for _ in range(2000):
                addr = g.next_address()
                assert tid * _THREAD_REGION <= addr < (tid + 1) * _THREAD_REGION

    def test_two_threads_disjoint(self):
        g0, g1 = gen(tid=0), gen(tid=1)
        a0 = {g0.next_address() >> 6 for _ in range(500)}
        a1 = {g1.next_address() >> 6 for _ in range(500)}
        assert not (a0 & a1)

    def test_determinism(self):
        a = [gen(seed=5).next_address() for _ in range(1)]
        g1, g2 = gen(seed=5), gen(seed=5)
        assert [g1.next_address() for _ in range(200)] == [g2.next_address() for _ in range(200)]

    def test_seeds_differ(self):
        g1, g2 = gen(seed=1), gen(seed=2)
        s1 = [g1.next_address() for _ in range(100)]
        s2 = [g2.next_address() for _ in range(100)]
        assert s1 != s2


class TestLocalityStructure:
    def test_high_locality_profile_has_high_line_reuse(self):
        g = gen("gzip")  # hot_fraction 0.85
        lines = [g.next_address() >> 6 for _ in range(4000)]
        assert len(set(lines)) / len(lines) < 0.35, "gzip stream should reuse lines heavily"

    def test_memory_bound_profile_has_low_reuse(self):
        g = gen("mcf")  # hot_fraction 0.35, 64MB footprint
        lines = [g.next_address() >> 6 for _ in range(4000)]
        g2 = gen("gzip")
        lines2 = [g2.next_address() >> 6 for _ in range(4000)]
        assert len(set(lines)) > 2 * len(set(lines2))

    def test_streaming_profile_walks_sequentially(self):
        g = gen("swim")  # stream_fraction 0.55
        addrs = [g.next_address() for _ in range(2000)]
        diffs = [b - a for a, b in zip(addrs, addrs[1:])]
        # The word-granular stream stride must be the most common step.
        assert diffs.count(8) > len(diffs) * 0.2

    def test_footprint_bound_respected_by_cold_accesses(self):
        g = gen("gzip")  # 180 KB footprint
        top = max(g.next_address() for _ in range(5000))
        assert top < g.base + 16 * 1024 * 1024 + g.footprint_bytes + 1

    def test_cold_share_grows_with_memory_boundness(self):
        assert gen("mcf")._cold_share() > gen("gzip")._cold_share()


class TestPhaseScaling:
    def test_phase_scale_expands_footprint(self):
        g = gen("gzip")
        before = g.footprint_bytes
        g.set_phase_scale(3.0)
        assert g.footprint_bytes == 3 * before

    def test_phase_scale_floor(self):
        g = gen("gzip")
        g.set_phase_scale(0.0)
        assert g.footprint_scale == pytest.approx(0.1)

    def test_accesses_counter(self):
        g = gen()
        for _ in range(17):
            g.next_address()
        assert g.accesses == 17
