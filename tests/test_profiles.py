"""Tests for the application-profile tables."""

import pytest

from repro.workloads.profiles import (
    PROFILES,
    ApplicationProfile,
    PhaseProfile,
    get_profile,
)


class TestProfileTable:
    def test_has_both_suites(self):
        suites = {p.suite for p in PROFILES.values()}
        assert suites == {"int", "fp"}

    def test_at_least_eighteen_profiles(self):
        assert len(PROFILES) >= 18

    def test_canonical_spec2000_names_present(self):
        for name in ["gzip", "gcc", "mcf", "crafty", "vortex", "bzip2",
                     "swim", "mgrid", "applu", "art", "equake", "ammp"]:
            assert name in PROFILES

    def test_get_profile_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown application"):
            get_profile("nonexistent")

    def test_all_profiles_internally_consistent(self):
        for p in PROFILES.values():
            assert 0 < p.branch_frac <= 0.5
            assert p.load_frac + p.store_frac < 0.9
            assert 0 <= p.mispredict_target <= 0.5
            assert p.hot_kb <= p.footprint_kb or p.footprint_kb < p.hot_kb  # trivially true; hot capped in addrgen
            for phase in p.phases:
                assert phase.weight > 0
                assert phase.mean_length > 0

    def test_mcf_is_memory_bound(self):
        assert get_profile("mcf").memory_bound

    def test_gzip_is_not_memory_bound(self):
        assert not get_profile("gzip").memory_bound

    def test_crafty_is_control_intensive(self):
        assert get_profile("crafty").control_intensive

    def test_swim_is_not_control_intensive(self):
        assert not get_profile("swim").control_intensive

    def test_ipc_classes_cover_all_three(self):
        classes = {p.ipc_class for p in PROFILES.values()}
        assert classes == {"high", "med", "low"}


class TestProfileValidation:
    def kwargs(self, **over):
        base = dict(name="x", suite="int", ipc_class="med", footprint_kb=100)
        base.update(over)
        return base

    def test_bad_suite(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(suite="vector"))

    def test_bad_ipc_class(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(ipc_class="ultra"))

    def test_bad_footprint(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(footprint_kb=0))

    def test_bad_block_length(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(avg_block=1))

    def test_bad_memory_fraction(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(load_frac=0.8, store_frac=0.3))

    def test_bad_mispredict_target(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(mispredict_target=0.7))

    def test_bad_dep_mean(self):
        with pytest.raises(ValueError):
            ApplicationProfile(**self.kwargs(dep_mean=0.5))


class TestPhaseProfile:
    def test_defaults_are_neutral(self):
        ph = PhaseProfile()
        assert ph.mispredict_scale == 1.0
        assert ph.footprint_scale == 1.0
        assert ph.load_scale == 1.0
        assert ph.dep_scale == 1.0

    def test_storm_phases_exist_in_branchy_profiles(self):
        gcc = get_profile("gcc")
        scales = [ph.mispredict_scale for ph in gcc.phases]
        assert max(scales) > 1.5, "gcc should have a misprediction-storm phase"

    def test_memory_phases_exist_in_two_phase_profiles(self):
        gzip = get_profile("gzip")
        scales = [ph.footprint_scale for ph in gzip.phases]
        assert max(scales) > 1.5
