"""Tests for mid-run simulator checkpointing (repro.smt.checkpoint).

The headline property: run-to-quantum-k → snapshot → restore → run-to-end
is bit-identical to an uninterrupted run — same RunResult, same decision
log, same RNG streams — for every scheduler mode, including under an
active fault plan.
"""

import pickle

import pytest

from repro import build_processor
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultPlan
from repro.harness.runner import RunConfig, run_adts, run_fixed
from repro.smt.checkpoint import (
    CheckpointError,
    CheckpointPlan,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def tiny(**over):
    base = dict(mix="mix05", num_threads=8, quantum_cycles=512,
                quanta=5, warmup_quanta=2, seed=0)
    base.update(over)
    return RunConfig(**base)


class _StopAt(Exception):
    pass


def _interrupt(cfg, k, snap_path, **adts_kw):
    """Run with per-quantum checkpoints and abort after quantum k, leaving
    the snapshot of quantum k on disk (a simulated crash)."""
    plan = CheckpointPlan(path=snap_path, every_quanta=1)

    def bomb(done):
        if done == k:
            raise _StopAt

    with pytest.raises(_StopAt):
        run_adts(cfg, checkpoint=plan, progress=bomb, **adts_kw)
    assert snap_path.exists()
    return plan


class TestResumeEquivalence:
    """Interrupted-and-resumed runs must be bit-identical to clean runs."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("heuristic", ["type1", "type3"])
    def test_adts_resume_bit_identical(self, tmp_path, seed, heuristic):
        cfg = tiny(seed=seed)
        th = ThresholdConfig(ipc_threshold=2.0)
        clean = run_adts(cfg, heuristic=heuristic, thresholds=th)
        snap = tmp_path / "run.snap"
        plan = _interrupt(cfg, 3, snap, heuristic=heuristic, thresholds=th)
        resumed = run_adts(cfg, heuristic=heuristic, thresholds=th, checkpoint=plan)
        assert resumed.ipc == clean.ipc
        assert resumed.committed == clean.committed
        assert resumed.cycles == clean.cycles
        assert resumed.quantum_ipcs == clean.quantum_ipcs
        assert resumed.scheduler == clean.scheduler  # switches, decisions, ...
        assert not snap.exists()  # discarded after the clean finish

    def test_adts_resume_under_fault_plan(self, tmp_path):
        """The fault RNG stream is part of the snapshot: a resumed faulty
        run injects the exact same faults as an uninterrupted one."""
        cfg = tiny(seed=5)
        th = ThresholdConfig(ipc_threshold=2.0)
        plan = FaultPlan.storm(seed=9, rate=0.4)
        clean = run_adts(cfg, thresholds=th, fault_plan=plan)
        assert clean.scheduler.get("faults_injected", 0) > 0  # storm was live
        snap = tmp_path / "faulty.snap"
        ck = _interrupt(cfg, 3, snap, thresholds=th, fault_plan=plan)
        resumed = run_adts(cfg, thresholds=th, fault_plan=plan, checkpoint=ck)
        assert resumed.ipc == clean.ipc
        assert resumed.scheduler == clean.scheduler

    def test_fixed_resume_bit_identical(self, tmp_path):
        cfg = tiny(seed=2, policy="icount")
        clean = run_fixed(cfg)
        snap = tmp_path / "fixed.snap"
        plan = CheckpointPlan(path=snap, every_quanta=1)

        def bomb(done):
            if done == 4:
                raise _StopAt

        with pytest.raises(_StopAt):
            run_fixed(cfg, checkpoint=plan, progress=bomb)
        resumed = run_fixed(cfg, checkpoint=plan)
        assert resumed.ipc == clean.ipc
        assert resumed.quantum_ipcs == clean.quantum_ipcs

    def test_stepped_equals_bulk_without_checkpointing(self):
        """The quantum-stepped measure loop (used whenever progress or
        checkpointing is on) is itself result-preserving."""
        cfg = tiny(seed=7)
        th = ThresholdConfig(ipc_threshold=2.0)
        bulk = run_adts(cfg, thresholds=th)
        beats = []
        stepped = run_adts(cfg, thresholds=th, progress=beats.append)
        assert stepped.ipc == bulk.ipc
        assert stepped.quantum_ipcs == bulk.quantum_ipcs
        assert beats == list(range(1, cfg.total_quanta() + 1))

    def test_keep_on_success_preserves_final_snapshot(self, tmp_path):
        cfg = tiny()
        snap = tmp_path / "keep.snap"
        plan = CheckpointPlan(path=snap, every_quanta=1, keep_on_success=True)
        run_adts(cfg, checkpoint=plan)
        assert snap.exists()


class TestSnapshotFormat:
    def _proc_at_boundary(self):
        proc = build_processor(mix="mix02", seed=1, quantum_cycles=256)
        proc.run_quanta(2)
        return proc

    def test_save_requires_quantum_boundary(self, tmp_path):
        proc = build_processor(mix="mix02", seed=1, quantum_cycles=256)
        proc.run(100)  # mid-quantum
        with pytest.raises(CheckpointError):
            save_checkpoint(tmp_path / "x.snap", proc)

    def test_roundtrip_restores_identical_state(self, tmp_path):
        proc = self._proc_at_boundary()
        fp = proc.fingerprint()
        save_checkpoint(tmp_path / "s.snap", proc, meta={"k": "v"})
        snap = load_checkpoint(tmp_path / "s.snap", expect_meta={"k": "v"})
        assert snap.processor.fingerprint() == fp
        assert snap.quantum_index == proc.quantum_index
        assert snap.cycle == proc.now

    def test_restored_processor_diverges_identically(self, tmp_path):
        """Advancing the restored copy matches advancing the original."""
        proc = self._proc_at_boundary()
        save_checkpoint(tmp_path / "s.snap", proc)
        twin = load_checkpoint(tmp_path / "s.snap").processor
        proc.run_quanta(2)
        twin.run_quanta(2)
        assert twin.fingerprint() == proc.fingerprint()

    def test_meta_mismatch_rejected(self, tmp_path):
        proc = self._proc_at_boundary()
        save_checkpoint(tmp_path / "s.snap", proc, meta={"run_key": "A"})
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "s.snap", expect_meta={"run_key": "B"})

    def test_truncated_file_rejected(self, tmp_path):
        proc = self._proc_at_boundary()
        path = tmp_path / "s.snap"
        save_checkpoint(path, proc)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_corrupted_payload_rejected_by_crc(self, tmp_path):
        proc = self._proc_at_boundary()
        path = tmp_path / "s.snap"
        save_checkpoint(path, proc)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # flip one payload bit; length still matches
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "s.snap"
        path.write_bytes(b"NOT-A-SNAPSHOT-FILE" + b"\0" * 64)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "absent.snap")

    def test_discard_is_idempotent(self, tmp_path):
        proc = self._proc_at_boundary()
        path = tmp_path / "s.snap"
        save_checkpoint(path, proc)
        discard_checkpoint(path)
        assert not path.exists()
        discard_checkpoint(path)  # no error on repeat

    def test_no_temp_file_left_behind(self, tmp_path):
        proc = self._proc_at_boundary()
        save_checkpoint(tmp_path / "s.snap", proc)
        leftovers = [p for p in tmp_path.iterdir() if p.name != "s.snap"]
        assert leftovers == []

    def test_processor_with_queued_detector_work_pickles(self):
        """ADTS queues detector tasks whose callbacks must stay picklable
        (a lambda there would make every quantum-boundary snapshot fail)."""
        from repro.core.adts import ADTSController

        ctrl = ADTSController(heuristic="type3",
                              thresholds=ThresholdConfig(ipc_threshold=2.0))
        proc = build_processor(mix="mix05", seed=0, hook=ctrl, quantum_cycles=256)
        proc.run_quanta(3)
        blob = pickle.dumps({"proc": proc, "ctrl": ctrl})
        assert pickle.loads(blob)["proc"].now == proc.now
