"""Tests for fast-model calibration utilities."""

import pytest

from repro.fastmodel.calibrate import (
    DEFAULT_CONSTANTS,
    CalibrationConstants,
    calibrate_against_detailed,
)


class TestCalibrationConstants:
    def test_defaults_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_CONSTANTS.base_cpi = 2.0

    def test_policy_bases_ordered(self):
        c = DEFAULT_CONSTANTS
        # ICOUNT is the best general allocator; RR the worst.
        assert c.icount_base > c.brcount_base
        assert c.icount_base > c.l1miss_base
        assert c.rr_base < min(c.brcount_base, c.l1miss_base)

    def test_storm_deltas_have_opposite_signs(self):
        c = DEFAULT_CONSTANTS
        assert c.icount_storm_delta < 0 < c.brcount_storm_delta

    def test_mem_deltas_have_opposite_signs(self):
        c = DEFAULT_CONSTANTS
        assert c.icount_mem_delta < 0 < c.l1miss_mem_delta


class TestCalibrateAgainstDetailed:
    def test_refit_moves_bandwidth_toward_detailed(self):
        # Tiny configuration: two mixes, few quanta — this is a smoke test
        # of the fitting path, not a quality check.
        fitted = calibrate_against_detailed(
            mixes=("mix09",), quanta=4, quantum_cycles=512
        )
        assert isinstance(fitted, CalibrationConstants)
        assert fitted.fetch_bandwidth > 0
        # Only the bandwidth is refit.
        assert fitted.base_cpi == DEFAULT_CONSTANTS.base_cpi

    def test_identity_when_already_matched(self):
        # Feeding the fast model's own output as the target would give a
        # ratio of ~1; we approximate by checking the refit is bounded.
        fitted = calibrate_against_detailed(
            mixes=("mix09",), quanta=4, quantum_cycles=512
        )
        assert 0.2 < fitted.fetch_bandwidth / DEFAULT_CONSTANTS.fetch_bandwidth < 5.0
