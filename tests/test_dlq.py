"""The poison-pill dead-letter queue: strikes, parking, refusal, ops.

Headline guarantees:

* an identity that keeps killing the full engine is parked after the
  configured number of strikes — gathered across retries AND shards —
  with a durable artifact recording the refusal reason and the full
  attempt history;
* from the moment of parking, the front door answers that identity with
  an immediate machine-readable ``dlq-parked:<kind>`` refusal — no
  worker is burned, no waiter hangs;
* parking survives restarts (the next front door re-adopts the entries),
  and ``repro dlq list|retry|purge`` manages the queue from the CLI.
"""

import json

import pytest

from repro.harness.cli import main
from repro.service import (
    DeadLetterQueue,
    ServiceConfig,
    ShardedService,
    SimRequest,
    VirtualClock,
)
from repro.service.identity import request_identity


def req(i, *, seed=13, client="c", **kw):
    defaults = dict(
        request_id=f"p{i}", client=client, mix="mix05", mode="adts",
        quanta=5, warmup_quanta=1, seed=seed, degradable=False,
    )
    defaults.update(kw)
    return SimRequest(**defaults)


def poison_runner(request):
    if request.seed == 13:
        raise RuntimeError("deterministic engine bug")
    return {"ipc": 1.0 + request.seed, "switches": request.seed}


def make_front(tmp_path, clock, *, threshold=3, shards=2, **front_kw):
    return ShardedService(
        ServiceConfig(workers=0, queue_capacity=64, max_attempts=1,
                      breaker_failures=10),
        shards=shards,
        store=tmp_path / "rs",
        full_runner=poison_runner,
        fast_runner=poison_runner,
        clock=clock,
        dlq_threshold=threshold,
        **front_kw,
    )


def settle(front, clock, budget_s=60.0):
    deadline = clock() + budget_s
    while front.pending > 0:
        front.pump()
        clock.advance(0.01)
        assert clock() < deadline, "front-door failed to go idle (hang)"
    return front.take_completed()


class TestParking:
    def test_threshold_parks_and_refuses_machine_readably(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        responses = []
        for i in range(6):
            front.submit(req(i))
            responses.extend(settle(front, clock))
        outcomes = [(r.outcome, r.reason) for r in responses]
        assert outcomes[:3] == [
            ("failed", "exception: RuntimeError('deterministic engine bug')")
        ] * 3
        for outcome, reason in outcomes[3:]:
            assert outcome == "rejected"
            assert reason == "dlq-parked:exception"
        assert front.counters["dlq_strikes"] == 3
        assert front.counters["dlq_parked"] == 1
        assert front.counters["dlq_refused"] == 3
        entry = front.dlq.entries()[0]
        assert entry["identity"] == request_identity(req(0))
        assert entry["reason"] == "exception"
        assert len(entry["attempts"]) >= 3
        kinds = {a["kind"] for a in entry["attempts"] if "kind" in a}
        assert kinds == {"exception"}

    def test_strikes_accumulate_across_shards(self, tmp_path):
        """Coalesced waiters promote onto the NEXT shard after a failed
        leader, so the strike history shows more than one shard — the
        evidence that the identity, not one sick host, is at fault."""
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        front.paused = True
        for i in range(4):  # one leader + three waiters, same identity
            front.submit(req(i))
        front.paused = False
        responses = settle(front, clock)
        assert front.counters["dlq_parked"] == 1
        entry = front.dlq.entries()[0]
        shards_hit = {a["shard"] for a in entry["attempts"] if "shard" in a}
        assert len(shards_hit) > 1
        # The waiter left at parking time was refused, not stranded.
        assert len(responses) == 4
        assert {r.outcome for r in responses} == {"failed"}
        parked_refusals = [r for r in responses
                           if r.reason == "coalesced:dlq-parked:exception"]
        assert parked_refusals

    def test_healthy_identities_are_never_struck(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        for i in range(5):
            front.submit(req(i, seed=i))  # seed != 13: healthy
        out = settle(front, clock)
        assert {r.outcome for r in out} == {"full"}
        assert front.counters["dlq_strikes"] == 0
        assert len(front.dlq) == 0

    def test_parking_survives_restart(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        for i in range(3):
            front.submit(req(i))
            settle(front, clock)
        assert front.counters["dlq_parked"] == 1
        # A fresh front door over the same store re-adopts the entry.
        clock2 = VirtualClock()
        front2 = make_front(tmp_path, clock2)
        front2.submit(req(9))
        out = settle(front2, clock2)
        assert out[0].outcome == "rejected"
        assert out[0].reason == "dlq-parked:exception"
        assert front2.counters["simulations"] == 0

    def test_retry_unparks_for_the_next_submission(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        for i in range(3):
            front.submit(req(i))
            settle(front, clock)
        digest = request_identity(req(0))
        assert front.dlq.retry(digest) is True
        assert front.dlq.retry(digest) is False  # idempotent miss
        front.submit(req(9))
        out = settle(front, clock)
        assert out[0].outcome == "failed"  # simulated again (and failed)
        assert front.counters["simulations"] == 4


class TestQueueObject:
    def test_in_memory_queue_without_root(self):
        dlq = DeadLetterQueue(None)
        assert dlq.park("d1", {"mix": "mix05"}, "crash", [{"kind": "crash"}])
        assert not dlq.park("d1", {}, "crash", [])  # already parked
        assert dlq.is_parked("d1")
        assert dlq.refusal_reason("d1") == "dlq-parked:crash"
        assert dlq.refusal_reason("unknown") == "dlq-parked"
        assert dlq.purge() == 1
        assert len(dlq) == 0

    def test_entries_are_digest_sorted(self, tmp_path):
        dlq = DeadLetterQueue(tmp_path / "dlq")
        for d in ("bbb", "aaa", "ccc"):
            dlq.park(d, {}, "timeout", [])
        assert [e["identity"] for e in dlq.entries()] == ["aaa", "bbb", "ccc"]

    def test_unreadable_entry_is_skipped_on_load(self, tmp_path):
        root = tmp_path / "dlq"
        dlq = DeadLetterQueue(root)
        dlq.park("good", {}, "crash", [])
        (root / "bad.json").write_text("{not json", encoding="utf-8")
        again = DeadLetterQueue(root)
        assert again.is_parked("good")
        assert len(again) == 1


class TestCli:
    def _park_one(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        for i in range(3):
            front.submit(req(i))
            settle(front, clock)
        return request_identity(req(0))

    def test_list_retry_purge_roundtrip(self, tmp_path, capsys):
        digest = self._park_one(tmp_path)
        store = str(tmp_path / "rs")
        assert main(["dlq", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert digest in out and "exception" in out

        assert main(["dlq", "list", "--store", store, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"][0]["identity"] == digest

        assert main(["dlq", "retry", digest, "--store", store]) == 0
        capsys.readouterr()
        assert main(["dlq", "retry", digest, "--store", store]) == 1
        capsys.readouterr()

        self._park_one(tmp_path)  # park it again (fresh tree state is fine)
        assert main(["dlq", "purge", "--store", store]) == 0
        assert "purged 1" in capsys.readouterr().out
        assert main(["dlq", "list", "--store", store]) == 0
        assert "dlq empty" in capsys.readouterr().out

    def test_retry_without_digest_is_usage_error(self, tmp_path, capsys):
        assert main(["dlq", "retry", "--store", str(tmp_path / "rs")]) == 2
