"""Unit tests for the MSHR file."""

import pytest

from repro.memory.mshr import MSHRFile


class TestMSHR:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(0)

    def test_allocate_and_lookup(self):
        m = MSHRFile(4)
        m.allocate(10, complete_cycle=100)
        assert m.lookup(10) == 100
        assert m.lookup(11) == -1
        assert len(m) == 1

    def test_coalescing_returns_existing_completion(self):
        m = MSHRFile(4)
        m.allocate(10, 100)
        assert m.allocate(10, 150) == 100
        assert m.coalesced == 1
        assert len(m) == 1

    def test_full_raises_and_counts(self):
        m = MSHRFile(2)
        m.allocate(1, 10)
        m.allocate(2, 10)
        assert m.full
        with pytest.raises(RuntimeError):
            m.allocate(3, 10)
        assert m.full_stalls == 1

    def test_full_still_coalesces_existing_line(self):
        m = MSHRFile(2)
        m.allocate(1, 10)
        m.allocate(2, 20)
        assert m.allocate(1, 99) == 10  # no new entry needed

    def test_retire_ready_frees_entries(self):
        m = MSHRFile(4)
        m.allocate(1, 10)
        m.allocate(2, 20)
        done = m.retire_ready(15)
        assert done == [1]
        assert len(m) == 1
        assert m.lookup(1) == -1

    def test_retire_boundary_inclusive(self):
        m = MSHRFile(4)
        m.allocate(1, 10)
        assert m.retire_ready(10) == [1]

    def test_reset(self):
        m = MSHRFile(2)
        m.allocate(1, 10)
        try:
            m.allocate(2, 10)
            m.allocate(3, 10)
        except RuntimeError:
            pass
        m.reset()
        assert len(m) == 0
        assert m.allocations == 0
        assert m.coalesced == 0
        assert m.full_stalls == 0
