"""Tests for the switching history buffer and quality ledger."""

import pytest

from repro.core.history import (
    HistoryEntry,
    SwitchEvent,
    SwitchHistoryBuffer,
    SwitchQualityLedger,
)


class TestHistoryEntry:
    def test_favourable_requires_strict_majority(self):
        e = HistoryEntry()
        assert not e.favourable  # 0 == 0
        e.poscnt = 1
        assert e.favourable
        e.negcnt = 1
        assert not e.favourable


class TestSwitchHistoryBuffer:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            SwitchHistoryBuffer(0)

    def test_lookup_creates_entry(self):
        b = SwitchHistoryBuffer()
        e = b.lookup(("icount", True, False))
        assert e.poscnt == 0 and e.negcnt == 0
        assert len(b) == 1

    def test_lookup_returns_same_entry(self):
        b = SwitchHistoryBuffer()
        key = ("icount", True, False)
        assert b.lookup(key) is b.lookup(key)

    def test_outcome_credits_pending_case(self):
        b = SwitchHistoryBuffer()
        key = ("icount", False, True)
        b.note_switch(key)
        b.record_outcome(True)
        assert b.lookup(key).poscnt == 1
        b.note_switch(key)
        b.record_outcome(False)
        assert b.lookup(key).negcnt == 1

    def test_outcome_without_pending_is_noop(self):
        b = SwitchHistoryBuffer()
        b.record_outcome(True)
        assert len(b) == 0

    def test_outcome_consumed_once(self):
        b = SwitchHistoryBuffer()
        key = ("x", True, True)
        b.note_switch(key)
        b.record_outcome(True)
        b.record_outcome(True)
        assert b.lookup(key).poscnt == 1

    def test_capacity_bounded(self):
        b = SwitchHistoryBuffer(capacity=4)
        for i in range(10):
            b.lookup((f"p{i}", False, False))
        assert len(b) <= 4


class TestSwitchEvent:
    def test_benign_none_until_judged(self):
        e = SwitchEvent(0, "icount", "brcount", ipc_before=1.0)
        assert e.benign is None
        e.ipc_after = 1.2
        assert e.benign is True
        e.ipc_after = 0.8
        assert e.benign is False

    def test_equal_ipc_is_not_benign(self):
        e = SwitchEvent(0, "a", "b", ipc_before=1.0, ipc_after=1.0)
        assert e.benign is False


class TestSwitchQualityLedger:
    def test_counts(self):
        led = SwitchQualityLedger()
        led.record_switch(0, "icount", "brcount", 1.0)
        led.record_quantum_ipc(1.5)  # benign
        led.record_switch(1, "brcount", "icount", 1.5)
        led.record_quantum_ipc(1.0)  # malignant
        assert led.num_switches == 2
        assert led.num_benign == 1
        assert led.num_malignant == 1
        assert led.benign_probability == pytest.approx(0.5)

    def test_quantum_ipc_without_open_switch_ignored(self):
        led = SwitchQualityLedger()
        led.record_quantum_ipc(2.0)
        assert led.num_switches == 0

    def test_unjudged_switch_excluded_from_probability(self):
        led = SwitchQualityLedger()
        led.record_switch(0, "a", "b", 1.0)
        assert led.benign_probability == 0.0  # nothing judged yet

    def test_only_first_quantum_after_switch_judges(self):
        led = SwitchQualityLedger()
        led.record_switch(0, "a", "b", 1.0)
        led.record_quantum_ipc(2.0)
        led.record_quantum_ipc(0.1)  # must not re-judge
        assert led.num_benign == 1 and led.num_malignant == 0
