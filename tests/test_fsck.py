"""`repro fsck`: classification, repair, quarantine, exit-code contract.

The invariants pinned here: a dry run never touches disk; a repair run
converges (a second pass over the same tree finds nothing left to do);
repairs never lose data that validated (journal salvage keeps every intact
record, migrations preserve payload bytes); and the exit code is non-zero
exactly when something was quarantined.
"""

import io
import json

import numpy as np
import pytest

from repro.harness.cli import main
from repro.harness.journal import RunJournal, _entry_crc
from repro.smt.checkpoint import MAGIC as SNAP_MAGIC
from repro.smt.checkpoint import _V1_HEADER
from repro.storage import fsck_file, fsck_tree, write_artifact
from repro.workloads.tracecache import _COLUMNS, TRACE_FORMAT, TRACE_FORMAT_VERSION
import zlib


def _crc_line(key, payload):
    return json.dumps({"key": key, "payload": payload, "crc": _entry_crc(key, payload)})


def _legacy_v1_snapshot(payload=b"not-a-real-pickle"):
    """A well-formed legacy (pre-envelope) v1 checkpoint frame."""
    return _V1_HEADER.pack(SNAP_MAGIC, 1, len(payload), zlib.crc32(payload)) + payload


def _legacy_npz():
    buf = io.BytesIO()
    np.savez_compressed(buf, **{c: np.arange(4, dtype=np.int64) for c in _COLUMNS})
    return buf.getvalue()


class TestClassification:
    def test_healthy_envelope(self, tmp_path):
        p = tmp_path / "t.npz"
        write_artifact(p, TRACE_FORMAT, TRACE_FORMAT_VERSION, b"payload")
        entry = fsck_file(p)
        assert entry.status == "healthy" and entry.action == "none"

    def test_bitrotted_envelope_is_corrupt(self, tmp_path):
        p = tmp_path / "t.npz"
        write_artifact(p, TRACE_FORMAT, TRACE_FORMAT_VERSION, b"payload" * 40)
        blob = bytearray(p.read_bytes())
        blob[-10] ^= 0x40
        p.write_bytes(bytes(blob))
        entry = fsck_file(p, repair=False)
        assert entry.status == "corrupt"

    def test_truncated_envelope_is_corrupt(self, tmp_path):
        p = tmp_path / "t.snap"
        write_artifact(p, "smt-checkpoint", 2, b"x" * 200)
        blob = p.read_bytes()
        p.write_bytes(blob[: len(blob) // 2])
        assert fsck_file(p, repair=False).status == "corrupt"

    def test_legacy_snapshot_is_migratable(self, tmp_path):
        p = tmp_path / "s.snap"
        p.write_bytes(_legacy_v1_snapshot())
        assert fsck_file(p, repair=False).status == "migratable"

    def test_legacy_npz_is_migratable(self, tmp_path):
        p = tmp_path / "t.npz"
        p.write_bytes(_legacy_npz())
        assert fsck_file(p, repair=False).status == "migratable"

    def test_journal_without_crc_is_migratable(self, tmp_path):
        p = tmp_path / "j.jsonl"
        p.write_text(json.dumps({"key": "a", "payload": {"ipc": 1.0}}) + "\n")
        assert fsck_file(p, repair=False).status == "migratable"

    def test_journal_torn_tail(self, tmp_path):
        p = tmp_path / "j.jsonl"
        p.write_text(_crc_line("a", {"v": 1}) + "\n" + '{"key": "b", "pa')
        assert fsck_file(p, repair=False).status == "torn-tail"

    def test_journal_interior_damage_is_corrupt(self, tmp_path):
        p = tmp_path / "j.jsonl"
        p.write_text("%%garbage%%\n" + _crc_line("a", {"v": 1}) + "\n")
        assert fsck_file(p, repair=False).status == "corrupt"

    def test_stale_temp(self, tmp_path):
        p = tmp_path / ".j.jsonl.tmp.1234.0"
        p.write_bytes(b"partial")
        assert fsck_file(p, repair=False).status == "stale-temp"

    def test_alien_content_under_artifact_suffix(self, tmp_path):
        p = tmp_path / "x.snap"
        p.write_bytes(b"definitely not an artifact")
        assert fsck_file(p, repair=False).status == "alien"

    def test_non_artifact_files_skipped(self, tmp_path):
        (tmp_path / "notes.txt").write_text("hello")
        (tmp_path / "j.jsonl.lock").write_text("1234")
        (tmp_path / "old.snap.corrupt").write_bytes(b"evidence")
        report = fsck_tree(tmp_path, repair=False)
        assert report.entries == []


class TestDryRun:
    def test_dry_run_touches_nothing(self, tmp_path):
        (tmp_path / "bad.snap").write_bytes(b"garbage")
        (tmp_path / "j.jsonl").write_text('{"key": "a", "payload": {}}\n')
        (tmp_path / ".x.tmp.1.1").write_bytes(b"t")
        before = {p.name: p.read_bytes() for p in tmp_path.iterdir()}
        report = fsck_tree(tmp_path, repair=False)
        after = {p.name: p.read_bytes() for p in tmp_path.iterdir()}
        assert before == after
        assert report.exit_code == 0  # dry run never quarantines
        assert all(e.action == "none" for e in report.entries)


class TestRepair:
    def test_repair_converges(self, tmp_path):
        """After one repair pass, a second pass finds nothing to do."""
        write_artifact(tmp_path / "good.snap", "smt-checkpoint", 2, b"ok" * 50)
        bad = tmp_path / "bad.snap"
        write_artifact(bad, "smt-checkpoint", 2, b"x" * 50)
        blob = bytearray(bad.read_bytes())
        blob[-1] ^= 0xFF
        bad.write_bytes(bytes(blob))
        (tmp_path / "legacy.npz").write_bytes(_legacy_npz())
        (tmp_path / "j.jsonl").write_text(
            json.dumps({"key": "a", "payload": {"v": 1}}) + "\n"
        )
        (tmp_path / "torn.jsonl").write_text(
            _crc_line("a", {"v": 1}) + "\n" + '{"key": "b'
        )
        (tmp_path / ".x.tmp.1.1").write_bytes(b"t")

        first = fsck_tree(tmp_path, repair=True)
        assert first.exit_code == 1  # one quarantine happened
        assert {e.status for e in first.entries} == {
            "healthy", "corrupt", "migratable", "torn-tail", "stale-temp"
        }
        second = fsck_tree(tmp_path, repair=True)
        assert second.exit_code == 0
        assert all(e.status == "healthy" for e in second.entries)

    def test_corrupt_file_quarantined_not_deleted(self, tmp_path):
        p = tmp_path / "bad.snap"
        p.write_bytes(b"REPROART1\n" + b"\xff" * 30)
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 1
        assert not p.exists()
        assert (tmp_path / "bad.snap.corrupt").exists()

    def test_journal_salvage_keeps_intact_records(self, tmp_path):
        p = tmp_path / "j.jsonl"
        good = [("k%d" % i, {"ipc": float(i)}) for i in range(5)]
        lines = [_crc_line(k, v) for k, v in good]
        lines.insert(2, "###corrupt###")
        p.write_text("\n".join(lines) + "\n")
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 1  # original quarantined
        j = RunJournal(p)
        assert j.load() == 5
        for k, v in good:
            assert j.get(k) == v

    def test_torn_tail_truncation_keeps_complete_records(self, tmp_path):
        p = tmp_path / "j.jsonl"
        p.write_text(_crc_line("a", {"v": 1}) + "\n" + '{"key": "b", "pay')
        report = fsck_tree(tmp_path, repair=True)
        assert report.exit_code == 0  # truncation is a repair, not a quarantine
        j = RunJournal(p)
        assert j.load() == 1 and j.get("a") == {"v": 1}

    def test_migrated_snapshot_loads_as_envelope(self, tmp_path):
        from repro.storage import read_artifact

        payload = b"snapshot-payload-bytes"
        p = tmp_path / "s.snap"
        p.write_bytes(_legacy_v1_snapshot(payload))
        fsck_tree(tmp_path, repair=True)
        header, migrated = read_artifact(p, expect_format="smt-checkpoint")
        assert migrated == payload  # byte-identical through the migration

    def test_migrated_npz_still_loads_in_cache(self, tmp_path):
        from repro.storage import read_artifact

        blob = _legacy_npz()
        p = tmp_path / "t.npz"
        p.write_bytes(blob)
        fsck_tree(tmp_path, repair=True)
        header, migrated = read_artifact(p, expect_format=TRACE_FORMAT)
        assert migrated == blob


class TestCLI:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_artifact(tmp_path / "a.snap", "smt-checkpoint", 2, b"x")
        assert main(["fsck", str(tmp_path)]) == 0
        assert "healthy" in capsys.readouterr().out

    def test_exit_one_iff_quarantined(self, tmp_path, capsys):
        (tmp_path / "bad.snap").write_bytes(b"junk-not-an-artifact")
        assert main(["fsck", str(tmp_path)]) == 1
        assert main(["fsck", str(tmp_path)]) == 0  # already quarantined

    def test_json_report(self, tmp_path, capsys):
        (tmp_path / "bad.snap").write_bytes(b"junk")
        rc = main(["fsck", str(tmp_path), "--json"])
        report = json.loads(capsys.readouterr().out)
        assert rc == report["exit_code"] == 1
        assert report["counts"]["alien"] == 1

    def test_dry_run_flag(self, tmp_path):
        p = tmp_path / "bad.snap"
        p.write_bytes(b"junk")
        assert main(["fsck", str(tmp_path), "--dry-run"]) == 0
        assert p.exists()


class TestDivergenceTaxonomy:
    def _store_with_divergence(self, tmp_path):
        from repro.service import ResultStore
        from repro.service.identity import fields_digest

        store = ResultStore(tmp_path / "rs", shards=2)
        fields = {"mix": "mix05", "seed": 1}
        digest = fields_digest(fields)
        store.put(digest, fields, {"ipc": 1.0})
        store.quarantine_divergent(
            digest, fields,
            primary_payload={"ipc": 1.0}, shadow_payload={"ipc": 2.0},
        )
        return store, digest

    def test_divergent_evidence_is_reported_but_not_damage(self, tmp_path):
        store, digest = self._store_with_divergence(tmp_path)
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 0  # contained damage: never fails fsck
        assert report.counts.get("divergent") == 1
        entry = next(e for e in report.entries if e.status == "divergent")
        assert entry.action == "none"
        assert store.divergent_path(digest).exists()  # evidence untouched

    def test_fsck_file_classifies_divergent_by_suffix(self, tmp_path):
        store, digest = self._store_with_divergence(tmp_path)
        entry = fsck_file(store.divergent_path(digest))
        assert entry is not None and entry.status == "divergent"

    def test_live_divergent_marked_entry_is_quarantined(self, tmp_path):
        """fsck exit 0 must imply no divergent-marked entry can be served:
        a live sim-result whose integrity field says anything but
        unverified/verified is real damage."""
        from repro.storage import embed_json_artifact

        from repro.service import ResultStore
        from repro.service.identity import fields_digest

        store = ResultStore(tmp_path / "rs", shards=1)
        fields = {"mix": "mix05", "seed": 2}
        digest = fields_digest(fields)
        sealed = embed_json_artifact(
            {"identity": digest, "request": fields,
             "payload": {"ipc": 1.0}, "integrity": "divergent"},
            "sim-result", 1,
        )
        path = store.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(sealed))
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 1
        assert any("integrity" in (e.detail or "") for e in report.quarantined)
        assert not path.exists()
        # Convergence: the quarantined copy is evidence now, not damage.
        assert fsck_tree(store.root, repair=True).exit_code == 0

    def test_verified_entry_is_healthy(self, tmp_path):
        from repro.service import ResultStore
        from repro.service.identity import fields_digest

        store = ResultStore(tmp_path / "rs", shards=1)
        fields = {"mix": "mix05", "seed": 3}
        digest = fields_digest(fields)
        store.put(digest, fields, {"ipc": 1.0}, integrity="verified")
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 0
        assert report.counts == {"healthy": 1}
