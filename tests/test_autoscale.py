"""Autoscaler state machine, the soft-cap actuator, service integration,
and SIGTERM drain with scaling in flight."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.service import (
    Autoscaler,
    AutoscalerConfig,
    AutoscalingPool,
    ServiceConfig,
    SimRequest,
    SimulationService,
    VirtualClock,
)

SRC = str(Path(repro.__file__).resolve().parents[1])


def scaler(**kw):
    defaults = dict(
        min_workers=1, max_workers=6, up_queue_depth=4, down_queue_depth=0,
        up_consecutive=2, down_consecutive=3, cooldown_s=1.0,
        step_up=2, step_down=1, window=8,
    )
    defaults.update(kw)
    return Autoscaler(AutoscalerConfig(**defaults))


class TestAutoscalerConfig:
    @pytest.mark.parametrize("kw", [
        dict(min_workers=0),
        dict(max_workers=1, min_workers=2),
        dict(initial_workers=9),
        dict(miss_rate_threshold=1.5),
        dict(up_consecutive=0),
        dict(cooldown_s=-1.0),
        dict(step_up=0),
    ])
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            AutoscalerConfig(**kw)


class TestHysteresis:
    def test_oscillating_queue_never_flaps(self):
        """Depth alternating spike/empty must produce zero scale events:
        each neutral-or-down observation resets the up streak before it
        reaches the consecutive threshold, and vice versa."""
        s = scaler(up_consecutive=2, down_consecutive=3)
        for i in range(60):
            depth = 10 if i % 2 == 0 else 0
            # Answered work on the quiet ticks keeps miss_rate at 0 but the
            # down-streak still cannot reach 3 before a spike resets it.
            s.observe(now=i * 10.0, queue_depth=depth, answered_delta=1)
        assert s.events == []
        assert s.target == s.config.min_workers
        assert s.scale_ups == 0 and s.scale_downs == 0

    def test_sustained_pressure_scales_up(self):
        s = scaler()
        s.observe(0.0, queue_depth=10)
        assert s.target == 1  # one observation is not a trend
        s.observe(0.1, queue_depth=10)
        assert s.target == 3  # step_up=2
        assert s.events[-1].reason == "queue-depth"

    def test_cooldown_blocks_back_to_back_events(self):
        s = scaler(cooldown_s=5.0)
        for t in (0.0, 0.1, 0.2, 0.3, 0.4):
            s.observe(t, queue_depth=10)
        assert s.scale_ups == 1  # later streaks land inside the cooldown
        s.observe(6.0, queue_depth=10)  # cooled down; streak was primed
        assert s.scale_ups == 2

    def test_bounds_clamp(self):
        s = scaler(max_workers=4, cooldown_s=0.0)
        for i in range(20):
            s.observe(float(i), queue_depth=10)
        assert s.target == 4
        # Pinned at max: pressure produces no further events.
        ups = s.scale_ups
        s.observe(100.0, queue_depth=10)
        s.observe(100.1, queue_depth=10)
        assert s.scale_ups == ups

    def test_idle_scales_down_to_min(self):
        s = scaler(initial_workers=4, cooldown_s=0.0, down_consecutive=2)
        for i in range(20):
            s.observe(float(i), queue_depth=0, answered_delta=1)
        assert s.target == 1
        assert s.events[-1].reason == "idle"

    def test_miss_rate_triggers_up_even_when_queue_shallow(self):
        s = scaler(up_queue_depth=100, cooldown_s=0.0)
        s.observe(0.0, queue_depth=0, shed_delta=3, answered_delta=1)
        s.observe(0.1, queue_depth=0, shed_delta=3, answered_delta=1)
        assert s.target > 1
        assert s.events[-1].reason == "deadline-misses"

    def test_open_breaker_freezes_scaling(self):
        s = scaler()
        for i in range(10):
            s.observe(float(i), queue_depth=50, breaker_open=True)
        assert s.events == [] and s.target == 1
        # Shed work during the open window must not trip the miss-rate path
        # the moment the breaker closes either: streaks restart from zero.
        s.observe(11.0, queue_depth=10)
        assert s.target == 1

    def test_summary_telemetry(self):
        s = scaler(cooldown_s=0.0)
        s.observe(0.0, queue_depth=10)
        s.observe(1.0, queue_depth=10)
        out = s.summary()
        assert out["target"] == 3
        assert out["scale_ups"] == 1 and out["scale_downs"] == 0
        assert out["min_workers"] == 1 and out["max_workers"] == 6
        assert out["events"][0]["reason"] == "queue-depth"
        json.dumps(out)  # telemetry must be wire-ready


class FakeExecutor:
    """Just enough executor surface for AutoscalingPool unit tests."""

    def __init__(self):
        self.soft_cap = None
        self.live = 0
        self.config = type("C", (), {"workers": 8})()
        self.shutdowns = 0

    def has_capacity(self):
        cap = self.config.workers
        if self.soft_cap is not None:
            cap = min(cap, self.soft_cap)
        return self.live < cap

    def shutdown(self):
        self.shutdowns += 1


class TestAutoscalingPool:
    def test_sync_pushes_target_into_soft_cap(self):
        s = scaler(initial_workers=3)
        ex = FakeExecutor()
        pool = AutoscalingPool(ex, s)
        assert ex.soft_cap == 3  # applied at construction
        s.observe(0.0, queue_depth=10)
        s.observe(0.1, queue_depth=10)
        pool.sync()
        assert ex.soft_cap == 5

    def test_delegation_and_capacity(self):
        s = scaler(initial_workers=2)
        ex = FakeExecutor()
        pool = AutoscalingPool(ex, s)
        ex.live = 1
        assert pool.has_capacity()
        ex.live = 2
        assert not pool.has_capacity()  # capped at target, pool size 8
        pool.shutdown()
        assert ex.shutdowns == 1  # __getattr__ delegation


def _req(i, **kw):
    kw.setdefault("client", f"c{i % 3}")
    return SimRequest(request_id=f"r{i:03d}", **kw)


class TestServiceIntegrationInline:
    """workers=0: the target is the per-pump dispatch budget."""

    def _service(self, **scaler_kw):
        clock = VirtualClock()
        cfg = ServiceConfig(
            workers=0, queue_capacity=32,
            autoscaler=AutoscalerConfig(
                min_workers=1, max_workers=4, up_queue_depth=4,
                up_consecutive=2, down_consecutive=4, cooldown_s=0.1,
                **scaler_kw,
            ),
        )
        service = SimulationService(
            cfg,
            full_runner=lambda r: {"ipc": 1.0},
            fast_runner=lambda r: {"ipc": 0.9},
            clock=clock,
        )
        return service, clock

    def test_backlog_scales_up_and_bounds_per_pump_dispatch(self):
        service, clock = self._service()
        for i in range(24):
            service.submit(_req(i))
        assert service.queue.depth == 24
        clock.advance(1.0)
        produced = service.pump()
        # First pump: target still 1, so exactly one inline dispatch.
        assert produced == 1
        clock.advance(1.0)
        service.pump()  # second pressured observation: scale-up commits
        assert service.autoscaler.target > 1
        while service.queue.depth:
            clock.advance(1.0)
            service.pump()
        stats = service.stats()
        assert stats["autoscaler"]["scale_ups"] >= 1
        assert stats["counters"]["completed_full"] == 24
        assert len(service.take_completed()) == 24

    def test_drain_answers_everything_mid_scale_down(self):
        service, clock = self._service()
        for i in range(16):
            service.submit(_req(i))
        clock.advance(1.0)
        service.pump()
        clock.advance(1.0)
        service.pump()  # scaled up with a backlog still queued
        assert service.autoscaler.target > 1
        clock.auto_advance_s = 0.05
        stats = service.drain(10.0)
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0
        responses = service.take_completed()
        assert stats["counters"]["submitted"] == 16
        assert len(responses) == 16
        assert len({r.request_id for r in responses}) == 16


class TestSoftCapNeverStrands:
    """Real supervised pool: lowering the cap mid-flight gates new spawns
    only — live attempts run to completion."""

    def test_soft_cap_gates_spawns_not_live_work(self, tmp_path):
        from repro.harness.executor import (
            ExecutorConfig,
            SupervisedExecutor,
            WorkItem,
        )
        from repro.harness.runner import RunConfig

        ex = SupervisedExecutor(ExecutorConfig(workers=2, max_restarts=0))
        spec = {
            "config": RunConfig(mix="mix01", quanta=1, warmup_quanta=0,
                                quantum_cycles=128),
            "mode": "fixed", "heuristic": "type3", "threshold": 2.0,
            "fault_plan": None, "strip_worker_faults": False,
            "force_crash": False,
        }
        try:
            for i in range(2):
                assert ex.has_capacity()
                ex.spawn_attempt(
                    WorkItem(label=f"w{i}", kind="service_cell", spec=spec), 1
                )
            # Scale down below the live count: no capacity for new spawns...
            ex.soft_cap = 1
            assert not ex.has_capacity()
            # ...but both in-flight attempts still complete normally.
            outcomes = []
            deadline = time.monotonic() + 120
            while len(outcomes) < 2 and time.monotonic() < deadline:
                outcomes.extend(ex.pump())
                time.sleep(0.02)
            assert len(outcomes) == 2
            assert all(o.ok for o in outcomes)
            # With one slot freed... still capped at 1 live is 0 -> capacity.
            assert ex.has_capacity()
            ex.soft_cap = 0
            assert not ex.has_capacity()
        finally:
            ex.shutdown()


@pytest.mark.skipif(sys.platform != "linux",
                    reason="signal/orphan checks use POSIX + /proc")
class TestSigtermDuringScaleDown:
    def _children(self, pid):
        path = Path(f"/proc/{pid}/task/{pid}/children")
        try:
            return [int(p) for p in path.read_text().split()]
        except (FileNotFoundError, ValueError):
            return []

    def _alive(self, pid):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        return True

    def test_drain_contract_holds_with_autoscaler_active(self, tmp_path):
        """SIGTERM while the autoscaled pool is loaded (scale events —
        including downs — in flight): exit 0, every request answered, pool
        gone, journal unlocked."""
        from repro.harness.journal import RunJournal

        journal = tmp_path / "svc.jsonl"
        env = {**os.environ, "PYTHONPATH": SRC}
        burst = subprocess.run(
            [sys.executable, "-m", "repro", "burst", "--emit", "--requests",
             "30", "--seed", "1", "--quanta", "1", "--quantum", "128"],
            capture_output=True, text=True, check=True, env=env,
            cwd=str(tmp_path),
        ).stdout
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--workers", "1",
             "--autoscale", "1:3", "--autoscale-cooldown", "0.05",
             "--queue-capacity", "16", "--drain-deadline", "60",
             "--journal", str(journal)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True, env=env, cwd=str(tmp_path),
        )
        try:
            assert json.loads(proc.stdout.readline())["event"] == "ready"
            proc.stdin.write(burst)
            proc.stdin.flush()
            deadline = time.monotonic() + 60
            while not self._children(proc.pid) and time.monotonic() < deadline:
                time.sleep(0.02)
            workers = self._children(proc.pid)
            assert workers, "pool never spawned"
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, stderr
        events = [json.loads(l) for l in stdout.splitlines() if l]
        assert events[-1]["event"] == "drained"
        stats = events[-1]["stats"]
        responses = [e["response"] for e in events if e["event"] == "response"]
        # Conservation: one response per submitted request, none stranded.
        assert len(responses) == stats["counters"]["submitted"]
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0
        for r in responses:
            if r["outcome"] in ("rejected", "shed", "failed"):
                assert r["reason"]
        assert stats["autoscaler"] is not None  # scaling was really on
        # Pool fully gone within a grace period.
        deadline = time.monotonic() + 60
        pending = list(workers)
        while pending and time.monotonic() < deadline:
            pending = [p for p in pending if self._alive(p)]
            time.sleep(0.05)
        assert not pending, f"orphan workers survived: {pending}"
        # Journal lock released: a fresh writer proceeds immediately.
        with RunJournal(journal) as j:
            j.load()
            j.record("post-drain", {"ipc": 1.0})
