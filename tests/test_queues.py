"""Tests for the instruction queues and LSQ."""

import pytest

from repro.smt.instruction import IALU, Instruction
from repro.smt.queues import InstructionQueue, LoadStoreQueue


def instr(tid=0, seq=0):
    return Instruction(tid, seq, IALU, 0)


class TestInstructionQueue:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            InstructionQueue(0, "x")

    def test_insert_and_len(self):
        q = InstructionQueue(4, "int")
        q.insert(instr())
        assert len(q) == 1
        assert not q.full
        assert q.free == 3

    def test_overflow_raises(self):
        q = InstructionQueue(2, "int")
        q.insert(instr())
        q.insert(instr())
        with pytest.raises(RuntimeError):
            q.insert(instr())

    def test_compact_drops_issued_and_squashed(self):
        q = InstructionQueue(4, "int")
        a, b, c = instr(seq=1), instr(seq=2), instr(seq=3)
        b.issued = True
        c.squashed = True
        for i in (a, b, c):
            q.insert(i)
        q.compact()
        assert list(q) == [a]

    def test_occupancy_of_counts_live_entries_per_thread(self):
        q = InstructionQueue(8, "int")
        q.insert(instr(tid=0, seq=1))
        q.insert(instr(tid=1, seq=2))
        dead = instr(tid=0, seq=3)
        dead.squashed = True
        q.insert(dead)
        assert q.occupancy_of(0) == 1
        assert q.occupancy_of(1) == 1

    def test_set_entries_replaces(self):
        q = InstructionQueue(4, "int")
        q.insert(instr())
        q.set_entries([])
        assert len(q) == 0

    def test_iteration_in_dispatch_order(self):
        q = InstructionQueue(4, "int")
        items = [instr(seq=i) for i in range(3)]
        for i in items:
            q.insert(i)
        assert list(q) == items


class TestLoadStoreQueue:
    def make(self, cap=4, threads=2):
        lsq = LoadStoreQueue(cap)
        lsq.reset_threads(threads)
        return lsq

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LoadStoreQueue(0)

    def test_allocate_release(self):
        lsq = self.make()
        assert lsq.allocate(0)
        assert len(lsq) == 1
        assert lsq.occupancy_of(0) == 1
        lsq.release(0)
        assert len(lsq) == 0

    def test_full_refuses_and_counts(self):
        lsq = self.make(cap=2)
        assert lsq.allocate(0) and lsq.allocate(1)
        assert lsq.full
        assert not lsq.allocate(0)
        assert lsq.full_events == 1

    def test_release_underflow_raises(self):
        lsq = self.make()
        with pytest.raises(RuntimeError):
            lsq.release(0)

    def test_release_all(self):
        lsq = self.make(cap=8)
        for _ in range(3):
            lsq.allocate(1)
        lsq.release_all(1, 3)
        assert lsq.occupancy_of(1) == 0
        assert len(lsq) == 0

    def test_release_all_underflow_raises(self):
        lsq = self.make()
        lsq.allocate(0)
        with pytest.raises(RuntimeError):
            lsq.release_all(0, 2)

    def test_release_all_zero_noop(self):
        lsq = self.make()
        lsq.release_all(0, 0)
        assert len(lsq) == 0
