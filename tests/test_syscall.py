"""Tests for the conservative syscall-drain model (paper §6: "when a thread
encounters a system call, all threads have to flush out of the pipeline
before the system call can be started")."""

import pytest

from repro.smt.config import SMTConfig
from repro.smt.pipeline import SMTProcessor
from repro.workloads.profiles import ApplicationProfile
from repro.workloads.tracegen import TraceGenerator

import numpy as np

# A profile that syscalls very frequently so a short run exercises drain.
SYSCALL_HEAVY = ApplicationProfile(
    "syscall_heavy", "int", "med", footprint_kb=64, hot_kb=16,
    avg_block=8, mispredict_target=0.02, load_frac=0.2, store_frac=0.05,
    syscall_rate=2e-3,
)

QUIET = ApplicationProfile(
    "quiet", "int", "high", footprint_kb=64, hot_kb=16,
    avg_block=8, mispredict_target=0.02, load_frac=0.2, store_frac=0.05,
)


def build(num_threads=2, drain_cycles=10):
    cfg = SMTConfig(
        num_threads=num_threads,
        syscall_drain_cycles=drain_cycles,
        int_iq_entries=24, fp_iq_entries=24, lsq_entries=16,
        rob_entries_per_thread=32,
    )
    profiles = [SYSCALL_HEAVY] + [QUIET] * (num_threads - 1)
    traces = [
        TraceGenerator(p, t, np.random.default_rng(t + 1))
        for t, p in enumerate(profiles)
    ]
    return SMTProcessor(cfg, traces, quantum_cycles=1024)


class TestSyscallDrain:
    def test_syscalls_complete(self):
        proc = build()
        proc.run(20_000)
        assert proc.stats.syscalls > 0, "syscall-heavy thread must reach syscalls"
        assert proc._drain_tid is None or True  # may be mid-drain at stop

    def test_machine_progresses_past_syscalls(self):
        proc = build()
        proc.run(20_000)
        assert proc.stats.committed > 1000

    def test_drain_blocks_other_threads_fetch(self):
        proc = build()
        # Run until a drain starts.
        for _ in range(40_000):
            proc.step()
            if proc._drain_tid is not None:
                break
        else:
            pytest.skip("no drain observed in the window")
        fetched_before = proc.stats.fetched
        proc.step()
        proc.step()
        # During drain nobody fetches.
        assert proc.stats.fetched == fetched_before

    def test_syscall_thread_counter_consistency_after_run(self):
        from conftest import assert_counter_consistency

        proc = build()
        proc.run(20_000)
        assert_counter_consistency(proc)

    def test_zero_syscall_rate_never_drains(self):
        cfg = SMTConfig(num_threads=1, int_iq_entries=24, fp_iq_entries=24,
                        lsq_entries=16, rob_entries_per_thread=32)
        trace = TraceGenerator(QUIET, 0, np.random.default_rng(0))
        proc = SMTProcessor(cfg, [trace], quantum_cycles=1024)
        proc.run(10_000)
        assert proc.stats.syscalls == 0
