"""Tests for the functional-unit pool and completion heap."""

from repro.smt.execute import CompletionHeap, FunctionalUnitPool
from repro.smt.instruction import BRANCH, FADD, FDIV, IALU, LOAD, STORE, Instruction


class TestFunctionalUnitPool:
    def test_int_slots_limited(self):
        pool = FunctionalUnitPool(int_units=2, mem_ports=1, fp_units=1)
        pool.new_cycle()
        assert pool.try_claim(IALU)
        assert pool.try_claim(BRANCH)
        assert not pool.try_claim(IALU)

    def test_mem_ports_sub_limit_int(self):
        pool = FunctionalUnitPool(int_units=4, mem_ports=1, fp_units=1)
        pool.new_cycle()
        assert pool.try_claim(LOAD)
        assert not pool.try_claim(STORE)  # mem port exhausted
        assert pool.try_claim(IALU)  # int slots remain

    def test_mem_consumes_int_slot(self):
        pool = FunctionalUnitPool(int_units=1, mem_ports=1, fp_units=1)
        pool.new_cycle()
        assert pool.try_claim(LOAD)
        assert not pool.try_claim(IALU)

    def test_fp_independent_of_int(self):
        pool = FunctionalUnitPool(int_units=1, mem_ports=1, fp_units=2)
        pool.new_cycle()
        assert pool.try_claim(IALU)
        assert pool.try_claim(FADD)
        assert pool.try_claim(FDIV)
        assert not pool.try_claim(FADD)

    def test_new_cycle_resets(self):
        pool = FunctionalUnitPool(1, 1, 1)
        pool.new_cycle()
        pool.try_claim(IALU)
        pool.new_cycle()
        assert pool.try_claim(IALU)


class TestCompletionHeap:
    def instr(self, seq):
        return Instruction(0, seq, IALU, 0)

    def test_pop_ready_respects_time(self):
        h = CompletionHeap()
        a, b = self.instr(1), self.instr(2)
        h.schedule(a, 10)
        h.schedule(b, 5)
        assert h.pop_ready(4) == []
        assert h.pop_ready(5) == [b]
        assert h.pop_ready(10) == [a]
        assert len(h) == 0

    def test_sets_complete_cycle(self):
        h = CompletionHeap()
        a = self.instr(1)
        h.schedule(a, 33)
        assert a.complete_cycle == 33

    def test_fifo_within_same_cycle(self):
        h = CompletionHeap()
        items = [self.instr(i) for i in range(5)]
        for i in items:
            h.schedule(i, 7)
        assert h.pop_ready(7) == items

    def test_clear(self):
        h = CompletionHeap()
        h.schedule(self.instr(0), 1)
        h.clear()
        assert len(h) == 0
