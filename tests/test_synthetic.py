"""Tests for the custom-workload builder."""

import numpy as np
import pytest

from repro.smt.config import SMTConfig
from repro.smt.pipeline import SMTProcessor
from repro.workloads.synthetic import PRESETS, get_preset, make_profile, with_phases
from repro.workloads.tracegen import TraceGenerator


class TestMakeProfile:
    def test_basic(self):
        p = make_profile("x", ilp=1.0, memory_intensity=0.3)
        assert p.name == "x"
        assert p.load_frac + p.store_frac == pytest.approx(0.3, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_profile("x", memory_intensity=0.9)
        with pytest.raises(ValueError):
            make_profile("x", branchiness=1.5)
        with pytest.raises(ValueError):
            make_profile("x", predictability=0.2)
        with pytest.raises(ValueError):
            make_profile("x", footprint_mb=0)
        with pytest.raises(ValueError):
            make_profile("x", ilp=0)

    def test_branchiness_maps_to_block_length(self):
        assert make_profile("a", branchiness=1.0).avg_block < \
            make_profile("b", branchiness=0.0).avg_block

    def test_fp_share_sets_suite(self):
        assert make_profile("a", fp_share=0.8).suite == "fp"
        assert make_profile("b", fp_share=0.2).suite == "int"

    def test_ilp_sets_class(self):
        assert make_profile("a", ilp=1.5).ipc_class == "high"
        assert make_profile("b", ilp=0.4).ipc_class == "low"


class TestPresets:
    def test_all_presets_valid(self):
        for name, p in PRESETS.items():
            assert p.name == name

    def test_get_preset_unknown(self):
        with pytest.raises(KeyError):
            get_preset("quantum_annealer")

    def test_presets_runnable(self):
        cfg = SMTConfig(num_threads=2)
        traces = [
            TraceGenerator(get_preset("pointer_chase"), 0, np.random.default_rng(0)),
            TraceGenerator(get_preset("compute"), 1, np.random.default_rng(1)),
        ]
        proc = SMTProcessor(cfg, traces, quantum_cycles=512)
        proc.run(3000)
        assert proc.stats.committed > 100

    def test_compute_beats_pointer_chase_alone(self):
        cfg = SMTConfig(num_threads=1)
        ipcs = {}
        for name in ("compute", "pointer_chase"):
            trace = TraceGenerator(get_preset(name), 0, np.random.default_rng(0))
            proc = SMTProcessor(cfg, [trace], quantum_cycles=512)
            proc.run(6000)
            ipcs[name] = proc.stats.ipc
        assert ipcs["compute"] > 2 * ipcs["pointer_chase"]

    def test_branch_storm_mispredicts_more_than_stream(self):
        cfg = SMTConfig(num_threads=1)
        rates = {}
        for name in ("branch_storm", "stream"):
            trace = TraceGenerator(get_preset(name), 0, np.random.default_rng(0))
            proc = SMTProcessor(cfg, [trace], quantum_cycles=512)
            proc.run(6000)
            rates[name] = proc.stats.mispredict_rate
        assert rates["branch_storm"] > rates["stream"]


class TestWithPhases:
    def test_adds_phases(self):
        base = make_profile("x")
        phased = with_phases(base, storm_scale=4.0, memory_scale=5.0)
        assert len(phased.phases) == 3
        assert base.phases == ()

    def test_storm_only(self):
        phased = with_phases(make_profile("x"), storm_scale=3.0)
        names = [p.name for p in phased.phases]
        assert names == ["base", "storm"]
