"""Tests for the experiment harness (runner, sweep, sampling, report)."""

import pytest

from repro.harness.report import format_series, format_table, grid_to_rows
from repro.harness.runner import RunConfig, run_adts, run_fixed, run_mix_average
from repro.harness.sampling import SampledRunner, SampleSpec
from repro.harness.sweep import threshold_type_grid
from repro.smt.config import SMTConfig


def tiny_run(**over):
    base = dict(
        mix=["gzip", "mcf"],
        num_threads=2,
        quantum_cycles=256,
        quanta=4,
        warmup_quanta=1,
        machine=SMTConfig(num_threads=2),
    )
    base.update(over)
    return RunConfig(**base)


class TestRunner:
    def test_run_fixed_measures_post_warmup_window(self):
        cfg = tiny_run()
        r = run_fixed(cfg)
        assert r.cycles == 4 * 256
        assert len(r.quantum_ipcs) == 4
        assert r.ipc == pytest.approx(r.committed / r.cycles)
        assert r.scheduler["mode"] == "fixed"

    def test_run_fixed_respects_policy(self):
        r = run_fixed(tiny_run(policy="rr"))
        assert r.scheduler["policy"] == "rr"

    def test_run_adts_reports_scheduler_summary(self):
        r = run_adts(tiny_run(), heuristic="type1")
        assert r.scheduler["mode"] == "adts"
        assert "switches" in r.scheduler
        assert "benign_probability" in r.scheduler

    def test_deterministic(self):
        a = run_fixed(tiny_run(seed=5))
        b = run_fixed(tiny_run(seed=5))
        assert a.ipc == b.ipc

    def test_mix_average_fixed(self):
        out = run_mix_average(["mix01", "mix02"], tiny_run(mix="mix01", num_threads=2))
        assert set(out["per_mix_ipc"]) == {"mix01", "mix02"}
        assert out["mean_ipc"] == pytest.approx(
            sum(out["per_mix_ipc"].values()) / 2
        )

    def test_mix_average_adts_aggregates_switches(self):
        out = run_mix_average(
            ["mix01"], tiny_run(mix="mix01", num_threads=2), heuristic="type1"
        )
        assert out["switches"] >= 0
        assert 0.0 <= out["benign_probability"] <= 1.0


class TestSampling:
    def test_seed_fanout(self):
        spec = SampleSpec(intervals=3, base_seed=10)
        seeds = spec.seeds()
        assert len(seeds) == 3
        assert len(set(seeds)) == 3

    def test_sampled_runner_aggregates(self):
        spec = SampleSpec(intervals=2, base_seed=0)
        out = SampledRunner(spec).run(tiny_run(), run_fixed)
        assert len(out.per_interval) == 2
        assert out.mean_ipc > 0
        assert out.std_ipc >= 0
        assert len(out.ipcs) == 2


class TestSweep:
    def test_grid_shape_and_series(self):
        grid = threshold_type_grid(
            tiny_run(),
            mixes=["mix01"],
            thresholds=(1.0, 9.0),
            heuristics=("type1", "type3"),
        )
        assert set(grid.ipc) == {(1.0, "type1"), (1.0, "type3"), (9.0, "type1"), (9.0, "type3")}
        assert len(grid.series_ipc_vs_threshold("type1")) == 2
        assert len(grid.series_ipc_vs_type(9.0)) == 2
        assert len(grid.series_switches_vs_threshold("type3")) == 2
        assert len(grid.series_benign_vs_type(1.0)) == 2
        threshold, heuristic = grid.best_cell()
        assert threshold in (1.0, 9.0) and heuristic in ("type1", "type3")

    def test_absurd_threshold_forces_switching(self):
        grid = threshold_type_grid(
            tiny_run(), mixes=["mix01"], thresholds=(99.0,), heuristics=("type1",)
        )
        assert grid.switches[(99.0, "type1")] > 0


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.500" in text and "0.125" in text

    def test_format_series(self):
        s = format_series("x", [1, 2], [0.5, 1.5])
        assert s == "x: 1=0.500  2=1.500"

    def test_grid_to_rows(self):
        rows = grid_to_rows({(1, "a"): 5, (2, "a"): 6}, [1, 2], ["a", "b"], "m")
        assert rows == [[1, 5, ""], [2, 6, ""]]
