"""Tests for the 13 application mixes."""

import pytest

from repro.workloads.mixes import MIXES, Mix, get_mix, mix_names
from repro.workloads.profiles import get_profile


class TestMixTable:
    def test_exactly_thirteen(self):
        assert len(MIXES) == 13

    def test_names_are_mix01_to_mix13(self):
        assert mix_names() == [f"mix{i:02d}" for i in range(1, 14)]

    def test_all_mixes_have_eight_apps(self):
        for m in MIXES:
            assert len(m.apps) == 8

    def test_all_apps_known(self):
        for m in MIXES:
            for a in m.apps:
                get_profile(a)  # raises on unknown

    def test_homogeneous_mixes_flagged(self):
        homog = [m for m in MIXES if m.homogeneous]
        assert len(homog) >= 3
        for m in homog:
            assert len(set(m.apps)) == 1

    def test_balanced_mixes_even_int_fp(self):
        for name in ("mix05", "mix06"):
            m = get_mix(name)
            assert m.int_count == 4 and m.fp_count == 4

    def test_motivating_mix07_half_control_intensive(self):
        m = get_mix("mix07")
        control = sum(1 for a in m.apps if get_profile(a).control_intensive)
        assert control >= 3

    def test_get_mix_unknown(self):
        with pytest.raises(KeyError, match="unknown mix"):
            get_mix("mix99")

    def test_mix_requires_eight_apps(self):
        with pytest.raises(ValueError):
            Mix("bad", ("gzip",) * 7, "too short")

    def test_mix_rejects_unknown_apps(self):
        with pytest.raises(ValueError):
            Mix("bad", ("gzip",) * 7 + ("doom",), "unknown app")


class TestSubset:
    def test_subset_sizes(self):
        m = get_mix("mix01")
        for n in (1, 4, 6, 8):
            assert len(m.subset(n)) == n

    def test_subset_eight_is_identity(self):
        m = get_mix("mix01")
        assert m.subset(8) == m.apps

    def test_subset_deterministic(self):
        m = get_mix("mix03")
        assert m.subset(4, seed=1) == m.subset(4, seed=1)

    def test_subset_seed_varies_selection(self):
        m = get_mix("mix01")
        picks = {m.subset(4, seed=s) for s in range(10)}
        assert len(picks) > 1

    def test_subset_draws_from_mix(self):
        m = get_mix("mix05")
        for app in m.subset(6, seed=3):
            assert app in m.apps

    def test_subset_bounds(self):
        m = get_mix("mix01")
        with pytest.raises(ValueError):
            m.subset(0)
        with pytest.raises(ValueError):
            m.subset(9)


class TestSimilarity:
    def test_homogeneous_similarity_is_one(self):
        assert get_mix("mix09").similarity() == 1.0

    def test_diverse_similarity_below_one(self):
        assert get_mix("mix13").similarity() < 1.0

    def test_homogeneous_more_similar_than_diverse(self):
        homog = min(get_mix(n).similarity() for n in ("mix09", "mix10", "mix11"))
        diverse = max(get_mix(n).similarity() for n in ("mix12", "mix13"))
        assert homog > diverse
