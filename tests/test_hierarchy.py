"""Unit tests for the two-level memory hierarchy."""

import pytest

from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig, MemoryHierarchy


def tiny():
    return MemoryHierarchy(
        HierarchyConfig(
            l1i=CacheConfig(1024, 64, 2, "l1i"),
            l1d=CacheConfig(1024, 64, 2, "l1d"),
            l2=CacheConfig(8192, 64, 4, "l2"),
            l1_latency=1,
            l2_latency=10,
            mem_latency=100,
            mshr_entries=2,
        )
    )


class TestHierarchyConfig:
    def test_rejects_non_monotonic_latencies(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l2_latency=5, mem_latency=2)

    def test_rejects_zero_l1_latency(self):
        with pytest.raises(ValueError):
            HierarchyConfig(l1_latency=0)


class TestLoadPath:
    def test_l1_hit_latency(self):
        h = tiny()
        h.load(0x100, 0)
        r = h.load(0x100, 1)
        assert r.latency == 1
        assert not r.l1_miss

    def test_cold_miss_goes_to_memory(self):
        h = tiny()
        r = h.load(0x100, 0)
        assert r.l1_miss and r.l2_miss
        assert r.latency == 1 + 10 + 100

    def test_l2_hit_after_l1_eviction(self):
        h = tiny()
        h.load(0x100, 0)
        # Evict from tiny L1 by filling its set (2 ways, 8 sets).
        n_sets = h.l1d.config.n_sets
        h.load(0x100 + n_sets * 64, 0)
        h.load(0x100 + 2 * n_sets * 64, 0)
        assert not h.l1d.contains(0x100)
        h.tick(10_000)  # clear MSHRs
        r = h.load(0x100, 10_000)
        assert r.l1_miss and not r.l2_miss
        assert r.latency == 1 + 10

    def test_mshr_coalescing_secondary_miss(self):
        h = tiny()
        first = h.load(0x200, 0)
        h.l1d.invalidate(0x200)  # force the second access to miss L1 again
        second = h.load(0x200 + 8, 5)
        assert second.l1_miss
        # Secondary miss waits for the in-flight fill, not a fresh trip.
        assert second.latency == max(1, first.latency - 5)

    def test_mshr_full_stall(self):
        h = tiny()
        h.load(0x1000, 0)
        h.load(0x2000, 0)
        r = h.load(0x3000, 0)
        assert r.mshr_stall
        assert r.latency == 1

    def test_tick_frees_mshr(self):
        h = tiny()
        h.load(0x1000, 0)
        h.load(0x2000, 0)
        h.tick(1000)
        r = h.load(0x3000, 1000)
        assert not r.mshr_stall

    def test_store_uses_same_path(self):
        h = tiny()
        r = h.store(0x500, 0)
        assert r.l1_miss
        h.tick(10_000)
        assert h.store(0x500, 10_000).latency == 1


class TestIfetchPath:
    def test_ifetch_separate_from_dcache(self):
        h = tiny()
        h.load(0x700, 0)
        h.tick(10_000)
        r = h.ifetch(0x700, 10_000)
        assert r.l1_miss  # L1I cold even though L1D holds the line
        assert not r.l2_miss  # but the shared L2 has it

    def test_ifetch_hit(self):
        h = tiny()
        h.ifetch(0x700, 0)
        assert not h.ifetch(0x700, 1).l1_miss


class TestReset:
    def test_reset_clears_all_levels(self):
        h = tiny()
        h.load(0x900, 0)
        h.ifetch(0x900, 0)
        h.reset()
        assert h.l1d.occupancy == 0
        assert h.l1i.occupancy == 0
        assert h.l2.occupancy == 0
        assert len(h.mshr) == 0
