"""Recorded golden fingerprints: the bit-identical contract of the engine.

Every hot-path optimization in the simulator (wake-up lists, idle-cycle
skipping, incremental policy keys, trace-cache replay, batched RNG) is
required to leave the simulated *trajectory* untouched.  This suite pins
``SMTProcessor.fingerprint()`` for every fetch policy and every ADTS
heuristic to values recorded on the unoptimized engine; any change to
these hashes means an optimization altered machine behaviour and must be
rejected (or the goldens consciously re-recorded with an explanation).

The fixed workload (4-app mix, seed 1) exercises icache misses, branch
mispredictions with wrong-path fetch, syscall drains, and ADTS
thread-control actions, so the hashes are sensitive to essentially every
pipeline mechanism.
"""

from __future__ import annotations

import pytest

from repro import build_processor
from repro.core.adts import ADTSController
from repro.core.thresholds import ThresholdConfig

APPS = ["gzip", "crafty", "swim", "mcf"]
SEED = 1

#: Recorded on the pre-optimization engine; identical on the optimized one.
POLICY_GOLDENS = {
    "icount": "de205dd90c64a2e0f4e3247ba3b52d011da7915d1d044dfecce48834e12d5bb4",
    "brcount": "b669fd56cfb013dd1f80298b00c4e1a5db9b4c82c51c1cb110a78f47205ef13d",
    "ldcount": "3398dd89581bb465d2cd6fea4b533749aa1111718a2593da9e7151a58baf61b3",
    "memcount": "4f4d66298c9714ee73b111b5c5b8b44a12b66c5dde17f029a9e9a71bed7326f4",
    "l1misscount": "90f535bface37e4cfb67fa6323cdf091f4db446c2191f9578ed0b3055520c438",
    "l1imisscount": "72aba4dba23cef902051c4018c430f2190990a59e16d4f381971b4aef818d83a",
    "l1dmisscount": "1d9e1a94c13bccf26fdc9ec6177599be7dc53077eb3bd6f5605925ef6cd0e9b9",
    "accipc": "e0737859cdbc12077e5bae7a79eedf6c02d1163081d35422d86dfb729074718f",
    "stallcount": "36a07ae7e8310dfa449afd80c7742ea6363f620bd2bc2ca760c18fc0165aae7c",
    "rr": "71e258ff0f0fd36a369b32a8f5dc83b27c2e0235c491ca47ebdbb4aa43ac498a",
}

ADTS_GOLDENS = {
    "type1": "42902799b44562c0e51bf3d4b74d1bca21709eaea73e74932ba2982498018ab6",
    "type2": "7d8ce71df012a11386bb489c60903b201408dadff04e728c9277b25173109344",
    "type3": "393b4d5529b161df590316376b77c39f4d29513dc83cccfa5e4bad5b6de778f3",
    "type3g": "603b96ae5b0f96aa1b9737406d69699e8ad6a3a2256e4c73d9ddc44bf413470a",
    "type4": "277bd153c0ad40f8835ca02f5a3effe967f0a89cd3cb479b65628d5e21c0aaee",
}


def _policy_fingerprint(policy: str) -> str:
    proc = build_processor(mix=APPS, seed=SEED, policy=policy, quantum_cycles=512)
    proc.run_quanta(3)
    return proc.fingerprint()


def _adts_fingerprint(heuristic: str) -> str:
    hook = ADTSController(
        heuristic=heuristic, thresholds=ThresholdConfig(ipc_threshold=2.0)
    )
    proc = build_processor(
        mix=APPS, seed=SEED, policy="icount", hook=hook, quantum_cycles=512
    )
    proc.run_quanta(6)
    return proc.fingerprint()


@pytest.mark.parametrize("policy", sorted(POLICY_GOLDENS))
def test_policy_fingerprint_matches_golden(policy):
    assert _policy_fingerprint(policy) == POLICY_GOLDENS[policy]


@pytest.mark.parametrize("heuristic", sorted(ADTS_GOLDENS))
def test_adts_fingerprint_matches_golden(heuristic):
    assert _adts_fingerprint(heuristic) == ADTS_GOLDENS[heuristic]


def test_idle_skip_is_trajectory_neutral():
    """Fast-forwarding provably idle cycles must equal stepping them."""
    fps = []
    for idle_skip in (True, False):
        proc = build_processor(
            mix=APPS, seed=SEED, policy="icount", quantum_cycles=512
        )
        proc._idle_skip = idle_skip
        proc.run_quanta(3)
        fps.append(proc.fingerprint())
    assert fps[0] == fps[1]


def test_wrong_path_junk_is_deterministic():
    """The pre-drawn junk-RNG batches must make wrong-path fetch a pure
    function of the seed: two identical runs share every squashed
    instruction and land on the same fingerprint."""
    runs = []
    for _ in range(2):
        proc = build_processor(
            mix=APPS, seed=SEED, policy="brcount", quantum_cycles=512
        )
        proc.run_quanta(3)
        runs.append((proc.fingerprint(), proc.stats.squashed))
    assert runs[0] == runs[1]
    assert runs[0][1] > 0, "workload must exercise wrong-path fetch"


def _batch_cells_for(heuristics=(), policies=(), extra=()):
    """BatchCells mirroring the golden workloads plus ``extra`` samples."""
    from repro.smt.batch import BatchCell

    cells = [
        BatchCell(
            mix=APPS, seed=SEED, quantum_cycles=512, quanta=6,
            warmup_quanta=0, mode="adts", heuristic=h,
            thresholds=ThresholdConfig(ipc_threshold=2.0),
        )
        for h in heuristics
    ] + [
        BatchCell(
            mix=APPS, seed=SEED, quantum_cycles=512, quanta=3,
            warmup_quanta=0, mode="fixed", policy=p,
        )
        for p in policies
    ]
    cells.extend(extra)
    return cells


def test_batch_engine_matches_goldens():
    """One lockstep batch over every golden workload — all five ADTS
    heuristics and a sample of fixed policies, plus off-golden (mix, seed)
    cells cross-checked against fresh sequential runs.  The batch engine
    must land every cell on the exact sequential fingerprint."""
    from repro.smt.batch import BatchCell, run_batch_cells

    extra = [
        BatchCell(mix="mix05", seed=3, quantum_cycles=512, quanta=4,
                  warmup_quanta=0, mode="adts", heuristic="type3",
                  thresholds=ThresholdConfig(ipc_threshold=2.0)),
        BatchCell(mix="mix07", seed=2, quantum_cycles=512, quanta=4,
                  warmup_quanta=0, mode="fixed", policy="icount"),
    ]
    cells = _batch_cells_for(
        heuristics=sorted(ADTS_GOLDENS),
        policies=["icount", "brcount", "accipc"],
        extra=extra,
    )
    results = run_batch_cells(cells)
    assert [r.index for r in results] == list(range(len(cells)))
    for r in results[:5]:
        assert r.fingerprint == ADTS_GOLDENS[r.cell.heuristic], r.cell.heuristic
    for r in results[5:8]:
        assert r.fingerprint == POLICY_GOLDENS[r.cell.policy], r.cell.policy

    def sequential(cell):
        hook = None
        if cell.mode == "adts":
            hook = ADTSController(heuristic=cell.heuristic,
                                  thresholds=cell.thresholds)
        proc = build_processor(
            mix=cell.mix, seed=cell.seed,
            policy="icount" if cell.mode == "adts" else cell.policy,
            hook=hook, quantum_cycles=cell.quantum_cycles,
        )
        proc.run_quanta(cell.total_quanta())
        return proc.fingerprint()

    for r in results[8:]:
        assert r.fingerprint == sequential(r.cell), r.cell


def test_batch_composition_and_order_do_not_change_fingerprints():
    """Property: a cell's fingerprint is independent of its batchmates and
    of its position in the batch.  Sequential fingerprints are computed
    once; hypothesis then draws arbitrary multisets/orderings of the cell
    pool and every batched fingerprint must match its sequential value."""
    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    from repro.smt.batch import BatchCell, run_batch_cells

    pool = [
        BatchCell(mix=APPS, seed=SEED, quantum_cycles=512, quanta=2,
                  warmup_quanta=0, mode="adts", heuristic=h,
                  thresholds=ThresholdConfig(ipc_threshold=t))
        for h, t in [("type1", 2.0), ("type3", 2.0), ("type3", 99.0)]
    ] + [
        BatchCell(mix=APPS, seed=SEED, quantum_cycles=512, quanta=2,
                  warmup_quanta=0, mode="fixed", policy=p)
        for p in ("icount", "rr")
    ]
    expected = {}
    for i, cell in enumerate(pool):
        hook = None
        if cell.mode == "adts":
            hook = ADTSController(heuristic=cell.heuristic,
                                  thresholds=cell.thresholds)
        proc = build_processor(
            mix=cell.mix, seed=cell.seed,
            policy="icount" if cell.mode == "adts" else cell.policy,
            hook=hook, quantum_cycles=cell.quantum_cycles,
        )
        proc.run_quanta(cell.total_quanta())
        expected[i] = proc.fingerprint()

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.integers(min_value=0, max_value=len(pool) - 1),
                    min_size=1, max_size=6))
    def check(indices):
        results = run_batch_cells([pool[i] for i in indices])
        for pos, r in enumerate(results):
            assert r.fingerprint == expected[indices[pos]], (
                f"cell {indices[pos]} diverged in batch {indices}")

    check()


def test_trace_cache_replay_is_bit_identical(tmp_path):
    """Cold (recording) and warm (replaying) runs produce the same machine,
    and the warm run observably hits the cache."""
    from repro.workloads.tracecache import (
        active_trace_cache,
        flush_trace_cache,
        set_trace_cache,
    )

    previous = active_trace_cache()
    try:
        cache = set_trace_cache(tmp_path)

        def run():
            proc = build_processor(
                mix=APPS, seed=SEED, policy="icount", quantum_cycles=512
            )
            proc.run_quanta(3)
            return proc.fingerprint()

        cold = run()
        flush_trace_cache()
        assert cache.stats["misses"] == len(APPS)
        assert cache.stats["flushed_files"] == len(APPS)
        warm = run()
        flush_trace_cache()
        assert warm == cold
        assert cache.stats["hits"] == len(APPS)
        assert cache.stats["replayed"] > 0
        assert cache.stats["overruns"] == 0
    finally:
        set_trace_cache(previous)


def test_trace_cache_overrun_extends_prefix(tmp_path):
    """A run that consumes past the recorded prefix falls back to live
    generation bit-identically, and the flush extends the file so the next
    run replays the longer prefix with no overrun."""
    from repro.workloads.tracecache import (
        active_trace_cache,
        flush_trace_cache,
        set_trace_cache,
    )

    previous = active_trace_cache()
    try:
        cache = set_trace_cache(tmp_path)

        def run(quanta):
            proc = build_processor(
                mix=APPS, seed=SEED, policy="icount", quantum_cycles=512
            )
            proc.run_quanta(quanta)
            return proc.fingerprint()

        run(1)  # record a short prefix
        flush_trace_cache()
        overrun_fp = run(3)  # needs more than the prefix holds
        flush_trace_cache()
        assert cache.stats["overruns"] >= 1

        extended_fp = run(3)  # replays the extended file
        flush_trace_cache()
        assert extended_fp == overrun_fp

        set_trace_cache(None)
        fresh = build_processor(
            mix=APPS, seed=SEED, policy="icount", quantum_cycles=512
        )
        fresh.run_quanta(3)
        assert fresh.fingerprint() == overrun_fp
    finally:
        set_trace_cache(previous)
