"""The content-addressed result store: durable round trips, corrupt
entries served as misses (never as answers), crash-safe leases with
dead-PID breaking, the startup sweep, and the fsck taxonomy for store
entries and leases."""

import json
import os
import subprocess
import sys

import pytest

from repro.service import ResultStore, SimRequest
from repro.service.identity import canonical_fields, request_identity
from repro.storage import fsck_tree


def req(**kw):
    defaults = dict(
        request_id="r1", client="c", mix="mix05", mode="adts",
        quanta=5, warmup_quanta=1, seed=3,
    )
    defaults.update(kw)
    return SimRequest(**defaults)


def dead_pid() -> int:
    """A PID that certainly names no live process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    return proc.pid


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "rs", shards=3)


class TestEntries:
    def test_roundtrip_is_byte_identical(self, store):
        r = req()
        digest = request_identity(r)
        payload = {"ipc": 1.25, "switches": 4}
        assert store.put(digest, canonical_fields(r), payload)
        assert store.get(digest) == payload
        assert digest in store
        assert len(store) == 1
        assert store.counters["puts"] == 1
        assert store.counters["hits"] == 1

    def test_absent_entry_is_a_plain_miss(self, store):
        assert store.get("0" * 64) is None
        assert store.counters["misses"] == 1
        assert store.counters["corrupt_misses"] == 0

    def test_bitrot_is_a_quarantined_miss(self, store):
        r = req()
        digest = request_identity(r)
        store.put(digest, canonical_fields(r), {"ipc": 1.0})
        path = store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert store.get(digest) is None
        assert store.counters["corrupt_misses"] == 1
        assert not path.exists()  # moved aside, not re-served
        assert path.with_name(path.name + ".corrupt").exists()

    def test_mislabeled_entry_is_a_quarantined_miss(self, store):
        """A checksum-valid document filed under the wrong digest must
        never be served: it would answer a different simulation."""
        r = req()
        digest = request_identity(r)
        store.put(digest, canonical_fields(r), {"ipc": 1.0})
        wrong = ("f" * 8) + digest[8:]
        os.makedirs(store.segment(wrong), exist_ok=True)
        os.replace(store.path_for(digest), store.path_for(wrong))
        assert store.get(wrong) is None
        assert store.counters["corrupt_misses"] == 1

    def test_segments_partition_by_digest(self, store):
        digests = []
        for seed in range(8):
            r = req(seed=seed)
            d = request_identity(r)
            store.put(d, canonical_fields(r), {"ipc": float(seed)})
            digests.append(d)
        for d in digests:
            assert store.path_for(d).parent == store.segment(d)
            assert store.get(d) is not None


class TestLeases:
    def test_acquire_release_cycle(self, store):
        d = "a" * 64
        assert store.acquire_lease(d)
        assert store.lease_holder(d) == os.getpid()
        assert not store.acquire_lease(d)  # held (by a live process: us)
        store.release_lease(d)
        assert store.acquire_lease(d)

    def test_dead_holder_is_broken_at_acquire(self, store):
        d = "b" * 64
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path(d).write_text(str(dead_pid()))
        assert store.lease_stale(d)
        assert store.acquire_lease(d)  # broke it, took it
        assert store.lease_holder(d) == os.getpid()
        assert store.counters["lease_breaks"] == 1

    def test_unstamped_lease_is_live_at_runtime(self, store):
        """A lease file with no PID yet belongs to a racing acquirer that
        has not stamped it; runtime callers must not break it."""
        d = "c" * 64
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path(d).write_text("")
        assert not store.lease_stale(d)
        assert not store.acquire_lease(d)

    def test_startup_sweep_breaks_dead_and_unstamped_only(self, store):
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path("d" * 64).write_text(str(dead_pid()))
        store.lease_path("e" * 64).write_text("")  # crashed mid-acquire
        store.lease_path("f" * 64).write_text(str(os.getpid()))  # live
        assert store.break_stale_leases() == 2
        assert not store.lease_path("d" * 64).exists()
        assert not store.lease_path("e" * 64).exists()
        assert store.lease_path("f" * 64).exists()
        assert store.counters["stale_leases_broken"] == 2


class TestFsckTaxonomy:
    def test_healthy_entry_and_live_lease_pass(self, store):
        r = req()
        d = request_identity(r)
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        assert store.acquire_lease(d)
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 0
        assert report.counts.get("healthy") == 1
        assert store.lease_path(d).exists()  # live lease left alone

    def test_mislabeled_entry_quarantined_by_fsck(self, store):
        r = req()
        d = request_identity(r)
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        path = store.path_for(d)
        doc = json.loads(path.read_bytes())
        # Tamper with the identity, then re-seal the CRC so only the
        # content-address check can catch it.
        from repro.storage import embed_json_artifact

        doc.pop("artifact")
        doc["identity"] = "f" * 64
        sealed = embed_json_artifact(doc, "sim-result", 1)
        path.write_text(json.dumps(sealed))
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 1
        assert any(
            e.status == "corrupt" and e.action == "quarantined"
            for e in report.entries
        )

    def test_filename_mismatch_quarantined_by_fsck(self, store):
        r = req()
        d = request_identity(r)
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        wrong = ("0" * 8) + d[8:]
        os.makedirs(store.segment(wrong), exist_ok=True)
        os.replace(store.path_for(d), store.path_for(wrong))
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 1

    def test_dead_lease_removed_live_kept(self, store):
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path("a" * 64).write_text(str(dead_pid()))
        store.lease_path("b" * 64).write_text(str(os.getpid()))
        report = fsck_tree(store.root, repair=True)
        assert report.exit_code == 0  # stale-temp is repairable damage
        assert report.counts.get("stale-temp") == 1
        assert not store.lease_path("a" * 64).exists()
        assert store.lease_path("b" * 64).exists()


class TestIntegrity:
    def test_entries_default_to_unverified(self, store):
        r = req()
        d = request_identity(r)
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        assert store.integrity_of(d) == "unverified"
        assert store.get(d) == {"ipc": 1.0}

    def test_mark_verified_promotes_and_preserves_payload(self, store):
        r = req()
        d = request_identity(r)
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        assert store.mark_verified(d) is True
        assert store.integrity_of(d) == "verified"
        assert store.get(d) == {"ipc": 1.0}
        assert store.counters["verified_marks"] == 1
        assert store.mark_verified("f" * 64) is False  # absent digest

    def test_quarantine_divergent_evicts_and_keeps_both_payloads(self, store):
        r = req()
        d = request_identity(r)
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        path = store.quarantine_divergent(
            d, canonical_fields(r),
            primary_payload={"ipc": 1.0}, shadow_payload={"ipc": 2.0},
            detail="disagreement",
        )
        assert path == store.divergent_path(d) and path.exists()
        assert store.get(d) is None  # a miss: the caller re-simulates
        from repro.storage import load_json_artifact

        _, doc = load_json_artifact(path, expect_format="sim-divergence")
        assert doc["primary"] == {"ipc": 1.0}
        assert doc["shadow"] == {"ipc": 2.0}
        summary = store.integrity_summary()
        assert summary["divergent_evidence"] == 1
        assert summary["divergent_live"] == 0

    def test_live_entry_with_bad_integrity_status_is_a_corrupt_miss(
            self, store):
        from repro.storage import embed_json_artifact

        r = req()
        d = request_identity(r)
        sealed = embed_json_artifact(
            {"identity": d, "request": canonical_fields(r),
             "payload": {"ipc": 1.0}, "integrity": "divergent"},
            "sim-result", 1,
        )
        path = store.path_for(d)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(sealed))
        assert store.integrity_summary()["divergent_live"] == 1
        assert store.get(d) is None  # never served
        assert store.counters["corrupt_misses"] == 1
        assert not path.exists()  # quarantined away

    def test_put_rejects_unknown_integrity(self, store):
        with pytest.raises(ValueError):
            store.put("a" * 64, {}, {"ipc": 1.0}, integrity="divergent")

    def test_peek_has_no_side_effects(self, store):
        r = req()
        d = request_identity(r)
        assert store.peek(d) is None
        store.put(d, canonical_fields(r), {"ipc": 1.0})
        assert store.peek(d) == {"ipc": 1.0}
        assert store.counters["hits"] == 0
        assert store.counters["misses"] == 0


class TestConcurrentSweep:
    def test_two_sweepers_race_without_errors_or_double_counting(
            self, tmp_path):
        """Regression: two front doors restarting over one store sweep the
        same stale leases concurrently. Every dead lease must end up gone,
        exactly one sweeper counts each, and neither raises."""
        import threading

        root = tmp_path / "shared-rs"
        a = ResultStore(root, shards=3)
        b = ResultStore(root, shards=3)
        a.lease_dir.mkdir(parents=True, exist_ok=True)
        corpse = dead_pid()
        n = 50
        digests = [format(i, "064x") for i in range(n)]
        for d in digests:
            a.lease_path(d).write_text(str(corpse))
        live = "f" * 64
        a.lease_path(live).write_text(str(os.getpid()))

        results, errors = {}, []
        barrier = threading.Barrier(2)

        def sweep(name, store_obj):
            try:
                barrier.wait()
                results[name] = store_obj.break_stale_leases()
            except BaseException as exc:  # the bug under regression test
                errors.append(exc)

        threads = [
            threading.Thread(target=sweep, args=("a", a)),
            threading.Thread(target=sweep, args=("b", b)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert results["a"] + results["b"] == n  # each counted exactly once
        for d in digests:
            assert not a.lease_path(d).exists()
        assert a.lease_path(live).exists()  # the live lease survived both
