"""Tests for the hardware prefetchers."""

import pytest

from repro.memory.hierarchy import MemoryHierarchy
from repro.memory.prefetch import NextLinePrefetcher, StridePrefetcher


class TestNextLine:
    def test_rejects_bad_degree(self):
        with pytest.raises(ValueError):
            NextLinePrefetcher(0)

    def test_prefetches_next_lines(self):
        p = NextLinePrefetcher(degree=2)
        out = p.on_miss(0x1000)
        assert out == [0x1040, 0x1080]
        assert p.issued == 2

    def test_line_alignment(self):
        p = NextLinePrefetcher()
        assert p.on_miss(0x1008) == [0x1040]

    def test_reset(self):
        p = NextLinePrefetcher()
        p.on_miss(0)
        p.reset()
        assert p.issued == 0


class TestStride:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)
        with pytest.raises(ValueError):
            StridePrefetcher(table_entries=0)

    def test_needs_two_confirming_strides(self):
        p = StridePrefetcher(degree=1)
        assert p.on_miss(0x1000) == []  # allocate
        assert p.on_miss(0x1040) == []  # learn stride
        assert p.on_miss(0x1080) == [0x10C0]  # confirmed: prefetch ahead

    def test_stride_change_resets_confidence(self):
        p = StridePrefetcher(degree=1)
        p.on_miss(0x1000)
        p.on_miss(0x1040)
        p.on_miss(0x1080)
        assert p.on_miss(0x1200) == []  # broken stride
        assert p.on_miss(0x1240) == []  # relearn (one confirmation needed)
        assert p.on_miss(0x1280) != []

    def test_regions_tracked_independently(self):
        p = StridePrefetcher(degree=1)
        for base in (0x10000, 0x20000):
            p.on_miss(base)
            p.on_miss(base + 0x40)
        assert p.on_miss(0x10000 + 0x80) != []
        assert p.on_miss(0x20000 + 0x80) != []

    def test_table_bounded(self):
        p = StridePrefetcher(table_entries=4)
        for i in range(16):
            p.on_miss(i << 12)
        assert len(p._table) <= 4


class TestHierarchyIntegration:
    def test_prefetch_fills_l2(self):
        h = MemoryHierarchy(prefetcher=NextLinePrefetcher())
        h.load(0x5000, 0)
        assert h.prefetch_fills >= 1
        assert h.l2.contains(0x5040)

    def test_streaming_benefits_from_stride_prefetch(self):
        import numpy as np

        from repro.workloads.addrgen import DataAddressGenerator
        from repro.workloads.profiles import get_profile

        def l2_miss_rate(prefetcher):
            h = MemoryHierarchy(prefetcher=prefetcher)
            g = DataAddressGenerator(get_profile("swim"), 0, np.random.default_rng(3))
            now = 0
            for _ in range(40_000):
                h.load(g.next_address(), now)
                now += 5
                h.tick(now)
            return h.l2.miss_rate

        base = l2_miss_rate(None)
        pref = l2_miss_rate(StridePrefetcher(degree=4))
        assert pref < base, "stride prefetch must cut swim's L2 miss rate"

    def test_config_plumbs_prefetcher(self):
        from repro import build_processor
        from repro.smt.config import SMTConfig

        for name in ("none", "nextline", "stride"):
            cfg = SMTConfig(num_threads=2, prefetcher=name)
            proc = build_processor(mix=["swim", "mgrid"], config=cfg,
                                   quantum_cycles=512)
            proc.run(1000)
            if name == "none":
                assert proc.hierarchy.prefetcher is None
            else:
                assert proc.hierarchy.prefetcher is not None

    def test_unknown_prefetcher_rejected(self):
        from repro.smt.config import SMTConfig

        with pytest.raises(ValueError):
            SMTConfig(prefetcher="oracle")
