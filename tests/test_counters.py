"""Tests for the per-thread hardware status counters."""

import pytest

from repro.smt.counters import CounterBank, ThreadCounters


class TestThreadCounters:
    def test_initial_state_zero(self):
        t = ThreadCounters(3)
        assert t.tid == 3
        assert t.icount == 0
        assert t.q_fetched == 0
        assert t.accumulated_ipc == 0.0

    def test_icount_sums_front_and_queues(self):
        t = ThreadCounters(0)
        t.front_end = 3
        t.iq_int = 5
        t.iq_fp = 2
        assert t.icount == 10

    def test_accumulated_ipc(self):
        t = ThreadCounters(0)
        t.total_committed = 50
        t.active_cycles = 100
        assert t.accumulated_ipc == pytest.approx(0.5)

    def test_decay_shrinks_windowed_signals(self):
        t = ThreadCounters(0)
        t.recent_l1i_misses = 10.0
        t.recent_stalls = 4.0
        t.decay(0.5)
        assert t.recent_l1i_misses == pytest.approx(5.0)
        assert t.recent_stalls == pytest.approx(2.0)

    def test_end_quantum_snapshots_and_clears(self):
        t = ThreadCounters(1)
        t.q_fetched = 100
        t.q_committed = 80
        t.q_l1d_misses = 7
        t.q_l1i_misses = 3
        t.q_loads = 20
        t.q_stores = 5
        snap = t.end_quantum()
        assert snap.tid == 1
        assert snap.fetched == 100
        assert snap.committed == 80
        assert snap.l1_misses == 10
        assert snap.mem_accesses == 25
        # All quantum counters reset.
        assert t.q_fetched == 0 and t.q_committed == 0 and t.q_l1d_misses == 0

    def test_end_quantum_preserves_live_state(self):
        t = ThreadCounters(0)
        t.front_end = 4
        t.total_committed = 99
        t.end_quantum()
        assert t.front_end == 4
        assert t.total_committed == 99

    def test_snapshot_as_dict(self):
        t = ThreadCounters(0)
        t.q_mispredicts = 2
        d = t.end_quantum().as_dict()
        assert d["mispredicts"] == 2
        assert "stall_cycles" in d


class TestCounterBank:
    def test_indexing_and_len(self):
        bank = CounterBank(4)
        assert len(bank) == 4
        assert bank[2].tid == 2
        assert [t.tid for t in bank] == [0, 1, 2, 3]

    def test_decay_all(self):
        bank = CounterBank(2)
        for t in bank:
            t.recent_stalls = 8.0
        bank.decay_all(0.25)
        assert all(t.recent_stalls == pytest.approx(2.0) for t in bank)

    def test_end_quantum_returns_all_snapshots(self):
        bank = CounterBank(3)
        bank[1].q_committed = 5
        snaps = bank.end_quantum()
        assert [s.tid for s in snaps] == [0, 1, 2]
        assert snaps[1].committed == 5

    def test_total_committed_this_quantum(self):
        bank = CounterBank(3)
        bank[0].q_committed = 5
        bank[2].q_committed = 7
        assert bank.total_committed_this_quantum() == 12
