"""The disk fault family: plan plumbing, injector behavior, telemetry.

Covers the `FaultPlan.disk_*` fields → `DiskFaultPlan` conversion, the
scheduler/disk family split (disk faults never install a scheduler-level
FaultInjector and never enter grid cell keys), the injector's seeded
per-operation draws, and the telemetry surfaced into run results.
"""

import pytest

from repro.faults import FaultPlan
from repro.storage.faultfs import (
    DiskFaultPlan,
    FaultFS,
    active_faultfs,
    faultfs_session,
    install_faultfs,
)


class TestPlanPlumbing:
    def test_disk_fields_map_to_disk_plan(self):
        plan = FaultPlan(
            seed=9,
            disk_torn_write_rate=0.1,
            disk_enospc_rate=0.2,
            disk_enospc_after_bytes=7,
            disk_rename_fail_rate=0.3,
            disk_bitrot_rate=0.05,
            disk_read_eio_rate=0.15,
            disk_slow_io_rate=0.01,
            disk_slow_io_seconds=0.001,
        )
        disk = plan.disk_plan()
        assert isinstance(disk, DiskFaultPlan)
        assert disk.seed == 9
        assert disk.torn_write_rate == 0.1
        assert disk.enospc_rate == 0.2
        assert disk.enospc_after_bytes == 7
        assert disk.rename_fail_rate == 0.3
        assert disk.bitrot_rate == 0.05
        assert disk.read_eio_rate == 0.15
        assert disk.slow_io_rate == 0.01
        assert disk.slow_io_seconds == 0.001

    def test_no_disk_rates_no_disk_plan(self):
        assert FaultPlan(counter_stale_rate=0.5).disk_plan() is None

    def test_family_split(self):
        disk_only = FaultPlan(disk_torn_write_rate=0.5)
        sched_only = FaultPlan(counter_stale_rate=0.5)
        both = FaultPlan(disk_torn_write_rate=0.5, counter_stale_rate=0.5)
        assert disk_only.any_enabled and not disk_only.any_scheduler_enabled
        assert disk_only.any_disk_enabled
        assert sched_only.any_scheduler_enabled and not sched_only.any_disk_enabled
        assert both.any_scheduler_enabled and both.any_disk_enabled

    def test_from_kinds_disk(self):
        plan = FaultPlan.from_kinds(["disk"], rate=0.4, seed=3)
        assert plan.disk_torn_write_rate == 0.4
        assert plan.disk_enospc_rate == 0.4
        assert plan.disk_rename_fail_rate == 0.4
        assert not plan.any_scheduler_enabled

    def test_all_excludes_disk(self):
        plan = FaultPlan.from_kinds(["all"], rate=0.4)
        assert not plan.any_disk_enabled
        assert plan.any_scheduler_enabled

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            DiskFaultPlan(torn_write_rate=1.5)
        with pytest.raises(ValueError):
            DiskFaultPlan(enospc_after_bytes=-1)
        with pytest.raises(ValueError):
            FaultPlan(disk_bitrot_rate=-0.1)


class TestSessionScoping:
    def test_session_restores_previous(self):
        outer = FaultFS(DiskFaultPlan(seed=0, torn_write_rate=0.5))
        install_faultfs(outer)
        try:
            inner_plan = DiskFaultPlan(seed=1, read_eio_rate=0.5)
            with faultfs_session(inner_plan) as inner:
                assert active_faultfs() is inner
                assert inner is not outer
            assert active_faultfs() is outer
        finally:
            install_faultfs(None)

    def test_none_session_runs_clean(self):
        outer = FaultFS(DiskFaultPlan(seed=0, torn_write_rate=0.5))
        install_faultfs(outer)
        try:
            with faultfs_session(None):
                assert active_faultfs() is None
            assert active_faultfs() is outer
        finally:
            install_faultfs(None)


class TestInjectorBehavior:
    def test_bitrot_flips_exactly_one_bit(self, tmp_path):
        import os

        ffs = FaultFS(DiskFaultPlan(seed=0, bitrot_rate=1.0))
        data = bytes(64)
        p = tmp_path / "f"
        fd = os.open(p, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            ffs.write(fd, data)
        finally:
            os.close(fd)
        landed = p.read_bytes()
        assert len(landed) == len(data)
        diff = [a ^ b for a, b in zip(landed, data)]
        flipped = [d for d in diff if d]
        assert len(flipped) == 1 and bin(flipped[0]).count("1") == 1
        assert ffs.counts == {"bitrot": 1}

    def test_summary_shape(self):
        ffs = FaultFS(DiskFaultPlan(seed=0, read_eio_rate=1.0))
        with pytest.raises(OSError):
            ffs.read_bytes("/nonexistent")
        s = ffs.summary()
        assert s == {
            "disk_faults_injected": 1,
            "disk_fault_counts": {"read_eio": 1},
        }

    def test_run_result_carries_disk_telemetry(self, tmp_path):
        """A faulted run surfaces its injection tally in the scheduler
        stats (keys disjoint from scheduler-fault telemetry)."""
        from repro.harness.runner import RunConfig, run_adts

        cfg = RunConfig(mix="mix01", quantum_cycles=256, quanta=2,
                        warmup_quanta=1, seed=0)
        plan = FaultPlan(seed=2, disk_slow_io_rate=0.0,
                         disk_read_eio_rate=0.2, disk_torn_write_rate=0.2)
        r = run_adts(cfg, fault_plan=plan)
        assert "disk_faults_injected" in r.scheduler
        assert "disk_fault_counts" in r.scheduler
        assert "faults_injected" not in r.scheduler  # no scheduler faults
