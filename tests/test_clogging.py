"""Tests for clogging-thread identification."""

from repro.core.clogging import identify_clogging_threads
from repro.smt.counters import QuantumSnapshot


def snap(tid, fetched=1000, committed=800, squashed=0, l1d=10, lsq=0):
    return QuantumSnapshot(
        tid=tid, fetched=fetched, committed=committed, cond_branches=100,
        branches=120, mispredicts=5, loads=200, stores=50, l1d_misses=l1d,
        l1i_misses=5, l2_misses=2, lsq_full=lsq, iq_full=0, reg_full=0,
        squashed=squashed, stall_cycles=50,
    )


class TestIdentifyClogging:
    def test_empty_input(self):
        assert identify_clogging_threads([]) == []

    def test_balanced_threads_not_clogging(self):
        reports = identify_clogging_threads([snap(t) for t in range(4)])
        assert not any(r.clogging for r in reports)

    def test_occupancy_hog_with_no_commits_flagged(self):
        snaps = [snap(t) for t in range(3)]
        snaps.append(snap(3, fetched=5000, committed=10))
        reports = identify_clogging_threads(snaps)
        assert reports[3].clogging
        assert "occupancy-vs-commit imbalance" in reports[3].reasons

    def test_wrong_path_storm_flagged(self):
        snaps = [snap(t) for t in range(3)]
        snaps.append(snap(3, fetched=4000, committed=100, squashed=3000))
        reports = identify_clogging_threads(snaps)
        assert reports[3].clogging
        assert "wrong-path storm" in reports[3].reasons

    def test_dcache_dominance_flagged(self):
        snaps = [snap(t, l1d=5) for t in range(3)]
        snaps.append(snap(3, committed=100, l1d=500))
        reports = identify_clogging_threads(snaps)
        assert reports[3].clogging
        assert "dcache-miss dominance" in reports[3].reasons

    def test_lsq_saturation_flagged(self):
        snaps = [snap(t) for t in range(3)]
        snaps.append(snap(3, committed=100, lsq=900))
        reports = identify_clogging_threads(snaps)
        assert reports[3].clogging
        assert "lsq saturation" in reports[3].reasons

    def test_high_occupancy_but_productive_not_flagged(self):
        # A thread can dominate occupancy if it also commits its share.
        snaps = [snap(t, fetched=500, committed=450) for t in range(3)]
        snaps.append(snap(3, fetched=4000, committed=3500))
        reports = identify_clogging_threads(snaps)
        assert not reports[3].clogging

    def test_shares_sum_to_one(self):
        reports = identify_clogging_threads([snap(t) for t in range(5)])
        assert abs(sum(r.occupancy_share for r in reports) - 1.0) < 1e-9
        assert abs(sum(r.commit_share for r in reports) - 1.0) < 1e-9
