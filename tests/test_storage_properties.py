"""Property-based damage tests: for ANY corruption (truncate / bit-flip /
garble at an arbitrary offset) of any artifact type, the storage layer must
stay *honest* — it either returns exactly the original data, or it reports
damage; it never silently returns wrong data. And ``repro fsck`` must
classify every damaged file into its taxonomy (no artifact is ever left
"unclassifiable") without crashing.

A flipped bit may land in slack bytes the consumer never interprets (zip
padding, JSON whitespace, the envelope's provenance field), so the
properties assert one-sidedly: *if* the load succeeds, the payload is
bit-identical to what was written.
"""

import json
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.harness.journal import RunJournal, _entry_crc, scan_journal_lines
from repro.smt.checkpoint import CheckpointError, load_checkpoint, parse_snapshot_payload
from repro.storage import (
    ArtifactError,
    StorageError,
    fsck_file,
    pack_artifact,
    unpack_artifact,
)
from repro.storage.fsck import STATUSES

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _damage(blob: bytes, mode: str, offset: int, garbage: bytes) -> bytes:
    """Apply one corruption at a blob-relative offset."""
    if not blob:
        return garbage
    offset %= len(blob)
    if mode == "truncate":
        return blob[:offset]
    if mode == "flip":
        out = bytearray(blob)
        out[offset] ^= 1 << (offset % 8)
        return bytes(out)
    # garble: overwrite a window with arbitrary bytes
    return blob[:offset] + garbage + blob[offset + len(garbage):]


_DAMAGE = st.tuples(
    st.sampled_from(["truncate", "flip", "garble"]),
    st.integers(min_value=0, max_value=10_000),
    st.binary(min_size=1, max_size=16),
)


class TestEnvelopeHonesty:
    @given(payload=st.binary(min_size=0, max_size=300), damage=_DAMAGE)
    @_SETTINGS
    def test_unpack_never_returns_wrong_payload(self, payload, damage):
        """Any corruption of an enveloped artifact either surfaces as
        ArtifactError or leaves the payload bit-identical (the flip landed
        outside what the checksum protects is impossible — CRC covers the
        whole payload; it can land in ignored header slack only)."""
        blob = pack_artifact("prop-test", 1, payload)
        bad = _damage(blob, *damage)
        try:
            _, out = unpack_artifact(bad)
        except ArtifactError:
            return  # honest: damage was reported
        assert out == payload  # honest: data survived bit-for-bit

    @given(payload=st.binary(min_size=0, max_size=300), damage=_DAMAGE)
    @_SETTINGS
    def test_fsck_always_classifies(self, payload, damage, tmp_path):
        blob = _damage(pack_artifact("prop-test", 1, payload), *damage)
        p = tmp_path / "artifact.snap"
        p.write_bytes(blob)
        entry = fsck_file(p, repair=False)
        assert entry is not None and entry.status in STATUSES


class TestCheckpointHonesty:
    @given(damage=_DAMAGE, data=st.binary(min_size=1, max_size=200))
    @_SETTINGS
    def test_parse_snapshot_honest(self, damage, data):
        """A damaged checkpoint frame either raises CheckpointError or
        yields the original pickled payload exactly."""
        from repro.storage import pack_artifact as pack

        blob = pack("smt-checkpoint", 2, data)
        bad = _damage(blob, *damage)
        try:
            out = parse_snapshot_payload("prop.snap", bad)
        except CheckpointError:
            return
        assert out == data

    @given(damage=_DAMAGE)
    @_SETTINGS
    def test_damaged_checkpoint_load_is_honest(self, damage, tmp_path):
        """load_checkpoint on a damaged file either raises CheckpointError
        or returns the snapshot unchanged — never silently wrong data."""
        import pickle

        from repro.smt.checkpoint import CHECKPOINT_FORMAT, CHECKPOINT_VERSION
        from repro.storage import write_artifact

        meta = {"kind": "adts", "mix": "mix01", "seed": 0}
        bundle = {"processor": "sentinel-state", "controller": None,
                  "injector": None, "quantum_index": 7, "cycle": 4480,
                  "meta": meta}
        path = tmp_path / "cell.snap"
        write_artifact(path, CHECKPOINT_FORMAT, CHECKPOINT_VERSION,
                       pickle.dumps(bundle))
        blob = path.read_bytes()
        path.write_bytes(_damage(blob, *damage))
        try:
            loaded = load_checkpoint(path, expect_meta=meta)
        except CheckpointError:
            return  # honest: damage (or mismatch) was reported
        assert loaded.quantum_index == 7
        assert loaded.processor == "sentinel-state"


class TestJournalHonesty:
    _ENTRIES = st.lists(
        st.tuples(
            st.text(st.characters(codec="ascii", exclude_characters='\n\r'),
                    min_size=1, max_size=12),
            st.dictionaries(st.sampled_from(["ipc", "switches", "x"]),
                            st.floats(allow_nan=False, allow_infinity=False) | st.integers(-10, 10),
                            max_size=3),
        ),
        min_size=1, max_size=6, unique_by=lambda kv: kv[0],
    )

    @given(entries=_ENTRIES, damage=_DAMAGE)
    @_SETTINGS
    def test_recover_never_invents_records(self, entries, damage, tmp_path):
        """Every record recover() returns must be one that was actually
        written (key and payload both) — salvage can lose damaged records
        but can never fabricate or mutate one."""
        import tempfile

        # fresh dir per example: hypothesis reuses the function-scoped
        # tmp_path, and a journal must not accumulate across examples
        path = Path(tempfile.mkdtemp(dir=tmp_path)) / "j.jsonl"
        written = {}
        j = RunJournal(path)
        for key, payload in entries:
            j.record(key, payload)
            written[key] = json.loads(json.dumps(payload, default=str))
        j.close()
        blob = path.read_bytes()
        path.write_bytes(_damage(blob, *damage))
        j2 = RunJournal(path)
        j2.recover()
        for key in list(written):
            got = j2.get(key)
            if got is not None:
                assert got == written[key]
        j2.close()

    @given(entries=_ENTRIES, damage=_DAMAGE)
    @_SETTINGS
    def test_scan_classifies_and_fsck_survives(self, entries, damage, tmp_path):
        import tempfile

        path = Path(tempfile.mkdtemp(dir=tmp_path)) / "j.jsonl"
        j = RunJournal(path)
        for key, payload in entries:
            j.record(key, payload)
        j.close()
        blob = path.read_bytes()
        path.write_bytes(_damage(blob, *damage))
        entry = fsck_file(path, repair=False)
        assert entry is not None and entry.status in STATUSES

    @given(entries=_ENTRIES)
    @_SETTINGS
    def test_undamaged_journal_roundtrips(self, entries, tmp_path):
        import tempfile

        path = Path(tempfile.mkdtemp(dir=tmp_path)) / "j.jsonl"
        j = RunJournal(path)
        for key, payload in entries:
            j.record(key, payload)
        j.close()
        j2 = RunJournal(path)
        assert j2.load() == len(entries)
        for key, payload in entries:
            assert j2.get(key) == json.loads(json.dumps(payload, default=str))
        j2.close()
        assert fsck_file(path, repair=False).status == "healthy"
