"""Tests for the fast quantum-level model."""

import numpy as np
import pytest

from repro.core.thresholds import ThresholdConfig
from repro.fastmodel import (
    DEFAULT_CONSTANTS,
    FastMixModel,
    fast_run_adts,
    fast_run_fixed,
)
from repro.workloads import mix_names

QUANTA = 48


class TestFastMixModel:
    def test_quantum_advances_index(self):
        m = FastMixModel("mix01", seed=0)
        m.run_quantum("icount")
        m.run_quantum("icount")
        assert m.quantum_index == 2

    def test_ipc_positive_and_bounded(self):
        m = FastMixModel("mix05", seed=0)
        for _ in range(30):
            ipc, obs = m.run_quantum("icount")
            assert 0.0 < ipc < 8.0
            assert obs.l1_miss_rate >= 0
            assert obs.cond_branch_rate >= 0

    def test_deterministic(self):
        a = [FastMixModel("mix05", seed=3).run_quantum("icount")[0] for _ in range(1)]
        m1 = FastMixModel("mix05", seed=3)
        m2 = FastMixModel("mix05", seed=3)
        s1 = [m1.run_quantum("icount")[0] for _ in range(20)]
        s2 = [m2.run_quantum("icount")[0] for _ in range(20)]
        assert s1 == s2

    def test_explicit_app_list_accepted(self):
        m = FastMixModel(["gzip", "mcf"], seed=0)
        ipc, _ = m.run_quantum("icount")
        assert ipc > 0

    def test_memory_mix_slower_than_cpu_mix(self):
        mem = fast_run_fixed("mix10", "icount", quanta=QUANTA).ipc
        cpu = fast_run_fixed("mix09", "icount", quanta=QUANTA).ipc
        assert cpu > mem

    def test_phase_chains_evolve(self):
        m = FastMixModel("mix02", seed=1)  # branchy profiles with phases
        names = set()
        for _ in range(300):
            m.run_quantum("icount")
            names.update(t.phase.name for t in m.threads)
        assert len(names) > 1


class TestFixedPolicyShapes:
    def test_icount_best_fixed_on_average(self):
        mixes = mix_names()
        means = {
            p: float(np.mean([fast_run_fixed(m, p, quanta=QUANTA).ipc for m in mixes]))
            for p in ("icount", "brcount", "l1misscount", "rr")
        }
        assert means["icount"] == max(means.values())
        assert means["rr"] == min(means.values())

    def test_all_table1_policies_runnable(self):
        from repro.policies import POLICY_NAMES

        for p in POLICY_NAMES:
            assert fast_run_fixed("mix05", p, quanta=8).ipc > 0


class TestFastADTS:
    def test_switches_happen_under_high_threshold(self):
        r = fast_run_adts("mix05", "type3", ThresholdConfig(ipc_threshold=5.0), quanta=QUANTA)
        assert r.switches > 0
        assert sum(r.policy_usage.values()) == QUANTA

    def test_no_switches_under_zero_threshold(self):
        r = fast_run_adts("mix05", "type3", ThresholdConfig(ipc_threshold=0.0), quanta=QUANTA)
        assert r.switches == 0
        assert r.policy_usage == {"icount": QUANTA}

    def test_switch_count_monotone_in_threshold(self):
        counts = []
        for m in (1.0, 3.0, 5.0):
            total = sum(
                fast_run_adts(mix, "type3", ThresholdConfig(ipc_threshold=m), quanta=QUANTA).switches
                for mix in ("mix02", "mix05", "mix10")
            )
            counts.append(total)
        assert counts[0] <= counts[1] <= counts[2]
        assert counts[2] > counts[0]

    def test_benign_probability_bounds(self):
        r = fast_run_adts("mix05", "type1", ThresholdConfig(ipc_threshold=4.0), quanta=QUANTA)
        assert 0.0 <= r.benign_probability <= 1.0

    def test_all_heuristics_run(self):
        for h in ("type1", "type2", "type3", "type3g", "type4"):
            r = fast_run_adts("mix07", h, ThresholdConfig(ipc_threshold=3.0), quanta=24)
            assert r.ipc > 0

    def test_type3g_switches_no_more_than_type3(self):
        th = ThresholdConfig(ipc_threshold=4.0)
        t3 = sum(fast_run_adts(m, "type3", th, quanta=QUANTA).switches for m in ("mix02", "mix05"))
        t3g = sum(fast_run_adts(m, "type3g", th, quanta=QUANTA).switches for m in ("mix02", "mix05"))
        assert t3g <= t3  # the gradient hold can only suppress switches
