"""Tests for the synthetic trace generator."""

import collections

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.instruction import BRANCH, LOAD, STORE, SYSCALL
from repro.workloads.profiles import get_profile
from repro.workloads.tracegen import TraceGenerator, make_generators


def gen(name="gzip", tid=0, seed=0):
    return TraceGenerator(get_profile(name), tid, np.random.default_rng(seed))


class TestStreamStructure:
    def test_seq_strictly_increasing(self):
        g = gen()
        seqs = [i.seq for i in g.take(500)]
        assert seqs == list(range(500))

    def test_deps_always_older_than_self(self):
        g = gen("mcf", seed=3)
        for i in g.take(3000):
            assert i.dep1 < i.seq
            assert i.dep2 < i.seq

    def test_deps_never_below_minus_one(self):
        g = gen(seed=4)
        for i in g.take(1000):
            assert i.dep1 >= -1 and i.dep2 >= -1

    def test_branch_terminates_every_block(self):
        g = gen(seed=5)
        gap = 0
        max_gap = 0
        for i in g.take(3000):
            if i.kind == BRANCH:
                max_gap = max(max_gap, gap)
                gap = 0
            else:
                gap += 1
        assert max_gap < 200  # geometric tail, but branches keep coming

    def test_branch_density_tracks_profile(self):
        g = gen("gzip")  # avg_block 7
        kinds = collections.Counter(i.kind for i in g.take(6000))
        density = kinds[BRANCH] / 6000
        assert density == pytest.approx(1 / 7, rel=0.3)

    def test_memory_density_tracks_profile(self):
        p = get_profile("swim")
        g = gen("swim")
        kinds = collections.Counter(i.kind for i in g.take(6000))
        assert kinds[LOAD] / 6000 == pytest.approx(p.load_frac, rel=0.35)
        assert kinds[STORE] / 6000 == pytest.approx(p.store_frac, rel=0.4)

    def test_fp_profile_emits_fp_ops(self):
        g = gen("lucas")
        assert any(i.is_fp for i in g.take(500))

    def test_int_profile_emits_no_fp(self):
        g = gen("gzip")
        assert not any(i.is_fp for i in g.take(2000))

    def test_loads_carry_addresses(self):
        g = gen("mcf")
        for i in g.take(2000):
            if i.kind in (LOAD, STORE):
                assert i.addr > 0
            elif i.kind != BRANCH:
                assert i.addr == 0

    def test_branches_carry_targets_when_taken(self):
        g = gen(seed=6)
        for i in g.take(3000):
            if i.kind == BRANCH and i.taken:
                assert i.target > 0

    def test_syscall_rate_small_but_present(self):
        g = gen("perlbmk", seed=7)  # syscall_rate 2e-5
        kinds = collections.Counter(i.kind for i in g.take(200_000))
        assert 0 <= kinds[SYSCALL] < 40


class TestPhases:
    def test_phases_change_over_time(self):
        g = gen("gcc", seed=8)  # branchy-phase profile
        seen = set()
        for _ in range(300_000):
            g.next_instruction()
            seen.add(g.phase.name)
            if len(seen) > 1:
                break
        assert len(seen) > 1, "phase transitions should occur"

    def test_single_phase_profile_stays_put(self):
        g = gen("vortex")  # no phases declared
        g.take(10_000)
        assert g.phase.name == "base"


class TestMakeGenerators:
    def test_one_generator_per_slot(self):
        gens = make_generators(["gzip", "mcf", "swim"], seed=0)
        assert [g.tid for g in gens] == [0, 1, 2]
        assert [g.profile.name for g in gens] == ["gzip", "mcf", "swim"]

    def test_same_app_in_two_slots_diverges(self):
        gens = make_generators(["gzip", "gzip"], seed=0)
        s0 = [i.kind for i in gens[0].take(300)]
        s1 = [i.kind for i in gens[1].take(300)]
        assert s0 != s1

    def test_reproducible_across_calls(self):
        a = make_generators(["gzip", "mcf"], seed=9)[0].take(200)
        b = make_generators(["gzip", "mcf"], seed=9)[0].take(200)
        assert [(i.kind, i.pc, i.addr) for i in a] == [(i.kind, i.pc, i.addr) for i in b]

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            make_generators(["not_a_program"])


@settings(max_examples=15, deadline=None)
@given(st.sampled_from(["gzip", "mcf", "swim", "crafty", "gcc"]), st.integers(0, 1000))
def test_trace_invariants_hold_for_any_profile_and_seed(name, seed):
    g = gen(name, seed=seed)
    prev_seq = -1
    for i in g.take(400):
        assert i.seq == prev_seq + 1
        prev_seq = i.seq
        assert i.dep1 < i.seq and i.dep2 < i.seq
        if i.kind == BRANCH and not i.cond:
            assert i.taken
