"""Tests for the detector-thread functional model."""

import pytest

from repro.core.detector import DetectorTask, DetectorThread


class TestDetectorThread:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            DetectorThread(width=0)

    def test_idle_slots_drive_progress(self):
        dt = DetectorThread(width=4)
        done = []
        dt.enqueue(DetectorTask("t", 10, on_complete=lambda at: done.append(at)), now=0)
        assert dt.busy
        assert dt.on_cycle(1, idle_slots=4) == 4
        assert dt.on_cycle(2, idle_slots=4) == 4
        assert not done
        assert dt.on_cycle(3, idle_slots=4) == 2  # last 2 instructions
        assert done == [3]
        assert not dt.busy

    def test_width_caps_consumption(self):
        dt = DetectorThread(width=2)
        dt.enqueue(DetectorTask("t", 100), now=0)
        assert dt.on_cycle(0, idle_slots=8) == 2

    def test_starvation_counted(self):
        dt = DetectorThread()
        dt.enqueue(DetectorTask("t", 10), now=0)
        dt.on_cycle(0, idle_slots=0)
        dt.on_cycle(1, idle_slots=0)
        assert dt.starved_cycles == 2
        assert dt.instructions_executed == 0

    def test_no_work_consumes_nothing(self):
        dt = DetectorThread()
        assert dt.on_cycle(0, idle_slots=8) == 0
        assert dt.active_cycles == 0

    def test_tasks_fifo(self):
        dt = DetectorThread(width=8)
        order = []
        dt.enqueue(DetectorTask("a", 8, on_complete=lambda at: order.append("a")), 0)
        dt.enqueue(DetectorTask("b", 8, on_complete=lambda at: order.append("b")), 0)
        dt.on_cycle(1, 8)
        dt.on_cycle(2, 8)
        assert order == ["a", "b"]

    def test_multiple_tasks_one_cycle(self):
        dt = DetectorThread(width=8)
        order = []
        dt.enqueue(DetectorTask("a", 2, on_complete=lambda at: order.append("a")), 0)
        dt.enqueue(DetectorTask("b", 2, on_complete=lambda at: order.append("b")), 0)
        assert dt.on_cycle(1, 8) == 4
        assert order == ["a", "b"]

    def test_instant_mode_completes_immediately(self):
        dt = DetectorThread(instant=True)
        done = []
        dt.enqueue(DetectorTask("t", 500, on_complete=lambda at: done.append(at)), now=7)
        assert done == [7]
        assert not dt.busy
        assert dt.instructions_executed == 500

    def test_task_latency_accounting(self):
        dt = DetectorThread(width=1)
        dt.enqueue(DetectorTask("t", 3), now=10)
        for cycle in (11, 12, 13):
            dt.on_cycle(cycle, 8)
        assert dt.completions[0].latency == 3
        assert dt.mean_task_latency() == pytest.approx(3.0)

    def test_backlog_instructions(self):
        dt = DetectorThread()
        dt.enqueue(DetectorTask("a", 10), 0)
        dt.enqueue(DetectorTask("b", 20), 0)
        assert dt.backlog_instructions == 30
        dt.on_cycle(1, 4)
        assert dt.backlog_instructions == 26

    def test_drop_all(self):
        dt = DetectorThread()
        dt.enqueue(DetectorTask("a", 10), 0)
        dt.enqueue(DetectorTask("b", 10), 0)
        assert dt.drop_all() == 2
        assert not dt.busy
        assert dt.backlog_instructions == 0

    def test_mean_latency_empty(self):
        assert DetectorThread().mean_task_latency() == 0.0

    def test_drop_all_mid_task_discards_partial_progress(self):
        dt = DetectorThread(width=4)
        done = []
        dt.enqueue(DetectorTask("t", 10, on_complete=lambda at: done.append(at)), now=0)
        dt.on_cycle(1, idle_slots=4)  # 4 of 10 instructions retired
        assert dt.drop_all() == 1
        assert dt.dropped_tasks == 1
        assert dt.dropped_instructions == 6  # only the unexecuted remainder
        assert not dt.busy
        # The dropped task's completion never fires, even with idle slots.
        assert dt.on_cycle(2, idle_slots=8) == 0
        assert not done
        assert not dt.completions

    def test_drop_all_telemetry_accumulates(self):
        dt = DetectorThread()
        dt.enqueue(DetectorTask("a", 10), 0)
        dt.drop_all()
        dt.enqueue(DetectorTask("b", 5), 0)
        dt.enqueue(DetectorTask("c", 5), 0)
        dt.drop_all()
        assert dt.dropped_tasks == 3
        assert dt.dropped_instructions == 20
        assert dt.drop_all() == 0  # empty queue: nothing more to count
        assert dt.dropped_tasks == 3

    def test_starvation_then_recovery(self):
        dt = DetectorThread(width=4)
        done = []
        dt.enqueue(DetectorTask("t", 4, on_complete=lambda at: done.append(at)), now=0)
        dt.on_cycle(1, idle_slots=0)
        dt.on_cycle(2, idle_slots=0)
        assert dt.starved_cycles == 2
        assert dt.on_cycle(3, idle_slots=4) == 4
        assert done == [3]
        # Starvation only counts while work is pending.
        dt.on_cycle(4, idle_slots=0)
        assert dt.starved_cycles == 2

    def test_instant_mode_mean_latency_is_zero(self):
        dt = DetectorThread(instant=True)
        dt.enqueue(DetectorTask("a", 100), now=3)
        dt.enqueue(DetectorTask("b", 200), now=9)
        assert len(dt.completions) == 2
        assert dt.mean_task_latency() == 0.0
        assert dt.starved_cycles == 0
