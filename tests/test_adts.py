"""Integration tests for the ADTS controller on the real pipeline."""

import pytest

from repro.core.adts import ADTSController
from repro.core.thresholds import ThresholdConfig


def controller(heuristic="type3", ipc_threshold=99.0, **kw):
    """Threshold 99 => every quantum is 'low throughput' (forces activity)."""
    return ADTSController(
        heuristic=heuristic,
        thresholds=ThresholdConfig(ipc_threshold=ipc_threshold),
        **kw,
    )


class TestADTSIntegration:
    def test_low_threshold_never_triggers(self, quick_proc):
        adts = controller(ipc_threshold=0.0)
        proc = quick_proc(hook=adts)
        proc.run_quanta(6)
        assert adts.low_throughput_quanta == 0
        assert adts.num_switches == 0
        assert proc.policy_name == "icount"

    def test_high_threshold_triggers_every_quantum(self, quick_proc):
        adts = controller(ipc_threshold=99.0)
        proc = quick_proc(hook=adts)
        proc.run_quanta(6)
        assert adts.low_throughput_quanta + adts.missed_decisions >= 5

    def test_switches_actually_change_pipeline_policy(self, quick_proc):
        adts = controller(heuristic="type1", ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(4)
        # Type 1 under constant low throughput ping-pongs icount/brcount.
        policies = {q.policy for q in proc.stats.quantum_history}
        assert "brcount" in policies

    def test_decision_log_records_reasons(self, quick_proc):
        adts = controller(ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(4)
        assert adts.decisions
        for log in adts.decisions:
            assert log.low_throughput
            assert log.incumbent
            assert log.reason

    def test_instant_dt_applies_same_quantum(self, quick_proc):
        adts = controller(heuristic="type1", ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(3)
        switched = [d for d in adts.decisions if d.switched]
        assert switched
        assert all(d.applied_at_cycle >= 0 for d in switched)

    def test_real_dt_has_latency(self, quick_proc):
        adts = controller(heuristic="type1", ipc_threshold=99.0)
        proc = quick_proc(hook=adts)
        proc.run_quanta(6)
        applied = [d for d in adts.decisions if d.applied_at_cycle >= 0]
        if applied:  # DT may starve entirely on a saturated machine
            boundaries = {q.start_cycle for q in proc.stats.quantum_history}
            assert any(d.applied_at_cycle not in boundaries for d in applied) or True
            assert adts.detector.instructions_executed > 0

    def test_ledger_counts_match_switches(self, quick_proc):
        adts = controller(ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(8)
        applied = sum(1 for d in adts.decisions if d.applied_at_cycle >= 0)
        assert adts.ledger.num_switches == applied

    def test_benign_probability_in_unit_interval(self, quick_proc):
        adts = controller(ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(8)
        assert 0.0 <= adts.benign_probability <= 1.0

    def test_summary_keys(self, quick_proc):
        adts = controller()
        proc = quick_proc(hook=adts)
        proc.run_quanta(2)
        s = adts.summary()
        for key in ("heuristic", "ipc_threshold", "switches", "benign_probability",
                    "missed_decisions", "dt_instructions", "dt_starved_cycles"):
            assert key in s

    def test_heuristic_instance_accepted(self, quick_proc):
        from repro.core.heuristics import Type2Heuristic

        adts = ADTSController(heuristic=Type2Heuristic())
        proc = quick_proc(hook=adts)
        proc.run_quanta(2)
        assert adts.heuristic.name == "type2"

    def test_type4_outcome_feedback_wired(self, quick_proc):
        adts = controller(heuristic="type4", ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(10)
        if adts.num_switches >= 2:
            entries = adts.heuristic.history._entries
            judged = sum(e.poscnt + e.negcnt for e in entries.values())
            assert judged >= 1

    def test_clogging_marks_written_to_flags(self, quick_proc):
        adts = controller(ipc_threshold=99.0, instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(8)
        marks = adts.flags.marked_for_suspension()
        assert isinstance(marks, list)  # may be empty on balanced mixes
        snapshot = adts.flags.snapshot()
        assert set(snapshot) == {0, 1, 2, 3}

    def test_busy_dt_skips_decisions(self, quick_proc):
        from repro.core.detector import DetectorTask, DetectorThread

        # Preload the DT with a backlog longer than several quanta: the
        # boundary decisions that arrive while it is busy must be skipped.
        dt = DetectorThread(width=1)
        dt.enqueue(DetectorTask("preload", 100_000), now=0)
        adts = ADTSController(
            heuristic="type3",
            thresholds=ThresholdConfig(ipc_threshold=99.0),
            detector=dt,
        )
        proc = quick_proc(hook=adts)
        proc.run_quanta(4)
        assert adts.missed_decisions > 0
        assert adts.num_switches == 0
