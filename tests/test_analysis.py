"""Tests for the analysis package."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.compare import (
    bootstrap_mean_diff,
    compare_fixed_vs_adaptive,
    paired_gain,
)
from repro.analysis.switching import (
    analyze_controller,
    policy_residency,
    switch_matrix,
    transition_quality,
)
from repro.analysis.timeseries import (
    detect_level_shifts,
    dominance_profile,
    moving_average,
)
from repro.core.history import SwitchEvent
from repro.smt.stats import QuantumRecord


class TestMovingAverage:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)

    def test_window_one_is_identity(self):
        xs = [1.0, 5.0, 3.0]
        assert moving_average(xs, 1) == xs

    def test_smooths(self):
        out = moving_average([0.0, 10.0, 0.0, 10.0], 2)
        assert out == [0.0, 5.0, 5.0, 5.0]

    def test_warmup_uses_available_prefix(self):
        out = moving_average([2.0, 4.0, 6.0], 10)
        assert out == [2.0, 3.0, 4.0]


class TestLevelShifts:
    def test_flat_series_no_shifts(self):
        assert detect_level_shifts([1.0] * 50) == []

    def test_step_detected(self):
        series = [1.0] * 30 + [3.0] * 30
        shifts = detect_level_shifts(series)
        assert shifts, "a 2x level step must be detected"
        assert 28 <= shifts[0] <= 36

    def test_short_series_empty(self):
        assert detect_level_shifts([1.0, 2.0]) == []

    def test_downward_step_detected(self):
        series = [3.0] * 30 + [1.0] * 30
        assert detect_level_shifts(series)


class TestDominanceProfile:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            dominance_profile({})

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            dominance_profile({"a": [1.0], "b": [1.0, 2.0]})

    def test_total_dominance(self):
        prof = dominance_profile({"a": [2.0, 2.0, 2.0], "b": [1.0, 1.0, 1.0]})
        assert prof.dominant_policy == "a"
        assert prof.dominance_ratio == 1.0
        assert prof.oracle_headroom() == pytest.approx(0.0)

    def test_alternating_dominance_gives_headroom(self):
        prof = dominance_profile({"a": [2.0, 1.0, 2.0, 1.0], "b": [1.0, 2.0, 1.0, 2.0]})
        assert prof.dominance_ratio == 0.5
        # Oracle gets 2.0 every quantum; fixed best gets 1.5.
        assert prof.oracle_headroom() == pytest.approx(2.0 / 1.5 - 1.0)
        assert prof.per_quantum_best == ["a", "b", "a", "b"]

    def test_mean_ipc_recorded(self):
        prof = dominance_profile({"a": [1.0, 3.0]})
        assert prof.mean_ipc["a"] == pytest.approx(2.0)


class TestSwitchAnalytics:
    def events(self):
        return [
            SwitchEvent(0, "icount", "brcount", 1.0, 1.5),
            SwitchEvent(2, "brcount", "icount", 1.5, 1.2),
            SwitchEvent(4, "icount", "brcount", 1.2, 1.0),
            SwitchEvent(6, "icount", "l1misscount", 1.0, None),
        ]

    def test_switch_matrix(self):
        m = switch_matrix(self.events())
        assert m[("icount", "brcount")] == 2
        assert m[("brcount", "icount")] == 1

    def test_transition_quality(self):
        q = transition_quality(self.events())
        ib = q[("icount", "brcount")]
        assert ib["benign"] == 1 and ib["malignant"] == 1
        assert ib["benign_probability"] == pytest.approx(0.5)
        il = q[("icount", "l1misscount")]
        assert il["pending"] == 1
        assert il["benign_probability"] == 0.0

    def test_policy_residency(self):
        history = [
            QuantumRecord(i, 0, 100, 100, policy)
            for i, policy in enumerate(["icount", "icount", "brcount"])
        ]
        assert policy_residency(history) == {"icount": 2, "brcount": 1}

    def test_analyze_controller_integration(self, quick_proc):
        from repro.core.adts import ADTSController
        from repro.core.thresholds import ThresholdConfig

        adts = ADTSController(heuristic="type1",
                              thresholds=ThresholdConfig(ipc_threshold=99.0),
                              instant_dt=True)
        proc = quick_proc(hook=adts)
        proc.run_quanta(6)
        report = analyze_controller(adts, proc.stats.quantum_history)
        assert report.num_switches == adts.num_switches
        assert sum(report.residency.values()) == 6
        assert report.as_dict()["num_switches"] == report.num_switches
        if report.matrix:
            assert report.most_common_transition() in report.matrix


class TestCompare:
    def test_paired_gain(self):
        assert paired_gain([1.0, 1.0], [1.1, 1.1]) == pytest.approx(0.1)
        assert paired_gain([0.0], [1.0]) == 0.0  # guard

    def test_bootstrap_interval_contains_point(self):
        point, lo, hi = bootstrap_mean_diff([1.0] * 20, [1.5] * 20, n_boot=200)
        assert lo <= point <= hi
        assert point == pytest.approx(0.5)

    def test_bootstrap_rejects_bad_ci(self):
        with pytest.raises(ValueError):
            bootstrap_mean_diff([1.0], [1.0], ci=1.5)

    def test_clear_difference_significant(self):
        rng = np.random.default_rng(0)
        base = rng.normal(1.0, 0.05, 40)
        treat = rng.normal(1.5, 0.05, 40)
        report = compare_fixed_vs_adaptive("mixX", base, treat)
        assert report.significant
        assert report.gain == pytest.approx(0.5, abs=0.1)

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(1)
        base = rng.normal(1.0, 0.2, 40)
        treat = rng.normal(1.0, 0.2, 40)
        report = compare_fixed_vs_adaptive("mixX", base, treat)
        assert not report.significant

    def test_as_dict(self):
        report = compare_fixed_vs_adaptive("m", [1.0] * 5, [1.2] * 5)
        d = report.as_dict()
        assert d["mix"] == "m" and "ci_lo" in d and "ci_hi" in d


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(0.1, 5.0), min_size=4, max_size=40))
def test_dominance_single_policy_identity(series):
    prof = dominance_profile({"only": series})
    assert prof.dominance_ratio == 1.0
    assert prof.oracle_headroom() == pytest.approx(0.0, abs=1e-9)
