"""Chaos test: kill real processes under a live journaled parallel sweep.

Gated behind ``REPRO_CHAOS=1`` (the CI chaos job sets it) because it spawns
CLI subprocesses and SIGKILLs them — too heavy and too Linux-specific for
the tier-1 suite.

Two scenarios, both asserting the end state is bit-identical to a clean
serial sweep:

1. **worker kill** — SIGKILL one supervised worker process mid-run; the
   supervisor must classify the crash, restart the cell, and finish with
   the correct aggregate (crash containment + restart).
2. **supervisor kill + resume** — SIGKILL the whole sweep mid-run, then
   rerun with ``--resume --workers``; journaled cells are served, the rest
   re-run, and the final aggregate matches (journal + flock release on
   death).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = [
    pytest.mark.skipif(
        os.environ.get("REPRO_CHAOS") != "1",
        reason="chaos tests only run with REPRO_CHAOS=1",
    ),
    pytest.mark.skipif(
        sys.platform != "linux",
        reason="worker discovery uses /proc",
    ),
]

import repro  # noqa: E402  (after the gate: only imported when running)
from repro.harness.experiments import ExperimentDefaults, experiment_fig8, run_grid  # noqa: E402
from repro.harness.runner import run_mix_average  # noqa: E402

SRC = str(Path(repro.__file__).resolve().parents[1])
MIXES = "mix01,mix02"
GRID_ARGS = [
    "grid", "--mixes", MIXES, "--quanta", "4", "--warmup", "1",
    "--quantum", "512", "--seed", "0", "--json",
]


def _expected_fig8():
    defaults = ExperimentDefaults(quantum_cycles=512, quanta=4, warmup_quanta=1, seed=0)
    mixes = MIXES.split(",")
    grid = run_grid(defaults, mixes=mixes)
    baseline = run_mix_average(mixes, defaults.base_run())["mean_ipc"]
    # Round-trip through JSON so dict keys (float thresholds) compare equal
    # with the CLI's JSON output.
    return json.loads(json.dumps(experiment_fig8(grid, baseline), default=str))


def _spawn(extra, cwd):
    env = {**os.environ, "PYTHONPATH": SRC}
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *GRID_ARGS, *extra],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=cwd,
    )


def _worker_pids(supervisor_pid, deadline_s=30.0):
    """Poll /proc for the supervisor's children (the cell workers)."""
    children_file = Path(f"/proc/{supervisor_pid}/task/{supervisor_pid}/children")
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            pids = [int(p) for p in children_file.read_text().split()]
        except (OSError, ValueError):
            pids = []
        if pids:
            return pids
        time.sleep(0.05)
    return []


def _assert_matches_expected(stdout, expected):
    got = json.loads(stdout)
    assert got["ipc_vs_threshold"] == expected["ipc_vs_threshold"]
    assert got["ipc_vs_type"] == expected["ipc_vs_type"]
    assert got["best_cell"] == expected["best_cell"]


def test_worker_sigkill_is_contained_and_retried(tmp_path):
    expected = _expected_fig8()
    journal = tmp_path / "grid.jsonl"
    proc = _spawn(["--workers", "2", "--retries", "2", "--journal", str(journal)],
                  cwd=tmp_path)
    try:
        victims = _worker_pids(proc.pid)
        assert victims, "no supervised workers appeared"
        os.kill(victims[0], signal.SIGKILL)
        stdout, stderr = proc.communicate(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == 0, stderr
    _assert_matches_expected(stdout, expected)
    # The supervisor must have *seen* the murder, not raced past it.
    assert "supervisor:" in stderr and "crash" in stderr, stderr


def test_supervisor_sigkill_then_resume_matches_serial(tmp_path):
    expected = _expected_fig8()
    journal = tmp_path / "grid.jsonl"

    first = _spawn(["--workers", "2", "--journal", str(journal)], cwd=tmp_path)
    try:
        # Let some cells land in the journal, then kill the whole sweep.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if journal.exists() and journal.stat().st_size > 0:
                break
            time.sleep(0.05)
        assert journal.exists(), "no journal entries before the kill"
        os.kill(first.pid, signal.SIGKILL)
        first.wait(timeout=60)
    finally:
        if first.poll() is None:
            first.kill()
            first.wait()

    done_before = sum(1 for line in journal.read_text().splitlines() if line.strip())
    assert done_before >= 1

    # flock died with the holder: the resume must start without a conflict.
    second = _spawn(["--workers", "2", "--resume", "--journal", str(journal)],
                    cwd=tmp_path)
    stdout, stderr = second.communicate(timeout=600)
    assert second.returncode == 0, stderr
    assert f"resuming: " in stderr, stderr
    _assert_matches_expected(stdout, expected)
