"""Tests for the Markdown report renderer."""

import json

import pytest

from repro.analysis.report_md import (
    md_series,
    md_table,
    render_grid,
    render_results_dir,
    render_table1,
)


class TestMdTable:
    def test_shape(self):
        text = md_table(["a", "b"], [[1, 2.5]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.500 |"

    def test_series(self):
        assert md_series("x", [1, 2], [0.5, 1.0]) == "`x`: 1=0.500, 2=1.000"


class TestRenderers:
    def test_render_table1(self):
        payload = {"rows": [{"policy": "icount", "mean_ipc": 2.0},
                            {"policy": "rr", "mean_ipc": 1.5}]}
        text = render_table1(payload)
        assert "icount" in text and "2.000" in text

    def test_render_grid(self):
        payload = {
            "experiment": "F8",
            "thresholds": [1.0, 2.0],
            "ipc_vs_threshold": {"type1": [1.9, 2.0]},
        }
        text = render_grid(payload)
        assert "type1" in text and "2.000" in text

    def test_render_results_dir(self, tmp_path):
        (tmp_path / "T1_table1.json").write_text(json.dumps(
            {"rows": [{"policy": "icount", "mean_ipc": 2.0}]}))
        (tmp_path / "F8_ipc_grid.json").write_text(json.dumps(
            {"experiment": "F8", "thresholds": [1.0],
             "ipc_vs_threshold": {"type1": [1.9]}}))
        (tmp_path / "misc.json").write_text(json.dumps({"headroom": 0.01}))
        doc = render_results_dir(tmp_path)
        assert "# Benchmark results" in doc
        assert "T1" in doc and "type1" in doc and "headroom" in doc

    def test_render_real_results(self):
        import pathlib

        real = pathlib.Path(__file__).resolve().parent.parent / "results"
        if not real.exists() or not list(real.glob("*.json")):
            pytest.skip("no benchmark results present")
        doc = render_results_dir(real)
        assert len(doc) > 500
