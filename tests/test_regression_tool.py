"""Tests for the golden-results regression tool."""

import json

import pytest

from repro.harness.regression import (
    Mismatch,
    RegressionReport,
    compare_to_goldens,
    save_goldens,
)


@pytest.fixture
def dirs(tmp_path):
    results = tmp_path / "results"
    goldens = tmp_path / "goldens"
    results.mkdir()
    return results, goldens


def write(results, name, payload):
    (results / name).write_text(json.dumps(payload))


class TestSaveGoldens:
    def test_snapshot_copies_files(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"x": 1})
        write(results, "b.json", {"y": 2})
        assert save_goldens(results, goldens) == 2
        assert json.loads((goldens / "a.json").read_text()) == {"x": 1}


class TestCompare:
    def test_identical_ok(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"ipc": 2.0, "series": [1, 2, 3]})
        save_goldens(results, goldens)
        report = compare_to_goldens(results, goldens)
        assert report.ok
        assert report.files_compared == 1
        assert "OK" in report.summary()

    def test_within_tolerance_ok(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"ipc": 2.00})
        save_goldens(results, goldens)
        write(results, "a.json", {"ipc": 2.04})  # 2 % drift
        assert compare_to_goldens(results, goldens, rel_tol=0.05).ok

    def test_beyond_tolerance_flagged(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"ipc": 2.0})
        save_goldens(results, goldens)
        write(results, "a.json", {"ipc": 2.5})
        report = compare_to_goldens(results, goldens, rel_tol=0.05)
        assert not report.ok
        assert report.mismatches[0].kind == "value"
        assert "$.ipc" in report.mismatches[0].path

    def test_abs_floor_protects_small_counts(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"switches": 0})
        save_goldens(results, goldens)
        write(results, "a.json", {"switches": 0.04})
        assert compare_to_goldens(results, goldens, rel_tol=0.05, abs_floor=1.0).ok

    def test_missing_and_extra_keys(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"x": 1, "y": 2})
        save_goldens(results, goldens)
        write(results, "a.json", {"x": 1, "z": 3})
        report = compare_to_goldens(results, goldens)
        kinds = {m.kind for m in report.mismatches}
        assert kinds == {"missing", "extra"}

    def test_missing_file(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"x": 1})
        save_goldens(results, goldens)
        (results / "a.json").unlink()
        report = compare_to_goldens(results, goldens)
        assert not report.ok
        assert report.mismatches[0].kind == "missing"

    def test_list_length_change(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"s": [1, 2, 3]})
        save_goldens(results, goldens)
        write(results, "a.json", {"s": [1, 2]})
        report = compare_to_goldens(results, goldens)
        assert any("len" in m.path for m in report.mismatches)

    def test_string_and_bool_exact(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"policy": "icount", "flag": True})
        save_goldens(results, goldens)
        write(results, "a.json", {"policy": "brcount", "flag": False})
        report = compare_to_goldens(results, goldens)
        assert len(report.mismatches) == 2

    def test_only_filter(self, dirs):
        results, goldens = dirs
        write(results, "a.json", {"x": 1})
        write(results, "b.json", {"x": 1})
        save_goldens(results, goldens)
        write(results, "b.json", {"x": 99})
        report = compare_to_goldens(results, goldens, only=["a.json"])
        assert report.ok

    def test_real_results_roundtrip(self, dirs, tmp_path):
        # The actual benchmark output format must survive the tool.
        import pathlib

        real = pathlib.Path(__file__).resolve().parent.parent / "results"
        if not real.exists() or not list(real.glob("*.json")):
            pytest.skip("no benchmark results present")
        goldens = tmp_path / "g2"
        n = save_goldens(real, goldens)
        report = compare_to_goldens(real, goldens)
        assert report.ok
        assert report.files_compared == n
