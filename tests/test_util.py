"""Unit and property tests for RandPool and SeedSequencer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.randpool import RandPool
from repro.util.seeds import SeedSequencer


class TestRandPool:
    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            RandPool(np.random.default_rng(0), batch=0)

    def test_uniform_in_range(self):
        pool = RandPool(np.random.default_rng(0), batch=64)
        for _ in range(500):  # crosses several batch refills
            u = pool.uniform()
            assert 0.0 <= u < 1.0

    def test_deterministic_given_seed(self):
        a = RandPool(np.random.default_rng(42))
        b = RandPool(np.random.default_rng(42))
        assert [a.uniform() for _ in range(100)] == [b.uniform() for _ in range(100)]

    def test_geometric_mean_approx(self):
        pool = RandPool(np.random.default_rng(1))
        draws = [pool.geometric(5.0) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(5.0, rel=0.1)

    def test_geometric_support_starts_at_one(self):
        pool = RandPool(np.random.default_rng(2))
        assert min(pool.geometric(3.0) for _ in range(5000)) == 1

    def test_geometric_degenerate_mean(self):
        pool = RandPool(np.random.default_rng(3))
        assert pool.geometric(0.5) == 1
        assert pool.geometric(1.0) == 1

    def test_integer_bounds(self):
        pool = RandPool(np.random.default_rng(4))
        vals = [pool.integer(10) for _ in range(2000)]
        assert min(vals) >= 0 and max(vals) <= 9
        assert len(set(vals)) == 10  # covers the range

    def test_integer_degenerate(self):
        pool = RandPool(np.random.default_rng(5))
        assert pool.integer(1) == 0
        assert pool.integer(0) == 0

    def test_bernoulli_rate(self):
        pool = RandPool(np.random.default_rng(6))
        hits = sum(pool.bernoulli(0.3) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.3, abs=0.02)


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=1.1, max_value=50.0))
def test_geometric_always_positive(mean):
    pool = RandPool(np.random.default_rng(0), batch=128)
    for _ in range(200):
        assert pool.geometric(mean) >= 1


class TestSeedSequencer:
    def test_same_names_same_stream(self):
        s = SeedSequencer(7)
        a = s.generator("x", 1).random(5)
        b = SeedSequencer(7).generator("x", 1).random(5)
        assert np.array_equal(a, b)

    def test_different_names_different_streams(self):
        s = SeedSequencer(7)
        a = s.generator("x", 1).random(5)
        b = s.generator("x", 2).random(5)
        assert not np.array_equal(a, b)

    def test_different_roots_different_streams(self):
        a = SeedSequencer(1).generator("x").random(5)
        b = SeedSequencer(2).generator("x").random(5)
        assert not np.array_equal(a, b)
