"""Tests for the command-line interface."""

import json

import pytest

from repro.harness.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        args_dict = vars(args)
        assert args_dict["mix"] == "mix07"
        assert args_dict["policy"] == "icount"

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])


class TestCommands:
    def test_policies_lists_ten(self, capsys):
        code, out = run_cli(capsys, "policies")
        assert code == 0
        assert len(out.strip().splitlines()) == 10
        assert "icount" in out

    def test_policies_json(self, capsys):
        code, out = run_cli(capsys, "policies", "--json")
        assert json.loads(out)["policies"][0] == "icount"

    def test_mixes_lists_thirteen(self, capsys):
        code, out = run_cli(capsys, "mixes")
        assert out.count("mix") >= 13

    def test_run_fixed(self, capsys):
        code, out = run_cli(capsys, "run", "mix09", "--quanta", "2",
                            "--warmup", "1", "--quantum", "512")
        assert code == 0
        assert "IPC" in out

    def test_run_adts_json(self, capsys):
        code, out = run_cli(capsys, "run", "mix09", "--adts", "--quanta", "2",
                            "--warmup", "1", "--quantum", "512", "--json")
        payload = json.loads(out)
        assert payload["ipc"] > 0
        assert payload["mode"] == "adts"

    def test_fastgrid(self, capsys):
        code, out = run_cli(capsys, "fastgrid", "--fast-quanta", "8")
        assert "IPC[type3]" in out

    def test_scaling_small(self, capsys):
        code, out = run_cli(capsys, "scaling", "mix09", "--quanta", "2",
                            "--warmup", "1", "--quantum", "512")
        assert "threads" in out
