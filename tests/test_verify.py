"""Shadow verification: the silent-corruption defense under test.

Headline guarantees:

* **Zero false positives** (the property suite): with no faults injected
  and a deterministic engine, verification at ANY sampling rate over ANY
  traffic never quarantines an entry and never parks an identity — a
  healthy system is never punished for being verified.
* **Every injected corruption is caught**: with the front door flipping a
  counter bit in every served result (``corrupt_rate=1.0``) and a 100%
  sampling rate, every tainted digest is detected, its store entry is
  evicted into a ``*.divergent`` evidence document, and best-2-of-3
  re-execution restores the clean value — a second replay of the same
  traffic re-serves nothing corrupt.
* Non-answers (shed / draining shadows) are ``inconclusive`` — never
  grounds for quarantine.
"""

import random
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.service import (
    INTEGRITY_UNVERIFIED,
    INTEGRITY_VERIFIED,
    ResultStore,
    ServiceConfig,
    ShardedService,
    SimRequest,
    VirtualClock,
    payload_digest,
)
from repro.service.identity import request_identity
from repro.service.verify import corrupt_payload


def req(i, *, seed=3, client="c", **kw):
    defaults = dict(
        request_id=f"r{i}", client=client, mix="mix05", mode="adts",
        quanta=5, warmup_quanta=1, seed=seed,
    )
    defaults.update(kw)
    return SimRequest(**defaults)


def ok_full(request):
    return {"ipc": 1.0 + request.seed, "switches": request.seed}


def make_front(tmp_path, clock, *, shards=2, verify_rate=1.0, plan=None,
               full_runner=ok_full, **front_kw):
    cfg = ServiceConfig(workers=0, queue_capacity=64, fault_plan=plan)
    return ShardedService(
        cfg,
        shards=shards,
        store=tmp_path / "rs",
        full_runner=full_runner,
        fast_runner=lambda r: {"ipc": 0.5},
        clock=clock,
        verify_rate=verify_rate,
        **front_kw,
    )


def settle(front, clock, budget_s=120.0):
    deadline = clock() + budget_s
    while front.pending > 0:
        front.pump()
        clock.advance(0.01)
        assert clock() < deadline, "front-door failed to go idle (hang)"
    return front.take_completed()


class TestDigestAndCorruption:
    def test_payload_digest_is_order_insensitive_and_value_sensitive(self):
        a = {"ipc": 1.5, "switches": 3}
        b = {"switches": 3, "ipc": 1.5}
        assert payload_digest(a) == payload_digest(b)
        assert payload_digest(a) != payload_digest({"ipc": 1.5, "switches": 4})

    def test_corrupt_payload_changes_digest_but_stays_finite(self):
        payload = {"ipc": 1.25, "switches": 7}
        bad = corrupt_payload(payload, random.Random(0))
        assert bad is not None
        assert payload_digest(bad) != payload_digest(payload)
        assert payload == {"ipc": 1.25, "switches": 7}  # input untouched
        changed = [k for k in payload if bad[k] != payload[k]]
        assert len(changed) == 1
        assert bad[changed[0]] == bad[changed[0]]  # not NaN
        assert abs(bad[changed[0]]) != float("inf")

    def test_corrupt_payload_returns_none_without_numeric_fields(self):
        assert corrupt_payload({"name": "mix05", "flag": True},
                               random.Random(0)) is None


class TestVerificationLifecycle:
    def test_clean_results_are_marked_verified(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        for i in range(4):
            front.submit(req(i, seed=i))
        settle(front, clock)
        assert front.verifier.counters["verified"] == 4
        assert front.verifier.counters["divergent"] == 0
        for i in range(4):
            digest = request_identity(req(i, seed=i))
            assert front.store.integrity_of(digest) == INTEGRITY_VERIFIED

    def test_sampling_is_seeded_and_partial(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock, verify_rate=0.5)
        for i in range(20):
            front.submit(req(i, seed=i))
        settle(front, clock)
        sampled = front.verifier.counters["sampled"]
        assert 0 < sampled < 20
        # Same seed, same draw: a second identical run samples identically.
        clock2 = VirtualClock()
        front2 = make_front(Path(tempfile.mkdtemp()), clock2, verify_rate=0.5)
        for i in range(20):
            front2.submit(req(i, seed=i))
        settle(front2, clock2)
        assert front2.verifier.counters["sampled"] == sampled

    def test_divergence_quarantines_restores_and_never_reserves(self, tmp_path):
        plan = FaultPlan.chaos_day(seed=0, rate=0.0, corrupt_rate=1.0)
        clock = VirtualClock()
        front = make_front(tmp_path, clock, plan=plan)
        for i in range(5):
            front.submit(req(i, seed=i))
        settle(front, clock)
        c = front.verifier.counters
        assert front.counters["results_corrupted"] == 5
        assert c["divergent"] == 5 and c["restored"] == 5
        evidence = list((tmp_path / "rs").glob("shard-*/*.divergent"))
        assert len(evidence) == 5
        audit = front.verification_audit()
        assert audit["ok"] and audit["caught"] == 5 and not audit["uncaught"]
        # The restored entries serve the CLEAN value: replay the same
        # traffic against a fresh front door over the same store.
        clock2 = VirtualClock()
        cfg = ServiceConfig(workers=0)
        replay = ShardedService(
            cfg, shards=2, store=tmp_path / "rs",
            full_runner=ok_full, clock=clock2,
        )
        for i in range(5):
            replay.submit(req(i, seed=i))
        out = settle(replay, clock2)
        assert replay.counters["store_hits"] == 5
        for r in out:
            i = int(r.request_id[1:])
            assert r.payload == ok_full(req(i, seed=i))

    def test_divergent_store_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "rs", shards=2)
        fields = {"mix": "mix05", "seed": 1}
        from repro.service.identity import fields_digest

        digest = fields_digest(fields)
        store.put(digest, fields, {"ipc": 1.0})
        assert store.get(digest) == {"ipc": 1.0}
        path = store.quarantine_divergent(
            digest, fields,
            primary_payload={"ipc": 1.0}, shadow_payload={"ipc": 2.0},
        )
        assert path is not None and path.exists()
        assert store.get(digest) is None  # evicted: future requests re-run
        assert store.counters["divergent_quarantines"] == 1

    def test_inconclusive_shadow_never_quarantines(self, tmp_path):
        # Drain immediately after submit: shadow probes dispatched into
        # draining shards come back refused — inconclusive, not divergent.
        plan = FaultPlan.chaos_day(seed=0, rate=0.0, corrupt_rate=1.0)
        clock = VirtualClock()
        front = make_front(tmp_path, clock, plan=plan)
        front.submit(req(0))
        front.drain(5.0)
        c = front.verifier.counters
        assert c["divergent"] + c["inconclusive"] + c["verified"] == c["sampled"]
        # Whatever was corrupted but not caught (shadow refused) is
        # reported by the audit as uncaught — the gate stays honest.
        audit = front.verification_audit()
        assert audit["ok"] == (not audit["uncaught"])


_TRAFFIC = st.lists(
    st.tuples(
        st.integers(0, 5),       # seed (identity diversity)
        st.sampled_from(["a", "b"]),
        st.booleans(),           # degradable
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(traffic=_TRAFFIC,
       verify_rate=st.sampled_from([0.25, 0.5, 1.0]),
       shards=st.integers(1, 3),
       dlq_threshold=st.sampled_from([0, 2]),
       seed=st.integers(0, 3))
def test_zero_fault_runs_never_quarantine_or_park(
        traffic, verify_rate, shards, dlq_threshold, seed):
    """False-positive safety: no faults -> no quarantines, no parkings.

    A deterministic engine plus a healthy store means every shadow
    re-execution must agree with its primary, whatever the sampling rate,
    shard count, traffic mix or DLQ threshold.
    """
    with tempfile.TemporaryDirectory() as tmp:
        clock = VirtualClock()
        front = ShardedService(
            ServiceConfig(workers=0, queue_capacity=64),
            shards=shards,
            store=Path(tmp) / "rs",
            full_runner=ok_full,
            fast_runner=lambda r: {"ipc": 0.5},
            clock=clock,
            verify_rate=verify_rate,
            verify_seed=seed,
            dlq_threshold=dlq_threshold,
        )
        for i, (rseed, client, degradable) in enumerate(traffic):
            front.submit(req(i, seed=rseed, client=client,
                             degradable=degradable))
        deadline = clock() + 120.0
        while front.pending > 0:
            front.pump()
            clock.advance(0.01)
            assert clock() < deadline
        front.drain(5.0)
        c = front.verifier.counters
        assert c["divergent"] == 0 and c["unresolved"] == 0
        assert front.verifier.quarantined == []
        assert front.counters["dlq_parked"] == 0
        assert front.counters["dlq_refused"] == 0
        if front.dlq is not None:
            assert len(front.dlq) == 0
        summary = front.store.integrity_summary()
        assert summary["divergent_live"] == 0
        assert summary["divergent_evidence"] == 0
        assert summary["invalid"] == 0
        audit = front.verification_audit()
        assert audit["ok"] and audit["uncaught"] == []
