"""Tests for the Type 1–4 policy-determination heuristics."""

import pytest

from repro.core.heuristics import (
    HEURISTICS,
    HEURISTIC_LABELS,
    Type1Heuristic,
    Type2Heuristic,
    Type3GradientHeuristic,
    Type3Heuristic,
    Type4Heuristic,
    create_heuristic,
)
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig


def obs(ipc=1.0, prev=None, l1=0.0, lsq=0.0, mis=0.0, cbr=0.0, index=0):
    # Default prev == ipc (flat gradient) so gradient-gated heuristics
    # behave like plain Type 3 unless a test sets the gradient explicitly.
    return QuantumObservation(
        index=index, cycles=1000, ipc=ipc, prev_ipc=ipc if prev is None else prev,
        l1_miss_rate=l1, lsq_full_rate=lsq, mispredict_rate=mis, cond_branch_rate=cbr,
    )


#: Thresholds where COND_MEM fires at l1 > 0.1 and COND_BR at mis > 0.01.
TH = ThresholdConfig(
    ipc_threshold=2.0, l1_miss_rate=0.1, lsq_full_rate=10.0,
    mispredict_rate=0.01, cond_branch_rate=10.0,
)

MEM_OBS = obs(l1=0.5)
BR_OBS = obs(mis=0.5)
BOTH_OBS = obs(l1=0.5, mis=0.5)
NEITHER_OBS = obs()


class TestRegistry:
    def test_five_heuristics(self):
        assert set(HEURISTICS) == {"type1", "type2", "type3", "type3g", "type4"}

    def test_labels_match_paper(self):
        assert HEURISTIC_LABELS["type3g"] == "Type 3'"

    def test_create_unknown(self):
        with pytest.raises(KeyError):
            create_heuristic("type9")

    def test_costs_grow_with_sophistication(self):
        costs = [HEURISTICS[n]().cost_instructions for n in
                 ("type1", "type2", "type3", "type3g", "type4")]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]


class TestType1:
    def test_flips_between_icount_and_brcount(self):
        h = Type1Heuristic(TH)
        d = h.decide("icount", NEITHER_OBS)
        assert d.next_policy == "brcount" and d.switched
        d = h.decide("brcount", NEITHER_OBS)
        assert d.next_policy == "icount" and d.switched

    def test_unknown_incumbent_falls_back(self):
        h = Type1Heuristic(TH)
        assert h.decide("rr", NEITHER_OBS).next_policy == "icount"

    def test_ignores_conditions(self):
        h = Type1Heuristic(TH)
        assert h.decide("icount", MEM_OBS).next_policy == "brcount"


class TestType2:
    def test_cycles_through_three_states(self):
        h = Type2Heuristic(TH)
        p = "icount"
        seen = []
        for _ in range(3):
            p = h.decide(p, NEITHER_OBS).next_policy
            seen.append(p)
        assert seen == ["l1misscount", "brcount", "icount"]

    def test_custom_sequence(self):
        h = Type2Heuristic(TH, sequence=("icount", "rr"))
        assert h.decide("icount", NEITHER_OBS).next_policy == "rr"

    def test_rejects_short_sequence(self):
        with pytest.raises(ValueError):
            Type2Heuristic(TH, sequence=("icount",))

    def test_unknown_incumbent_restarts_cycle(self):
        h = Type2Heuristic(TH)
        assert h.decide("accipc", NEITHER_OBS).next_policy == "icount"


class TestType3:
    def test_from_icount_cond_mem_goes_l1(self):
        h = Type3Heuristic(TH)
        assert h.decide("icount", MEM_OBS).next_policy == "l1misscount"

    def test_from_icount_cond_br_goes_brcount(self):
        h = Type3Heuristic(TH)
        assert h.decide("icount", BR_OBS).next_policy == "brcount"

    def test_from_icount_mem_takes_priority(self):
        h = Type3Heuristic(TH)
        assert h.decide("icount", BOTH_OBS).next_policy == "l1misscount"

    def test_from_icount_no_condition_stays(self):
        h = Type3Heuristic(TH)
        d = h.decide("icount", NEITHER_OBS)
        assert d.next_policy == "icount" and not d.switched

    def test_from_brcount_mem_goes_l1(self):
        h = Type3Heuristic(TH)
        assert h.decide("brcount", MEM_OBS).next_policy == "l1misscount"

    def test_from_brcount_no_mem_falls_back_icount(self):
        h = Type3Heuristic(TH)
        assert h.decide("brcount", BR_OBS).next_policy == "icount"

    def test_from_l1miss_br_goes_brcount(self):
        h = Type3Heuristic(TH)
        assert h.decide("l1misscount", BR_OBS).next_policy == "brcount"

    def test_from_l1miss_no_br_falls_back_icount(self):
        h = Type3Heuristic(TH)
        assert h.decide("l1misscount", MEM_OBS).next_policy == "icount"

    def test_never_rechooses_failing_incumbent(self):
        h = Type3Heuristic(TH)
        for incumbent in ("brcount", "l1misscount"):
            for o in (MEM_OBS, BR_OBS, BOTH_OBS, NEITHER_OBS):
                assert h.decide(incumbent, o).next_policy != incumbent


class TestType3Gradient:
    def test_positive_gradient_holds(self):
        h = Type3GradientHeuristic(TH)
        rising = obs(ipc=1.5, prev=1.0, l1=0.5)
        d = h.decide("icount", rising)
        assert not d.switched and "gradient" in d.reason

    def test_negative_gradient_behaves_like_type3(self):
        h = Type3GradientHeuristic(TH)
        falling = obs(ipc=1.0, prev=1.5, l1=0.5)
        assert h.decide("icount", falling).next_policy == "l1misscount"

    def test_flat_gradient_switches(self):
        h = Type3GradientHeuristic(TH)
        assert h.decide("icount", obs(ipc=1.0, prev=1.0, mis=0.5)).switched


class TestType4:
    def test_first_time_uses_regular_transition(self):
        h = Type4Heuristic(TH)
        assert h.decide("icount", BR_OBS).next_policy == "brcount"

    def test_bad_history_inverts_direction(self):
        h = Type4Heuristic(TH)
        # Teach it that icount->brcount under COND_BR goes badly.
        for _ in range(3):
            d = h.decide("icount", BR_OBS)
            h.record_outcome(False)
        d = h.decide("icount", BR_OBS)
        # Paper's example: the opposite of BRCOUNT (from ICOUNT) is
        # L1MISSCOUNT.
        assert d.next_policy == "l1misscount"
        assert "opposite" in d.reason

    def test_good_history_keeps_regular(self):
        h = Type4Heuristic(TH)
        d = h.decide("icount", BR_OBS)
        h.record_outcome(True)
        d = h.decide("icount", BR_OBS)
        assert d.next_policy == "brcount"

    def test_distinct_condition_cases_tracked_separately(self):
        h = Type4Heuristic(TH)
        h.decide("icount", BR_OBS)
        h.record_outcome(False)
        # Different condition signature: fresh history, regular transition.
        assert h.decide("icount", MEM_OBS).next_policy == "l1misscount"

    def test_gradient_hold_inherited(self):
        h = Type4Heuristic(TH)
        rising = obs(ipc=2.0, prev=1.0, mis=0.5)
        assert not h.decide("icount", rising).switched

    def test_reset_clears_history(self):
        h = Type4Heuristic(TH)
        h.decide("icount", BR_OBS)
        h.record_outcome(False)
        h.reset()
        assert len(h.history) == 0
