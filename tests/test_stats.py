"""Tests for simulation statistics."""

import pytest

from repro.smt.stats import QuantumRecord, SimStats


class TestQuantumRecord:
    def test_ipc(self):
        q = QuantumRecord(index=0, start_cycle=0, cycles=100, committed=250, policy="icount")
        assert q.ipc == pytest.approx(2.5)

    def test_zero_cycles(self):
        q = QuantumRecord(index=0, start_cycle=0, cycles=0, committed=0, policy="icount")
        assert q.ipc == 0.0


class TestSimStats:
    def test_fresh_stats_are_zero(self):
        s = SimStats()
        assert s.ipc == 0.0
        assert s.mispredict_rate == 0.0
        assert s.wrong_path_fraction == 0.0
        assert s.fetch_utilization == 0.0

    def test_derived_rates(self):
        s = SimStats(
            cycles=1000, committed=2000, fetched=3000, wrong_path_fetched=600,
            mispredicted_branches=30, cond_branches=300, idle_fetch_slots=5000,
        )
        assert s.ipc == pytest.approx(2.0)
        assert s.mispredict_rate == pytest.approx(0.1)
        assert s.wrong_path_fraction == pytest.approx(0.2)
        assert s.fetch_utilization == pytest.approx((3000 - 600) / 8000)

    def test_thread_ipc(self):
        s = SimStats(cycles=100, per_thread_committed={0: 50, 1: 150})
        assert s.thread_ipc(0) == pytest.approx(0.5)
        assert s.thread_ipc(1) == pytest.approx(1.5)
        assert s.thread_ipc(9) == 0.0

    def test_summary_keys(self):
        s = SimStats(cycles=10, committed=5)
        summary = s.summary()
        for key in ("cycles", "committed", "ipc", "mispredict_rate",
                    "wrong_path_fraction", "fetch_utilization", "syscalls"):
            assert key in summary
