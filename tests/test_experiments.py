"""Tests for the experiment definitions (tiny configurations)."""

import pytest

from repro.harness.experiments import (
    ExperimentDefaults,
    experiment_detector_overhead,
    experiment_fig7,
    experiment_fig8,
    experiment_headline,
    experiment_similarity,
    experiment_table1,
    experiment_thread_scaling,
    run_grid,
)

TINY = ExperimentDefaults(
    quantum_cycles=512,
    quanta=3,
    warmup_quanta=1,
    quick_mixes=("mix01", "mix10"),
    thresholds=(1.0, 9.0),
    heuristics=("type1", "type3"),
)


@pytest.fixture(scope="module")
def tiny_grid():
    return run_grid(TINY, quick=True)


class TestTable1:
    def test_structure(self):
        out = experiment_table1(TINY, quick=True, policies=("icount", "rr"))
        assert out["experiment"] == "T1"
        assert {r["policy"] for r in out["rows"]} == {"icount", "rr"}
        assert set(out["rows"][0]["per_mix"]) == {"mix01", "mix10"}
        # Sorted best-first.
        assert out["rows"][0]["mean_ipc"] >= out["rows"][1]["mean_ipc"]


class TestGridExperiments:
    def test_fig7_series_shapes(self, tiny_grid):
        out = experiment_fig7(tiny_grid)
        assert set(out["switches_vs_threshold"]) == {"type1", "type3"}
        assert len(out["switches_vs_threshold"]["type1"]) == 2
        assert set(out["benign_vs_type"]) == {1.0, 9.0}

    def test_fig8_series_and_best_cell(self, tiny_grid):
        out = experiment_fig8(tiny_grid, icount_baseline=1.0)
        assert len(out["ipc_vs_threshold"]["type3"]) == 2
        best = out["best_cell"]
        assert best["threshold"] in (1.0, 9.0)
        assert best["heuristic"] in ("type1", "type3")
        assert out["best_improvement_over_icount"] == pytest.approx(best["ipc"] - 1.0, rel=1e-6)

    def test_absurd_threshold_always_low_throughput(self, tiny_grid):
        # m=9 must switch far more than m=1.
        assert tiny_grid.switches[(9.0, "type1")] > tiny_grid.switches[(1.0, "type1")]


class TestHeadline:
    def test_structure(self):
        out = experiment_headline(TINY, quick=True)
        assert set(out["per_mix"]) == {"mix01", "mix10"}
        for v in out["per_mix"].values():
            assert v["icount_ipc"] > 0
            assert v["adts_ipc"] > 0
        assert out["mean_improvement"] == pytest.approx(
            out["mean_adts_ipc"] / out["mean_icount_ipc"] - 1.0
        )


class TestSimilarity:
    def test_structure(self):
        out = experiment_similarity(
            TINY, homogeneous=("mix09",), diverse=("mix13",)
        )
        assert out["homogeneous"]["mean_similarity"] == 1.0
        assert out["diverse"]["mean_similarity"] < 1.0
        assert "mix09" in out["homogeneous"]["per_mix_improvement"]


class TestThreadScaling:
    def test_structure(self):
        out = experiment_thread_scaling(TINY, mix="mix01", thread_counts=(2, 4))
        assert [r["threads"] for r in out["rows"]] == [2, 4]
        assert all(r["icount_ipc"] > 0 for r in out["rows"])

    def test_more_threads_more_throughput(self):
        out = experiment_thread_scaling(TINY, mix="mix01", thread_counts=(1, 8))
        assert out["rows"][1]["icount_ipc"] > out["rows"][0]["icount_ipc"]


class TestDetectorOverhead:
    def test_structure(self):
        out = experiment_detector_overhead(TINY, mix="mix10")
        assert out["real_dt"]["ipc"] > 0
        assert out["instant_dt"]["ipc"] > 0
        assert "dt_instructions" in out["real_dt"]
