"""Tests for the oracle (clairvoyant) scheduler."""

import pytest

from repro.core.oracle import OracleScheduler, oracle_upper_bound


class TestOracleScheduler:
    def test_rejects_empty_candidates(self):
        with pytest.raises(ValueError):
            OracleScheduler(())

    def test_runs_and_records(self, quick_proc):
        proc = quick_proc()
        result = OracleScheduler(("icount", "rr")).run(proc, quanta=2)
        assert len(result.quanta) == 2
        assert result.cycles == 2 * 512
        assert result.committed > 0
        for q in result.quanta:
            assert q.chosen in ("icount", "rr")
            assert set(q.per_policy_committed) == {"icount", "rr"}

    def test_chooses_the_max_trial(self, quick_proc):
        proc = quick_proc()
        result = OracleScheduler(("icount", "rr")).run(proc, quanta=3)
        for q in result.quanta:
            best = max(q.per_policy_committed, key=q.per_policy_committed.get)
            assert q.chosen == best

    def test_policy_usage_sums_to_quanta(self, quick_proc):
        proc = quick_proc()
        result = OracleScheduler(("icount", "brcount")).run(proc, quanta=3)
        assert sum(result.policy_usage().values()) == 3

    def test_oracle_ipc_at_least_committed_trials(self, quick_proc):
        # The live quantum under the chosen policy replays the trial's RNG
        # state, so the live committed count equals the winning trial's.
        proc = quick_proc()
        result = OracleScheduler(("icount",)).run(proc, quanta=2)
        for q in result.quanta:
            assert q.committed == q.per_policy_committed["icount"]


class TestOracleUpperBound:
    def test_bound_structure(self, quick_proc):
        report = oracle_upper_bound(quick_proc, quanta=2, candidates=("icount", "rr"))
        assert set(report) == {"oracle_ipc", "fixed_icount_ipc", "headroom", "policy_usage"}
        assert report["oracle_ipc"] > 0
        assert report["fixed_icount_ipc"] > 0

    def test_oracle_not_much_worse_than_fixed(self, quick_proc):
        # Per-quantum max over {icount} is exactly fixed icount, so the
        # headroom with richer candidates cannot be very negative.
        report = oracle_upper_bound(quick_proc, quanta=3, candidates=("icount", "brcount"))
        assert report["headroom"] > -0.10
