"""Behavioural tests: fetch policies must actually shift fetch allocation
in the running machine, not just sort keys."""

import numpy as np
import pytest

from repro.smt.config import SMTConfig
from repro.smt.pipeline import SMTProcessor
from repro.workloads.synthetic import get_preset
from repro.workloads.tracegen import TraceGenerator


def build(policy: str, apps, seed=0):
    cfg = SMTConfig(num_threads=len(apps))
    traces = [
        TraceGenerator(get_preset(a), t, np.random.default_rng(seed * 10 + t))
        for t, a in enumerate(apps)
    ]
    return SMTProcessor(cfg, traces, policy=policy, quantum_cycles=1024)


def fetch_share(proc, tid: int) -> float:
    total = sum(t.total_fetched for t in proc.counters)
    return proc.counters[tid].total_fetched / total if total else 0.0


class TestAllocationShifts:
    """Mix: one branch-storm thread (0) + one pointer-chaser (1) + two
    compute threads (2, 3)."""

    APPS = ("branch_storm", "pointer_chase", "compute", "compute")

    def test_brcount_starves_the_branchy_thread(self):
        icount = build("icount", self.APPS)
        brcount = build("brcount", self.APPS)
        icount.run(6000)
        brcount.run(6000)
        assert fetch_share(brcount, 0) < fetch_share(icount, 0), \
            "BRCOUNT must give the storming thread fewer fetch slots than ICOUNT"

    def test_memcount_starves_the_pointer_chaser(self):
        icount = build("icount", self.APPS)
        memcount = build("memcount", self.APPS)
        icount.run(6000)
        memcount.run(6000)
        assert fetch_share(memcount, 1) < fetch_share(icount, 1) + 0.02

    def test_accipc_favours_the_fast_threads(self):
        accipc = build("accipc", self.APPS)
        accipc.run(6000)
        compute_share = fetch_share(accipc, 2) + fetch_share(accipc, 3)
        assert compute_share > 0.5, \
            "ACCIPC must concentrate fetch on the historically fast threads"

    def test_rr_is_roughly_fair_in_slots(self):
        rr = build("rr", self.APPS)
        rr.run(6000)
        shares = [fetch_share(rr, t) for t in range(4)]
        # Round-robin offers equal *opportunities*; realized shares differ
        # by stall behaviour but no thread should be starved outright.
        assert min(shares) > 0.08

    def test_icount_commits_more_than_rr_on_heterogeneous_mix(self):
        icount = build("icount", self.APPS)
        rr = build("rr", self.APPS)
        icount.run(8000)
        rr.run(8000)
        assert icount.stats.committed > rr.stats.committed


class TestSignalPlumbing:
    """Live counters the policies read must reflect machine activity."""

    def test_in_flight_branches_nonzero_for_branchy_thread(self):
        proc = build("icount", ("branch_storm", "compute"))
        samples = []
        for _ in range(300):
            proc.run(10)
            samples.append(proc.counters[0].in_flight_branches)
        assert max(samples) > 0

    def test_outstanding_misses_nonzero_for_memory_thread(self):
        proc = build("icount", ("pointer_chase", "compute"))
        samples = []
        for _ in range(300):
            proc.run(10)
            samples.append(proc.counters[0].outstanding_l1d_misses)
        assert max(samples) > 0
        assert min(samples) >= 0

    def test_accipc_signal_tracks_commit_rates(self):
        proc = build("icount", ("pointer_chase", "compute"))
        proc.run(6000)
        assert proc.counters[1].accumulated_ipc > proc.counters[0].accumulated_ipc
