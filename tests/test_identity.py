"""Request identity: the canonicalization the sharded front-door and the
result store key on. Two requests asking for the same seeded simulation
must digest identically no matter how they are spelled (permuted fault
kinds, int-vs-float numerics, inert mode fields, service-level noise);
two asking for different simulations must never collide."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import SimRequest
from repro.service.identity import (
    canonical_fields,
    fields_digest,
    request_identity,
    shard_of,
)


def req(**kw):
    defaults = dict(
        request_id="r1", client="alice", mix="mix05", mode="adts",
        policy="icount", heuristic="type3", threshold=2.0,
        quanta=10, warmup_quanta=2, seed=7,
    )
    defaults.update(kw)
    return SimRequest(**defaults)


class TestCanonicalization:
    def test_service_noise_never_splits_identity(self):
        a = req(request_id="r1", client="alice", priority=0,
                deadline_s=None, degradable=True)
        b = req(request_id="r2", client="bob", priority=3,
                deadline_s=5.0, degradable=False)
        assert request_identity(a) == request_identity(b)

    def test_permuted_and_duplicated_fault_kinds_collide(self):
        a = req(fault_kinds=("counters", "dt", "policy"))
        b = req(fault_kinds=("policy", "counters", "dt", "counters"))
        assert request_identity(a) == request_identity(b)

    def test_int_float_numeric_spellings_collide(self):
        assert request_identity(req(threshold=2)) == request_identity(
            req(threshold=2.0)
        )

    def test_fixed_mode_ignores_adts_fields(self):
        a = req(mode="fixed", policy="icount", heuristic="type1", threshold=1.0)
        b = req(mode="fixed", policy="icount", heuristic="type3", threshold=9.0)
        assert request_identity(a) == request_identity(b)

    def test_adts_mode_ignores_starting_policy(self):
        a = req(mode="adts", policy="icount")
        b = req(mode="adts", policy="rr")
        assert request_identity(a) == request_identity(b)

    def test_fault_rate_inert_without_fault_kinds(self):
        a = req(fault_kinds=(), fault_rate=0.0)
        b = req(fault_kinds=(), fault_rate=0.9)
        assert request_identity(a) == request_identity(b)
        # ...but meaningful as soon as any family is enabled.
        c = req(fault_kinds=("dt",), fault_rate=0.1)
        d = req(fault_kinds=("dt",), fault_rate=0.2)
        assert request_identity(c) != request_identity(d)

    def test_simulation_fields_do_split_identity(self):
        base = request_identity(req())
        assert request_identity(req(mix="mix01")) != base
        assert request_identity(req(seed=8)) != base
        assert request_identity(req(quanta=11)) != base
        assert request_identity(req(mode="fixed")) != base
        assert request_identity(req(heuristic="type1")) != base
        assert request_identity(req(fault_kinds=("dt",))) != base


class TestShardOf:
    def test_stable_and_in_range(self):
        d = request_identity(req())
        for n in (1, 2, 3, 7):
            s = shard_of(d, n)
            assert 0 <= s < n
            assert shard_of(d, n) == s

    def test_rejects_zero_shards(self):
        import pytest

        with pytest.raises(ValueError):
            shard_of("ab" * 32, 0)


# -- the hypothesis property --------------------------------------------------
_SIM = st.fixed_dictionaries(
    {
        "mix": st.sampled_from(["mix01", "mix05", "mix09"]),
        "mode": st.sampled_from(["adts", "fixed"]),
        "policy": st.sampled_from(["icount", "rr"]),
        "heuristic": st.sampled_from(["type1", "type3"]),
        "threshold": st.sampled_from([1, 1.0, 2, 2.5]),
        "quanta": st.integers(1, 20),
        "seed": st.integers(0, 5),
        "fault_kinds": st.lists(
            st.sampled_from(["counters", "dt", "policy"]), max_size=3
        ),
        "fault_rate": st.sampled_from([0.1, 0.2]),
    }
)
_NOISE = st.fixed_dictionaries(
    {
        "request_id": st.sampled_from(["a", "b", "c"]),
        "client": st.sampled_from(["x", "y"]),
        "priority": st.integers(0, 3),
        "deadline_s": st.sampled_from([None, 1.0, 60.0]),
        "degradable": st.booleans(),
    }
)


@settings(max_examples=150, deadline=None)
@given(sim=_SIM, noise_a=_NOISE, noise_b=_NOISE, shuffle=st.randoms())
def test_identity_is_canonical(sim, noise_a, noise_b, shuffle):
    """Permuted-but-equal requests collide; distinct simulations don't.

    The same simulation spelled two ways — different service noise,
    shuffled fault kinds, int-vs-float numerics — digests identically;
    perturbing any identity-bearing field changes the digest.
    """
    kinds = list(sim["fault_kinds"])
    shuffled = list(kinds)
    shuffle.shuffle(shuffled)
    a = req(**noise_a, **{**sim, "fault_kinds": tuple(kinds)})
    b = req(
        **noise_b,
        **{
            **sim,
            "fault_kinds": tuple(shuffled + shuffled),  # permuted + duplicated
            "threshold": float(sim["threshold"]),
            "quanta": int(sim["quanta"]),
        },
    )
    assert request_identity(a) == request_identity(b)
    assert fields_digest(canonical_fields(a)) == request_identity(a)

    # Perturb one field the simulation actually depends on.
    c = req(**noise_a, **{**sim, "fault_kinds": tuple(kinds), "seed": sim["seed"] + 1})
    assert request_identity(c) != request_identity(a)
    d = req(**noise_a, **{**sim, "fault_kinds": tuple(kinds), "quanta": sim["quanta"] + 1})
    assert request_identity(d) != request_identity(a)
