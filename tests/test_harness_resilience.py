"""Tests for harness hardening: RunConfig validation, retry/timeout
guards, the JSONL run journal, and checkpoint/resume sweeps."""

import time

import pytest

from repro.harness import run_mix_average
from repro.harness.errors import (
    ConfigError,
    HarnessError,
    JournalError,
    RunFailedError,
    RunTimeoutError,
)
from repro.harness.journal import RunJournal
from repro.harness.resilience import RetryPolicy, guarded_run
from repro.harness.runner import RunConfig
from repro.harness.sweep import threshold_type_grid
from repro.smt.config import SMTConfig


def tiny_run(**over):
    base = dict(
        mix=["gzip", "mcf"],
        num_threads=2,
        quantum_cycles=256,
        quanta=2,
        warmup_quanta=1,
        machine=SMTConfig(num_threads=2),
    )
    base.update(over)
    return RunConfig(**base)


class TestRunConfigValidation:
    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_threads", 0),
            ("quanta", 0),
            ("warmup_quanta", -1),
            ("quantum_cycles", 0),
            ("policy", "round_robin_of_doom"),
        ],
    )
    def test_bad_field_raises_config_error_naming_it(self, field, value):
        with pytest.raises(ConfigError) as exc:
            tiny_run(**{field: value})
        assert exc.value.field == field
        assert field in str(exc.value)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            tiny_run(num_threads=-3)
        with pytest.raises(HarnessError):
            tiny_run(quanta=-1)

    def test_valid_config_constructs(self):
        cfg = tiny_run(warmup_quanta=0)
        assert cfg.total_quanta() == 2


class TestRunMixAverage:
    def test_empty_mixes_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            run_mix_average([], tiny_run())

    def test_single_mix_average(self):
        avg = run_mix_average(["mix01"], tiny_run(mix="mix01"))
        assert avg["mean_ipc"] > 0


class TestGuardedRun:
    def test_passthrough_on_success(self):
        assert guarded_run(lambda: 42) == 42

    def test_retries_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, backoff_s=0.0)
        assert guarded_run(flaky, retry=policy) == "ok"
        assert len(calls) == 3

    def test_exhaustion_raises_run_failed_with_cause(self):
        def always():
            raise RuntimeError("persistent")

        policy = RetryPolicy(attempts=2, backoff_s=0.0)
        with pytest.raises(RunFailedError) as exc:
            guarded_run(always, retry=policy, label="cell-x")
        assert exc.value.attempts == 2
        assert "cell-x" in str(exc.value)
        assert isinstance(exc.value.__cause__, RuntimeError)

    def test_config_error_is_not_retried(self):
        calls = []

        def invalid():
            calls.append(1)
            raise ConfigError("quanta", -1, ">= 1")

        with pytest.raises(ConfigError):
            guarded_run(invalid, retry=RetryPolicy(attempts=5, backoff_s=0.0))
        assert len(calls) == 1

    def test_timeout_becomes_run_failed_from_timeout(self):
        def slow():
            time.sleep(5.0)

        policy = RetryPolicy(attempts=1, timeout_s=0.05)
        with pytest.raises(RunFailedError) as exc:
            guarded_run(slow, retry=policy, label="slow-cell")
        assert isinstance(exc.value.__cause__, RunTimeoutError)
        assert isinstance(exc.value.__cause__, TimeoutError)

    def test_retry_policy_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)


class TestRunJournal:
    def test_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        key = RunJournal.cell_key(mix="mix01", threshold=2.0)
        journal.record(key, {"ipc": 3.25})
        fresh = RunJournal(journal.path)
        assert fresh.load() == 1
        assert fresh.has(key)
        assert fresh.get(key) == {"ipc": 3.25}

    def test_cell_key_is_order_independent(self):
        assert RunJournal.cell_key(a=1, b=2) == RunJournal.cell_key(b=2, a=1)

    def test_truncated_tail_is_tolerated(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record("k1", {"ipc": 1.0})
        journal.record("k2", {"ipc": 2.0})
        # Simulate a kill mid-append: the final line is half-written.
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "payl')
        fresh = RunJournal(journal.path)
        assert fresh.load() == 2
        assert fresh.get("k2") == {"ipc": 2.0}
        assert not fresh.has("k3")

    def test_midfile_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"key": "k1", "payload": {"ipc": 1.0}}\n'
            "!!garbage!!\n"
            '{"key": "k2", "payload": {"ipc": 2.0}}\n'
        )
        with pytest.raises(JournalError, match="line 2"):
            RunJournal(path).load()

    def test_clear_removes_file(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.record("k", {"ipc": 1.0})
        journal.clear()
        assert len(journal) == 0
        assert not journal.path.exists()

    def test_load_missing_file_is_empty(self, tmp_path):
        assert RunJournal(tmp_path / "absent.jsonl").load() == 0


class TestSweepResume:
    THRESHOLDS = (1.0, 99.0)
    HEURISTICS = ("type1",)
    MIXES = ["mix01", "mix02"]

    def _grid(self, journal=None):
        return threshold_type_grid(
            tiny_run(mix="mix01"),
            mixes=self.MIXES,
            thresholds=self.THRESHOLDS,
            heuristics=self.HEURISTICS,
            journal=journal,
        )

    def test_resumed_sweep_matches_uninterrupted(self, tmp_path, monkeypatch):
        baseline = self._grid()

        # First pass with a journal, killed after the first grid row:
        # keep only the first two journaled cells.
        journal = RunJournal(tmp_path / "grid.jsonl")
        self._grid(journal=journal)
        lines = journal.path.read_text().splitlines()
        assert len(lines) == len(self.THRESHOLDS) * len(self.MIXES)
        journal.path.write_text("\n".join(lines[:2]) + "\n")

        # Resume: only the non-journaled cells may be simulated.
        import repro.harness.sweep as sweep_mod

        real_run_adts = sweep_mod.run_adts
        simulated = []

        def counting_run_adts(*args, **kwargs):
            simulated.append(1)
            return real_run_adts(*args, **kwargs)

        monkeypatch.setattr(sweep_mod, "run_adts", counting_run_adts)
        resumed_journal = RunJournal(journal.path)
        assert resumed_journal.load() == 2
        resumed = self._grid(journal=resumed_journal)

        assert len(simulated) == len(lines) - 2
        assert resumed.ipc == baseline.ipc
        assert resumed.switches == baseline.switches
        assert resumed.benign == baseline.benign
        assert resumed.per_mix_ipc == baseline.per_mix_ipc

    def test_journal_key_guards_run_parameters(self):
        from repro.harness.sweep import _grid_cell_key

        a = _grid_cell_key(tiny_run(), 2.0, "type3", "mix01")
        b = _grid_cell_key(tiny_run(quanta=3), 2.0, "type3", "mix01")
        assert a != b


import repro as _repro_pkg
from pathlib import Path as _Path

#: The src/ directory to put on sys.path in helper subprocesses.
ROOT_SRC = _Path(_repro_pkg.__file__).resolve().parents[1]


class TestGuardedRunAbandonmentWarning:
    def test_warns_when_timed_out_attempt_still_runs(self):
        """The in-process timeout abandons (not stops) CPU-bound work; that
        limitation must be surfaced loudly, pointing at the executor."""
        def slow():
            time.sleep(2.0)

        policy = RetryPolicy(attempts=1, timeout_s=0.05)
        with pytest.warns(RuntimeWarning, match="SupervisedExecutor"):
            with pytest.raises(RunFailedError):
                guarded_run(slow, retry=policy, label="zombie-cell")

    def test_no_warning_when_attempt_finishes_in_time(self, recwarn):
        policy = RetryPolicy(attempts=1, timeout_s=5.0)
        assert guarded_run(lambda: "fast", retry=policy) == "fast"
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]


class TestJournalLocking:
    def test_lock_file_stamped_with_holder_pid(self, tmp_path):
        import os

        with RunJournal(tmp_path / "j.jsonl") as journal:
            journal.record("k", {"ipc": 1.0})
            assert journal.lock_path.exists()
            assert journal.lock_path.read_text().strip() == str(os.getpid())

    def test_same_process_journals_share_the_lock(self, tmp_path):
        # flock is per open-file-description: without the process-local
        # registry, a second journal on the same path would deadlock or
        # spuriously conflict with its own process.
        a = RunJournal(tmp_path / "j.jsonl")
        b = RunJournal(tmp_path / "j.jsonl")
        a.record("k1", {"ipc": 1.0})
        b.record("k2", {"ipc": 2.0})  # no JournalError
        a.close()
        b.record("k3", {"ipc": 3.0})  # refcount keeps the lock alive
        b.close()

    def test_cross_process_conflict_raises_with_holder_pid(self, tmp_path):
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "j.jsonl"
        holder = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(f"""
                import sys, time
                sys.path.insert(0, {repr(str(ROOT_SRC))})
                from repro.harness.journal import RunJournal
                j = RunJournal({repr(str(path))})
                j.record("held", {{"ipc": 1.0}})
                print("locked", flush=True)
                time.sleep(30)
            """)],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            mine = RunJournal(path)
            with pytest.raises(JournalError, match=str(holder.pid)):
                mine.record("mine", {"ipc": 2.0})
        finally:
            holder.kill()
            holder.wait()

    def test_lock_dies_with_the_holder_process(self, tmp_path):
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "j.jsonl"
        subprocess.run(
            [sys.executable, "-c", textwrap.dedent(f"""
                import sys
                sys.path.insert(0, {repr(str(ROOT_SRC))})
                from repro.harness.journal import RunJournal
                RunJournal({repr(str(path))}).record("theirs", {{"ipc": 1.0}})
            """)],
            check=True,
        )
        # The writer exited (flock released); a new writer proceeds.
        with RunJournal(path) as journal:
            assert journal.load() == 1
            journal.record("mine", {"ipc": 2.0})


class TestBestCellTieBreaking:
    def _sweep_with_ipc(self, ipc):
        from repro.harness.sweep import SweepResult

        cells = sorted(ipc)
        return SweepResult(
            thresholds=sorted({c[0] for c in cells}),
            heuristics=sorted({c[1] for c in cells}),
            mixes=["mix01"],
            ipc=dict(ipc),
        )

    def test_tie_broken_by_lowest_threshold_then_name(self):
        tied = {
            (3.0, "type4"): 2.5,
            (2.0, "type3"): 2.5,
            (2.0, "type1"): 2.5,
            (1.0, "type2"): 1.0,
        }
        sweep = self._sweep_with_ipc(tied)
        assert sweep.best_cell() == (2.0, "type1")

    def test_tie_break_independent_of_insertion_order(self):
        # A journal-resumed or parallel sweep populates the dict in a
        # different order than a fresh serial sweep; the winner must not
        # change with it.
        items = [((2.0, "type3"), 2.5), ((1.0, "type4"), 2.5), ((3.0, "type1"), 2.0)]
        forward = self._sweep_with_ipc(dict(items))
        backward = self._sweep_with_ipc(dict(reversed(items)))
        assert forward.best_cell() == backward.best_cell() == (1.0, "type4")

    def test_unique_max_still_wins(self):
        sweep = self._sweep_with_ipc({(1.0, "type1"): 1.0, (5.0, "type4"): 3.0})
        assert sweep.best_cell() == (5.0, "type4")


class TestBackoffPolicy:
    def test_uncapped_ladder_is_exponential(self):
        p = RetryPolicy(attempts=5, backoff_s=0.5, backoff_factor=2.0)
        assert [p.backoff_delay(n) for n in (1, 2, 3)] == [0.5, 1.0, 2.0]

    def test_backoff_max_caps_every_rung(self):
        p = RetryPolicy(attempts=8, backoff_s=1.0, backoff_factor=10.0,
                        backoff_max_s=3.0)
        assert p.backoff_delay(1) == 1.0
        assert p.backoff_delay(2) == 3.0
        assert p.backoff_delay(6) == 3.0  # 10^5 s without the cap

    def test_full_jitter_is_bounded_by_the_capped_ladder(self):
        p = RetryPolicy(attempts=8, backoff_s=1.0, backoff_factor=10.0,
                        backoff_max_s=3.0, jitter=True, jitter_seed=7)
        for n in range(1, 8):
            cap = min(1.0 * 10.0 ** (n - 1), 3.0)
            assert 0.0 <= p.backoff_delay(n, "cell") <= cap

    def test_jitter_is_seeded_and_reproducible(self):
        kw = dict(attempts=5, backoff_s=1.0, jitter=True, jitter_seed=42)
        a = RetryPolicy(**kw)
        b = RetryPolicy(**kw)
        assert [a.backoff_delay(n, "x") for n in (1, 2, 3)] == \
               [b.backoff_delay(n, "x") for n in (1, 2, 3)]

    def test_jitter_varies_across_label_attempt_and_seed(self):
        p = RetryPolicy(attempts=5, backoff_s=1.0, jitter=True, jitter_seed=1)
        q = RetryPolicy(attempts=5, backoff_s=1.0, jitter=True, jitter_seed=2)
        draws = {p.backoff_delay(1, "a"), p.backoff_delay(2, "a"),
                 p.backoff_delay(1, "b"), q.backoff_delay(1, "a")}
        assert len(draws) == 4  # independent substreams, no lockstep herd

    def test_zero_backoff_never_jitters_into_a_sleep(self):
        p = RetryPolicy(attempts=3, backoff_s=0.0, jitter=True)
        assert p.backoff_delay(1) == 0.0

    def test_guarded_run_honours_the_cap(self):
        calls = []

        def flaky():
            calls.append(time.monotonic())
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        policy = RetryPolicy(attempts=3, backoff_s=60.0, backoff_factor=2.0,
                             backoff_max_s=0.01)
        t0 = time.monotonic()
        assert guarded_run(flaky, retry=policy) == "ok"
        assert time.monotonic() - t0 < 5.0  # uncapped would sleep 3 minutes

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(backoff_max_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().backoff_delay(0)


class TestStaleLockBreaking:
    def test_dead_holder_stamp_is_broken(self, tmp_path):
        """A lock flocked by an orphan (fork-inherited fd) but stamped with
        a dead PID is stale; a new writer breaks it and proceeds."""
        import os
        import signal as _signal
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "j.jsonl"
        # The parent takes the lock (stamping its PID), forks a child that
        # inherits the flocked fd, then exits: the stamp now names a dead
        # process while the orphan's inherited fd still holds the flock.
        proc = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(f"""
                import os, sys, time
                sys.path.insert(0, {repr(str(ROOT_SRC))})
                from repro.harness.journal import RunJournal
                j = RunJournal({repr(str(path))})
                j.record("held", {{"ipc": 1.0}})
                pid = os.fork()
                if pid == 0:
                    time.sleep(60)
                    os._exit(0)
                print(pid, flush=True)
                os._exit(0)  # die without releasing; the orphan holds on
            """)],
            stdout=subprocess.PIPE, text=True, check=True,
        )
        orphan = int(proc.stdout.strip())
        try:
            with RunJournal(path) as mine:
                assert mine.load() == 1
                mine.record("mine", {"ipc": 2.0})  # breaks the stale lock
            assert RunJournal(path).load() == 2
        finally:
            os.kill(orphan, _signal.SIGKILL)

    def test_live_holder_is_never_broken(self, tmp_path):
        """Same flock-held-elsewhere shape, but the stamped PID is alive:
        the lock must be respected, not stolen."""
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "j.jsonl"
        holder = subprocess.Popen(
            [sys.executable, "-c", textwrap.dedent(f"""
                import sys, time
                sys.path.insert(0, {repr(str(ROOT_SRC))})
                from repro.harness.journal import RunJournal
                j = RunJournal({repr(str(path))})  # bound: lock stays held
                j.record("held", {{"ipc": 1.0}})
                print("locked", flush=True)
                time.sleep(60)
            """)],
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert holder.stdout.readline().strip() == "locked"
            with pytest.raises(JournalError, match=str(holder.pid)):
                RunJournal(path).record("mine", {"ipc": 2.0})
        finally:
            holder.kill()
            holder.wait()

    def test_unparseable_stamp_is_treated_as_live(self, tmp_path):
        """A garbage stamp is the racing-writer window (opened, flocked,
        not yet stamped), not proof of death: never break it."""
        from repro.harness.journal import RunJournal as _RJ

        j = _RJ(tmp_path / "j.jsonl")
        assert j._break_if_stale("") is False
        assert j._break_if_stale("not-a-pid") is False

    def test_pid_alive_probe(self):
        import os

        from repro.harness.journal import _pid_alive

        assert _pid_alive(os.getpid()) is True
        assert _pid_alive(-1) is False
        assert _pid_alive(0) is False
