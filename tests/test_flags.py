"""Tests for the thread control flags (DT <-> TSU/job-scheduler interface)."""

from repro.core.flags import ThreadControlFlags


class TestThreadControlFlags:
    def test_fetchable_roundtrip(self, quick_proc):
        proc = quick_proc()
        flags = ThreadControlFlags(proc)
        assert flags.is_fetchable(0)
        flags.set_fetchable(0, False)
        assert not flags.is_fetchable(0)
        assert not proc.contexts[0].fetchable
        flags.set_fetchable(0, True)
        assert flags.is_fetchable(0)

    def test_suspension_marks(self, quick_proc):
        proc = quick_proc()
        flags = ThreadControlFlags(proc)
        flags.mark_for_suspension(2)
        flags.mark_for_suspension(1)
        assert flags.marked_for_suspension() == [1, 2]
        flags.clear_suspension_mark(2)
        assert flags.marked_for_suspension() == [1]

    def test_suspend_now_acts_and_clears_mark(self, quick_proc):
        proc = quick_proc()
        flags = ThreadControlFlags(proc)
        flags.mark_for_suspension(3)
        flags.suspend_now(3)
        assert proc.contexts[3].suspended
        assert flags.marked_for_suspension() == []

    def test_resume(self, quick_proc):
        proc = quick_proc()
        flags = ThreadControlFlags(proc)
        flags.suspend_now(0)
        flags.resume(0)
        assert not proc.contexts[0].suspended

    def test_snapshot_shape(self, quick_proc):
        proc = quick_proc()
        flags = ThreadControlFlags(proc)
        flags.mark_for_suspension(1)
        snap = flags.snapshot()
        assert set(snap) == {0, 1, 2, 3}
        assert snap[1]["marked"]
        assert snap[0]["fetchable"]

    def test_marking_is_idempotent(self, quick_proc):
        proc = quick_proc()
        flags = ThreadControlFlags(proc)
        flags.mark_for_suspension(1)
        flags.mark_for_suspension(1)
        assert flags.marked_for_suspension() == [1]
