"""Tests for threshold configuration and quantum observations."""

import pytest

from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig
from repro.smt.counters import QuantumSnapshot
from repro.smt.stats import QuantumRecord


def snapshot(tid=0, **over):
    base = dict(
        tid=tid, fetched=1000, committed=800, cond_branches=150, branches=180,
        mispredicts=10, loads=200, stores=80, l1d_misses=30, l1i_misses=10,
        l2_misses=5, lsq_full=20, iq_full=5, reg_full=0, squashed=50,
        stall_cycles=100,
    )
    base.update(over)
    return QuantumSnapshot(**base)


def record(cycles=1000, committed=1500, index=0):
    return QuantumRecord(index=index, start_cycle=0, cycles=cycles,
                         committed=committed, policy="icount")


class TestThresholdConfig:
    def test_defaults_positive(self):
        t = ThresholdConfig()
        assert t.ipc_threshold > 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ThresholdConfig(ipc_threshold=-1)
        with pytest.raises(ValueError):
            ThresholdConfig(l1_miss_rate=-0.1)

    def test_with_ipc_threshold(self):
        t = ThresholdConfig().with_ipc_threshold(4.0)
        assert t.ipc_threshold == 4.0
        assert t.l1_miss_rate == ThresholdConfig().l1_miss_rate

    def test_paper_values_recorded(self):
        assert ThresholdConfig.PAPER_VALUES["l1_miss_rate"] == 0.19
        assert ThresholdConfig.PAPER_VALUES["cond_branch_rate"] == 0.38


class TestQuantumObservation:
    def test_from_snapshots_aggregates(self):
        obs = QuantumObservation.from_snapshots(
            record(cycles=1000, committed=2000),
            [snapshot(0), snapshot(1)],
            prev_ipc=1.5,
        )
        assert obs.ipc == pytest.approx(2.0)
        assert obs.l1_miss_rate == pytest.approx(2 * 40 / 1000)
        assert obs.lsq_full_rate == pytest.approx(2 * 20 / 1000)
        assert obs.mispredict_rate == pytest.approx(2 * 10 / 1000)
        assert obs.cond_branch_rate == pytest.approx(2 * 150 / 1000)
        assert obs.prev_ipc == 1.5
        assert obs.gradient == pytest.approx(0.5)

    def test_low_throughput(self):
        obs = QuantumObservation.from_snapshots(record(committed=1500), [snapshot()])
        assert obs.low_throughput(ThresholdConfig(ipc_threshold=2.0))
        assert not obs.low_throughput(ThresholdConfig(ipc_threshold=1.0))

    def test_cond_mem_via_l1(self):
        t = ThresholdConfig(l1_miss_rate=0.05, lsq_full_rate=100.0)
        obs = QuantumObservation.from_snapshots(record(), [snapshot(l1d_misses=100)])
        assert obs.cond_mem(t)

    def test_cond_mem_via_lsq(self):
        t = ThresholdConfig(l1_miss_rate=100.0, lsq_full_rate=0.01)
        obs = QuantumObservation.from_snapshots(record(), [snapshot()])
        assert obs.cond_mem(t)

    def test_cond_mem_false_when_both_low(self):
        t = ThresholdConfig(l1_miss_rate=100.0, lsq_full_rate=100.0)
        obs = QuantumObservation.from_snapshots(record(), [snapshot()])
        assert not obs.cond_mem(t)

    def test_cond_br_via_mispredicts(self):
        t = ThresholdConfig(mispredict_rate=0.005, cond_branch_rate=100.0)
        obs = QuantumObservation.from_snapshots(record(), [snapshot()])
        assert obs.cond_br(t)

    def test_cond_br_via_branch_density(self):
        t = ThresholdConfig(mispredict_rate=100.0, cond_branch_rate=0.1)
        obs = QuantumObservation.from_snapshots(record(), [snapshot()])
        assert obs.cond_br(t)

    def test_zero_cycle_guard(self):
        obs = QuantumObservation.from_snapshots(record(cycles=0, committed=0), [snapshot()])
        assert obs.cycles == 1  # clamped
