"""Tests for thread swapping and the job-scheduler symbiosis."""

import pytest

from conftest import assert_counter_consistency
from repro import build_processor
from repro.core.jobsched import JobPool, JobSchedulerHook
from repro.core.adts import ADTSController
from repro.core.thresholds import ThresholdConfig
from repro.workloads.profiles import get_profile
from repro.workloads.tracegen import TraceGenerator

import numpy as np


class TestSwapThread:
    def test_swap_drops_in_flight_and_rebinds(self, quick_proc):
        proc = quick_proc()
        proc.run(1500)
        new_trace = TraceGenerator(get_profile("vortex"), 9, np.random.default_rng(99))
        proc.swap_thread(1, new_trace, switch_penalty=50)
        assert_counter_consistency(proc)
        ctx = proc.contexts[1]
        assert ctx.trace is new_trace
        assert not ctx.rob
        assert proc.counters[1].icount == 0
        assert not ctx.wrong_path

    def test_swapped_thread_resumes_and_commits(self, quick_proc):
        proc = quick_proc()
        proc.run(1000)
        new_trace = TraceGenerator(get_profile("vortex"), 9, np.random.default_rng(99))
        proc.swap_thread(0, new_trace, switch_penalty=20)
        before = proc.stats.per_thread_committed.get(0, 0)
        proc.run(2000)
        assert proc.stats.per_thread_committed.get(0, 0) > before

    def test_swap_back_in_resumes_old_job(self, quick_proc):
        proc = quick_proc()
        proc.run(1000)
        old_trace = proc.contexts[2].trace
        old_seq = old_trace.seq
        other = TraceGenerator(get_profile("vortex"), 9, np.random.default_rng(9))
        proc.swap_thread(2, other, switch_penalty=20)
        proc.run(500)
        proc.swap_thread(2, old_trace, switch_penalty=20)
        proc.run(1500)
        assert old_trace.seq > old_seq  # the original job kept running
        assert_counter_consistency(proc)

    def test_machine_keeps_running_after_many_swaps(self, quick_proc):
        proc = quick_proc()
        traces = [
            TraceGenerator(get_profile(app), 10 + i, np.random.default_rng(i))
            for i, app in enumerate(["gzip", "mcf", "swim", "vortex"])
        ]
        for i, trace in enumerate(traces):
            proc.run(400)
            proc.swap_thread(i % 4, trace, switch_penalty=30)
            assert_counter_consistency(proc)
        before = proc.stats.committed
        proc.run(2000)
        assert proc.stats.committed > before


class TestJobPool:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            JobPool([])

    def test_distinct_traces(self):
        pool = JobPool(["gzip", "gzip", "mcf"])
        assert len(pool) == 3
        assert pool.jobs[0].trace is not pool.jobs[1].trace
        assert pool.jobs[0].trace.tid != pool.jobs[1].trace.tid


class TestJobSchedulerHook:
    def make(self, mode="guided", pool_apps=None, **kw):
        pool = JobPool(pool_apps or ["gzip", "crafty", "swim", "mcf", "vortex", "eon"])
        hook = JobSchedulerHook(pool, mode=mode, interval_quanta=2,
                                swaps_per_interval=1, switch_penalty=30, **kw)
        return pool, hook

    def test_rejects_bad_mode(self):
        pool = JobPool(["gzip"] * 4)
        with pytest.raises(ValueError):
            JobSchedulerHook(pool, mode="psychic")

    def test_rejects_pool_smaller_than_contexts(self, quick_proc):
        pool = JobPool(["gzip", "mcf"])
        hook = JobSchedulerHook(pool)
        with pytest.raises(ValueError):
            quick_proc(hook=hook)

    def test_swaps_happen(self, quick_proc):
        pool, hook = self.make()
        proc = quick_proc(hook=hook)
        proc.run_quanta(8)
        assert hook.swaps > 0
        assert len(hook.waiting) == 2  # pool 6, contexts 4

    def test_all_jobs_eventually_scheduled(self, quick_proc):
        pool, hook = self.make(mode="oblivious")
        proc = quick_proc(hook=hook)
        proc.run_quanta(16)
        scheduled = {j.app for j in hook.resident.values()}
        rotated = sum(1 for j in pool.jobs if j.scheduled_intervals > 0)
        assert rotated >= 2

    def test_counter_consistency_across_swaps(self, quick_proc):
        pool, hook = self.make()
        proc = quick_proc(hook=hook)
        for _ in range(8):
            proc.run_quanta(1)
            assert_counter_consistency(proc)

    def test_summary_shape(self, quick_proc):
        pool, hook = self.make()
        proc = quick_proc(hook=hook)
        proc.run_quanta(4)
        s = hook.summary()
        assert s["mode"] == "guided"
        assert "adts" in s and "resident" in s

    def test_guided_mode_prefers_flagged_victims(self, quick_proc):
        adts = ADTSController(thresholds=ThresholdConfig(ipc_threshold=99.0),
                              instant_dt=True)
        pool, hook = self.make(adts=adts)
        proc = quick_proc(hook=hook)
        proc.run_quanta(12)
        # With the absurd threshold, clogging identification runs every
        # quantum; guided evictions are counted when flags existed.
        assert hook.swaps > 0
        assert hook.guided_evictions >= 0  # smoke: path exercised
