"""Tests for the top-level public API (`repro.build_processor` etc.)."""

import pytest

import repro
from repro import build_processor
from repro.smt.config import SMTConfig


class TestBuildProcessor:
    def test_named_mix(self):
        proc = build_processor(mix="mix01", quantum_cycles=512)
        assert proc.num_threads == 8

    def test_named_mix_downsampled(self):
        proc = build_processor(mix="mix01", num_threads=4, quantum_cycles=512)
        assert proc.num_threads == 4

    def test_explicit_app_list(self):
        proc = build_processor(mix=["gzip", "mcf"], quantum_cycles=512)
        assert proc.num_threads == 2

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError):
            build_processor(mix="mix42")

    def test_config_thread_mismatch_raises(self):
        with pytest.raises(ValueError):
            build_processor(mix="mix01", config=SMTConfig(num_threads=4))

    def test_custom_policy(self):
        proc = build_processor(mix=["gzip"], policy="rr", quantum_cycles=512)
        assert proc.policy_name == "rr"

    def test_seed_reproducibility(self):
        a = build_processor(mix="mix05", seed=11, quantum_cycles=512)
        b = build_processor(mix="mix05", seed=11, quantum_cycles=512)
        a.run(800)
        b.run(800)
        assert a.stats.committed == b.stats.committed


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_policy_names_exposed(self):
        assert "icount" in repro.POLICY_NAMES

    def test_heuristics_exposed(self):
        assert set(repro.HEURISTICS) >= {"type1", "type3", "type4"}

    def test_mix_names_exposed(self):
        assert len(repro.mix_names()) == 13
