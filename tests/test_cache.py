"""Unit and property tests for the set-associative cache model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import Cache, CacheConfig


def make(size=4096, line=64, ways=2, name="c"):
    return Cache(CacheConfig(size, line, ways, name))


class TestCacheConfig:
    def test_basic_geometry(self):
        cfg = CacheConfig(32 * 1024, 64, 4)
        assert cfg.n_sets == 128
        assert cfg.offset_bits == 6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 64, 4)
        with pytest.raises(ValueError):
            CacheConfig(4096, -1, 4)
        with pytest.raises(ValueError):
            CacheConfig(4096, 64, 0)

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            CacheConfig(4096, 48, 4)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(4096 + 64, 64, 4)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(3 * 64 * 2, 64, 2)  # 3 sets


class TestCacheBasics:
    def test_first_access_misses(self):
        c = make()
        assert not c.access(0x1000)
        assert c.misses == 1 and c.hits == 0

    def test_second_access_hits(self):
        c = make()
        c.access(0x1000)
        assert c.access(0x1000)
        assert c.hits == 1

    def test_same_line_different_offset_hits(self):
        c = make(line=64)
        c.access(0x1000)
        assert c.access(0x1000 + 63)
        assert not c.access(0x1000 + 64)  # next line

    def test_contains_is_nondestructive(self):
        c = make()
        c.access(0x2000)
        hits, misses = c.hits, c.misses
        assert c.contains(0x2000)
        assert not c.contains(0x4000)
        assert (c.hits, c.misses) == (hits, misses)

    def test_invalidate(self):
        c = make()
        c.access(0x3000)
        assert c.invalidate(0x3000)
        assert not c.contains(0x3000)
        assert not c.invalidate(0x3000)  # already gone

    def test_reset_clears_everything(self):
        c = make()
        for i in range(32):
            c.access(i * 64)
        c.reset()
        assert c.occupancy == 0
        assert c.hits == 0 and c.misses == 0
        assert not c.contains(0)

    def test_occupancy_grows_to_capacity(self):
        c = make(size=1024, line=64, ways=2)  # 16 lines total
        for i in range(64):
            c.access(i * 64)
        assert c.occupancy == 16

    def test_miss_rate(self):
        c = make()
        c.access(0)
        c.access(0)
        assert c.miss_rate == pytest.approx(0.5)

    def test_empty_miss_rate_zero(self):
        assert make().miss_rate == 0.0

    def test_line_of(self):
        c = make(line=64)
        assert c.line_of(0) == 0
        assert c.line_of(63) == 0
        assert c.line_of(64) == 1


class TestLRUReplacement:
    def test_lru_victim_in_set(self):
        # 2-way: fill a set with A, B; touch A; insert C -> B evicted.
        c = make(size=2 * 64 * 4, line=64, ways=2)  # 4 sets
        n_sets = c.config.n_sets
        a, b, d = 0, n_sets * 64, 2 * n_sets * 64  # same set 0
        c.access(a)
        c.access(b)
        c.access(a)  # refresh A
        c.access(d)  # evicts B
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)
        assert c.evictions == 1

    def test_fill_refreshes_existing_line(self):
        c = make(size=2 * 64 * 4, line=64, ways=2)
        n_sets = c.config.n_sets
        a, b, d = 0, n_sets * 64, 2 * n_sets * 64
        c.fill(a)
        c.fill(b)
        c.fill(a)  # refresh, not duplicate
        victim = c.fill(d)
        assert victim == c.line_of(b)

    def test_fill_returns_minus_one_when_no_eviction(self):
        c = make()
        assert c.fill(0x5000) == -1

    def test_associativity_holds_ways_conflicting_lines(self):
        c = make(size=4 * 64 * 8, line=64, ways=4)  # 8 sets, 4 ways
        n_sets = c.config.n_sets
        lines = [i * n_sets * 64 for i in range(4)]
        for addr in lines:
            c.access(addr)
        assert all(c.contains(a) for a in lines)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
def test_cache_matches_reference_lru(addresses):
    """The NumPy cache must behave exactly like a reference LRU model."""
    c = make(size=1024, line=64, ways=2)  # 8 sets, 2 ways
    n_sets = c.config.n_sets
    reference = {s: [] for s in range(n_sets)}  # set -> [lines], MRU last
    for addr in addresses:
        line = addr >> 6
        s = line & (n_sets - 1)
        expected_hit = line in reference[s]
        assert c.access(addr) == expected_hit
        if expected_hit:
            reference[s].remove(line)
        elif len(reference[s]) == 2:
            reference[s].pop(0)
        reference[s].append(line)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1 << 24), min_size=1, max_size=200))
def test_occupancy_never_exceeds_capacity(addresses):
    c = make(size=512, line=64, ways=2)  # 8 lines
    for addr in addresses:
        c.access(addr)
        assert c.occupancy <= 8
    assert c.hits + c.misses == len(addresses)
