"""Tests for the fault-injection subsystem and the ADTS watchdog."""

import pytest

from repro.core.adts import ADTSController, WatchdogConfig
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultInjector, FaultPlan
from repro.harness.runner import RunConfig, run_adts, run_fixed
from repro.smt.config import SMTConfig
from repro.smt.counters import QuantumSnapshot
from repro.smt.stats import QuantumRecord


def tiny_run(**over):
    base = dict(
        mix=["gzip", "mcf", "swim", "crafty"],
        num_threads=4,
        quantum_cycles=256,
        quanta=8,
        warmup_quanta=1,
        machine=SMTConfig(num_threads=4),
    )
    base.update(over)
    return RunConfig(**base)


def make_snap(tid=0, committed=0, **over):
    fields = {name: 0 for name in QuantumSnapshot.__slots__}
    fields.update(tid=tid, committed=committed)
    fields.update(over)
    return QuantumSnapshot(**fields)


def make_record(index, committed, cycles=256, policy="icount"):
    return QuantumRecord(
        index=index, start_cycle=index * cycles, cycles=cycles,
        committed=committed, policy=policy,
    )


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="counter_stale_rate"):
            FaultPlan(counter_stale_rate=1.5)
        with pytest.raises(ValueError, match="thread_hang_cycles"):
            FaultPlan(thread_hang_cycles=-1)

    def test_any_enabled(self):
        assert not FaultPlan().any_enabled
        assert FaultPlan(dt_drop_rate=0.1).any_enabled

    def test_from_kinds(self):
        plan = FaultPlan.from_kinds(["counters"], rate=0.3, seed=7)
        assert plan.counter_stale_rate == 0.3
        assert plan.counter_bitflip_rate == 0.3
        assert plan.dt_drop_rate == 0.0
        assert plan.seed == 7

    def test_from_kinds_all(self):
        plan = FaultPlan.from_kinds(["all"], rate=0.2)
        assert plan.counter_stale_rate == 0.2
        assert plan.thread_hang_rate == 0.2
        assert plan.policy_drop_rate == 0.2

    def test_from_kinds_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_kinds(["counters", "cosmic_rays"])

    def test_storm_enables_everything(self):
        plan = FaultPlan.storm(seed=1, rate=0.5)
        assert plan.any_enabled
        assert plan.dt_starvation_rate == 0.5


class TestInjectedRuns:
    def test_fault_smoke_run_triggers_watchdog(self):
        """Acceptance: counter corruption + DT drops complete without raising,
        the watchdog falls back at least once, and the summary reports
        injected-fault and fallback counts."""
        plan = FaultPlan.from_kinds(["counters", "dt"], rate=0.5, seed=3)
        r = run_adts(
            tiny_run(quanta=16),
            thresholds=ThresholdConfig(ipc_threshold=99.0),
            fault_plan=plan,
        )
        assert r.ipc > 0
        assert r.scheduler["faults_injected"] > 0
        assert r.scheduler["fallback_events"] >= 1
        assert r.scheduler["implausible_quanta"] >= 1
        assert r.scheduler["safe_mode_quanta"] >= 1
        assert sum(r.scheduler["fault_counts"].values()) == r.scheduler["faults_injected"]
        fallback_logs = [d for d in _decisions(r) if "watchdog fallback" in d]
        assert fallback_logs

    def test_determinism_under_injection(self):
        """Identical seed + identical FaultPlan => byte-identical RunResult."""
        plan = FaultPlan.storm(seed=11, rate=0.4)
        cfg = tiny_run(seed=5, quanta=10)
        a = run_adts(cfg, thresholds=ThresholdConfig(ipc_threshold=99.0), fault_plan=plan)
        b = run_adts(cfg, thresholds=ThresholdConfig(ipc_threshold=99.0), fault_plan=plan)
        assert a.ipc == b.ipc
        assert a.committed == b.committed
        assert a.quantum_ipcs == b.quantum_ipcs
        assert a.scheduler["fault_counts"] == b.scheduler["fault_counts"]

    def test_zero_plan_is_transparent(self):
        """A run with an all-zero plan equals a run with no injector."""
        cfg = tiny_run(seed=2)
        th = ThresholdConfig(ipc_threshold=99.0)
        clean = run_adts(cfg, thresholds=th)
        wrapped = run_adts(cfg, thresholds=th, fault_plan=FaultPlan())
        assert clean.ipc == wrapped.ipc
        assert clean.quantum_ipcs == wrapped.quantum_ipcs
        assert "faults_injected" not in wrapped.scheduler  # injector skipped

    def test_policy_drop_suppresses_all_switches(self):
        plan = FaultPlan(policy_drop_rate=1.0, seed=1)
        r = run_adts(
            tiny_run(quanta=10),
            heuristic="type1",
            thresholds=ThresholdConfig(ipc_threshold=99.0),
            instant_dt=True,
            fault_plan=plan,
        )
        assert r.scheduler["fault_counts"].get("policy_drop", 0) > 0

    def test_spurious_switches_on_fixed_run(self):
        plan = FaultPlan(policy_spurious_rate=1.0, seed=4)
        r = run_fixed(tiny_run(), fault_plan=plan)
        assert r.scheduler["fault_counts"]["policy_spurious"] > 0
        assert r.ipc > 0

    def test_thread_hangs_complete(self):
        plan = FaultPlan(thread_hang_rate=1.0, thread_hang_cycles=200, seed=9)
        r = run_fixed(tiny_run(), fault_plan=plan)
        assert r.scheduler["fault_counts"]["thread_hang"] > 0
        assert r.ipc > 0

    def test_dt_starvation_delays_decisions(self):
        plan = FaultPlan(dt_starvation_rate=1.0, dt_starvation_cycles=10_000, seed=6)
        r = run_adts(
            tiny_run(quanta=10),
            thresholds=ThresholdConfig(ipc_threshold=99.0),
            fault_plan=plan,
        )
        # The DT never sees an idle slot: every low-throughput boundary
        # after the first either misses or ends in watchdog fallback.
        assert r.scheduler["missed_decisions"] > 0 or r.scheduler["fallback_events"] > 0


def _decisions(result):
    """Watchdog reasons are only visible via the controller's decision log;
    re-run compactly by matching on the scheduler summary instead."""
    # The summary carries counts; for reason text we re-run a tiny controller
    # run here. Kept as a helper so the smoke test reads naturally.
    plan = FaultPlan.from_kinds(["counters", "dt"], rate=0.5, seed=3)
    controller = ADTSController(thresholds=ThresholdConfig(ipc_threshold=99.0))
    injector = FaultInjector(plan, controller)
    from repro import build_processor

    proc = build_processor(
        mix=["gzip", "mcf", "swim", "crafty"],
        config=SMTConfig(num_threads=4),
        hook=injector,
        quantum_cycles=256,
        seed=0,
    )
    proc.run_quanta(17)
    return [d.reason for d in controller.decisions]


class TestWatchdog:
    def _attached(self, watchdog=None, quick_proc_builder=None):
        from repro import build_processor

        adts = ADTSController(
            thresholds=ThresholdConfig(ipc_threshold=0.0),  # never low-throughput
            watchdog=watchdog or WatchdogConfig(implausible_limit=2, safe_mode_quanta=3),
        )
        build_processor(
            mix=["gzip", "mcf"], config=SMTConfig(num_threads=2),
            hook=adts, quantum_cycles=256,
        )
        return adts

    def test_config_validated(self):
        with pytest.raises(ValueError):
            WatchdogConfig(missed_decision_limit=0)
        with pytest.raises(ValueError):
            WatchdogConfig(safe_mode_quanta=0)

    def test_plausible_telemetry_accepted(self):
        adts = self._attached()
        snaps = [make_snap(0, 50), make_snap(1, 30)]
        adts.on_quantum_end(256, make_record(0, 80), snaps)
        assert adts.implausible_quanta == 0
        assert not adts.in_safe_mode

    def test_overrange_committed_is_implausible(self):
        adts = self._attached()
        # 256 cycles x 8-wide commit = 2048 max; 1 << 20 is physically
        # impossible and must not reach the heuristics.
        snaps = [make_snap(0, 1 << 20), make_snap(1, 0)]
        adts.on_quantum_end(256, make_record(0, 1 << 20), snaps)
        assert adts.implausible_quanta == 1

    def test_sum_mismatch_is_implausible(self):
        adts = self._attached()
        snaps = [make_snap(0, 10), make_snap(1, 10)]
        adts.on_quantum_end(256, make_record(0, 999), snaps)
        assert adts.implausible_quanta == 1

    def test_negative_counter_is_implausible(self):
        adts = self._attached()
        snaps = [make_snap(0, 40, l1d_misses=-3), make_snap(1, 0)]
        adts.on_quantum_end(256, make_record(0, 40), snaps)
        assert adts.implausible_quanta == 1

    def test_stale_replay_is_implausible(self):
        adts = self._attached()
        snaps = [make_snap(0, 40), make_snap(1, 10)]
        adts.on_quantum_end(256, make_record(0, 50), snaps)
        assert adts.implausible_quanta == 0
        # The same quantum read again: its index is already over.
        adts.on_quantum_end(512, make_record(0, 50), snaps)
        assert adts.implausible_quanta == 1

    def test_consecutive_implausible_triggers_fallback_and_rearms(self):
        adts = self._attached()
        bad = [make_snap(0, 1 << 20), make_snap(1, 0)]
        good = [make_snap(0, 40), make_snap(1, 10)]
        adts.on_quantum_end(256, make_record(0, 1 << 20), bad)
        assert adts.fallback_events == 0
        adts.on_quantum_end(512, make_record(1, 1 << 20), bad)
        assert adts.fallback_events == 1
        assert adts.in_safe_mode
        assert adts.processor.policy_name == "icount"
        assert any("watchdog fallback" in d.reason for d in adts.decisions)
        # Safe mode holds for safe_mode_quanta=3 boundaries, then re-arms.
        for i in range(2, 5):
            adts.on_quantum_end(256 * (i + 1), make_record(i, 50), good)
            assert adts.in_safe_mode
        assert adts.safe_mode_quanta_spent == 3
        adts.on_quantum_end(256 * 6, make_record(5, 50), good)
        assert not adts.in_safe_mode

    def test_isolated_implausible_does_not_trip(self):
        adts = self._attached()
        bad = [make_snap(0, 1 << 20), make_snap(1, 0)]
        good = [make_snap(0, 40), make_snap(1, 10)]
        adts.on_quantum_end(256, make_record(0, 1 << 20), bad)
        adts.on_quantum_end(512, make_record(1, 50), good)
        adts.on_quantum_end(768, make_record(2, 1 << 20), bad)
        assert adts.fallback_events == 0
        assert adts.implausible_quanta == 2


class TestInjectorUnits:
    class _Capture:
        """Inner hook recording what telemetry it was handed."""

        detector = None

        def __init__(self):
            self.records = []
            self.snaps = []

        def attach(self, processor):
            pass

        def on_cycle(self, now, idle_slots):
            return 0

        def on_quantum_end(self, now, record, snapshots):
            self.records.append(record)
            self.snaps.append(snapshots)

    class _Proc:
        num_threads = 2

        def __init__(self):
            self.policies = []
            self.contexts = []

        def set_policy(self, policy):
            self.policies.append(policy)

    def test_stale_replays_previous_boundary(self):
        inner = self._Capture()
        injector = FaultInjector(FaultPlan(counter_stale_rate=1.0, seed=0), inner)
        injector.attach(self._Proc())
        r0, s0 = make_record(0, 10), [make_snap(0, 10)]
        r1, s1 = make_record(1, 20), [make_snap(0, 20)]
        injector.on_quantum_end(256, r0, s0)
        injector.on_quantum_end(512, r1, s1)
        assert inner.records[0] is r0  # nothing to replay yet
        assert inner.records[1] is r0  # stale: previous boundary again
        assert inner.snaps[1] is s0
        assert injector.counts["counter_stale"] == 1

    def test_bitflip_changes_exactly_one_field(self):
        inner = self._Capture()
        injector = FaultInjector(FaultPlan(counter_bitflip_rate=1.0, seed=2), inner)
        injector.attach(self._Proc())
        record = make_record(0, 10)
        snaps = [make_snap(0, 10), make_snap(1, 0)]
        injector.on_quantum_end(256, record, snaps)
        got_record, got_snaps = inner.records[0], inner.snaps[0]
        diffs = 0
        if got_record.committed != record.committed:
            diffs += 1
        for orig, new in zip(snaps, got_snaps):
            diffs += sum(
                1 for f in QuantumSnapshot.__slots__
                if getattr(orig, f) != getattr(new, f)
            )
        assert diffs == 1
        # tid is never a corruption target (it is an address, not a counter).
        assert [s.tid for s in got_snaps] == [0, 1]

    def test_attach_interposes_set_policy(self):
        proc = self._Proc()
        injector = FaultInjector(FaultPlan(policy_drop_rate=1.0, seed=0), self._Capture())
        injector.attach(proc)
        proc.set_policy("brcount")
        assert proc.policies == []  # dropped
        assert injector.counts["policy_drop"] == 1
