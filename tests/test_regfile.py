"""Tests for the shared rename-register pool."""

import pytest

from repro.smt.instruction import BRANCH, FADD, IALU, LOAD, STORE, SYSCALL
from repro.smt.regfile import RenameRegisterPool, needs_register


class TestNeedsRegister:
    def test_dest_writers(self):
        for kind in (IALU, FADD, LOAD):
            assert needs_register(kind)

    def test_no_dest(self):
        for kind in (BRANCH, STORE, SYSCALL):
            assert not needs_register(kind)


class TestRenameRegisterPool:
    def make(self, cap=4, threads=2):
        pool = RenameRegisterPool(cap)
        pool.reset_threads(threads)
        return pool

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RenameRegisterPool(0)

    def test_allocate_release_roundtrip(self):
        pool = self.make()
        assert pool.allocate(0)
        assert pool.in_use == 1
        assert pool.occupancy_of(0) == 1
        pool.release(0)
        assert pool.free == 4

    def test_exhaustion_counts_failures(self):
        pool = self.make(cap=2)
        assert pool.allocate(0) and pool.allocate(1)
        assert not pool.allocate(0)
        assert pool.alloc_failures == 1

    def test_release_underflow_raises(self):
        pool = self.make()
        with pytest.raises(RuntimeError):
            pool.release(0)

    def test_release_all(self):
        pool = self.make(cap=8)
        for _ in range(3):
            pool.allocate(1)
        assert pool.release_all(1) == 3
        assert pool.free == 8
        assert pool.occupancy_of(1) == 0

    def test_attribution_per_thread(self):
        pool = self.make(cap=8, threads=3)
        pool.allocate(0)
        pool.allocate(2)
        pool.allocate(2)
        assert pool.occupancy_of(0) == 1
        assert pool.occupancy_of(1) == 0
        assert pool.occupancy_of(2) == 2
        assert pool.in_use == 3


class TestPipelineIntegration:
    def test_tiny_pool_throttles_but_progresses(self, small_config):
        from dataclasses import replace

        from repro import build_processor

        cfg = replace(small_config, rename_registers=12)
        proc = build_processor(mix=["gzip", "mcf", "crafty", "swim"],
                               config=cfg, seed=1, quantum_cycles=512)
        proc.run(4000)
        assert proc.regs.alloc_failures > 0
        assert proc.stats.committed > 100

    def test_generous_pool_never_fails(self, quick_proc):
        proc = quick_proc()
        proc.run(4000)
        # The small_config default pool (200) covers 4 threads easily.
        assert proc.regs.alloc_failures == 0

    def test_registers_freed_at_swap(self, quick_proc):
        import numpy as np

        from repro.workloads.profiles import get_profile
        from repro.workloads.tracegen import TraceGenerator

        proc = quick_proc()
        proc.run(1500)
        trace = TraceGenerator(get_profile("vortex"), 9, np.random.default_rng(5))
        proc.swap_thread(1, trace, switch_penalty=20)
        assert proc.regs.occupancy_of(1) == 0
