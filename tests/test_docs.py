"""Documentation-quality meta-tests: every public module, class and
function in the library carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

def _walk_modules():
    mods = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing the entry point would run the CLI
        mods.append(importlib.import_module(info.name))
    return mods


MODULES = _walk_modules()


def _documented(obj) -> bool:
    return bool(getattr(obj, "__doc__", None) and obj.__doc__.strip())


def _inherits_doc(cls_or_obj, method_name) -> bool:
    """A subclass/override may rely on the documented base definition."""
    if method_name is None:
        if not inspect.isclass(cls_or_obj):
            return False
        return any(_documented(base) for base in cls_or_obj.__mro__[1:-1])
    for base in cls_or_obj.__mro__[1:]:
        base_method = base.__dict__.get(method_name)
        if base_method is not None and _documented(base_method):
            return True
    return False


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not _documented(obj) and not _inherits_doc(obj, None):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(obj):
            for mname, method in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(method):
                    continue
                if not _documented(method) and not _inherits_doc(obj, mname):
                    undocumented.append(f"{module.__name__}.{name}.{mname}")
    assert not undocumented, f"missing docstrings: {undocumented}"
