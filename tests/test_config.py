"""Tests for the machine configuration."""

import pytest

from repro.smt.config import DEFAULT_LATENCIES, SMTConfig
from repro.smt.instruction import FDIV, IALU


class TestSMTConfig:
    def test_defaults_paper_compatible(self):
        cfg = SMTConfig()
        assert cfg.num_threads == 8
        assert cfg.fetch_width == 8
        assert cfg.fetch_threads_per_cycle == 2  # ICOUNT.2.8
        assert cfg.mem_ports <= cfg.int_units

    def test_thread_bounds(self):
        with pytest.raises(ValueError):
            SMTConfig(num_threads=0)
        with pytest.raises(ValueError):
            SMTConfig(num_threads=64)

    def test_width_bounds(self):
        with pytest.raises(ValueError):
            SMTConfig(fetch_width=0)
        with pytest.raises(ValueError):
            SMTConfig(commit_width=0)

    def test_mem_ports_bound(self):
        with pytest.raises(ValueError):
            SMTConfig(int_units=2, mem_ports=3)

    def test_unknown_predictor(self):
        with pytest.raises(ValueError):
            SMTConfig(predictor="perceptron")

    def test_rob_bound(self):
        with pytest.raises(ValueError):
            SMTConfig(rob_entries_per_thread=0)

    def test_fetch_threads_bound(self):
        with pytest.raises(ValueError):
            SMTConfig(fetch_threads_per_cycle=0)

    def test_scaled_changes_only_threads(self):
        cfg = SMTConfig()
        scaled = cfg.scaled(4)
        assert scaled.num_threads == 4
        assert scaled.int_iq_entries == cfg.int_iq_entries

    def test_misfetch_penalty_positive(self):
        assert SMTConfig().misfetch_penalty >= 1
        assert SMTConfig(front_end_stages=2).misfetch_penalty >= 1

    def test_frozen(self):
        cfg = SMTConfig()
        with pytest.raises(Exception):
            cfg.num_threads = 4


class TestLatencies:
    def test_all_kinds_have_latencies(self):
        from repro.smt.instruction import KIND_NAMES

        assert set(DEFAULT_LATENCIES) == set(KIND_NAMES)

    def test_fdiv_slowest_compute(self):
        assert DEFAULT_LATENCIES[FDIV] > DEFAULT_LATENCIES[IALU]
