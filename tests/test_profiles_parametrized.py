"""Parametrized coverage: every built-in profile and mix must drive the
whole stack (trace generation, fast model) without pathologies."""

import numpy as np
import pytest

from repro.fastmodel import FastMixModel
from repro.smt.instruction import BRANCH, LOAD, STORE
from repro.workloads.mixes import MIXES
from repro.workloads.profiles import PROFILES, get_profile
from repro.workloads.tracegen import TraceGenerator

ALL_PROFILES = sorted(PROFILES)
ALL_MIXES = [m.name for m in MIXES]


@pytest.mark.parametrize("name", ALL_PROFILES)
def test_every_profile_generates_sane_traces(name):
    g = TraceGenerator(get_profile(name), 0, np.random.default_rng(13))
    instrs = g.take(2500)
    kinds = [i.kind for i in instrs]
    # Every program branches and loads.
    assert BRANCH in kinds
    assert LOAD in kinds
    # Kind densities within loose physical bounds.
    n = len(instrs)
    assert 0.02 < kinds.count(BRANCH) / n < 0.55
    assert kinds.count(LOAD) / n < 0.75
    assert kinds.count(STORE) / n < 0.4
    # Dependence sanity on the whole window.
    for i in instrs:
        assert -1 <= i.dep1 < i.seq
        assert -1 <= i.dep2 < i.seq


@pytest.mark.parametrize("name", ALL_PROFILES)
def test_every_profile_addresses_stay_in_region(name):
    from repro.workloads.addrgen import _THREAD_REGION

    g = TraceGenerator(get_profile(name), 2, np.random.default_rng(7))
    for i in g.take(1500):
        if i.is_mem:
            assert 2 * _THREAD_REGION <= i.addr < 3 * _THREAD_REGION


@pytest.mark.parametrize("mix", ALL_MIXES)
def test_every_mix_runs_on_fast_model(mix):
    model = FastMixModel(mix, seed=1, quantum_cycles=2048)
    ipcs = [model.run_quantum("icount")[0] for _ in range(12)]
    assert all(0.05 <= x < 8.0 for x in ipcs)


@pytest.mark.parametrize("mix", ["mix01", "mix04", "mix08", "mix11"])
def test_representative_mixes_run_on_detailed_sim(mix):
    from repro import build_processor

    proc = build_processor(mix=mix, seed=2, quantum_cycles=512)
    proc.run(2500)
    assert proc.stats.committed > 200
    assert proc.stats.ipc < 8.0


@pytest.mark.parametrize("name", ALL_PROFILES)
def test_memory_bound_classification_consistent(name):
    p = get_profile(name)
    if p.memory_bound:
        # Memory-bound profiles must actually be memory-intense by one
        # axis: big footprint or weak locality.
        assert p.footprint_kb >= 2048 or p.hot_fraction < 0.55
