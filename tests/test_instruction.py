"""Tests for the dynamic instruction record."""

import pytest

from repro.smt.instruction import (
    BRANCH,
    FADD,
    FDIV,
    FMUL,
    IALU,
    IMUL,
    KIND_NAMES,
    LOAD,
    STORE,
    SYSCALL,
    Instruction,
    OpClass,
)


class TestKinds:
    def test_kind_constants_distinct(self):
        kinds = [IALU, IMUL, FADD, FMUL, FDIV, LOAD, STORE, BRANCH, SYSCALL]
        assert len(set(kinds)) == len(kinds)

    def test_kind_names_cover_all(self):
        assert set(KIND_NAMES) == {IALU, IMUL, FADD, FMUL, FDIV, LOAD, STORE, BRANCH, SYSCALL}

    def test_opclass_wraps_constants(self):
        assert OpClass.LOAD == LOAD
        assert OpClass.BRANCH == BRANCH


class TestInstruction:
    def test_defaults(self):
        i = Instruction(0, 5, IALU, 0x100)
        assert not i.completed and not i.issued and not i.squashed
        assert not i.mispredicted
        assert i.complete_cycle == -1
        assert i.dep1 == -1 and i.dep2 == -1
        assert i.wp_ready == 0

    def test_classification_fp(self):
        for k in (FADD, FMUL, FDIV):
            assert Instruction(0, 0, k, 0).is_fp
        for k in (IALU, IMUL, LOAD, STORE, BRANCH):
            assert not Instruction(0, 0, k, 0).is_fp

    def test_classification_mem(self):
        assert Instruction(0, 0, LOAD, 0).is_mem
        assert Instruction(0, 0, STORE, 0).is_mem
        assert Instruction(0, 0, LOAD, 0).is_load
        assert Instruction(0, 0, STORE, 0).is_store
        assert not Instruction(0, 0, IALU, 0).is_mem

    def test_classification_branch(self):
        assert Instruction(0, 0, BRANCH, 0).is_branch
        assert not Instruction(0, 0, LOAD, 0).is_branch

    def test_slots_prevent_new_attributes(self):
        i = Instruction(0, 0, IALU, 0)
        with pytest.raises(AttributeError):
            i.some_new_field = 1

    def test_repr_contains_kind_and_flags(self):
        i = Instruction(2, 7, LOAD, 0x40, addr=0x99)
        i.completed = True
        text = repr(i)
        assert "load" in text and "t2#7" in text and "C" in text
