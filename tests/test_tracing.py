"""Tests for pipeline event tracing."""

import pytest

from repro import build_processor
from repro.smt.config import SMTConfig
from repro.smt.pipeline import SMTProcessor
from repro.smt.tracing import EVENTS, PipelineTracer
from repro.workloads.tracegen import make_generators


def traced_proc(capacity=100_000):
    tracer = PipelineTracer(capacity)
    cfg = SMTConfig(num_threads=2)
    proc = SMTProcessor(cfg, make_generators(["gzip", "crafty"]),
                        quantum_cycles=512, tracer=tracer)
    return proc, tracer


class TestPipelineTracer:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PipelineTracer(0)

    def test_records_all_event_kinds(self):
        proc, tracer = traced_proc()
        proc.run(3000)
        for event in ("fetch", "dispatch", "issue", "complete", "commit"):
            assert tracer.counts[event] > 0, event
        assert tracer.counts["squash"] >= 0  # mispredicts may or may not fire

    def test_lifecycle_ordering(self):
        proc, tracer = traced_proc()
        proc.run(3000)
        # Pick a committed instruction and check its lifecycle ordering.
        commits = [e for e in tracer.events if e.event == "commit" and e.seq > 10]
        assert commits
        sample = commits[0]
        events = tracer.for_instruction(sample.tid, sample.seq)
        order = [e.event for e in sorted(events, key=lambda e: e.cycle)]
        assert order.index("fetch") < order.index("dispatch") < order.index("issue")
        assert order.index("issue") < order.index("complete") <= order.index("commit")

    def test_lifecycle_latencies_positive(self):
        proc, tracer = traced_proc()
        proc.run(3000)
        sample = next(e for e in tracer.events if e.event == "commit" and e.seq > 10)
        latencies = tracer.lifecycle_latencies(sample.tid, sample.seq)
        assert latencies
        assert all(v >= 0 for v in latencies.values())
        # The front-end delay line imposes at least its latency.
        if "fetch->dispatch" in latencies:
            assert latencies["fetch->dispatch"] >= proc._front_latency

    def test_counts_balance(self):
        proc, tracer = traced_proc()
        proc.run(4000)
        c = tracer.counts
        # Everything committed or squashed was fetched.
        assert c["commit"] + c["squash"] <= c["fetch"]
        # Nothing commits without completing first.
        assert c["commit"] <= c["complete"]

    def test_ring_buffer_bounded(self):
        proc, tracer = traced_proc(capacity=500)
        proc.run(2000)
        assert len(tracer.events) <= 500

    def test_window_and_thread_queries(self):
        proc, tracer = traced_proc()
        proc.run(1500)
        window = tracer.window(100, 200)
        assert all(100 <= e.cycle < 200 for e in window)
        t0 = tracer.for_thread(0)
        assert all(e.tid == 0 for e in t0)

    def test_render(self):
        proc, tracer = traced_proc()
        proc.run(300)
        text = tracer.render(limit=5)
        assert "cycle" in text
        assert len(text.splitlines()) <= 6

    def test_clear(self):
        proc, tracer = traced_proc()
        proc.run(300)
        tracer.clear()
        assert not tracer.events
        assert all(v == 0 for v in tracer.counts.values())

    def test_no_tracer_no_overhead_path(self):
        proc = build_processor(mix=["gzip"], quantum_cycles=512)
        proc.run(500)  # must simply work with tracer=None
        assert proc.tracer is None
