"""Subprocess tests for the serving CLI: `repro serve` speaking JSONL over
stdio, overload behaviour under a seeded burst, SIGTERM graceful drain
(exit 0, no orphan workers, journal unlockable afterwards), and the
`repro grid --workers N` signal handlers (exit 128+signum, pool killed,
journal lock released)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.harness.journal import RunJournal

SRC = str(Path(repro.__file__).resolve().parents[1])

pytestmark = pytest.mark.skipif(
    sys.platform != "linux", reason="signal/orphan checks use POSIX + /proc"
)


def _spawn(args, cwd):
    env = {**os.environ, "PYTHONPATH": SRC}
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        stderr=subprocess.PIPE, text=True, env=env, cwd=str(cwd),
    )


def _children(pid):
    path = Path(f"/proc/{pid}/task/{pid}/children")
    try:
        return [int(p) for p in path.read_text().split()]
    except (FileNotFoundError, ValueError):
        return []


def _alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _assert_all_exit(pids, timeout_s=60.0):
    """Every pid must be gone within ``timeout_s``.

    A short grace period, not an instant check: a signal can land between
    fork and the supervisor recording the child, in which case that one
    worker escapes the SIGKILL sweep and simply finishes its (small) cell
    on its own. What must never happen is a *permanently* orphaned
    simulator burning CPU.
    """
    deadline = time.monotonic() + timeout_s
    pending = list(pids)
    while pending and time.monotonic() < deadline:
        pending = [p for p in pending if _alive(p)]
        if pending:
            time.sleep(0.05)
    assert not pending, f"orphan workers survived: {pending}"


def _events(stdout_text):
    return [json.loads(line) for line in stdout_text.splitlines() if line]


SERVE_ARGS = ["serve", "--workers", "2", "--queue-capacity", "8",
              "--drain-deadline", "60"]
BURST_ARGS = ["burst", "--emit", "--requests", "40", "--seed", "0",
              "--quanta", "1", "--quantum", "128"]


def _await_ready(proc):
    line = proc.stdout.readline()
    assert json.loads(line)["event"] == "ready"


class TestServe:
    def test_seeded_burst_overload_and_clean_eof_shutdown(self, tmp_path):
        burst = subprocess.run(
            [sys.executable, "-m", "repro", *BURST_ARGS],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": SRC}, cwd=str(tmp_path),
        ).stdout
        proc = _spawn(SERVE_ARGS, tmp_path)
        try:
            _await_ready(proc)
            stdin_payload = (
                json.dumps({"op": "pause"}) + "\n" + burst
                + json.dumps({"op": "resume"}) + "\n"
            )
            stdout, stderr = proc.communicate(stdin_payload, timeout=300)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, stderr
        events = _events(stdout)
        responses = [e["response"] for e in events if e["event"] == "response"]
        assert len(responses) == 40  # every request answered, none dropped
        outcomes = {r["outcome"] for r in responses}
        assert "degraded" in outcomes and "rejected" in outcomes
        for r in responses:
            assert r["tier"] in ("full", "fast", "none")
            if r["tier"] == "fast":
                assert r["degraded"] and r["reason"]
        assert events[-1]["event"] == "drained"
        counters = events[-1]["stats"]["counters"]
        assert counters["submitted"] == 40

    def test_sigterm_during_loaded_run_drains_cleanly(self, tmp_path):
        """SIGTERM mid-burst: exit 0 within the drain deadline, every
        accepted request answered, no orphan workers, journal unlockable."""
        journal = tmp_path / "svc.jsonl"
        proc = _spawn(SERVE_ARGS + ["--journal", str(journal)], tmp_path)
        try:
            _await_ready(proc)
            burst = subprocess.run(
                [sys.executable, "-m", "repro", *BURST_ARGS],
                capture_output=True, text=True, check=True,
                env={**os.environ, "PYTHONPATH": SRC}, cwd=str(tmp_path),
            ).stdout
            proc.stdin.write(burst)
            proc.stdin.flush()
            # Wait until the pool is actually loaded before pulling the plug.
            deadline = time.monotonic() + 60
            while not _children(proc.pid) and time.monotonic() < deadline:
                time.sleep(0.02)
            workers = _children(proc.pid)
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, stderr
        events = _events(stdout)
        assert events[-1]["event"] == "drained"
        responses = [e["response"] for e in events if e["event"] == "response"]
        stats = events[-1]["stats"]
        assert len(responses) == stats["counters"]["submitted"]
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0
        _assert_all_exit(workers)  # the pool died with the drain
        # The journal lock was released: a new writer proceeds immediately.
        with RunJournal(journal) as j:
            j.load()
            j.record("post-drain", {"ipc": 1.0})

    def test_bad_input_line_reports_error_and_keeps_serving(self, tmp_path):
        proc = _spawn(["serve", "--workers", "0"], tmp_path)
        try:
            _await_ready(proc)
            stdout, stderr = proc.communicate(
                'this is not json\n{"op": "health"}\n{"op": "shutdown"}\n',
                timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == 0, stderr
        events = _events(stdout)
        kinds = [e["event"] for e in events]
        assert "error" in kinds and "health" in kinds
        assert kinds[-1] == "drained"


class TestGridSignalHandling:
    # More cells than workers: after the first children appear there is
    # always queued work left, so the grid cannot race to completion
    # before the signal lands (a 2-cell grid occasionally finished first
    # and exited 0, flaking the 128+signum assertion).
    GRID = ["grid", "--mixes", "mix01,mix02,mix03,mix04,mix05,mix06",
            "--quanta", "8", "--warmup", "1", "--quantum", "512",
            "--workers", "2"]

    @pytest.mark.parametrize("signum,expected", [
        (signal.SIGINT, 130), (signal.SIGTERM, 143)])
    def test_signal_kills_pool_and_exits_distinctly(self, tmp_path, signum,
                                                    expected):
        journal = tmp_path / "grid.jsonl"
        proc = _spawn(self.GRID + ["--journal", str(journal)], tmp_path)
        try:
            deadline = time.monotonic() + 120
            while not _children(proc.pid) and time.monotonic() < deadline:
                time.sleep(0.02)
                assert proc.poll() is None, proc.communicate()[1]
            workers = _children(proc.pid)
            assert workers, "worker pool never came up"
            proc.send_signal(signum)
            _, stderr = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert proc.returncode == expected, stderr
        assert f"signal {signum}" in stderr
        _assert_all_exit(workers)
        # Journal lock was released on the way out.
        with RunJournal(journal) as j:
            j.load()
            j.record("post-signal", {"ipc": 1.0})
