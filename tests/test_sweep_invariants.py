"""Cross-cutting invariants of the sweep machinery and its series views."""

import pytest

from repro.harness.runner import RunConfig
from repro.harness.sweep import threshold_type_grid
from repro.smt.config import SMTConfig


@pytest.fixture(scope="module")
def grid():
    base = RunConfig(
        mix=["gzip", "mcf"],
        num_threads=2,
        quantum_cycles=256,
        quanta=4,
        warmup_quanta=1,
        machine=SMTConfig(num_threads=2),
    )
    return threshold_type_grid(
        base, mixes=["mix01", "mix10"], thresholds=(1.0, 99.0),
        heuristics=("type1", "type3g"),
    )


class TestSweepInvariants:
    def test_every_cell_populated(self, grid):
        for m in grid.thresholds:
            for h in grid.heuristics:
                assert (m, h) in grid.ipc
                assert (m, h) in grid.switches
                assert (m, h) in grid.benign

    def test_per_mix_cells_average_to_grid_cell(self, grid):
        for m in grid.thresholds:
            for h in grid.heuristics:
                per_mix = [grid.per_mix_ipc[(m, h, mix)] for mix in grid.mixes]
                assert grid.ipc[(m, h)] == pytest.approx(sum(per_mix) / len(per_mix))

    def test_series_views_are_consistent_projections(self, grid):
        for h in grid.heuristics:
            assert grid.series_ipc_vs_threshold(h) == [
                grid.ipc[(m, h)] for m in grid.thresholds
            ]
        for m in grid.thresholds:
            assert grid.series_switches_vs_type(m) == [
                grid.switches[(m, h)] for h in grid.heuristics
            ]

    def test_benign_in_unit_interval(self, grid):
        assert all(0.0 <= v <= 1.0 for v in grid.benign.values())

    def test_absurd_threshold_switches_dominate(self, grid):
        for h in grid.heuristics:
            assert grid.switches[(99.0, h)] >= grid.switches[(1.0, h)]

    def test_best_cell_is_argmax(self, grid):
        best = grid.best_cell()
        assert grid.ipc[best] == max(grid.ipc.values())

    def test_gradient_gate_never_switches_more(self, grid):
        for m in grid.thresholds:
            assert grid.switches[(m, "type3g")] <= grid.switches[(m, "type1")] + 1
