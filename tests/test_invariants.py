"""Tests for the runtime invariant checker (repro.smt.invariants)."""

import pytest

from repro import build_processor
from repro.core.adts import ADTSController, WatchdogConfig
from repro.core.thresholds import ThresholdConfig
from repro.harness.runner import RunConfig, run_adts, run_fixed
from repro.smt.invariants import InvariantChecker, InvariantViolation


def _checked_proc(mode="raise", hook_inner=None, mix="mix02", seed=0):
    checker = InvariantChecker(hook_inner, mode=mode)
    proc = build_processor(mix=mix, seed=seed, hook=checker, quantum_cycles=256)
    return proc, checker


class TestCleanRuns:
    """A healthy simulator must never trip the checker."""

    @pytest.mark.parametrize("mix", ["mix02", "mix05"])
    def test_fixed_run_is_invariant_clean(self, mix):
        proc, checker = _checked_proc(mix=mix)
        proc.run_quanta(6)
        assert checker.checked_quanta == 6
        assert checker.violations == []

    def test_adts_run_is_invariant_clean(self):
        ctrl = ADTSController(heuristic="type3",
                              thresholds=ThresholdConfig(ipc_threshold=2.0))
        proc, checker = _checked_proc(hook_inner=ctrl, mix="mix05")
        proc.run_quanta(8)
        assert checker.checked_quanta == 8
        assert checker.violations == []

    def test_checking_does_not_change_results(self):
        cfg = RunConfig(mix="mix05", quanta=4, warmup_quanta=1,
                        quantum_cycles=512, seed=3)
        plain = run_adts(cfg)
        checked = run_adts(cfg, invariants="raise")
        assert checked.ipc == plain.ipc
        assert checked.quantum_ipcs == plain.quantum_ipcs
        assert checked.scheduler["invariant_violations"] == 0

    def test_summary_exposed_via_run_result(self):
        cfg = RunConfig(mix="mix02", quanta=2, warmup_quanta=1,
                        quantum_cycles=256, seed=0)
        r = run_fixed(cfg, invariants="record")
        assert r.scheduler["invariant_checked_quanta"] == 3
        assert r.scheduler["invariant_first_violation"] is None


class TestViolationDetection:
    """Deliberately corrupted mirrors must be caught, named and reported."""

    def _run_to_boundary(self, mode):
        proc, checker = _checked_proc(mode=mode)
        proc.run_quanta(1)
        return proc, checker

    def test_gauge_drift_raises_structured_violation(self):
        proc, checker = self._run_to_boundary("raise")
        proc.counters[0].rob += 7  # simulated counter corruption
        with pytest.raises(InvariantViolation) as exc:
            proc.run_quanta(1)
        assert exc.value.name == "rob_gauge"
        assert exc.value.details["tid"] == 0
        assert exc.value.cycle == proc.now

    def test_negative_counter_detected(self):
        proc, checker = self._run_to_boundary("raise")
        proc.counters[1].total_committed = -10**9
        with pytest.raises(InvariantViolation) as exc:
            proc.run_quanta(1)
        assert exc.value.name in ("counter_negative", "thread_committed_monotone")

    def test_monotonicity_violation_detected(self):
        proc, checker = self._run_to_boundary("raise")
        # Rewind the aggregate: committed work can never un-commit. The
        # rewind is caught either as a per-quantum telemetry mismatch or,
        # if the quantum's deltas still reconcile, as a monotonicity break.
        proc.stats.committed = 0
        for tid in proc.stats.per_thread_committed:
            proc.stats.per_thread_committed[tid] = 0
        with pytest.raises(InvariantViolation) as exc:
            proc.run_quanta(1)
        assert exc.value.name in ("committed_monotone", "quantum_committed")

    def test_record_mode_tallies_without_raising(self):
        proc, checker = self._run_to_boundary("record")
        proc.counters[0].rob += 7
        proc.run_quanta(2)  # corruption persists: flagged every boundary
        assert checker.checked_quanta == 3
        assert len(checker.violations) == 2
        assert checker.summary()["invariant_violations"] == 2
        assert "rob_gauge" in checker.summary()["invariant_first_violation"]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(mode="explode")


class TestWatchdogMode:
    """mode='watchdog' converts violations into ADTS safe-mode fallback."""

    def test_violation_trips_adts_watchdog(self):
        ctrl = ADTSController(
            heuristic="type3", thresholds=ThresholdConfig(ipc_threshold=2.0),
            watchdog=WatchdogConfig(implausible_limit=2),
        )
        checker = InvariantChecker(ctrl, mode="watchdog")
        proc = build_processor(mix="mix05", seed=0, hook=checker, quantum_cycles=256)
        proc.run_quanta(1)
        proc.counters[0].rob += 3  # persistent mirror drift
        proc.run_quanta(6)
        wd = ctrl.summary()
        assert len(checker.violations) >= 2
        assert wd["implausible_quanta"] >= 2
        assert wd["fallback_events"] >= 1  # safe-mode ICOUNT engaged
        assert proc.policy_name == "icount"
