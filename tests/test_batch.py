"""Tests for the lockstep batch sweep engine (repro.smt.batch) and its
harness wiring: sweep equivalence at any batch size, journal resume across
batch sizes, fault isolation between batchmates, fork-on-divergence, the
supervised ``grid_batch`` task kind, and ``run_batch`` result parity."""

import pytest

from repro import build_processor
from repro.core.adts import ADTSController
from repro.core.thresholds import ThresholdConfig
from repro.faults import FaultInjector, FaultPlan
from repro.harness.executor import ExecutorConfig, SupervisedExecutor
from repro.harness.journal import RunJournal
from repro.harness.runner import BatchRunSpec, RunConfig, run_adts, run_batch
from repro.harness.sweep import threshold_type_grid
from repro.smt.batch import BatchCell, BatchEngine, run_batch_cells

APPS = ["gzip", "crafty", "swim", "mcf"]
SEED = 1


def tiny_base(**over):
    base = dict(quanta=3, warmup_quanta=1, quantum_cycles=256, seed=1,
                num_threads=4)
    base.update(over)
    return RunConfig(**base)


def _sequential_fingerprint(cell: BatchCell, fault_plan=None) -> str:
    """What a lone, unbatched simulation of this cell lands on."""
    if cell.mode == "adts":
        hook = ADTSController(heuristic=cell.heuristic,
                              thresholds=cell.thresholds or ThresholdConfig())
        policy = "icount"
    else:
        hook = None
        policy = cell.policy
    if fault_plan is not None:
        hook = FaultInjector(fault_plan, hook)
    proc = build_processor(
        mix=cell.mix, num_threads=cell.num_threads, seed=cell.seed,
        policy=policy, hook=hook, quantum_cycles=cell.quantum_cycles,
    )
    proc.run_quanta(cell.total_quanta())
    return proc.fingerprint()


class TestSweepBatchEquivalence:
    """`--batch N` is a pure performance transform on the grid."""

    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_grid_matches_serial(self, batch):
        base = tiny_base()
        mixes = ["mix02", "mix05"]
        kw = dict(thresholds=(1.0, 3.0), heuristics=("type1", "type3"))
        serial = threshold_type_grid(base, mixes, **kw)
        batched = threshold_type_grid(base, mixes, batch=batch, **kw)
        assert batched.ipc == serial.ipc
        assert batched.switches == serial.switches
        assert batched.benign == serial.benign
        assert batched.per_mix_ipc == serial.per_mix_ipc
        assert batched.best_cell() == serial.best_cell()

    def test_executor_owns_whole_batches(self):
        """Under an executor, each supervised worker simulates a batch of
        cells via the ``grid_batch`` task kind — same aggregate as serial."""
        base = tiny_base()
        mixes = ["mix02", "mix05"]
        kw = dict(thresholds=(1.0, 3.0), heuristics=("type1", "type3"))
        serial = threshold_type_grid(base, mixes, **kw)
        ex = SupervisedExecutor(ExecutorConfig(workers=1))
        batched = threshold_type_grid(base, mixes, batch=2, executor=ex, **kw)
        assert ex.failures == []
        assert batched.ipc == serial.ipc
        assert batched.switches == serial.switches
        assert batched.per_mix_ipc == serial.per_mix_ipc


class TestJournalAcrossBatchSizes:
    def test_resume_under_different_batch_size(self, tmp_path, monkeypatch):
        """A sweep journaled at --batch 4 resumes at --batch 1 (and serial)
        with zero recomputation: journal keys are per-cell, not per-batch."""
        base = tiny_base()
        path = tmp_path / "grid.jsonl"
        kw = dict(thresholds=(1.0, 3.0), heuristics=("type1", "type3"))
        with RunJournal(path) as j:
            first = threshold_type_grid(base, ["mix02"], batch=4, journal=j,
                                        **kw)

        def boom(*a, **k):
            raise AssertionError("journaled sweep must not re-simulate")

        monkeypatch.setattr(BatchEngine, "run", boom)
        monkeypatch.setattr("repro.harness.sweep._run_cell", boom)
        with RunJournal(path) as j2:
            assert j2.load() == 4
            for batch in (1, 5, None):
                again = threshold_type_grid(base, ["mix02"], batch=batch,
                                            journal=j2, **kw)
                assert again.ipc == first.ipc
                assert again.switches == first.switches


class TestFaultIsolation:
    def test_faulted_batchmate_leaves_clean_cell_untouched(self):
        """A heavily faulted cell and a clean cell share one batch: the
        clean cell's fingerprint must equal its solo sequential run, and
        the faulted cell must match its own sequential faulted run."""
        plan = FaultPlan.from_kinds(["counters", "dt", "policy"], rate=0.9,
                                    seed=7)
        common = dict(mix=APPS, seed=SEED, quantum_cycles=512, quanta=6,
                      warmup_quanta=0, mode="adts", heuristic="type3",
                      thresholds=ThresholdConfig(ipc_threshold=2.0))
        clean = BatchCell(**common)
        faulted = BatchCell(fault_plan=plan, **common)
        results = run_batch_cells([faulted, clean])
        clean_fp = _sequential_fingerprint(clean)
        faulted_fp = _sequential_fingerprint(faulted, fault_plan=plan)
        assert results[1].fingerprint == clean_fp
        assert results[0].fingerprint == faulted_fp
        # The plan must actually have fired, or isolation was never tested
        # — and it must have perturbed the trajectory.
        assert results[0].scheduler.get("faults_injected", 0) > 0
        assert results[0].fingerprint != clean_fp

    def test_faulted_cells_run_solo(self):
        """Scheduler-faulted cells never share a machine (each owns its
        injector stream), but still share trace streams."""
        plan = FaultPlan.from_kinds(["counters"], rate=0.5, seed=3)
        common = dict(mix=APPS, seed=SEED, quantum_cycles=256, quanta=2,
                      warmup_quanta=0, mode="adts", heuristic="type3",
                      thresholds=ThresholdConfig(ipc_threshold=2.0))
        cells = [BatchCell(fault_plan=plan, **common),
                 BatchCell(fault_plan=plan, **common),
                 BatchCell(**common)]
        engine = BatchEngine(cells)
        engine.run()
        assert engine.telemetry["groups_initial"] == 3
        assert engine.telemetry["trace_streams"] == len(APPS)


class TestForkOnDivergence:
    def test_divergent_trajectories_fork_and_stay_bit_identical(self):
        """A fixed-icount cell and an ADTS cell with an unreachable IPC
        threshold (so its very first boundary enqueues a DT) must fork the
        shared machine — and both sides must match their sequential runs."""
        cells = [
            BatchCell(mix=APPS, seed=SEED, quantum_cycles=512, quanta=4,
                      warmup_quanta=0, mode="fixed", policy="icount"),
            BatchCell(mix=APPS, seed=SEED, quantum_cycles=512, quanta=4,
                      warmup_quanta=0, mode="adts", heuristic="type3",
                      thresholds=ThresholdConfig(ipc_threshold=99.0)),
        ]
        engine = BatchEngine(cells)
        results = engine.run()
        assert engine.telemetry["groups_initial"] == 1
        assert engine.telemetry["forks"] >= 1
        assert engine.telemetry["groups_final"] == 2
        for r in results:
            assert r.fingerprint == _sequential_fingerprint(r.cell), r.cell

    def test_identical_cells_share_every_step(self):
        """Cells on identical trajectories never fork: N duplicates cost
        one machine's worth of quantum steps."""
        cell = BatchCell(mix=APPS, seed=SEED, quantum_cycles=256, quanta=3,
                         warmup_quanta=0, mode="fixed", policy="icount")
        engine = BatchEngine([cell, cell, cell, cell])
        results = engine.run()
        assert engine.telemetry["forks"] == 0
        assert engine.telemetry["quantum_steps"] == 3
        assert engine.telemetry["quantum_steps_sequential"] == 12
        assert len({r.fingerprint for r in results}) == 1


class TestRunBatchParity:
    def test_run_batch_matches_run_adts(self):
        base = tiny_base()
        specs = [
            BatchRunSpec(config=base, heuristic=h,
                         thresholds=ThresholdConfig(ipc_threshold=m))
            for m, h in [(1.0, "type1"), (2.0, "type3"), (99.0, "type4")]
        ]
        batch_results = run_batch(specs)
        for spec, got in zip(specs, batch_results):
            want = run_adts(spec.config, heuristic=spec.heuristic,
                            thresholds=spec.thresholds)
            assert got.ipc == want.ipc
            assert got.committed == want.committed
            assert got.cycles == want.cycles
            assert got.quantum_ipcs == want.quantum_ipcs
            assert got.scheduler["switches"] == want.scheduler["switches"]
            assert (got.scheduler["benign_probability"]
                    == want.scheduler["benign_probability"])
