"""Traffic models: shaped generation, recording round-trip, replay engines,
and the extended `breakdown()` accounting."""

import json

import numpy as np
import pytest

from repro.service import (
    ServiceConfig,
    SimRequest,
    SimResponse,
    SimulationService,
    TimedRequest,
    TrafficSpec,
    VirtualClock,
    breakdown,
    generate_traffic,
    load_recording,
    replay_traffic,
    save_recording,
    traffic_fingerprint,
)


def ok_full(request):
    return {"ipc": 1.0}


def ok_fast(request):
    return {"ipc": 0.9}


class TestGenerateTraffic:
    def test_same_seed_same_stream(self):
        spec = TrafficSpec(shape="diurnal", requests=60, duration_s=20.0, seed=9)
        a, b = generate_traffic(spec), generate_traffic(spec)
        assert traffic_fingerprint(a) == traffic_fingerprint(b)
        assert [e.to_json() for e in a] == [e.to_json() for e in b]

    def test_different_seed_different_stream(self):
        base = TrafficSpec(requests=60, duration_s=20.0)
        a = generate_traffic(base)
        b = generate_traffic(TrafficSpec(requests=60, duration_s=20.0, seed=1))
        assert traffic_fingerprint(a) != traffic_fingerprint(b)

    @pytest.mark.parametrize("shape", ("uniform", "diurnal", "bursty", "ramp"))
    def test_arrivals_sorted_and_bounded(self, shape):
        spec = TrafficSpec(shape=shape, requests=80, duration_s=10.0, seed=3)
        events = generate_traffic(spec)
        times = [e.at_s for e in events]
        assert len(events) == 80
        assert times == sorted(times)
        assert all(0.0 <= t <= 10.0 for t in times)
        assert len({e.request.request_id for e in events}) == 80

    def test_diurnal_peaks_mid_period(self):
        spec = TrafficSpec(
            shape="diurnal", requests=400, duration_s=30.0, seed=0,
            peak_to_trough=8.0,
        )
        times = np.array([e.at_s for e in generate_traffic(spec)])
        # Trough at the edges, peak mid-period: the middle third must hold
        # far more than a uniform share of arrivals.
        mid = np.sum((times > 10.0) & (times < 20.0))
        assert mid > 400 * 0.45

    def test_ramp_loads_the_tail(self):
        spec = TrafficSpec(
            shape="ramp", requests=400, duration_s=30.0, seed=0,
            peak_to_trough=6.0,
        )
        times = np.array([e.at_s for e in generate_traffic(spec)])
        assert np.sum(times > 15.0) > np.sum(times <= 15.0) * 1.5

    def test_bursty_is_actually_bursty(self):
        spec = TrafficSpec(shape="bursty", requests=200, duration_s=30.0, seed=0)
        times = np.array([e.at_s for e in generate_traffic(spec)])
        gaps = np.diff(times)
        # Heavy-tailed trains: the biggest quiet gap dwarfs the median gap.
        assert gaps.max() > 20 * max(np.median(gaps), 1e-9)

    def test_expired_fraction_means_zero_deadline(self):
        spec = TrafficSpec(
            requests=300, duration_s=10.0, seed=5, expired_fraction=0.3,
            deadline_fraction=0.0,
        )
        events = generate_traffic(spec)
        expired = [e for e in events if e.request.deadline_s == 0.0]
        assert 0.15 * 300 < len(expired) < 0.45 * 300
        for e in events:
            assert e.request.deadline_s in (None, 0.0)

    def test_fault_fraction_tags_requests(self):
        spec = TrafficSpec(
            requests=200, duration_s=10.0, seed=2,
            fault_fraction=0.5, fault_kinds=("counters", "dt"),
        )
        events = generate_traffic(spec)
        faulted = [e for e in events if e.request.fault_kinds]
        assert 0.3 * 200 < len(faulted) < 0.7 * 200
        assert all(e.request.fault_kinds == ("counters", "dt") for e in faulted)

    def test_client_weights_shift_the_mix(self):
        spec = TrafficSpec(
            requests=300, duration_s=10.0, seed=1,
            clients=("heavy", "light"), client_weights=(9.0, 1.0),
        )
        events = generate_traffic(spec)
        heavy = sum(1 for e in events if e.request.client == "heavy")
        assert heavy > 240

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TrafficSpec(shape="square-wave")
        with pytest.raises(ValueError):
            TrafficSpec(requests=0)
        with pytest.raises(ValueError):
            TrafficSpec(client_weights=(1.0,))  # wrong arity
        with pytest.raises(ValueError):
            TrafficSpec(peak_to_trough=0.5)


class TestRequestRoundTrip:
    def test_sim_request_to_json_round_trips(self):
        req = SimRequest(
            request_id="r1", client="alice", priority=2, deadline_s=1.5,
            fault_kinds=("counters",), degradable=False,
        )
        assert SimRequest.from_json(req.to_json()) == req
        json.dumps(req.to_json())  # JSON-serializable as-is

    def test_timed_request_round_trips(self):
        t = TimedRequest(at_s=3.25, request=SimRequest(request_id="r2"))
        assert TimedRequest.from_json(t.to_json()) == t


class TestRecording:
    def test_round_trip_and_fsck_healthy(self, tmp_path):
        events = generate_traffic(TrafficSpec(requests=30, duration_s=5.0, seed=7))
        path = tmp_path / "rec.json"
        save_recording(path, events, meta={"note": "test"})
        loaded = load_recording(path)
        assert loaded == sorted(events, key=lambda e: (e.at_s, e.request.request_id))
        assert traffic_fingerprint(loaded) == traffic_fingerprint(events)
        from repro.storage import fsck_tree

        report = fsck_tree(tmp_path, repair=False)
        assert report.counts == {"healthy": 1}

    def test_tampered_recording_refuses_to_load(self, tmp_path):
        path = tmp_path / "rec.json"
        save_recording(path, generate_traffic(TrafficSpec(requests=5, seed=0)))
        doc = json.loads(path.read_text())
        doc["requests"][0]["at_s"] = 99.0  # bit-flip stand-in
        path.write_text(json.dumps(doc))
        from repro.storage import ArtifactError

        with pytest.raises((ArtifactError, ValueError)):
            load_recording(path)

    def test_wrong_format_refused(self, tmp_path):
        from repro.storage import atomic_write_bytes, embed_json_artifact

        path = tmp_path / "other.json"
        doc = embed_json_artifact({"kind": "other"}, "bench-report", 1)
        atomic_write_bytes(path, json.dumps(doc).encode())
        from repro.storage import ArtifactError

        with pytest.raises((ArtifactError, ValueError)):
            load_recording(path)


class TestReplay:
    def _service(self, **kw):
        clock = VirtualClock()
        cfg = ServiceConfig(workers=0, queue_capacity=8, **kw)
        return SimulationService(
            cfg, full_runner=ok_full, fast_runner=ok_fast, clock=clock
        ), clock

    def test_replay_answers_everything_deterministically(self):
        events = generate_traffic(
            TrafficSpec(shape="bursty", requests=50, duration_s=6.0, seed=4)
        )
        results = []
        for _ in range(2):
            service, clock = self._service()
            responses = replay_traffic(service, events, clock, tick_s=0.05)
            clock.auto_advance_s = 0.05
            service.drain(5.0)
            responses.extend(service.take_completed())
            assert len(responses) == 50
            assert {r.request_id for r in responses} == {
                e.request.request_id for e in events
            }
            results.append(breakdown(responses))
        assert results[0] == results[1]

    def test_expired_requests_are_shed_not_dropped(self):
        events = generate_traffic(
            TrafficSpec(requests=40, duration_s=4.0, seed=3,
                        expired_fraction=0.5, deadline_fraction=0.0)
        )
        service, clock = self._service()
        responses = replay_traffic(service, events, clock, tick_s=0.05)
        clock.auto_advance_s = 0.05
        service.drain(5.0)
        responses.extend(service.take_completed())
        shed = [r for r in responses if r.outcome == "shed"]
        assert shed and all(r.reason for r in shed)
        assert len(responses) == 40


class TestBreakdown:
    def _resp(self, rid, client, outcome, tier, reason="", degraded=False):
        return SimResponse(
            request_id=rid, client=client, outcome=outcome, tier=tier,
            degraded=degraded, reason=reason,
        )

    def test_derived_rates_and_per_client_refusals(self):
        responses = [
            self._resp("a", "alice", "full", "full"),
            self._resp("b", "alice", "degraded", "fast", "queue-pressure", True),
            self._resp("c", "bob", "shed", "none", "deadline-expired"),
            self._resp("d", "bob", "shed", "none", "drain-deadline"),
            self._resp("e", "carol", "rejected", "none", "queue-full"),
        ]
        bd = breakdown(responses)
        # Original histogram keys survive unchanged.
        assert bd["total"] == 5
        assert bd["outcomes"] == {
            "full": 1, "degraded": 1, "shed": 2, "rejected": 1
        }
        assert bd["tiers"] == {"full": 1, "fast": 1, "none": 3}
        # Satellite fields: only the deadline-reason shed counts as a miss.
        assert bd["deadline_misses"] == 1
        assert bd["deadline_miss_rate"] == pytest.approx(0.2)
        assert bd["degraded_share"] == pytest.approx(0.2)
        assert bd["per_client_refusals"] == {"bob": 2, "carol": 1}

    def test_empty_batch(self):
        bd = breakdown([])
        assert bd["total"] == 0
        assert bd["deadline_miss_rate"] == 0.0
        assert bd["degraded_share"] == 0.0
        assert bd["per_client_refusals"] == {}
