"""Property-based pipeline tests: invariants must hold under arbitrary
interleavings of running, policy switches, and control-flag writes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from conftest import assert_counter_consistency
from repro import build_processor
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import HierarchyConfig
from repro.smt.config import SMTConfig

_CFG = SMTConfig(
    num_threads=3,
    int_iq_entries=16,
    fp_iq_entries=16,
    lsq_entries=12,
    rob_entries_per_thread=24,
    fetch_buffer_entries=12,
    hierarchy=HierarchyConfig(
        l1i=CacheConfig(4 * 1024, 64, 2, "l1i"),
        l1d=CacheConfig(4 * 1024, 64, 2, "l1d"),
        l2=CacheConfig(32 * 1024, 64, 4, "l2"),
        l2_latency=6,
        mem_latency=30,
        mshr_entries=4,
    ),
)

_ACTIONS = st.lists(
    st.one_of(
        st.tuples(st.just("run"), st.integers(10, 120)),
        st.tuples(st.just("policy"), st.sampled_from(
            ["icount", "brcount", "l1misscount", "rr", "memcount"])),
        st.tuples(st.just("fetchable"), st.integers(0, 2), st.booleans()),
    ),
    min_size=3,
    max_size=10,
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(actions=_ACTIONS, seed=st.integers(0, 50))
def test_invariants_under_random_action_sequences(actions, seed):
    proc = build_processor(
        mix=["gzip", "mcf", "crafty"], config=_CFG, seed=seed, quantum_cycles=256
    )
    committed_before = 0
    for action in actions:
        if action[0] == "run":
            proc.run(action[1])
        elif action[0] == "policy":
            proc.set_policy(action[1])
        else:
            _, tid, flag = action
            proc.contexts[tid].fetchable = flag
        # Core invariants after every step of the scenario:
        assert_counter_consistency(proc)
        assert proc.stats.committed >= committed_before
        committed_before = proc.stats.committed
        assert proc.stats.fetched >= proc.stats.committed + sum(
            len(q) for q in proc.front_q
        ) - proc.stats.squashed - 1  # fetched >= in-flight + done (approx)
        assert 0 <= len(proc.lsq) <= _CFG.lsq_entries
        assert len(proc.iq_int) <= _CFG.int_iq_entries + _CFG.fp_iq_entries
    # Re-enable everything; the machine must still make progress.
    for ctx in proc.contexts:
        ctx.fetchable = True
    before = proc.stats.committed
    proc.run(2000)
    assert proc.stats.committed > before
