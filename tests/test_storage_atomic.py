"""The atomic-write/append/quarantine primitives and the error taxonomy.

These are the foundation everything durable sits on, so the tests pin the
contract hard: an atomic write is all-or-nothing (no torn destination, no
leaked temp), an append lands a whole line or no line (ENOSPC mid-record is
healed by truncation), transient errors are retried with bounded backoff,
persistent errors surface as the right taxonomy class, and quarantine never
overwrites earlier quarantine evidence.
"""

import errno
import json
import os

import pytest

from repro.storage import (
    DEFAULT_RETRY,
    RetrySpec,
    append_line,
    atomic_write_bytes,
    quarantine,
    read_bytes,
)
from repro.storage.errors import (
    DiskFullError,
    StorageError,
    StoragePermissionError,
    TransientStorageError,
    classify_oserror,
    is_transient,
)
from repro.storage.faultfs import DiskFaultPlan, FaultFS, faultfs_session


FAST_RETRY = RetrySpec(attempts=12, base_delay_s=0.0, max_delay_s=0.0)
ONE_SHOT = RetrySpec(attempts=1, base_delay_s=0.0, max_delay_s=0.0)


class TestAtomicWrite:
    def test_roundtrip(self, tmp_path):
        p = tmp_path / "a.bin"
        atomic_write_bytes(p, b"hello world")
        assert p.read_bytes() == b"hello world"

    def test_overwrites_existing(self, tmp_path):
        p = tmp_path / "a.bin"
        p.write_bytes(b"old")
        atomic_write_bytes(p, b"new")
        assert p.read_bytes() == b"new"

    def test_no_temp_left_behind(self, tmp_path):
        p = tmp_path / "a.bin"
        atomic_write_bytes(p, b"x" * 1000)
        assert [f.name for f in tmp_path.iterdir()] == ["a.bin"]

    def test_creates_parent_dirs(self, tmp_path):
        p = tmp_path / "deep" / "er" / "a.bin"
        atomic_write_bytes(p, b"x")
        assert p.read_bytes() == b"x"

    def test_torn_write_fault_never_tears_destination(self, tmp_path):
        """Under a 100% torn-write plan the write must fail loudly with the
        destination either absent or holding its previous intact content —
        never a prefix."""
        p = tmp_path / "a.bin"
        p.write_bytes(b"intact-old-content")
        plan = DiskFaultPlan(seed=7, torn_write_rate=1.0)
        with faultfs_session(plan):
            with pytest.raises(StorageError):
                atomic_write_bytes(p, b"N" * 4096, retry=FAST_RETRY)
        assert p.read_bytes() == b"intact-old-content"
        assert [f.name for f in tmp_path.iterdir()] == ["a.bin"]

    def test_transient_fault_recovered_by_retry(self, tmp_path):
        """A sub-certain fault rate flaps; the bounded retry must land the
        write intact within its budget (seeded, so deterministic)."""
        p = tmp_path / "a.bin"
        plan = DiskFaultPlan(seed=3, torn_write_rate=0.4, enospc_rate=0.3)
        with faultfs_session(plan) as ffs:
            for i in range(30):
                atomic_write_bytes(p, b"payload-%d" % i, retry=FAST_RETRY)
                assert p.read_bytes() == b"payload-%d" % i
            assert ffs.faults_injected > 0

    def test_enospc_surfaces_as_disk_full(self, tmp_path):
        plan = DiskFaultPlan(seed=0, enospc_rate=1.0)
        with faultfs_session(plan):
            with pytest.raises(DiskFullError):
                atomic_write_bytes(tmp_path / "a.bin", b"x" * 512, retry=FAST_RETRY)

    def test_rename_fault_leaves_no_temp(self, tmp_path):
        plan = DiskFaultPlan(seed=1, rename_fail_rate=1.0)
        with faultfs_session(plan):
            with pytest.raises(StorageError):
                atomic_write_bytes(tmp_path / "a.bin", b"x", retry=FAST_RETRY)
        assert list(tmp_path.iterdir()) == []


class TestAppendLine:
    def test_appends_whole_lines(self, tmp_path):
        p = tmp_path / "j.jsonl"
        append_line(p, '{"a": 1}')
        append_line(p, '{"b": 2}')
        assert p.read_text().splitlines() == ['{"a": 1}', '{"b": 2}']

    def test_enospc_mid_record_leaves_no_torn_tail(self, tmp_path):
        """Satellite: an ENOSPC that lands only a prefix of the record must
        be truncated away — the journal ends at the last complete line."""
        p = tmp_path / "j.jsonl"
        append_line(p, '{"ok": 1}')
        plan = DiskFaultPlan(seed=0, enospc_rate=1.0, enospc_after_bytes=4)
        with faultfs_session(plan):
            with pytest.raises(DiskFullError):
                append_line(p, '{"doomed": "record"}', retry=FAST_RETRY)
        assert p.read_bytes() == b'{"ok": 1}\n'

    def test_flapping_faults_recovered_without_duplicates(self, tmp_path):
        """Retried appends must not double-land a line: each success is
        exactly one copy, even when earlier attempts tore."""
        p = tmp_path / "j.jsonl"
        plan = DiskFaultPlan(seed=11, torn_write_rate=0.35, enospc_rate=0.25)
        with faultfs_session(plan) as ffs:
            for i in range(40):
                append_line(p, json.dumps({"i": i}), retry=FAST_RETRY)
            assert ffs.faults_injected > 0
        lines = p.read_text().splitlines()
        assert [json.loads(l)["i"] for l in lines] == list(range(40))


class TestErrorTaxonomy:
    def test_enospc_classifies_disk_full(self):
        err = classify_oserror(OSError(errno.ENOSPC, "full"))
        assert isinstance(err, DiskFullError)

    def test_eacces_classifies_permission(self):
        err = classify_oserror(OSError(errno.EACCES, "denied"))
        assert isinstance(err, StoragePermissionError)

    def test_other_errno_classifies_transient(self):
        err = classify_oserror(OSError(errno.EIO, "io"))
        assert isinstance(err, TransientStorageError)

    def test_is_transient_covers_retryable_errnos(self):
        assert is_transient(OSError(errno.EIO, "io"))
        assert is_transient(OSError(errno.ENOSPC, "full"))
        assert not is_transient(OSError(errno.ENOENT, "missing"))

    def test_retry_spec_backoff_is_bounded(self):
        spec = RetrySpec(attempts=8, base_delay_s=0.005, max_delay_s=0.25)
        delays = [spec.delay(a) for a in range(1, 9)]
        # The cap bounds the base delay; jitter may add up to +jitter on top.
        assert all(0.0 <= d <= 0.25 * (1.0 + spec.jitter) for d in delays)

    def test_default_retry_is_bounded(self):
        assert DEFAULT_RETRY.attempts >= 2
        assert DEFAULT_RETRY.max_delay_s <= 1.0


class TestReadBytes:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_bytes(tmp_path / "nope.bin")

    def test_read_eio_retried(self, tmp_path):
        p = tmp_path / "a.bin"
        p.write_bytes(b"data")
        plan = DiskFaultPlan(seed=5, read_eio_rate=0.5)
        with faultfs_session(plan) as ffs:
            for _ in range(20):
                assert read_bytes(p, retry=FAST_RETRY) == b"data"
            assert ffs.counts.get("read_eio", 0) > 0

    def test_persistent_eio_surfaces(self, tmp_path):
        p = tmp_path / "a.bin"
        p.write_bytes(b"data")
        with faultfs_session(DiskFaultPlan(seed=0, read_eio_rate=1.0)):
            with pytest.raises(StorageError):
                read_bytes(p, retry=FAST_RETRY)


class TestQuarantine:
    def test_renames_to_corrupt(self, tmp_path):
        p = tmp_path / "a.snap"
        p.write_bytes(b"bad")
        dest = quarantine(p)
        assert dest == tmp_path / "a.snap.corrupt"
        assert not p.exists() and dest.read_bytes() == b"bad"

    def test_never_overwrites_prior_evidence(self, tmp_path):
        p = tmp_path / "a.snap"
        (tmp_path / "a.snap.corrupt").write_bytes(b"first")
        p.write_bytes(b"second")
        dest = quarantine(p)
        assert dest == tmp_path / "a.snap.corrupt.1"
        assert (tmp_path / "a.snap.corrupt").read_bytes() == b"first"
        assert dest.read_bytes() == b"second"

    def test_missing_file_returns_none(self, tmp_path):
        assert quarantine(tmp_path / "ghost") is None

    def test_bypasses_active_faultfs(self, tmp_path):
        """The repair path must not itself fail under injected rename
        faults — quarantine uses raw os.replace."""
        p = tmp_path / "a.snap"
        p.write_bytes(b"bad")
        with faultfs_session(DiskFaultPlan(seed=0, rename_fail_rate=1.0)):
            dest = quarantine(p)
        assert dest is not None and dest.exists()


class TestFaultFSDeterminism:
    def test_same_seed_same_fault_sequence(self, tmp_path):
        def run(seed):
            ffs = FaultFS(DiskFaultPlan(seed=seed, torn_write_rate=0.5))
            with faultfs_session(ffs):
                outcomes = []
                for i in range(20):
                    try:
                        atomic_write_bytes(tmp_path / f"f{i}", b"x" * 64,
                                           retry=ONE_SHOT)
                        outcomes.append("ok")
                    except StorageError:
                        outcomes.append("fault")
            return outcomes, dict(ffs.counts)

        a = run(42)
        b = run(42)
        c = run(43)
        assert a == b
        assert a != c  # different seed, different sequence (overwhelmingly)

    def test_zero_rate_plan_installs_nothing(self):
        with faultfs_session(DiskFaultPlan(seed=0)) as ffs:
            assert ffs is None
