"""Tests for the per-thread hardware context."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.context import ThreadContext
from repro.smt.instruction import IALU, Instruction


class FakeTrace:
    def __init__(self):
        self.n = 0

    def next_instruction(self):
        i = Instruction(0, self.n, IALU, self.n * 4)
        self.n += 1
        return i


def ctx():
    return ThreadContext(0, FakeTrace())


class TestTraceAccess:
    def test_sequential_pull(self):
        c = ctx()
        assert c.next_instruction().seq == 0
        assert c.next_instruction().seq == 1

    def test_pushback_returns_same_instruction(self):
        c = ctx()
        first = c.next_instruction()
        c.push_back(first)
        assert c.next_instruction() is first

    def test_double_pushback_asserts(self):
        c = ctx()
        a = c.next_instruction()
        b = c.next_instruction()
        c.push_back(a)
        with pytest.raises(AssertionError):
            c.push_back(b)


class TestDependenceTracking:
    def test_in_order_completion_advances_pointer(self):
        c = ctx()
        for s in range(5):
            c.mark_completed(s)
        assert c.done_upto == 4
        assert not c.done_set

    def test_out_of_order_completion(self):
        c = ctx()
        c.mark_completed(2)
        assert c.done_upto == -1
        assert c.dep_satisfied(2)
        assert not c.dep_satisfied(0)
        c.mark_completed(0)
        c.mark_completed(1)
        assert c.done_upto == 2
        assert not c.done_set  # compacted

    def test_negative_seq_ignored(self):
        c = ctx()
        c.mark_completed(-1)
        assert c.done_upto == -1

    def test_is_ready_with_deps(self):
        c = ctx()
        i = Instruction(0, 10, IALU, 0, dep1=3, dep2=7)
        assert not c.is_ready(i)
        c.mark_completed(3)
        assert not c.is_ready(i)
        c.mark_completed(7)
        assert c.is_ready(i)

    def test_is_ready_no_deps(self):
        c = ctx()
        assert c.is_ready(Instruction(0, 10, IALU, 0))


@settings(max_examples=40, deadline=None)
@given(st.permutations(list(range(12))))
def test_completion_pointer_invariant_any_order(order):
    """After completing seqs in any order, done_upto + done_set together
    describe exactly the completed set."""
    c = ctx()
    completed = set()
    for s in order:
        c.mark_completed(s)
        completed.add(s)
        for q in range(12):
            assert c.dep_satisfied(q) == (q in completed)
        # done_set never contains anything at or below the pointer.
        assert all(s2 > c.done_upto for s2 in c.done_set)
    assert c.done_upto == 11
    assert not c.done_set


class TestFetchGating:
    def test_default_fetchable(self):
        assert ctx().can_fetch(0)

    def test_block_until(self):
        c = ctx()
        c.block_fetch_until(10)
        assert not c.can_fetch(9)
        assert c.can_fetch(10)

    def test_block_never_shrinks(self):
        c = ctx()
        c.block_fetch_until(10)
        c.block_fetch_until(5)
        assert c.fetch_ready_cycle == 10

    def test_control_flags_gate_fetch(self):
        c = ctx()
        c.fetchable = False
        assert not c.can_fetch(0)
        c.fetchable = True
        c.suspended = True
        assert not c.can_fetch(0)
        c.suspended = False
        c.syscall_waiting = True
        assert not c.can_fetch(0)
