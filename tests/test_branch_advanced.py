"""Tests for the local two-level and tournament predictors."""

import numpy as np
import pytest

from repro.branch import create_predictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.local import LocalHistoryPredictor
from repro.branch.tournament import TournamentPredictor


class TestLocalHistory:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_entries=100)
        with pytest.raises(ValueError):
            LocalHistoryPredictor(history_bits=0)

    def test_learns_period_two_pattern(self):
        # T,N,T,N — bimodal flails; local history nails it after warmup.
        p = LocalHistoryPredictor()
        taken = True
        correct = 0
        for i in range(300):
            correct += p.predict_and_update(0, 0x400, taken)
            taken = not taken
        assert correct / 300 > 0.9

    def test_learns_loop_trip_count(self):
        # Pattern T,T,T,N repeating (loop with trip count 4).
        p = LocalHistoryPredictor(history_bits=8)
        pattern = [True, True, True, False]
        correct = 0
        n = 600
        for i in range(n):
            correct += p.predict_and_update(0, 0x700, pattern[i % 4])
        assert correct / n > 0.85

    def test_bimodal_fails_where_local_wins(self):
        bimodal = BimodalPredictor(1024)
        local = LocalHistoryPredictor()
        taken = True
        b = l = 0
        for i in range(400):
            b += bimodal.predict_and_update(0, 0x500, taken)
            l += local.predict_and_update(0, 0x500, taken)
            taken = not taken
        assert l > b

    def test_reset(self):
        p = LocalHistoryPredictor()
        p.predict_and_update(0, 0x100, True)
        p.reset()
        assert p.lookups == 0


class TestTournament:
    def test_beats_or_matches_components_on_mixed_stream(self):
        # Half the branches are statically biased (bimodal's home turf),
        # half alternate (local's home turf): the tournament must track
        # the better component on each.
        rng = np.random.default_rng(0)
        tour = TournamentPredictor()
        bim = BimodalPredictor(2048)
        loc = LocalHistoryPredictor()
        t = b = l = 0
        alt = True
        n = 2000
        for i in range(n):
            # biased branch at 0x100, alternating branch at 0x200
            taken_biased = bool(rng.random() < 0.95)
            t += tour.predict_and_update(0, 0x100, taken_biased)
            b += bim.predict_and_update(0, 0x100, taken_biased)
            l += loc.predict_and_update(0, 0x100, taken_biased)
            t += tour.predict_and_update(0, 0x200, alt)
            b += bim.predict_and_update(0, 0x200, alt)
            l += loc.predict_and_update(0, 0x200, alt)
            alt = not alt
        assert t >= b - n * 0.02
        assert t >= l - n * 0.02

    def test_reset(self):
        p = TournamentPredictor()
        p.predict_and_update(0, 0x1, True)
        p.reset()
        assert p.lookups == 0


class TestFactory:
    def test_all_names(self):
        for name in ("bimodal", "gshare", "local", "tournament"):
            p = create_predictor(name)
            p.predict_and_update(0, 0x40, True)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            create_predictor("neural")

    def test_pipeline_accepts_every_predictor(self):
        from repro import build_processor
        from repro.smt.config import SMTConfig

        for name in ("bimodal", "gshare", "local", "tournament"):
            cfg = SMTConfig(num_threads=2, predictor=name)
            proc = build_processor(mix=["gzip", "crafty"], config=cfg,
                                   quantum_cycles=512)
            proc.run(1500)
            assert proc.stats.committed > 0
