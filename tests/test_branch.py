"""Unit tests for the branch-prediction substrate."""

import numpy as np
import pytest

from repro.branch.base import TwoBitCounterTable
from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor


class TestTwoBitCounterTable:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            TwoBitCounterTable(0)
        with pytest.raises(ValueError):
            TwoBitCounterTable(100)  # not a power of two

    def test_initial_state_weakly_taken(self):
        t = TwoBitCounterTable(16)
        assert t.predict(3)
        assert t.counter(3) == 2

    def test_saturates_at_three(self):
        t = TwoBitCounterTable(16)
        for _ in range(10):
            t.update(0, True)
        assert t.counter(0) == 3

    def test_saturates_at_zero(self):
        t = TwoBitCounterTable(16)
        for _ in range(10):
            t.update(0, False)
        assert t.counter(0) == 0
        assert not t.predict(0)

    def test_hysteresis_needs_two_flips(self):
        t = TwoBitCounterTable(16)
        for _ in range(4):
            t.update(0, True)  # strongly taken
        t.update(0, False)
        assert t.predict(0)  # still predicts taken after one not-taken
        t.update(0, False)
        assert not t.predict(0)

    def test_index_wraps(self):
        t = TwoBitCounterTable(16)
        t.update(16, False)
        t.update(16, False)
        assert not t.predict(0)

    def test_reset(self):
        t = TwoBitCounterTable(16)
        t.update(1, False)
        t.update(1, False)
        t.reset()
        assert t.counter(1) == 2


class TestBimodal:
    def test_learns_strongly_biased_branch(self):
        p = BimodalPredictor(256)
        for _ in range(50):
            p.predict_and_update(0, 0x400, True)
        assert p.predict(0, 0x400)
        assert p.accuracy > 0.9

    def test_learns_not_taken(self):
        p = BimodalPredictor(256)
        for _ in range(50):
            p.predict_and_update(0, 0x400, False)
        assert not p.predict(0, 0x400)

    def test_distinct_pcs_independent(self):
        p = BimodalPredictor(256)
        for _ in range(10):
            p.predict_and_update(0, 0x400, True)
            p.predict_and_update(0, 0x404, False)
        assert p.predict(0, 0x400)
        assert not p.predict(0, 0x404)

    def test_shared_table_aliasing_across_threads(self):
        # Same PC from two threads trains the same counters (SMT sharing).
        p = BimodalPredictor(256)
        for _ in range(10):
            p.predict_and_update(0, 0x800, False)
        assert not p.predict(1, 0x800)

    def test_accuracy_on_noisy_stream(self):
        rng = np.random.default_rng(7)
        p = BimodalPredictor(1024)
        correct = 0
        n = 2000
        for _ in range(n):
            taken = bool(rng.random() < 0.92)
            correct += p.predict_and_update(0, 0x400, taken)
        # Expected ~ 1 - 2*p*(1-p) for a saturating counter on Bernoulli.
        assert correct / n > 0.82

    def test_reset(self):
        p = BimodalPredictor(256)
        p.predict_and_update(0, 0x1, True)
        p.reset()
        assert p.lookups == 0 and p.correct == 0


class TestGshare:
    def test_rejects_bad_history(self):
        with pytest.raises(ValueError):
            GsharePredictor(256, history_bits=0)

    def test_per_thread_history_isolated(self):
        p = GsharePredictor(256, history_bits=4, max_threads=2)
        p.update(0, 0x100, True)
        p.update(0, 0x100, True)
        assert p.history(0) == 0b11
        assert p.history(1) == 0

    def test_history_wraps_to_mask(self):
        p = GsharePredictor(256, history_bits=2, max_threads=1)
        for _ in range(5):
            p.update(0, 0x100, True)
        assert p.history(0) == 0b11

    def test_learns_alternating_pattern(self):
        # T,N,T,N ... is exactly what history indexing can capture.
        p = GsharePredictor(1024, history_bits=4, max_threads=1)
        taken = True
        correct = 0
        for i in range(400):
            correct += p.predict_and_update(0, 0x500, taken)
            taken = not taken
        assert correct / 400 > 0.9

    def test_reset_clears_history(self):
        p = GsharePredictor(256, max_threads=2)
        p.update(0, 0x100, True)
        p.reset()
        assert p.history(0) == 0


class TestBTB:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(0)
        with pytest.raises(ValueError):
            BranchTargetBuffer(100)

    def test_miss_then_hit(self):
        b = BranchTargetBuffer(64)
        assert b.lookup(0x100) == -1
        b.update(0x100, 0x2000)
        assert b.lookup(0x100) == 0x2000
        assert b.hits == 1 and b.misses == 1

    def test_tag_conflict_evicts(self):
        b = BranchTargetBuffer(64)
        conflicting = 0x100 + 64 * 4  # same index, different tag
        b.update(0x100, 0x2000)
        b.update(conflicting, 0x3000)
        assert b.lookup(0x100) == -1

    def test_target_update(self):
        b = BranchTargetBuffer(64)
        b.update(0x100, 0x2000)
        b.update(0x100, 0x9000)
        assert b.lookup(0x100) == 0x9000

    def test_hit_rate_and_reset(self):
        b = BranchTargetBuffer(64)
        b.lookup(0x100)
        b.update(0x100, 1)
        b.lookup(0x100)
        assert b.hit_rate == pytest.approx(0.5)
        b.reset()
        assert b.hit_rate == 1.0  # vacuous
