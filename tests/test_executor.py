"""Tests for the process-isolated supervised executor
(repro.harness.executor): determinism across worker counts, crash
containment, SIGKILL-enforced timeout/heartbeat limits, restart with
fault stripping, journal integration and the failure taxonomy."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.faults import FaultPlan
from repro.harness.errors import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_STALLED,
    FAILURE_TIMEOUT,
    RunFailedError,
)
from repro.harness.executor import (
    ExecutorConfig,
    SupervisedExecutor,
    WorkItem,
    register_task_kind,
)
from repro.harness.journal import RunJournal
from repro.harness.runner import RunConfig
from repro.harness.sweep import threshold_type_grid

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="custom task kinds registered in the test module need fork workers",
)


def tiny_base(**over):
    base = dict(quanta=3, warmup_quanta=1, quantum_cycles=256, seed=1)
    base.update(over)
    return RunConfig(**base)


def grid_item(label="cell", mix="mix02", **spec_over):
    spec = {"config": tiny_base(), "threshold": 2.0, "heuristic": "type3",
            "mix": mix}
    spec.update(spec_over)
    return WorkItem(label=label, kind="grid_cell", spec=spec)


# -- task kinds used to provoke specific failure modes (fork workers inherit
#    this registry; under spawn they would not see test-module registrations).
def _crash_task(spec, progress, ckpt):
    import faulthandler

    faulthandler.disable()  # the segfault is deliberate; keep logs readable
    progress(0)
    os.kill(os.getpid(), signal.SIGSEGV)


def _hang_task(spec, progress, ckpt):
    for q in range(spec.get("beats", 1)):
        progress(q)
    while True:
        time.sleep(0.05)


def _flaky_task(spec, progress, ckpt):
    progress(0)
    marker = spec["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempt 1 died here")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"ok": True}


def _error_task(spec, progress, ckpt):
    progress(0)
    raise ValueError("deliberate worker exception")


register_task_kind("test_crash", _crash_task)
register_task_kind("test_hang", _hang_task)
register_task_kind("test_flaky", _flaky_task)
register_task_kind("test_error", _error_task)


class TestDeterministicAggregation:
    """Parallel grid == serial grid, any worker count, any completion order."""

    @pytest.mark.parametrize("workers", [1, 4])
    def test_grid_matches_serial(self, workers):
        base = tiny_base()
        mixes = ["mix02", "mix05"]
        serial = threshold_type_grid(
            base, mixes, thresholds=(1.0, 3.0), heuristics=("type1", "type3"))
        ex = SupervisedExecutor(ExecutorConfig(workers=workers))
        par = threshold_type_grid(
            base, mixes, thresholds=(1.0, 3.0), heuristics=("type1", "type3"),
            executor=ex)
        assert par.ipc == serial.ipc
        assert par.switches == serial.switches
        assert par.benign == serial.benign
        assert par.per_mix_ipc == serial.per_mix_ipc
        assert par.best_cell() == serial.best_cell()
        assert ex.failures == []

    def test_journal_round_trip(self, tmp_path):
        base = tiny_base()
        path = tmp_path / "grid.jsonl"
        with RunJournal(path) as j:
            ex = SupervisedExecutor(ExecutorConfig(workers=2))
            first = threshold_type_grid(
                base, ["mix02"], thresholds=(2.0,), heuristics=("type3",),
                executor=ex, journal=j)
        with RunJournal(path) as j2:
            assert j2.load() == 1
            # Every cell served from the journal: no workers spawned at all.
            ex2 = SupervisedExecutor(ExecutorConfig(workers=2))
            again = threshold_type_grid(
                base, ["mix02"], thresholds=(2.0,), heuristics=("type3",),
                executor=ex2, journal=j2)
        assert again.ipc == first.ipc


@fork_only
class TestCrashContainment:
    def test_segfault_fails_only_its_cell(self):
        """A SIGSEGV in one worker must not take down the batch."""
        ex = SupervisedExecutor(ExecutorConfig(workers=2, max_restarts=0))
        with pytest.raises(RunFailedError):
            ex.run([WorkItem(label="boom", kind="test_crash"), grid_item()])
        assert ex.failures[0]["kind"] == FAILURE_CRASH
        assert "boom" in ex.failures[0]["label"]

    def test_injected_worker_crash_survived_by_stripped_retry(self):
        """A seeded worker-crash fault kills attempt 1; the retry strips the
        process-killing fault family and completes with the clean result."""
        plan = FaultPlan(seed=7, worker_crash_rate=1.0)
        ex = SupervisedExecutor(ExecutorConfig(
            workers=1, max_restarts=1, restart_backoff_s=0.01))
        res = ex.run([grid_item("crashy", mix="mix05", fault_plan=plan)])
        assert "crashy" in res
        assert [f["kind"] for f in ex.failures] == [FAILURE_CRASH]
        # Stripped plan == no live faults: result equals a fault-free run.
        ex2 = SupervisedExecutor(ExecutorConfig(workers=1))
        clean = ex2.run([grid_item("clean", mix="mix05")])
        assert res["crashy"] == clean["clean"]

    def test_worker_exception_classified_and_raised(self):
        ex = SupervisedExecutor(ExecutorConfig(workers=1, max_restarts=0))
        with pytest.raises(RunFailedError) as exc:
            ex.run([WorkItem(label="raiser", kind="test_error")])
        assert ex.failures[0]["kind"] == FAILURE_EXCEPTION
        assert "deliberate worker exception" in ex.failures[0]["detail"]
        assert "raiser" in str(exc.value)


@fork_only
class TestHardLimits:
    def test_stale_heartbeat_gets_sigkilled(self):
        """A hung worker (heartbeats stopped) is killed within the staleness
        limit — the hole guarded_run's thread timeout cannot close."""
        ex = SupervisedExecutor(ExecutorConfig(
            workers=1, heartbeat_timeout_s=0.3, max_restarts=0,
            poll_interval_s=0.02))
        start = time.monotonic()
        with pytest.raises(RunFailedError):
            ex.run([WorkItem(label="hung", kind="test_hang")])
        assert time.monotonic() - start < 10.0
        assert ex.failures[0]["kind"] == FAILURE_STALLED

    def test_wall_clock_limit_gets_sigkilled(self):
        ex = SupervisedExecutor(ExecutorConfig(
            workers=1, run_timeout_s=0.3, max_restarts=0, poll_interval_s=0.02))
        with pytest.raises(RunFailedError):
            ex.run([WorkItem(label="slow", kind="test_hang", spec={"beats": 1})])
        assert ex.failures[0]["kind"] == FAILURE_TIMEOUT

    def test_injected_worker_hang_killed_then_stripped_retry_completes(self):
        plan = FaultPlan(seed=3, worker_hang_rate=1.0, worker_hang_seconds=60.0)
        ex = SupervisedExecutor(ExecutorConfig(
            workers=1, heartbeat_timeout_s=0.4, max_restarts=1,
            restart_backoff_s=0.01, poll_interval_s=0.02))
        res = ex.run([grid_item("hangy", fault_plan=plan)])
        assert "hangy" in res
        assert [f["kind"] for f in ex.failures] == [FAILURE_STALLED]


@fork_only
class TestRestarts:
    def test_flaky_cell_recovers_within_budget(self, tmp_path):
        marker = tmp_path / "died-once"
        ex = SupervisedExecutor(ExecutorConfig(
            workers=1, max_restarts=2, restart_backoff_s=0.01))
        res = ex.run([WorkItem(label="flaky", kind="test_flaky",
                               spec={"marker": str(marker)})])
        assert res["flaky"] == {"ok": True}
        assert len(ex.failures) == 1  # exactly one failed attempt

    def test_restart_budget_exhaustion_raises_with_cause(self):
        ex = SupervisedExecutor(ExecutorConfig(
            workers=1, max_restarts=1, restart_backoff_s=0.01))
        with pytest.raises(RunFailedError) as exc:
            ex.run([WorkItem(label="boom", kind="test_crash")])
        assert exc.value.attempts == 2
        assert len(ex.failures) == 2


class TestConfigValidation:
    @pytest.mark.parametrize("kw", [
        {"workers": 0},
        {"max_restarts": -1},
        {"run_timeout_s": 0},
        {"heartbeat_timeout_s": -1.0},
    ])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ValueError):
            ExecutorConfig(**kw)
