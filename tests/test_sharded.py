"""The sharded front-door: identity routing, request coalescing with
crash-safe leases, leader failure → follower promotion, the durable
result store behind replay, startup lease sweeps, remote-leader groups,
and the serve-loop integration. The headline guarantees under test:

* one simulation per identity, no matter how many requests ask for it;
* every coalesced waiter is answered or refused within its deadline —
  a dead leader never strands its followers;
* replaying the same traffic twice against the store yields zero
  re-simulations on the second pass, byte-identical answers.
"""

import io
import json
import os
import subprocess
import sys

import pytest

from repro.service import (
    ResultStore,
    ServeLoop,
    ServiceConfig,
    ShardedService,
    SimRequest,
    VirtualClock,
    replay_traffic,
    TimedRequest,
)
from repro.service.identity import canonical_fields, request_identity


def req(i, *, seed=3, client="c", **kw):
    defaults = dict(
        request_id=f"r{i}", client=client, mix="mix05", mode="adts",
        quanta=5, warmup_quanta=1, seed=seed,
    )
    defaults.update(kw)
    return SimRequest(**defaults)


def ok_full(request):
    return {"ipc": 1.0 + request.seed, "switches": request.seed}


def ok_fast(request):
    return {"ipc": 0.5}


def make_front(tmp_path, clock, *, shards=2, store=True, full_runner=ok_full,
               **cfg_kw):
    defaults = dict(workers=0, queue_capacity=64,
                    journal_path=tmp_path / "j.jsonl")
    defaults.update(cfg_kw)
    return ShardedService(
        ServiceConfig(**defaults),
        shards=shards,
        store=(tmp_path / "rs") if store else None,
        full_runner=full_runner,
        fast_runner=ok_fast,
        clock=clock,
    )


def settle(front, clock, budget_s=60.0):
    """Pump to idle under the virtual clock; fails the test on a hang."""
    deadline = clock() + budget_s
    while front.pending > 0:
        front.pump()
        clock.advance(0.01)
        assert clock() < deadline, "front-door failed to go idle (hang)"
    return front.take_completed()


class TestCoalescing:
    def test_one_simulation_fans_out_byte_identical(self, tmp_path):
        clock = VirtualClock()
        calls = []

        def counting_full(request):
            calls.append(request.request_id)
            return ok_full(request)

        front = make_front(tmp_path, clock, full_runner=counting_full)
        for i in range(6):
            front.submit(req(i))  # identical identity
        front.submit(req(99, seed=4))  # distinct identity
        responses = settle(front, clock)
        assert len(calls) == 2  # one per identity, not per request
        assert len(responses) == 7
        same = [r for r in responses if r.request_id != "r99"]
        assert all(r.outcome == "full" for r in same)
        payloads = {json.dumps(r.payload, sort_keys=True) for r in same}
        assert len(payloads) == 1  # byte-identical fan-out
        assert front.counters["coalesced_waiters"] == 5
        assert front.counters["simulations"] == 2

    def test_waiter_deadline_never_hangs(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        front.paused = True  # hold the leader in the queue
        front.submit(req(0))
        front.submit(req(1, deadline_s=0.05))  # coalesced, tight deadline
        clock.advance(0.1)
        front.pump()
        shed = [r for r in front.take_completed() if r.request_id == "r1"]
        assert [r.outcome for r in shed] == ["shed"]
        assert shed[0].reason == "deadline-expired"
        front.paused = False
        rest = settle(front, clock)
        assert [r.request_id for r in rest] == ["r0"]
        assert rest[0].outcome == "full"

    def test_failed_leader_promotes_follower(self, tmp_path):
        clock = VirtualClock()
        failures = {"left": 1}

        def flaky_full(request):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("synthetic leader crash")
            return ok_full(request)

        front = make_front(tmp_path, clock, full_runner=flaky_full)
        for i in range(4):
            # Non-degradable: a failed leader must fail (and hand off),
            # not fall back onto the fast model.
            front.submit(req(i, degradable=False))
        responses = {r.request_id: r for r in settle(front, clock)}
        assert len(responses) == 4
        # The leader's own request reports the failure...
        assert responses["r0"].outcome == "failed"
        assert responses["r0"].reason
        # ...and a promoted follower answers everyone else in full.
        for rid in ("r1", "r2", "r3"):
            assert responses[rid].outcome == "full", responses[rid]
        assert front.counters["promotions"] == 1

    def test_drain_refuses_stranded_waiters_with_reasons(self, tmp_path):
        clock = VirtualClock()

        def always_failing(request):
            raise RuntimeError("engine down")

        front = make_front(tmp_path, clock, full_runner=always_failing,
                           drain_deadline_s=5.0)
        for i in range(5):
            front.submit(req(i))
        clock.auto_advance_s = 0.01
        stats = front.drain()
        responses = front.take_completed()
        assert len(responses) == 5  # conservation: all answered
        assert all(r.reason for r in responses)  # machine-readable refusals
        assert stats["inflight"] == 0
        assert stats["queue_depth"] == 0
        assert front.pending == 0


class TestLeaderCrashRealWorkers:
    def test_killed_leader_still_answers_every_waiter(self, tmp_path):
        """SIGKILL the leader mid-simulation (seeded worker-crash fault on
        attempt 1); the shard's retry answers leader and waiters alike —
        nobody hangs, everybody gets the full payload."""
        import time

        front = ShardedService(
            ServiceConfig(
                workers=2, queue_capacity=16, max_attempts=2,
                run_timeout_s=30.0, heartbeat_timeout_s=5.0,
                journal_path=tmp_path / "j.jsonl",
            ),
            shards=2,
            store=tmp_path / "rs",
        )
        try:
            # rate=1.0: the first quantum boundary of attempt 1 kills the
            # worker process; the retry strips worker faults and finishes.
            for i in range(4):
                front.submit(req(i, quanta=2, fault_kinds=("worker",),
                                 fault_rate=1.0))
            deadline = time.monotonic() + 60.0
            while front.pending > 0:
                front.pump()
                assert time.monotonic() < deadline, "waiters hung"
                time.sleep(0.02)
            responses = front.take_completed()
        finally:
            front.drain(5.0)
        assert len(responses) == 4
        assert all(r.outcome == "full" for r in responses), [
            (r.request_id, r.outcome, r.reason) for r in responses
        ]
        payloads = {json.dumps(r.payload, sort_keys=True) for r in responses}
        assert len(payloads) == 1
        agg = front.summary()
        assert agg["shard_restarts"] >= 1  # the crash really happened
        assert agg["coalescing"]["coalesced_waiters"] == 3


class TestResultStoreServing:
    def test_second_replay_is_pure_store_hits(self, tmp_path):
        events = [
            TimedRequest(at_s=i * 0.01, request=req(i, seed=i % 3))
            for i in range(12)
        ]
        first = {}
        for attempt in ("cold", "warm"):
            clock = VirtualClock()
            front = make_front(tmp_path, clock, full_runner=ok_full)
            responses = replay_traffic(front, events, clock, tick_s=0.05)
            clock.auto_advance_s = 0.05
            front.drain()
            responses.extend(front.take_completed())
            assert len(responses) == len(events)
            assert all(r.outcome == "full" for r in responses)
            if attempt == "cold":
                assert front.counters["simulations"] == 3  # seeds 0,1,2
                first = {r.request_id: json.dumps(r.payload, sort_keys=True)
                         for r in responses}
            else:
                # Zero re-simulations: everything from the store, and
                # byte-identical to the first pass.
                assert front.counters["simulations"] == 0
                assert front.counters["store_hits"] == len(events)
                for r in responses:
                    assert json.dumps(r.payload, sort_keys=True) == first[
                        r.request_id
                    ]

    def test_corrupt_entry_is_resimulated_not_served(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        front.submit(req(0))
        settle(front, clock)
        digest = request_identity(req(0))
        path = front.store.path_for(digest)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        front2 = make_front(tmp_path, clock)
        front2.submit(req(1))  # same identity, damaged entry
        responses = settle(front2, clock)
        assert [r.outcome for r in responses] == ["full"]
        assert front2.counters["simulations"] == 1  # re-simulated
        assert front2.store.counters["corrupt_misses"] == 1
        assert front2.store.get(digest) is not None  # healed by the re-run


class TestLeases:
    def test_startup_sweep_breaks_dead_leaders(self, tmp_path):
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        store = ResultStore(tmp_path / "rs", shards=2)
        digest = request_identity(req(0))
        store.lease_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path(digest).write_text(str(proc.pid))
        clock = VirtualClock()
        front = make_front(tmp_path, clock)  # same root: sweeps at startup
        assert front.store.counters["stale_leases_broken"] == 1
        front.submit(req(0))  # digest is leadable again, not remote
        responses = settle(front, clock)
        assert [r.outcome for r in responses] == ["full"]
        assert front.counters["remote_leaders"] == 0

    def test_remote_leader_result_served_from_store(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock)
        digest = request_identity(req(0))
        # A live foreign process (our parent) holds the lease.
        front.store.lease_dir.mkdir(parents=True, exist_ok=True)
        front.store.lease_path(digest).write_text(str(os.getppid()))
        front.submit(req(0))
        front.submit(req(1))
        front.pump()
        assert front.counters["remote_leaders"] == 1
        assert front.counters["simulations"] == 0
        # The remote leader publishes its result...
        other = ResultStore(tmp_path / "rs", shards=2)
        other.put(digest, canonical_fields(req(0)), {"ipc": 9.0})
        responses = settle(front, clock)
        assert len(responses) == 2
        assert all(r.outcome == "full" for r in responses)
        assert all(r.payload == {"ipc": 9.0} for r in responses)
        assert front.counters["simulations"] == 0  # never duplicated the work

    def test_stalled_remote_leader_is_broken_and_promoted(self, tmp_path):
        clock = VirtualClock()
        front = ShardedService(
            ServiceConfig(workers=0, journal_path=tmp_path / "j.jsonl"),
            shards=2,
            store=tmp_path / "rs",
            full_runner=ok_full,
            fast_runner=ok_fast,
            clock=clock,
            remote_wait_s=1.0,
        )
        digest = request_identity(req(0))
        front.store.lease_dir.mkdir(parents=True, exist_ok=True)
        front.store.lease_path(digest).write_text(str(os.getppid()))
        front.submit(req(0))
        clock.advance(2.0)  # past remote_wait_s with no published result
        responses = settle(front, clock)
        assert [r.outcome for r in responses] == ["full"]
        assert front.counters["promotions"] == 1
        assert front.store.counters["lease_breaks"] == 1
        assert front.counters["simulations"] == 1  # promoted locally


class TestServeLoopIntegration:
    def test_summary_op_and_drained_summary(self, tmp_path):
        lines = [
            json.dumps({"op": "submit", "request": {
                "request_id": f"r{i}", "mix": "mix05", "mode": "adts",
                "quanta": 4, "warmup_quanta": 1, "seed": 1}})
            for i in range(3)
        ] + [json.dumps({"op": "summary"})]
        infile = io.StringIO("\n".join(lines) + "\n")
        outfile = io.StringIO()
        front = make_front(tmp_path, VirtualClock())
        front.clock = __import__("time").monotonic  # serve paces real time
        for shard in front.shards:
            shard.clock = front.clock
        assert ServeLoop(front, infile=infile, outfile=outfile).run() == 0
        events = [json.loads(l) for l in outfile.getvalue().splitlines()]
        ready = next(e for e in events if e["event"] == "ready")
        assert ready["shards"] == 2
        summaries = [e for e in events if e["event"] == "summary"]
        assert summaries and summaries[0]["summary"]["shards"] == 2
        responses = [e for e in events if e["event"] == "response"]
        assert len(responses) == 3
        drained = next(e for e in events if e["event"] == "drained")
        assert drained["summary"]["submitted"] == 3
        assert drained["summary"]["answered"] == 3
        assert (
            drained["summary"]["coalescing"]["coalesced_waiters"]
            + drained["summary"]["cache"]["store_hits"]
            == 2
        )  # 3 identical requests, one simulation


class TestStatsSurface:
    def test_stats_aggregate_and_per_shard_views(self, tmp_path):
        clock = VirtualClock()
        front = make_front(tmp_path, clock, shards=3)
        for i in range(6):
            front.submit(req(i, seed=i))
        settle(front, clock)
        stats = front.stats()
        assert stats["queue_depth"] == 0
        assert stats["inflight"] == 0
        assert len(stats["shards"]) == 3
        assert stats["counters"]["front_submitted"] == 6
        assert stats["counters"]["submitted"] == sum(
            s["counters"]["submitted"] for s in stats["shards"]
        )
        assert stats["breaker"]["state"] == "closed"
        assert stats["store"]["counters"]["puts"] == 6
        health = front.health()
        assert health["ok"] and len(health["shards"]) == 3

    def test_unsharded_summary_same_schema(self, tmp_path):
        from repro.service import SimulationService

        clock = VirtualClock()
        svc = SimulationService(
            ServiceConfig(workers=0), full_runner=ok_full,
            fast_runner=ok_fast, clock=clock,
        )
        svc.submit(req(0))
        svc.run_until_idle()
        plain = svc.summary()
        front = make_front(tmp_path, clock)
        sharded = front.summary()
        assert set(plain) == set(sharded)
        assert set(plain["cache"]) == set(sharded["cache"])
        assert set(plain["coalescing"]) == set(sharded["coalescing"])
        assert plain["submitted"] == plain["answered"] == 1
