"""Tests for the overload-safe simulation service (repro.service):
admission queue ordering and fairness, circuit-breaker state machine,
the degradation ladder, deterministic burst breakdowns, graceful drain,
and breaker trip/recovery against a real (crashing) worker pool."""

import multiprocessing

import pytest

from repro.harness.errors import (
    FAILURE_CRASH,
    OUTCOME_DEGRADED,
    OUTCOME_FAILED,
    OUTCOME_FULL,
    OUTCOME_REJECTED,
    OUTCOME_SHED,
)
from repro.service import (
    AdmissionQueue,
    BurstSpec,
    CircuitBreaker,
    QueueEntry,
    REASON_CLIENT_QUOTA,
    REASON_QUEUE_FULL,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    ServiceConfig,
    SimRequest,
    SimResponse,
    SimulationService,
    TIER_FAST,
    TIER_FULL,
    TIER_NONE,
    breakdown,
    generate_burst,
)

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-pool service tests rely on fork workers",
)


def req(rid="r1", **over):
    base = dict(request_id=rid, quanta=1, warmup_quanta=0, quantum_cycles=128)
    base.update(over)
    return SimRequest(**base)


def entry(rid="r1", seq=0, enqueued_at=0.0, **over):
    return QueueEntry(request=req(rid, **over), seq=seq, enqueued_at=enqueued_at)


def ok_runner(request):
    return {"ipc": 1.0, "switches": 0, "benign_probability": 0.5}


def fail_runner(request):
    raise RuntimeError("engine down")


def inline_service(full_runner=ok_runner, **cfg_over):
    cfg = dict(workers=0, queue_capacity=4)
    cfg.update(cfg_over)
    return SimulationService(ServiceConfig(**cfg), full_runner=full_runner,
                             fast_runner=ok_runner)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# -- admission queue -----------------------------------------------------------
class TestAdmissionQueue:
    def test_bounded_capacity_refuses_with_reason(self):
        q = AdmissionQueue(capacity=2, per_client_cap=2)
        assert q.offer(entry("a", seq=1)) is None
        assert q.offer(entry("b", seq=2)) is None
        assert q.offer(entry("c", seq=3)) == REASON_QUEUE_FULL

    def test_per_client_cap_stops_a_hot_client(self):
        q = AdmissionQueue(capacity=8, per_client_cap=2)
        assert q.offer(entry("a", seq=1, client="hog")) is None
        assert q.offer(entry("b", seq=2, client="hog")) is None
        assert q.offer(entry("c", seq=3, client="hog")) == REASON_CLIENT_QUOTA
        assert q.offer(entry("d", seq=4, client="other")) is None

    def test_priority_then_edf_then_fifo_order(self):
        q = AdmissionQueue(capacity=8, per_client_cap=8)
        lo = entry("lo", seq=1, priority=0)
        hi = entry("hi", seq=2, priority=5)
        urgent = QueueEntry(request=req("urgent", priority=5), seq=3,
                            enqueued_at=0.0, expires_at=10.0)
        for e in (lo, hi, urgent):
            assert q.offer(e) is None
        order = [q.take(now=0.0)[0].request.request_id for _ in range(3)]
        assert order == ["urgent", "hi", "lo"]

    def test_expired_entries_shed_at_dequeue(self):
        q = AdmissionQueue(capacity=8, per_client_cap=8)
        dead = QueueEntry(request=req("dead", priority=9), seq=1,
                          enqueued_at=0.0, expires_at=1.0)
        live = entry("live", seq=2)
        q.offer(dead)
        q.offer(live)
        got, shed = q.take(now=5.0)
        assert got.request.request_id == "live"
        assert [e.request.request_id for e in shed] == ["dead"]

    def test_shed_releases_the_client_slot(self):
        q = AdmissionQueue(capacity=8, per_client_cap=1)
        dead = QueueEntry(request=req("dead", client="c"), seq=1,
                          enqueued_at=0.0, expires_at=1.0)
        q.offer(dead)
        assert q.offer(entry("next", seq=2, client="c")) == REASON_CLIENT_QUOTA
        assert q.shed_expired(now=5.0) == [dead]
        assert q.offer(entry("next", seq=3, client="c")) is None

    def test_take_if_leaves_non_matching_queued(self):
        q = AdmissionQueue(capacity=8, per_client_cap=8)
        q.offer(entry("keep", seq=1, degradable=False, priority=9))
        q.offer(entry("pick", seq=2, degradable=True))
        got, _ = q.take_if(0.0, lambda e: e.request.degradable)
        assert got.request.request_id == "pick"
        assert q.depth == 1
        assert q.take(0.0)[0].request.request_id == "keep"


# -- circuit breaker -----------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        b = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        b.record_failure(FAILURE_CRASH)
        b.record_failure(FAILURE_CRASH)
        b.record_success()  # resets the streak
        b.record_failure(FAILURE_CRASH)
        b.record_failure(FAILURE_CRASH)
        assert b.state == STATE_CLOSED
        b.record_failure(FAILURE_CRASH)
        assert b.state == STATE_OPEN
        assert not b.allow_full()

    def test_half_open_admits_exactly_one_canary(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=clock)
        b.record_failure("timeout")
        clock.t = 6.0
        assert b.state == STATE_HALF_OPEN
        assert b.allow_full() is True  # the canary
        assert b.allow_full() is False  # nothing else until it resolves

    def test_canary_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure("crash")
        clock.t = 2.0
        assert b.allow_full()
        b.record_success()
        assert b.state == STATE_CLOSED
        assert b.allow_full()

    def test_canary_failure_reopens_with_reason(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure("crash")
        clock.t = 2.0
        assert b.allow_full()
        b.record_failure("timeout")
        assert b.state == STATE_OPEN
        assert b.transitions[-1]["reason"] == "probe-failed:timeout"

    def test_cancel_probe_releases_the_canary_slot(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure("crash")
        clock.t = 2.0
        assert b.allow_full()
        b.cancel_probe()
        assert b.allow_full()  # slot was given back

    def test_every_transition_is_recorded(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, cooldown_s=1.0, clock=clock)
        b.record_failure("crash")
        clock.t = 2.0
        assert b.allow_full()
        b.record_success()
        hops = [(t["from"], t["to"]) for t in b.transitions]
        assert hops == [(STATE_CLOSED, STATE_OPEN),
                        (STATE_OPEN, STATE_HALF_OPEN),
                        (STATE_HALF_OPEN, STATE_CLOSED)]


# -- response invariants -------------------------------------------------------
class TestResponseInvariants:
    def test_fast_tier_must_be_marked_degraded(self):
        with pytest.raises(ValueError):
            SimResponse(request_id="r", client="c", outcome=OUTCOME_DEGRADED,
                        tier=TIER_FAST, degraded=False, reason="x")

    def test_fast_tier_must_name_a_reason(self):
        with pytest.raises(ValueError):
            SimResponse(request_id="r", client="c", outcome=OUTCOME_DEGRADED,
                        tier=TIER_FAST, degraded=True, reason="")

    def test_full_outcome_requires_full_tier(self):
        with pytest.raises(ValueError):
            SimResponse(request_id="r", client="c", outcome=OUTCOME_FULL,
                        tier=TIER_NONE)


# -- the degradation ladder (inline full tier) ---------------------------------
class TestDegradationLadder:
    def test_admitted_request_served_full_fidelity(self):
        svc = inline_service()
        assert svc.submit(req("r1")) is None
        svc.run_until_idle(timeout_s=10)
        (resp,) = svc.take_completed()
        assert resp.outcome == OUTCOME_FULL
        assert resp.tier == TIER_FULL
        assert not resp.degraded

    def test_queue_overflow_degrades_eligible_requests(self):
        svc = inline_service(queue_capacity=2, per_client_cap=2)
        svc.paused = True
        for i in range(4):
            svc.submit(req(f"r{i}", client=f"c{i}"))
        overflow = svc.take_completed()
        assert len(overflow) == 2
        assert all(r.outcome == OUTCOME_DEGRADED and r.degraded for r in overflow)
        assert all(r.reason == "queue-pressure" for r in overflow)

    def test_queue_overflow_rejects_non_degradable(self):
        svc = inline_service(queue_capacity=1, per_client_cap=1)
        svc.paused = True
        svc.submit(req("a", client="c1"))
        resp = svc.submit(req("b", client="c2", degradable=False))
        assert resp.outcome == OUTCOME_REJECTED
        assert resp.tier == TIER_NONE
        assert resp.reason == REASON_QUEUE_FULL

    def test_client_quota_names_its_reason(self):
        svc = inline_service(queue_capacity=8, per_client_cap=1)
        svc.paused = True
        svc.submit(req("a", client="hog"))
        resp = svc.submit(req("b", client="hog", degradable=False))
        assert resp.outcome == OUTCOME_REJECTED
        assert resp.reason == REASON_CLIENT_QUOTA

    def test_invalid_request_rejected_not_crashed(self):
        svc = inline_service()
        resp = svc.submit(req("bad", quanta=-1))
        assert resp.outcome == OUTCOME_REJECTED
        assert resp.reason.startswith("invalid-request")

    def test_expired_deadline_is_shed_at_dequeue(self):
        svc = inline_service()
        svc.paused = True
        svc.submit(req("doomed", deadline_s=0.0))
        svc.paused = False
        svc.run_until_idle(timeout_s=10)
        (resp,) = svc.take_completed()
        assert resp.outcome == OUTCOME_SHED
        assert resp.reason == "deadline-expired"

    def test_full_tier_failure_falls_back_to_fast(self):
        svc = inline_service(full_runner=fail_runner)
        svc.submit(req("r1"))
        svc.run_until_idle(timeout_s=10)
        (resp,) = svc.take_completed()
        assert resp.outcome == OUTCOME_DEGRADED
        assert resp.reason.startswith("full-tier-failed:")

    def test_full_tier_failure_fails_non_degradable(self):
        svc = inline_service(full_runner=fail_runner)
        svc.submit(req("r1", degradable=False))
        svc.run_until_idle(timeout_s=10)
        (resp,) = svc.take_completed()
        assert resp.outcome == OUTCOME_FAILED
        assert resp.tier == TIER_NONE

    def test_open_breaker_degrades_at_submit(self):
        svc = inline_service(full_runner=fail_runner, breaker_failures=1,
                             breaker_cooldown_s=3600.0)
        svc.submit(req("trip"))
        svc.run_until_idle(timeout_s=10)
        assert svc.breaker.state == STATE_OPEN
        resp = svc.submit(req("next"))
        assert resp.outcome == OUTCOME_DEGRADED
        assert resp.reason == "breaker-open"
        hard = svc.submit(req("strict", degradable=False))
        assert hard.outcome == OUTCOME_REJECTED
        assert hard.reason == "breaker-open"

    def test_breaker_recovery_restores_full_fidelity(self):
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise RuntimeError("still down")
            return ok_runner(request)

        clock = FakeClock()
        svc = SimulationService(
            ServiceConfig(workers=0, queue_capacity=4, breaker_failures=2,
                          breaker_cooldown_s=5.0),
            full_runner=flaky, fast_runner=ok_runner, clock=clock)
        svc.submit(req("f1"))
        svc.submit(req("f2"))
        svc.run_until_idle(timeout_s=10)
        assert svc.breaker.state == STATE_OPEN
        clock.t = 6.0  # cooldown elapses -> half-open
        svc.submit(req("probe"))
        svc.run_until_idle(timeout_s=10)
        assert svc.breaker.state == STATE_CLOSED
        probe = [r for r in svc.take_completed()
                 if r.request_id == "probe"][0]
        assert probe.outcome == OUTCOME_FULL

    def test_journal_hit_short_circuits(self, tmp_path):
        path = tmp_path / "svc.jsonl"
        first = inline_service(journal_path=path)
        first.submit(req("r1", seed=7))
        first.run_until_idle(timeout_s=10)
        first.drain(1.0)
        second = inline_service(journal_path=path)
        resp = second.submit(req("r2", seed=7))  # same sim, new request id
        assert resp is not None and resp.outcome == OUTCOME_FULL
        assert second.counters["journal_hits"] == 1
        second.drain(1.0)

    def test_draining_service_rejects_new_work(self):
        svc = inline_service()
        svc.drain(0.1)
        resp = svc.submit(req("late"))
        assert resp.outcome == OUTCOME_REJECTED
        assert resp.reason == "draining"


# -- deterministic overload demo ----------------------------------------------
class TestOverloadDemo:
    def _run(self, workers=0):
        svc = SimulationService(ServiceConfig(workers=workers,
                                              queue_capacity=16))
        svc.paused = True
        for r in generate_burst(BurstSpec(requests=200, seed=0, quanta=1,
                                          quantum_cycles=128)):
            svc.submit(r)
        svc.paused = False
        svc.run_until_idle(timeout_s=300)
        svc.drain(30.0)
        return breakdown(svc.take_completed())

    def test_burst_breakdown_conserves_and_reproduces(self):
        bd = self._run()
        assert bd["total"] == 200  # no silent drops
        assert sum(bd["outcomes"].values()) == 200
        assert bd["outcomes"].get("degraded", 0) >= 1
        assert bd["outcomes"].get("rejected", 0) >= 1
        assert bd["outcomes"].get("shed", 0) >= 1
        assert bd == self._run()  # same seed, same service: same breakdown

    @fork_only
    def test_breakdown_matches_across_worker_counts(self):
        # Admission decisions depend only on queue state (the burst is
        # submitted paused), so the supervised pool must reproduce the
        # inline breakdown exactly.
        assert self._run(workers=0) == self._run(workers=2)


# -- graceful drain ------------------------------------------------------------
class TestDrain:
    def test_drain_answers_everything_queued(self):
        svc = inline_service(queue_capacity=8, per_client_cap=8)
        svc.paused = True
        for i in range(5):
            svc.submit(req(f"r{i}", client=f"c{i}"))
        stats = svc.drain(5.0)
        responses = svc.take_completed()
        assert len(responses) == 5
        assert stats["queue_depth"] == 0 and stats["inflight"] == 0
        assert svc.counters["submitted"] == 5

    def test_drain_deadline_sheds_the_remainder(self):
        svc = inline_service(queue_capacity=8, per_client_cap=8)
        svc.paused = True
        for i in range(3):
            svc.submit(req(f"r{i}", client=f"c{i}"))
        svc.paused = True  # never let the pump dispatch
        clock_out = svc.drain(0.0)
        # paused is force-cleared by drain, but with a zero budget the loop
        # exits immediately and everything queued is shed with a reason.
        responses = svc.take_completed()
        sheds = [r for r in responses if r.outcome == OUTCOME_SHED]
        assert clock_out["queue_depth"] == 0
        assert len(responses) == 3
        assert all(r.reason in ("drain-deadline", "deadline-expired")
                   for r in sheds)
        assert len(sheds) >= 1

    @fork_only
    def test_drain_finishes_inflight_pool_work(self):
        svc = SimulationService(ServiceConfig(workers=2, queue_capacity=8))
        for i in range(3):
            svc.submit(req(f"r{i}", client=f"c{i}"))
        stats = svc.drain(60.0)
        responses = svc.take_completed()
        assert len(responses) == 3
        assert all(r.outcome == OUTCOME_FULL for r in responses)
        assert stats["counters"]["drain_killed"] == 0


# -- breaker against a real crashing worker pool -------------------------------
@fork_only
class TestBreakerChaos:
    def test_breaker_trips_on_real_crashes_and_recovers(self):
        """service_breaker_trip_rate=1.0 makes every full attempt SIGKILL
        its worker: the breaker must open after the configured streak, the
        backlog must drain degraded, and — after cooldown with the fault
        removed — a canary must close the breaker again."""
        from repro.faults import FaultPlan

        plan = FaultPlan(service_breaker_trip_rate=1.0, seed=3)
        svc = SimulationService(ServiceConfig(
            workers=2, queue_capacity=8, per_client_cap=8,
            breaker_failures=2, breaker_cooldown_s=0.2,
            fault_plan=plan, run_timeout_s=60.0))
        svc.paused = True
        for i in range(4):
            svc.submit(req(f"r{i}", client=f"c{i}"))
        svc.paused = False
        svc.run_until_idle(timeout_s=120)
        responses = svc.take_completed()
        assert len(responses) == 4
        assert all(r.outcome == OUTCOME_DEGRADED for r in responses)
        opened = [t for t in svc.breaker.transitions if t["to"] == STATE_OPEN]
        assert opened and "crash" in opened[0]["reason"]
        assert svc.counters["full_failures"] >= 2
        # Chaos off; past the cooldown a canary probe restores full service.
        svc._fault_rng = None
        import time as _time
        _time.sleep(0.25)
        svc.submit(req("probe", client="p"))
        svc.run_until_idle(timeout_s=120)
        (probe,) = svc.take_completed()
        assert probe.outcome == OUTCOME_FULL
        assert svc.breaker.state == STATE_CLOSED
        closed = [t for t in svc.breaker.transitions
                  if t["to"] == STATE_CLOSED]
        assert closed and closed[-1]["reason"] == "probe-succeeded"
        svc.drain(5.0)

    def test_overload_fault_forces_the_ladder(self):
        from repro.faults import FaultPlan

        plan = FaultPlan(service_overload_rate=1.0, seed=0)
        svc = SimulationService(
            ServiceConfig(workers=0, queue_capacity=64, fault_plan=plan),
            full_runner=ok_runner, fast_runner=ok_runner)
        soft = svc.submit(req("soft"))
        assert soft.outcome == OUTCOME_DEGRADED
        assert soft.reason == "fault-overload"
        hard = svc.submit(req("hard", degradable=False))
        assert hard.outcome == OUTCOME_REJECTED
        assert hard.reason == "fault-overload"
