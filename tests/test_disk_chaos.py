"""Disk-fault chaos: sweeps must complete *correctly* under filesystem
faults, because artifacts are recovered or regenerated — never trusted
when damaged.

The in-process tests run in tier-1: a journaled grid under seeded
torn-write/ENOSPC/rename/bitrot faults produces an aggregate bit-identical
to a clean run, the trace cache isolates per-trace flush failures
(satellite: one failing trace must not lose the others), and a run whose
checkpoint writes fail degrades to no-snapshots instead of aborting.

The subprocess scenario is gated behind ``REPRO_CHAOS=1`` (the CI
``disk-chaos`` job sets it): a real ``repro grid --workers N`` under
``--faults disk`` must exit 0 with output identical to the fault-free run,
and ``repro fsck`` over the tree must find nothing to quarantine.
"""

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.harness.journal import RunJournal
from repro.harness.runner import RunConfig, run_adts
from repro.harness.sweep import threshold_type_grid
from repro.storage import DiskFaultPlan, faultfs_session
from repro.workloads.tracecache import TraceCache

QUICK = RunConfig(mix="mix01", quantum_cycles=256, quanta=2, warmup_quanta=1, seed=0)

DISK_PLAN = FaultPlan(
    seed=7,
    disk_torn_write_rate=0.3,
    disk_enospc_rate=0.2,
    disk_rename_fail_rate=0.1,
    disk_bitrot_rate=0.1,
)


class TestDiskFaultedRunsAreBitIdentical:
    def test_single_run_identical_under_disk_faults(self, tmp_path):
        clean = run_adts(QUICK)
        faulty = run_adts(QUICK, fault_plan=DISK_PLAN)
        assert faulty.ipc == clean.ipc
        assert faulty.scheduler["switches"] == clean.scheduler["switches"]

    def test_disk_only_plan_reports_no_scheduler_faults(self):
        r = run_adts(QUICK, fault_plan=DISK_PLAN)
        # no FaultInjector was installed: disk faults are storage-level
        assert "faults_injected" not in r.scheduler

    def test_journaled_grid_identical_under_disk_faults(self, tmp_path):
        mixes = ["mix01"]
        thresholds = (2.0, 3.0)
        heuristics = ("type1", "type3")
        clean = threshold_type_grid(
            QUICK, mixes, thresholds=thresholds, heuristics=heuristics)

        journal = RunJournal(tmp_path / "runs.jsonl")
        with faultfs_session(DISK_PLAN.disk_plan()) as ffs:
            faulty = threshold_type_grid(
                QUICK, mixes, thresholds=thresholds, heuristics=heuristics,
                journal=journal, fault_plan=DISK_PLAN)
        journal.close()
        assert faulty.ipc == clean.ipc
        assert faulty.switches == clean.switches
        assert ffs.faults_injected > 0  # the sweep really was under fire

    def test_disk_faulted_journal_resumes_cleanly(self, tmp_path):
        """Whatever the faulted sweep managed to journal must be loadable
        and must replay to the same aggregate."""
        mixes = ["mix01"]
        journal = RunJournal(tmp_path / "runs.jsonl")
        with faultfs_session(DISK_PLAN.disk_plan()):
            first = threshold_type_grid(
                QUICK, mixes, thresholds=(2.0,), heuristics=("type3",),
                journal=journal, fault_plan=DISK_PLAN)
        journal.close()
        j2 = RunJournal(tmp_path / "runs.jsonl")
        j2.recover()
        resumed = threshold_type_grid(
            QUICK, mixes, thresholds=(2.0,), heuristics=("type3",),
            journal=j2, fault_plan=DISK_PLAN)
        j2.close()
        assert resumed.ipc == first.ipc

    def test_grid_cell_keys_shared_with_fault_free_sweep(self):
        """Disk-only plans must not enter the cell identity key — a
        disk-chaos journal is a valid resume source for a clean sweep."""
        from repro.harness.sweep import _grid_cell_key

        clean_key = _grid_cell_key(QUICK, 2.0, "type3", "mix01", None)
        disk_key = _grid_cell_key(QUICK, 2.0, "type3", "mix01", DISK_PLAN)
        sched_key = _grid_cell_key(
            QUICK, 2.0, "type3", "mix01", FaultPlan(counter_stale_rate=0.5))
        assert disk_key == clean_key
        assert sched_key != clean_key


class TestTraceCacheFlushIsolation:
    @staticmethod
    def _grown_cache(tmp_path, apps=("gcc", "mcf", "art")):
        from repro.workloads.profiles import get_profile

        cache = TraceCache(tmp_path / "cache")
        for slot, name in enumerate(apps):
            trace = cache.attach(get_profile(name), slot, name, seed=0)
            trace.take(40)  # grow past the (empty) on-disk prefix
        return cache

    def test_flush_continues_past_failing_trace(self, tmp_path):
        """Satellite: one trace failing to flush must not abort the rest —
        the result names each failure and the survivors stay live for a
        retry that then persists them."""
        cache = self._grown_cache(tmp_path)
        n = len(cache._live)
        assert n == 3
        # every write fails: all traces must be reported, none written
        with faultfs_session(DiskFaultPlan(seed=0, torn_write_rate=1.0)):
            result = cache.flush()
        assert not result.ok
        assert result.written == 0
        assert len(result.failures) == n
        for failure in result.failures:
            assert failure["name"] and failure["error"]
        assert cache.stats["flush_errors"] == n
        assert len(cache._live) == n  # nothing lost, everything retried later
        # the device recovers: a later flush writes everything
        retry = cache.flush()
        assert retry.ok and retry.written == n

    def test_partial_failure_flushes_the_rest(self, tmp_path):
        """Under a flapping fault some archives land and the failures are
        itemized; written + failed covers every grown trace."""
        cache = self._grown_cache(tmp_path)
        n = len(cache._live)
        with faultfs_session(DiskFaultPlan(seed=3, torn_write_rate=0.99)):
            # near-certain failure per attempt (each write retries
            # internally, so drive the rate high to see a mix)
            result = cache.flush()
        assert result.written + len(result.failures) == n

    def test_flush_result_ok_on_clean_flush(self, tmp_path):
        cache = self._grown_cache(tmp_path)
        result = cache.flush()
        assert result.ok and result.written == 3 and result.failures == []
        assert cache._live == []  # everything persisted


class TestRunDegradesNotAborts:
    def test_checkpointed_run_survives_total_write_failure(self, tmp_path):
        """Checkpoint saves failing persistently must cost only the
        snapshots, not the run."""
        from repro.smt.checkpoint import CheckpointPlan

        plan = CheckpointPlan(path=tmp_path / "run.snap", every_quanta=1)
        clean = run_adts(QUICK, checkpoint=plan)
        (tmp_path / "run.snap").unlink(missing_ok=True)
        hostile = FaultPlan(seed=1, disk_torn_write_rate=1.0,
                            disk_rename_fail_rate=1.0)
        faulty = run_adts(QUICK, checkpoint=plan, fault_plan=hostile)
        assert faulty.ipc == clean.ipc

    def test_resume_ignores_corrupt_checkpoint(self, tmp_path):
        """A damaged snapshot on the resume path is quarantined and the
        run starts fresh — same result, no crash, evidence preserved."""
        from repro.smt.checkpoint import CheckpointPlan

        snap = tmp_path / "run.snap"
        snap.write_bytes(b"REPROART1\n" + b"\xde\xad" * 40)
        plan = CheckpointPlan(path=snap, every_quanta=1)
        clean = run_adts(QUICK)
        resumed = run_adts(QUICK, checkpoint=plan)  # resume path: file exists
        assert resumed.ipc == clean.ipc
        assert any(".corrupt" in p.name for p in tmp_path.iterdir())


# -- subprocess scenario (CI disk-chaos job) ---------------------------------
chaos = pytest.mark.skipif(
    os.environ.get("REPRO_CHAOS") != "1",
    reason="disk-chaos subprocess test only runs with REPRO_CHAOS=1",
)


def _run_cli(args, cwd):
    env = dict(os.environ)
    src = Path(__file__).resolve().parent.parent / "src"
    env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True, timeout=600,
    )


@chaos
class TestDiskChaosCLI:
    GRID = ["grid", "--quanta", "2", "--warmup", "1", "--quantum", "256",
            "--mixes", "mix01,mix05", "--json"]

    def test_workers_grid_under_disk_faults_matches_clean(self, tmp_path):
        clean = _run_cli(self.GRID, tmp_path)
        assert clean.returncode == 0, clean.stderr
        faulty = _run_cli(
            self.GRID + ["--journal", str(tmp_path / "runs.jsonl"),
                         "--workers", "2", "--faults", "disk",
                         "--fault-rate", "0.3"],
            tmp_path)
        assert faulty.returncode == 0, faulty.stderr
        assert json.loads(faulty.stdout) == json.loads(clean.stdout)
        assert "disk faults injected" in faulty.stderr

        fsck = _run_cli(["fsck", str(tmp_path)], tmp_path)
        assert fsck.returncode == 0, fsck.stdout  # nothing left to quarantine
