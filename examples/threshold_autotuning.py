#!/usr/bin/env python
"""Threshold auto-tuning demo (paper §4.3.2's proposed extension).

A stale IPC threshold makes low-throughput detection meaningless when the
workload changes. Runs the same mix under (a) a deliberately mis-set fixed
threshold and (b) the self-tuning kernel that tracks a low quantile of
recent quantum IPC, and compares detection behaviour.

Usage:
    python examples/threshold_autotuning.py [mix_name]
"""

import sys

from repro import ADTSController, ThresholdConfig, build_processor
from repro.core.autotune import ThresholdAutoTuner


def run(mix: str, autotune: bool, stale_threshold: float) -> None:
    tuner = ThresholdAutoTuner(
        initial=ThresholdConfig(ipc_threshold=stale_threshold),
        ipc_quantile=0.35,
        update_interval=4,
    ) if autotune else None
    adts = ADTSController(
        heuristic="type3",
        thresholds=ThresholdConfig(ipc_threshold=stale_threshold),
        autotune=tuner,
    )
    proc = build_processor(mix=mix, hook=adts, quantum_cycles=1024)
    proc.run_quanta(72)
    label = "auto-tuned" if autotune else f"fixed stale threshold {stale_threshold}"
    print(f"\n{label}:")
    print(f"  IPC {proc.stats.ipc:.3f}, "
          f"{adts.low_throughput_quanta} low-throughput detections, "
          f"{adts.num_switches} switches")
    if tuner:
        print(f"  threshold trajectory: "
              f"{[round(e.thresholds.ipc_threshold, 2) for e in tuner.events[:8]]} ...")
        print(f"  final thresholds: ipc={tuner.thresholds.ipc_threshold:.2f}, "
              f"l1={tuner.thresholds.l1_miss_rate:.3f}, "
              f"mispredict={tuner.thresholds.mispredict_rate:.4f}")


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix05"
    print(f"mix {mix}: a threshold of 0.5 is far below this machine's IPC "
          f"(never detects); the tuner must discover a sensible one online.")
    run(mix, autotune=False, stale_threshold=0.5)
    run(mix, autotune=True, stale_threshold=0.5)


if __name__ == "__main__":
    main()
