#!/usr/bin/env python
"""Policy-dominance analysis: how much room does adaptivity have?

Runs the same mix under the three ADTS candidate policies, aligns the
per-quantum IPC series, and reports who wins each quantum, the dominance
ratio, and the per-quantum-oracle headroom — the quantity the paper's §1
cites as "some 30%" on SimpleSMT (see EXPERIMENTS.md for why it is far
smaller on this substrate).

Usage:
    python examples/dominance_analysis.py [mix_name] [quanta]
"""

import sys

from repro import build_processor
from repro.analysis import detect_level_shifts, dominance_profile, fairness_report

POLICIES = ("icount", "brcount", "l1misscount")


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix02"
    quanta = int(sys.argv[2]) if len(sys.argv) > 2 else 24

    series = {}
    stats_by_policy = {}
    for policy in POLICIES:
        proc = build_processor(mix=mix, policy=policy, quantum_cycles=2048)
        proc.run_quanta(quanta)
        series[policy] = [q.ipc for q in proc.stats.quantum_history]
        stats_by_policy[policy] = proc.stats

    profile = dominance_profile(series)
    print(f"mix {mix}, {quanta} quanta per policy:")
    for policy in POLICIES:
        fair = fairness_report(stats_by_policy[policy])
        print(f"  {policy:<12s} mean IPC {profile.mean_ipc[policy]:.3f}  "
              f"wins {profile.wins[policy]:3d} quanta  "
              f"Jain fairness {fair.jain:.2f}")
    print(f"\ndominant policy: {profile.dominant_policy} "
          f"({profile.dominance_ratio:.0%} of quanta)")
    print(f"per-quantum oracle mean: {profile.oracle_mean:.3f} "
          f"-> adaptivity headroom {profile.oracle_headroom():+.1%}")

    shifts = detect_level_shifts(series["icount"])
    if shifts:
        print(f"phase-change quanta under ICOUNT (CUSUM): {shifts}")
    print("\nwin sequence:", " ".join(p[:2] for p in profile.per_quantum_best))


if __name__ == "__main__":
    main()
