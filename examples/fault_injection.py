#!/usr/bin/env python
"""Fault injection and watchdog fallback, end to end.

Runs the same ADTS configuration three times — clean, under a fault storm,
and under the *identical* storm again — to show (a) the watchdog degrading
gracefully to fixed ICOUNT instead of scheduling on garbage, and (b) that
faulty runs are exactly as reproducible as clean ones.

Usage:
    python examples/fault_injection.py [fault_rate]
"""

import sys

from repro import FaultPlan
from repro.core.thresholds import ThresholdConfig
from repro.harness.runner import RunConfig, run_adts
from repro.smt.config import SMTConfig


def main() -> None:
    rate = float(sys.argv[1]) if len(sys.argv) > 1 else 0.35
    cfg = RunConfig(
        mix="mix05",
        num_threads=4,
        machine=SMTConfig(num_threads=4),
        quantum_cycles=512,
        quanta=16,
        warmup_quanta=2,
    )
    th = ThresholdConfig(ipc_threshold=2.0)
    storm = FaultPlan.storm(seed=0, rate=rate)

    clean = run_adts(cfg, thresholds=th)
    faulty = run_adts(cfg, thresholds=th, fault_plan=storm)
    replay = run_adts(cfg, thresholds=th, fault_plan=storm)

    print(f"clean IPC : {clean.ipc:.3f}")
    print(f"storm IPC : {faulty.ipc:.3f}  (rate {rate:g} per boundary)")
    print(f"degradation: {100 * (1 - faulty.ipc / clean.ipc):.1f}%")
    s = faulty.scheduler
    print(
        f"injected {s['faults_injected']} faults {s['fault_counts']}; "
        f"{s['implausible_quanta']} implausible quanta, "
        f"{s['fallback_events']} watchdog fallback(s), "
        f"{s['safe_mode_quanta']} safe-mode quanta, "
        f"{s['dt_dropped_tasks']} DT tasks dropped"
    )
    identical = (
        faulty.ipc == replay.ipc and faulty.quantum_ipcs == replay.quantum_ipcs
    )
    print(f"storm replay byte-identical: {identical}")


if __name__ == "__main__":
    main()
