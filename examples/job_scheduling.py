#!/usr/bin/env python
"""Job-scheduler symbiosis demo (paper §3).

Time-shares a 12-job pool over 8 SMT contexts. The detector thread flags
clogging threads in the thread control flags; the job scheduler evicts
flagged jobs first ("guided") instead of blindly rotating ("oblivious").

Usage:
    python examples/job_scheduling.py [guided|oblivious|both]
"""

import sys

from repro import ADTSController, ThresholdConfig, build_processor
from repro.core.jobsched import JobPool, JobSchedulerHook

POOL = [
    "gzip", "eon", "vortex", "mesa", "crafty", "gap", "bzip2", "gcc",
    "mcf", "art", "equake", "swim",
]


def run(mode: str) -> None:
    pool = JobPool(POOL, seed=0)
    # Threshold above the pool's typical IPC so clogging identification
    # fires often enough for the flags to matter.
    adts = ADTSController(heuristic="type3",
                          thresholds=ThresholdConfig(ipc_threshold=2.6))
    hook = JobSchedulerHook(pool, mode=mode, interval_quanta=4,
                            swaps_per_interval=2, adts=adts)
    proc = build_processor(mix=POOL[:8], seed=0, hook=hook, quantum_cycles=2048)
    proc.run_quanta(24)
    s = hook.summary()
    print(f"\n{mode}: IPC {proc.stats.ipc:.3f}  "
          f"({s['swaps']} job swaps, {s['guided_evictions']} flag-guided evictions)")
    print(f"  resident at end : {sorted(s['resident'].values())}")
    print(f"  waiting         : {sorted(s['waiting'])}")
    busiest = sorted(pool.jobs, key=lambda j: -j.evictions_as_clogger)[:3]
    if any(j.evictions_as_clogger for j in busiest):
        print("  most-evicted-as-clogger:",
              [(j.app, j.evictions_as_clogger) for j in busiest if j.evictions_as_clogger])


def main() -> None:
    choice = sys.argv[1] if len(sys.argv) > 1 else "both"
    modes = ("guided", "oblivious") if choice == "both" else (choice,)
    print(f"job pool ({len(POOL)} jobs on 8 contexts): {', '.join(POOL)}")
    for mode in modes:
        run(mode)


if __name__ == "__main__":
    main()
