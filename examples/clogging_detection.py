#!/usr/bin/env python
"""Clogging-thread identification and the job-scheduler handshake (§3/§4).

Builds a mix of seven well-behaved threads plus one pathological
memory-thrasher (mcf), lets the detector thread mark cloggers via the
thread control flags, then plays the job scheduler: suspend the marked
thread and measure the throughput of the remaining threads.

Usage:
    python examples/clogging_detection.py
"""

from repro import ADTSController, ThresholdConfig, build_processor
from repro.core.clogging import identify_clogging_threads

APPS = ["gzip", "eon", "vortex", "mesa", "crafty", "gap", "bzip2", "mcf"]


def main() -> None:
    adts = ADTSController(heuristic="type3", thresholds=ThresholdConfig(ipc_threshold=2.5))
    proc = build_processor(mix=APPS, hook=adts, quantum_cycles=2048)
    proc.run_quanta(12)
    print(f"phase 1 (all 8 threads): IPC {proc.stats.ipc:.3f}")

    # What does the DT see? Accumulate most of a quantum, then peek at the
    # counters the way the DT would at the boundary (the peek clears them).
    proc.run(1500)
    snapshots = [t.end_quantum() for t in proc.counters]
    reports = identify_clogging_threads(snapshots)
    for r in reports:
        flag = "CLOGGING" if r.clogging else "ok"
        print(f"  t{r.tid} ({APPS[r.tid]:>7s}): {flag:9s} "
              f"occupancy share {r.occupancy_share:.2f}, "
              f"commit share {r.commit_share:.2f}  {list(r.reasons)}")

    marked = adts.flags.marked_for_suspension()
    print(f"\nthreads the DT flagged during the run: {marked}")
    if not marked:
        # Fall back to the live classification for the demonstration.
        marked = [r.tid for r in reports if r.clogging][:1] or [APPS.index("mcf")]

    # Job scheduler: act on the flags without re-deriving the victim.
    committed_before = proc.stats.committed
    cycles_before = proc.now
    for tid in marked:
        adts.flags.suspend_now(tid)
        print(f"job scheduler: suspended t{tid} ({APPS[tid]})")
    proc.run_quanta(12)
    ipc_after = (proc.stats.committed - committed_before) / (proc.now - cycles_before)
    print(f"phase 2 ({8 - len(marked)} threads): IPC {ipc_after:.3f} "
          f"(per remaining thread: {ipc_after / (8 - len(marked)):.3f} vs "
          f"{proc.stats.ipc / 8:.3f} before)")


if __name__ == "__main__":
    main()
