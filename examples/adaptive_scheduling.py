#!/usr/bin/env python
"""The detector thread at work: run ADTS with each heuristic type and dump
the DT's decision log — when low throughput was detected, which conditions
fired, what policy was chosen, and how long the DT took to apply it using
only idle fetch slots.

Usage:
    python examples/adaptive_scheduling.py [mix_name] [heuristic]
"""

import sys

from repro import ADTSController, ThresholdConfig, build_processor
from repro.core.heuristics import HEURISTIC_LABELS


def run_one(mix: str, heuristic: str) -> None:
    adts = ADTSController(
        heuristic=heuristic, thresholds=ThresholdConfig(ipc_threshold=2.0)
    )
    proc = build_processor(mix=mix, hook=adts, quantum_cycles=2048)
    stats = proc.run_quanta(24)
    s = adts.summary()
    print(f"\n{HEURISTIC_LABELS[heuristic]}: IPC {stats.ipc:.3f}, "
          f"{s['low_throughput_quanta']} low-throughput quanta, "
          f"{s['switches']} switches, P(benign) {s['benign_probability']:.2f}")
    print(f"  detector thread: {s['dt_instructions']} instructions executed, "
          f"{s['dt_starved_cycles']} starved cycles, "
          f"mean task latency {s['dt_mean_task_latency']:.0f} cycles, "
          f"{s['missed_decisions']} decisions missed (DT busy)")
    for log in adts.decisions[:8]:
        applied = (
            f"applied at cycle {log.applied_at_cycle}"
            if log.applied_at_cycle >= 0
            else "no switch"
        )
        print(f"  q{log.quantum_index:3d} ipc={log.ipc:.2f} "
              f"{log.incumbent} -> {log.chosen} ({log.reason}; {applied})")
    marked = adts.flags.marked_for_suspension()
    if marked:
        print(f"  clogging threads flagged for the job scheduler: {marked}")


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix07"
    heuristics = [sys.argv[2]] if len(sys.argv) > 2 else list(HEURISTIC_LABELS)
    print(f"ADTS decision traces on {mix} (IPC threshold 2.0)")
    for h in heuristics:
        run_one(mix, h)


if __name__ == "__main__":
    main()
