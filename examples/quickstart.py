#!/usr/bin/env python
"""Quickstart: run one SPEC2000-like 8-thread mix on the SMT simulator,
first under the fixed ICOUNT fetch policy, then under ADTS (detector thread
with the Type 3 heuristic), and compare.

Usage:
    python examples/quickstart.py [mix_name]
"""

import sys

from repro import ADTSController, ThresholdConfig, build_processor
from repro.workloads import get_mix


def main() -> None:
    mix_name = sys.argv[1] if len(sys.argv) > 1 else "mix07"
    mix = get_mix(mix_name)
    print(f"mix {mix.name}: {mix.description}")
    print(f"  applications: {', '.join(mix.apps)}")

    quantum = 2048
    quanta = 24

    # --- fixed ICOUNT baseline -------------------------------------------
    proc = build_processor(mix=mix_name, policy="icount", quantum_cycles=quantum)
    stats = proc.run_quanta(quanta)
    print(f"\nfixed ICOUNT : IPC {stats.ipc:.3f}  "
          f"(mispredict {stats.mispredict_rate:.1%}, "
          f"wrong-path fetch {stats.wrong_path_fraction:.1%})")

    # --- ADTS: detector thread + Type 3 heuristic --------------------------
    adts = ADTSController(heuristic="type3", thresholds=ThresholdConfig(ipc_threshold=2.0))
    proc = build_processor(mix=mix_name, hook=adts, quantum_cycles=quantum)
    stats = proc.run_quanta(quanta)
    summary = adts.summary()
    print(f"ADTS (Type 3): IPC {stats.ipc:.3f}  "
          f"({summary['switches']} policy switches, "
          f"P(benign) {summary['benign_probability']:.2f}, "
          f"DT executed {summary['dt_instructions']} instructions in idle slots)")

    print("\nper-quantum policy trace (last 12 quanta):")
    for q in stats.quantum_history[-12:]:
        print(f"  quantum {q.index:3d}  policy {q.policy:<12s}  IPC {q.ipc:.3f}")


if __name__ == "__main__":
    main()
