#!/usr/bin/env python
"""Table 1 in action: run all ten fetch policies on one mix and rank them.

Reproduces the qualitative Tullsen/paper ordering: ICOUNT best on average,
round-robin worst, the event-count policies in between.

Usage:
    python examples/policy_comparison.py [mix_name] [quanta]
"""

import sys

from repro import POLICY_NAMES, build_processor
from repro.harness.report import print_table


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix05"
    quanta = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    rows = []
    for policy in POLICY_NAMES:
        proc = build_processor(mix=mix, policy=policy, quantum_cycles=2048)
        stats = proc.run_quanta(quanta)
        rows.append(
            [
                policy,
                stats.ipc,
                stats.mispredict_rate,
                stats.wrong_path_fraction,
                stats.fetch_utilization,
            ]
        )
    rows.sort(key=lambda r: -r[1])
    print_table(
        ["policy", "ipc", "mispredict", "wrong_path", "fetch_util"],
        rows,
        title=f"Fixed fetch policies on {mix} ({quanta} quanta of 2048 cycles)",
    )
    best, worst = rows[0], rows[-1]
    print(f"\nspread: {best[0]} beats {worst[0]} by "
          f"{(best[1] / worst[1] - 1):.1%}")


if __name__ == "__main__":
    main()
