#!/usr/bin/env python
"""Throughput saturation vs. thread count (the paper's §1 motivation).

Runs a mix at 1/2/4/6/8 hardware contexts under fixed ICOUNT, round-robin
and ADTS, showing (a) the sub-linear scaling / saturation beyond ~4 threads
and (b) adaptive scheduling extending the useful range.

Usage:
    python examples/thread_scaling.py [mix_name]
"""

import sys

from repro import ADTSController, ThresholdConfig, build_processor
from repro.harness.report import print_table


def ipc_at(mix: str, n: int, policy: str = "icount", adaptive: bool = False) -> float:
    hook = None
    if adaptive:
        hook = ADTSController(heuristic="type3", thresholds=ThresholdConfig(ipc_threshold=2.0))
    proc = build_processor(
        mix=mix, num_threads=n, policy=policy, hook=hook, quantum_cycles=2048
    )
    return proc.run_quanta(16).ipc


def main() -> None:
    mix = sys.argv[1] if len(sys.argv) > 1 else "mix05"
    rows = []
    for n in (1, 2, 4, 6, 8):
        rows.append(
            [
                n,
                ipc_at(mix, n, "icount"),
                ipc_at(mix, n, "rr"),
                ipc_at(mix, n, adaptive=True),
            ]
        )
    print_table(
        ["threads", "icount_ipc", "rr_ipc", "adts_ipc"],
        rows,
        title=f"Thread scaling on {mix} (paper §1: saturation beyond ~4 threads)",
    )
    speedup = rows[-1][1] / rows[2][1]
    print(f"\n8-thread over 4-thread ICOUNT throughput: {speedup:.2f}x "
          f"(ideal 2x — the shortfall is the saturation ADTS targets; "
          f"note the paper's §5 down-sampling keeps a random app subset "
          f"per thread count, so points are different workloads)")


if __name__ == "__main__":
    main()
