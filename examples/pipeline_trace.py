#!/usr/bin/env python
"""Pipeline event tracing demo: watch individual instructions flow through
fetch → dispatch → issue → complete → commit, and inspect a misprediction's
wrong-path squash, using extreme synthetic workloads.

Usage:
    python examples/pipeline_trace.py
"""

import numpy as np

from repro.smt.config import SMTConfig
from repro.smt.pipeline import SMTProcessor
from repro.smt.tracing import PipelineTracer
from repro.workloads.synthetic import get_preset
from repro.workloads.tracegen import TraceGenerator


def main() -> None:
    tracer = PipelineTracer()
    cfg = SMTConfig(num_threads=2)
    traces = [
        TraceGenerator(get_preset("compute"), 0, np.random.default_rng(0)),
        TraceGenerator(get_preset("branch_storm"), 1, np.random.default_rng(1)),
    ]
    proc = SMTProcessor(cfg, traces, quantum_cycles=1024, tracer=tracer)
    proc.run(4000)

    print("event totals:", dict(tracer.counts))
    print(f"\nlast 15 events:\n{tracer.render(limit=15)}")

    # Lifecycle of one committed instruction per thread.
    for tid in (0, 1):
        commit = next(
            (e for e in reversed(tracer.events)
             if e.event == "commit" and e.tid == tid and e.seq > 50), None)
        if commit:
            lat = tracer.lifecycle_latencies(commit.tid, commit.seq)
            print(f"\nthread {tid} instruction #{commit.seq} ({commit.kind}) latencies:")
            for stage, cycles in lat.items():
                print(f"  {stage:<20s} {cycles} cycles")

    # Wrong-path anatomy: squash bursts of the branch-storm thread.
    squashes = [e for e in tracer.events if e.event == "squash" and e.tid == 1]
    print(f"\nbranch-storm thread: {len(squashes)} wrong-path instructions "
          f"squashed in the trace window "
          f"(machine total: {proc.stats.squashed}; "
          f"mispredict rate {proc.stats.mispredict_rate:.1%})")


if __name__ == "__main__":
    main()
