#!/usr/bin/env python
"""Paper-scale Figure 7/8 sweep on the fast quantum-level model.

Runs the full 13-mix x 5-threshold x 5-heuristic grid (the detailed
simulator's benchmarks run a reduced grid) in a few seconds and prints the
four Figure 8 series plus the Figure 7 switch statistics.

Usage:
    python examples/fast_sweep.py [quanta_per_run]
"""

import sys
import time

import numpy as np

from repro.core.thresholds import ThresholdConfig
from repro.fastmodel import fast_run_adts, fast_run_fixed
from repro.harness.report import format_series, print_table
from repro.workloads import mix_names

THRESHOLDS = (1.0, 2.0, 3.0, 4.0, 5.0)
HEURISTICS = ("type1", "type2", "type3", "type3g", "type4")


def main() -> None:
    quanta = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    mixes = mix_names()
    t0 = time.time()

    icount = float(np.mean([fast_run_fixed(m, "icount", quanta=quanta).ipc for m in mixes]))
    print(f"fixed ICOUNT baseline (13-mix mean): {icount:.3f} IPC")

    ipc_grid, sw_grid, benign_grid = {}, {}, {}
    for m in THRESHOLDS:
        th = ThresholdConfig(ipc_threshold=m)
        for h in HEURISTICS:
            runs = [fast_run_adts(mix, h, th, quanta=quanta) for mix in mixes]
            ipc_grid[(m, h)] = float(np.mean([r.ipc for r in runs]))
            sw_grid[(m, h)] = sum(r.switches for r in runs)
            judged = sum(r.switches for r in runs)
            benign_grid[(m, h)] = (
                sum(r.benign_probability * r.switches for r in runs) / judged
                if judged else 0.0
            )

    print("\nFigure 8(a/c) — aggregate IPC vs threshold, per heuristic type:")
    for h in HEURISTICS:
        print(" ", format_series(h, THRESHOLDS, [ipc_grid[(m, h)] for m in THRESHOLDS]))

    print("\nFigure 7(a) — switches vs threshold:")
    for h in HEURISTICS:
        print(" ", format_series(h, THRESHOLDS, [sw_grid[(m, h)] for m in THRESHOLDS]))

    print("\nFigure 7(c) — P(benign switch) vs threshold:")
    for h in HEURISTICS:
        print(" ", format_series(h, THRESHOLDS, [benign_grid[(m, h)] for m in THRESHOLDS]))

    best = max(ipc_grid, key=ipc_grid.get)
    print(f"\nbest cell: threshold {best[0]:.0f}, {best[1]} "
          f"-> {ipc_grid[best]:.3f} IPC "
          f"({(ipc_grid[best] / icount - 1):+.1%} vs fixed ICOUNT)")
    print(f"[fast model; {time.time() - t0:.1f}s for "
          f"{len(mixes) * (1 + len(THRESHOLDS) * len(HEURISTICS))} runs]")


if __name__ == "__main__":
    main()
