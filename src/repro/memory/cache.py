"""Set-associative cache with true-LRU replacement.

Tag state lives in plain Python lists (one row per set, one slot per way):
a probe is a C-speed ``list.index`` over a 4/8-entry row. This is the hot
path of the memory hierarchy, called once per load/store/ifetch — the
original NumPy layout paid several array-dispatch round trips per probe,
which dominated the per-access cost at these row sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

_INVALID = -1


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        size_bytes: total capacity.
        line_bytes: block size (must be a power of two).
        ways: associativity.
        name: label used in stats and error messages.
    """

    size_bytes: int
    line_bytes: int = 64
    ways: int = 4
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError(f"{self.name}: all geometry fields must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line_bytes must be a power of two")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_bytes*ways = {self.line_bytes * self.ways}"
            )
        n_sets = self.size_bytes // (self.line_bytes * self.ways)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{self.name}: number of sets ({n_sets}) must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def offset_bits(self) -> int:
        return int(self.line_bytes).bit_length() - 1


class Cache:
    """A single cache level.

    Probe/fill are separated so callers can model MSHR behaviour (probe,
    and only fill once the miss completes), but the common fast path is
    :meth:`access`, which probes and fills in one call and returns whether
    the access hit.
    """

    __slots__ = (
        "config", "_set_mask", "_offset_bits", "_tags", "_lru", "_stamp",
        "hits", "misses", "evictions",
    )

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._set_mask = config.n_sets - 1
        self._offset_bits = config.offset_bits
        # tags[set][way]; -1 == invalid. lru[set][way]: higher == more recent.
        self._tags = [[_INVALID] * config.ways for _ in range(config.n_sets)]
        self._lru = [[0] * config.ways for _ in range(config.n_sets)]
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- address helpers ---------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Line number (address with the offset bits stripped)."""
        return addr >> self._offset_bits

    def _index(self, line: int) -> int:
        return line & self._set_mask

    # -- operations ---------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Return True on hit, updating LRU but never filling."""
        line = addr >> self._offset_bits
        idx = line & self._set_mask
        try:
            way = self._tags[idx].index(line)
        except ValueError:
            self.misses += 1
            return False
        self._stamp += 1
        self._lru[idx][way] = self._stamp
        self.hits += 1
        return True

    def fill(self, addr: int) -> int:
        """Insert the line for ``addr``; return the evicted line or -1.

        Filling an already-present line just refreshes its LRU stamp.
        """
        line = addr >> self._offset_bits
        idx = line & self._set_mask
        row = self._tags[idx]
        self._stamp += 1
        try:
            way = row.index(line)
        except ValueError:
            pass
        else:
            self._lru[idx][way] = self._stamp
            return -1
        try:
            way = row.index(_INVALID)
            victim = -1
        except ValueError:
            lru_row = self._lru[idx]
            way = lru_row.index(min(lru_row))
            victim = row[way]
            self.evictions += 1
        row[way] = line
        self._lru[idx][way] = self._stamp
        return victim

    def access(self, addr: int) -> bool:
        """Probe and fill-on-miss in one step. Returns True on hit.

        One row scan for the hit case (identical stats/LRU effects to
        ``probe()`` then ``fill()``).
        """
        line = addr >> self._offset_bits
        idx = line & self._set_mask
        row = self._tags[idx]
        try:
            way = row.index(line)
        except ValueError:
            self.misses += 1
        else:
            self._stamp += 1
            self._lru[idx][way] = self._stamp
            self.hits += 1
            return True
        self._stamp += 1
        try:
            way = row.index(_INVALID)
        except ValueError:
            lru_row = self._lru[idx]
            way = lru_row.index(min(lru_row))
            self.evictions += 1
        row[way] = line
        self._lru[idx][way] = self._stamp
        return False

    def contains(self, addr: int) -> bool:
        """Non-destructive lookup: no LRU update, no stats."""
        line = addr >> self._offset_bits
        return line in self._tags[line & self._set_mask]

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present; return True if dropped."""
        line = addr >> self._offset_bits
        idx = line & self._set_mask
        try:
            way = self._tags[idx].index(line)
        except ValueError:
            return False
        self._tags[idx][way] = _INVALID
        self._lru[idx][way] = 0
        return True

    def reset(self) -> None:
        """Flush all contents and statistics."""
        for row in self._tags:
            for w in range(len(row)):
                row[w] = _INVALID
        for row in self._lru:
            for w in range(len(row)):
                row[w] = 0
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            1 for row in self._tags for tag in row if tag != _INVALID
        )

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.config
        return (
            f"Cache({c.name}: {c.size_bytes}B {c.ways}-way {c.line_bytes}B lines, "
            f"{self.hits} hits / {self.misses} misses)"
        )
