"""Set-associative cache with true-LRU replacement.

Tag state lives in NumPy arrays (one row per set, one column per way) so a
full reset is vectorized and a probe touches a single small row — this is
the hot path of the memory hierarchy, called once per load/store/ifetch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

_INVALID = np.int64(-1)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Attributes:
        size_bytes: total capacity.
        line_bytes: block size (must be a power of two).
        ways: associativity.
        name: label used in stats and error messages.
    """

    size_bytes: int
    line_bytes: int = 64
    ways: int = 4
    name: str = "cache"

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError(f"{self.name}: all geometry fields must be positive")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"{self.name}: line_bytes must be a power of two")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line_bytes*ways = {self.line_bytes * self.ways}"
            )
        n_sets = self.size_bytes // (self.line_bytes * self.ways)
        if n_sets & (n_sets - 1):
            raise ValueError(f"{self.name}: number of sets ({n_sets}) must be a power of two")

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def offset_bits(self) -> int:
        return int(self.line_bytes).bit_length() - 1


class Cache:
    """A single cache level.

    Probe/fill are separated so callers can model MSHR behaviour (probe,
    and only fill once the miss completes), but the common fast path is
    :meth:`access`, which probes and fills in one call and returns whether
    the access hit.
    """

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._set_mask = config.n_sets - 1
        self._offset_bits = config.offset_bits
        # tags[set, way]; -1 == invalid. lru[set, way]: higher == more recent.
        self._tags = np.full((config.n_sets, config.ways), _INVALID, dtype=np.int64)
        self._lru = np.zeros((config.n_sets, config.ways), dtype=np.int64)
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- address helpers ---------------------------------------------------
    def line_of(self, addr: int) -> int:
        """Line number (address with the offset bits stripped)."""
        return addr >> self._offset_bits

    def _index(self, line: int) -> int:
        return line & self._set_mask

    # -- operations ---------------------------------------------------------
    def probe(self, addr: int) -> bool:
        """Return True on hit, updating LRU but never filling."""
        line = addr >> self._offset_bits
        row = self._tags[line & self._set_mask]
        hit_ways = np.nonzero(row == line)[0]
        if hit_ways.size:
            self._stamp += 1
            self._lru[line & self._set_mask, hit_ways[0]] = self._stamp
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, addr: int) -> int:
        """Insert the line for ``addr``; return the evicted line or -1.

        Filling an already-present line just refreshes its LRU stamp.
        """
        line = addr >> self._offset_bits
        idx = line & self._set_mask
        row = self._tags[idx]
        self._stamp += 1
        hit_ways = np.nonzero(row == line)[0]
        if hit_ways.size:
            self._lru[idx, hit_ways[0]] = self._stamp
            return -1
        empty = np.nonzero(row == _INVALID)[0]
        if empty.size:
            way = int(empty[0])
            victim = -1
        else:
            way = int(np.argmin(self._lru[idx]))
            victim = int(row[way])
            self.evictions += 1
        row[way] = line
        self._lru[idx, way] = self._stamp
        return victim

    def access(self, addr: int) -> bool:
        """Probe and fill-on-miss in one step. Returns True on hit."""
        if self.probe(addr):
            return True
        self.fill(addr)
        return False

    def contains(self, addr: int) -> bool:
        """Non-destructive lookup: no LRU update, no stats."""
        line = addr >> self._offset_bits
        return bool(np.any(self._tags[line & self._set_mask] == line))

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr`` if present; return True if dropped."""
        line = addr >> self._offset_bits
        idx = line & self._set_mask
        hit_ways = np.nonzero(self._tags[idx] == line)[0]
        if not hit_ways.size:
            return False
        self._tags[idx, hit_ways[0]] = _INVALID
        self._lru[idx, hit_ways[0]] = 0
        return True

    def reset(self) -> None:
        """Flush all contents and statistics."""
        self._tags.fill(_INVALID)
        self._lru.fill(0)
        self._stamp = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return int(np.count_nonzero(self._tags != _INVALID))

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.config
        return (
            f"Cache({c.name}: {c.size_bytes}B {c.ways}-way {c.line_bytes}B lines, "
            f"{self.hits} hits / {self.misses} misses)"
        )
