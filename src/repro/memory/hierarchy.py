"""Two-level memory hierarchy shared by all SMT hardware contexts.

L1 instruction and data caches plus a unified L2 and a flat DRAM latency.
All levels are shared between threads (as on a real SMT), which is what
creates the inter-thread cache interference that ADTS reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MSHRFile


@dataclass(frozen=True)
class HierarchyConfig:
    """Latencies and geometry for the whole hierarchy.

    Latencies are *additional* cycles past the L1 access, mirroring the
    SimpleScalar convention the paper's simulator inherits.
    """

    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 64, 4, "l1i"))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(32 * 1024, 64, 4, "l1d"))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(1024 * 1024, 64, 8, "l2"))
    l1_latency: int = 1
    l2_latency: int = 10
    mem_latency: int = 100
    mshr_entries: int = 16

    def __post_init__(self) -> None:
        if self.l1_latency < 1:
            raise ValueError("l1_latency must be >= 1")
        if not self.l1_latency <= self.l2_latency <= self.mem_latency:
            raise ValueError("latencies must be monotonic: L1 <= L2 <= memory")


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one memory probe.

    Attributes:
        latency: total cycles until the data is available.
        l1_miss: the access missed in its L1.
        l2_miss: the access also missed in the shared L2.
        mshr_stall: the access could not even allocate a miss entry
            (MSHR file full) — the requester must retry; ``latency`` then
            holds a single-cycle retry penalty.
    """

    latency: int
    l1_miss: bool = False
    l2_miss: bool = False
    mshr_stall: bool = False


class MemoryHierarchy:
    """Shared L1I/L1D + unified L2 + DRAM with a data-side MSHR file.

    An optional :class:`~repro.memory.prefetch.Prefetcher` observes L1D
    demand misses and pulls predicted lines into the shared L2.
    """

    def __init__(self, config: HierarchyConfig | None = None, prefetcher=None) -> None:
        self.config = config or HierarchyConfig()
        self.l1i = Cache(self.config.l1i)
        self.l1d = Cache(self.config.l1d)
        self.l2 = Cache(self.config.l2)
        self.mshr = MSHRFile(self.config.mshr_entries, "l1d-mshr")
        self.prefetcher = prefetcher
        self.prefetch_fills = 0
        # L1 hits vastly outnumber misses and the result is immutable, so
        # every hit shares one frozen instance instead of allocating.
        self._l1_hit = AccessResult(latency=self.config.l1_latency)
        # I-side fill buffer: line -> cycle its outstanding fill arrives.
        # The instruction side needs the same decoupling the MSHR file
        # gives the data side: a thread that re-probes after its miss
        # latency must be served by the *returning fill* even when a
        # conflicting fill evicted the line from the tags meanwhile.
        # Without it, N>ways threads whose hot lines alias one set can
        # thrash true-LRU in perfect synchrony and livelock fetch.
        self._ifetch_fills: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _miss_path(self, cache: Cache, addr: int) -> AccessResult:
        """Resolve an L1 miss through L2/DRAM and fill both levels."""
        cfg = self.config
        if self.l2.access(addr):
            latency = cfg.l1_latency + cfg.l2_latency
            l2_miss = False
        else:
            latency = cfg.l1_latency + cfg.l2_latency + cfg.mem_latency
            l2_miss = True
        cache.fill(addr)
        return AccessResult(latency=latency, l1_miss=True, l2_miss=l2_miss)

    #: cycles past fill arrival during which the fill buffer may still
    #: serve a re-probe (covers TSU scheduling delay on the retry).
    _IFETCH_FILL_GRACE = 64

    def ifetch(self, addr: int, now: int = 0) -> AccessResult:
        """Instruction-cache probe for the line holding ``addr``."""
        if self.l1i.access(addr):
            return self._l1_hit
        line = self.l1i.line_of(addr)
        fills = self._ifetch_fills
        ready = fills.get(line)
        if ready is not None:
            if now < ready:
                # Secondary miss: the fill is still in flight.
                return AccessResult(latency=max(1, ready - now), l1_miss=True)
            if now <= ready + self._IFETCH_FILL_GRACE:
                # The fill arrived (the tag may have been evicted by a
                # conflicting fill since): serve from the fill buffer.
                # The access() above already re-installed the line.
                del fills[line]
                return self._l1_hit
            # Stale entry: fall through to a fresh miss.
        result = self._miss_path(self.l1i, addr)
        fills[line] = now + result.latency
        if len(fills) > 32:
            cutoff = now - self._IFETCH_FILL_GRACE
            for stale in [ln for ln, rdy in fills.items() if rdy < cutoff]:
                del fills[stale]
        return result

    def load(self, addr: int, now: int = 0) -> AccessResult:
        """Data load. Coalesces with outstanding misses via the MSHR file."""
        if self.l1d.access(addr):
            return self._l1_hit
        line = self.l1d.line_of(addr)
        outstanding = self.mshr.lookup(line)
        if outstanding >= 0:
            # Secondary miss: wait for the in-flight fill, at least one cycle.
            self.mshr.coalesced += 1
            return AccessResult(latency=max(1, outstanding - now), l1_miss=True)
        if self.mshr.full:
            return AccessResult(latency=1, l1_miss=True, mshr_stall=True)
        result = self._miss_path(self.l1d, addr)
        self.mshr.allocate(line, now + result.latency)
        if self.prefetcher is not None:
            for target in self.prefetcher.on_miss(addr):
                if not self.l2.contains(target):
                    self.l2.fill(target)
                    self.prefetch_fills += 1
        return result

    def store(self, addr: int, now: int = 0) -> AccessResult:
        """Data store; modeled write-allocate, same timing path as loads.

        Stores retire through the store queue so their latency rarely sits
        on the critical path, but they still disturb the caches, which is
        what matters for inter-thread interference.
        """
        return self.load(addr, now)

    def tick(self, now: int) -> None:
        """Advance time: retire completed MSHR entries."""
        self.mshr.retire_ready(now)

    def reset(self) -> None:
        """Flush every level and the MSHR file."""
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.mshr.reset()
        self._ifetch_fills.clear()
