"""Cache-hierarchy substrate.

The paper's SimpleSMT inherits SimpleScalar's cache model; ADTS itself only
consumes *per-thread miss counts per quantum*, so this package provides a
faithful set-associative LRU cache model (`Cache`), a small MSHR model for
miss-under-miss (`MSHRFile`), and a two-level hierarchy with shared L2
(`MemoryHierarchy`) that turns load/store/ifetch probes into latencies and
per-thread event counts.
"""

from repro.memory.cache import Cache, CacheConfig
from repro.memory.mshr import MSHRFile
from repro.memory.hierarchy import MemoryHierarchy, HierarchyConfig, AccessResult

__all__ = [
    "Cache",
    "CacheConfig",
    "MSHRFile",
    "MemoryHierarchy",
    "HierarchyConfig",
    "AccessResult",
]
