"""Hardware prefetchers (optional; default off to match the paper's
SimpleScalar-era baseline).

Two classic designs, both prefetching into the shared L2:

* :class:`NextLinePrefetcher` — on an L1D miss, fetch the next sequential
  line (tagged prefetch);
* :class:`StridePrefetcher` — a PC-less, region-based stride table: detects
  constant-stride streams per 4 KB region and runs ``degree`` lines ahead.

Prefetchers are an *extension* experiment (A6): streaming FP workloads
(swim/mgrid-class) should benefit most, which is also where L1MISSCOUNT's
advantage shrinks — a nice interaction with the paper's policy space.
"""

from __future__ import annotations

import abc
from typing import Dict, List

_LINE = 64
_REGION_SHIFT = 12  # 4 KB stride-detection regions


class Prefetcher(abc.ABC):
    """Observes miss addresses; proposes lines to pull into L2."""

    def __init__(self) -> None:
        self.issued = 0

    @abc.abstractmethod
    def on_miss(self, addr: int) -> List[int]:
        """React to a demand miss at ``addr``; returns addresses to
        prefetch (line-aligned)."""

    def reset(self) -> None:
        """Clear issue statistics (and learned state in subclasses)."""
        self.issued = 0


class NextLinePrefetcher(Prefetcher):
    """Fetch the next ``degree`` sequential lines on every miss."""

    def __init__(self, degree: int = 1) -> None:
        super().__init__()
        if degree <= 0:
            raise ValueError("degree must be positive")
        self.degree = degree

    def on_miss(self, addr: int) -> List[int]:
        base = (addr >> 6) << 6
        out = [base + _LINE * (i + 1) for i in range(self.degree)]
        self.issued += len(out)
        return out


class StridePrefetcher(Prefetcher):
    """Region-based stride detection.

    Per 4 KB region, remember the last miss address and last stride; two
    consecutive equal strides arm the entry, after which each miss
    prefetches ``degree`` lines ahead along the stride.
    """

    def __init__(self, degree: int = 2, table_entries: int = 64) -> None:
        super().__init__()
        if degree <= 0 or table_entries <= 0:
            raise ValueError("degree and table_entries must be positive")
        self.degree = degree
        self.table_entries = table_entries
        # region -> (last_addr, last_stride, confirmed)
        self._table: Dict[int, tuple] = {}

    def on_miss(self, addr: int) -> List[int]:
        region = addr >> _REGION_SHIFT
        entry = self._table.get(region)
        out: List[int] = []
        if entry is not None:
            last_addr, last_stride, confirmed = entry
            stride = addr - last_addr
            if stride != 0 and stride == last_stride:
                # Two consecutive equal strides arm the entry; emit
                # immediately on arming and on every subsequent hit.
                out = [addr + stride * (i + 1) for i in range(self.degree)]
                self.issued += len(out)
                self._table[region] = (addr, stride, True)
            else:
                self._table[region] = (addr, stride, False)
        else:
            if len(self._table) >= self.table_entries:
                self._table.pop(next(iter(self._table)))
            self._table[region] = (addr, 0, False)
        return out

    def reset(self) -> None:
        super().reset()
        self._table.clear()
