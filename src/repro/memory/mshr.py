"""Miss Status Holding Registers.

Models miss-under-miss: outstanding misses to the *same* line coalesce into
one entry (secondary misses pay no extra memory trip); a full MSHR file
makes further misses stall, which is one of the "clogging" behaviours the
detector thread is designed to observe.
"""

from __future__ import annotations

from typing import Dict, List

_NEVER = 1 << 62


class MSHRFile:
    """Fixed-capacity table of outstanding miss lines.

    Entries are keyed by line number and record the cycle at which the miss
    completes. The owner calls :meth:`retire_ready` each cycle (or lazily)
    to free completed entries.
    """

    def __init__(self, capacity: int, name: str = "mshr") -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: Dict[int, int] = {}  # line -> completion cycle
        #: earliest outstanding completion cycle (retire fast-path guard).
        self._next_complete = _NEVER
        self.allocations = 0
        self.coalesced = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def lookup(self, line: int) -> int:
        """Completion cycle of an outstanding miss to ``line``, or -1."""
        return self._entries.get(line, -1)

    def allocate(self, line: int, complete_cycle: int) -> int:
        """Register a miss to ``line`` completing at ``complete_cycle``.

        Returns the completion cycle actually associated with the line:
        if the line is already outstanding the existing (earlier or equal)
        completion time is returned and the miss counts as coalesced.
        Raises ``RuntimeError`` if the file is full and the line is new —
        callers must check :attr:`full` first and model the stall.
        """
        existing = self._entries.get(line)
        if existing is not None:
            self.coalesced += 1
            return existing
        if len(self._entries) >= self.capacity:
            self.full_stalls += 1
            raise RuntimeError(f"{self.name} full")
        self._entries[line] = complete_cycle
        if complete_cycle < self._next_complete:
            self._next_complete = complete_cycle
        self.allocations += 1
        return complete_cycle

    def retire_ready(self, now: int) -> List[int]:
        """Free and return all lines whose miss completed by cycle ``now``."""
        if now < self._next_complete:
            return []  # called every cycle; usually nothing matures
        entries = self._entries
        done = [line for line, t in entries.items() if t <= now]
        for line in done:
            del entries[line]
        self._next_complete = min(entries.values(), default=_NEVER)
        return done

    def reset(self) -> None:
        """Drop all outstanding entries and statistics."""
        self._entries.clear()
        self._next_complete = _NEVER
        self.allocations = 0
        self.coalesced = 0
        self.full_stalls = 0
