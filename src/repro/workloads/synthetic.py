"""Custom-workload construction API.

The built-in profile table models SPEC CPU2000; downstream users studying
scheduling policies usually also want *extreme* synthetic behaviours
(pure pointer chase, pure streaming, pure branch storm) and parametric
families. This module provides validated builders and presets.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.workloads.profiles import ApplicationProfile, PhaseProfile


def make_profile(
    name: str,
    ilp: float = 1.0,
    memory_intensity: float = 0.3,
    footprint_mb: float = 1.0,
    branchiness: float = 0.5,
    predictability: float = 0.9,
    fp_share: float = 0.0,
    streaming: float = 0.1,
    phases: Tuple[PhaseProfile, ...] = (),
) -> ApplicationProfile:
    """Build a profile from five intuitive 0–1-ish axes.

    Args:
        name: profile name.
        ilp: 0 (serial dependence chains) .. ~2 (very parallel code).
        memory_intensity: fraction of instructions that touch memory.
        footprint_mb: data working-set size in MB.
        branchiness: 0 (straight-line) .. 1 (branch every other op).
        predictability: branch predictability, 0.5 (coin flips) .. 1.0.
        fp_share: fraction of compute that is floating point.
        streaming: fraction of accesses that stream sequentially.
        phases: optional phase set (see :class:`PhaseProfile`).
    """
    if not 0.0 <= memory_intensity <= 0.7:
        raise ValueError("memory_intensity must be in [0, 0.7]")
    if not 0.0 <= branchiness <= 1.0:
        raise ValueError("branchiness must be in [0, 1]")
    if not 0.5 <= predictability <= 1.0:
        raise ValueError("predictability must be in [0.5, 1.0]")
    if footprint_mb <= 0:
        raise ValueError("footprint_mb must be positive")
    if ilp <= 0:
        raise ValueError("ilp must be positive")

    avg_block = max(2, round(2 + 14 * (1.0 - branchiness)))
    load_frac = round(memory_intensity * 0.75, 3)
    store_frac = round(memory_intensity * 0.25, 3)
    ipc_class = "high" if ilp > 1.2 else ("med" if ilp > 0.7 else "low")
    return ApplicationProfile(
        name=name,
        suite="fp" if fp_share > 0.5 else "int",
        ipc_class=ipc_class,
        footprint_kb=max(16, int(footprint_mb * 1024)),
        hot_kb=max(8, min(128, int(footprint_mb * 64))),
        hot_fraction=max(0.1, min(0.95, 1.0 - memory_intensity)),
        stream_fraction=streaming,
        code_kb=max(8, int(16 + 128 * branchiness)),
        avg_block=avg_block,
        mispredict_target=round(min(0.5, (1.0 - predictability)), 4),
        load_frac=load_frac,
        store_frac=store_frac,
        fp_frac=fp_share,
        dep_mean=max(1.0, 4.0 * ilp),
        mem_dep_frac=max(0.05, min(0.8, memory_intensity + 0.2)),
        phases=tuple(phases),
    )


#: Extreme presets: one pathological behaviour each.
PRESETS: Dict[str, ApplicationProfile] = {
    "pointer_chase": make_profile(
        "pointer_chase", ilp=0.4, memory_intensity=0.5, footprint_mb=128,
        branchiness=0.3, predictability=0.92, streaming=0.0,
    ),
    "stream": make_profile(
        "stream", ilp=1.8, memory_intensity=0.45, footprint_mb=256,
        branchiness=0.05, predictability=0.995, fp_share=0.8, streaming=0.7,
    ),
    "branch_storm": make_profile(
        "branch_storm", ilp=1.0, memory_intensity=0.2, footprint_mb=0.25,
        branchiness=1.0, predictability=0.78,
    ),
    "compute": make_profile(
        "compute", ilp=2.0, memory_intensity=0.1, footprint_mb=0.25,
        branchiness=0.2, predictability=0.98,
    ),
}


def get_preset(name: str) -> ApplicationProfile:
    """Look up an extreme-behaviour preset by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(f"unknown preset {name!r}; known: {sorted(PRESETS)}") from None


def with_phases(
    profile: ApplicationProfile,
    storm_scale: Optional[float] = None,
    memory_scale: Optional[float] = None,
    phase_length: int = 30_000,
) -> ApplicationProfile:
    """Attach a simple two-phase structure to an existing profile."""
    phases = [PhaseProfile("base", weight=2.5, mean_length=phase_length)]
    if storm_scale is not None:
        phases.append(PhaseProfile(
            "storm", weight=1.0, mean_length=phase_length // 2,
            mispredict_scale=storm_scale,
        ))
    if memory_scale is not None:
        phases.append(PhaseProfile(
            "memory", weight=1.0, mean_length=phase_length // 2,
            footprint_scale=memory_scale, load_scale=1.5,
        ))
    return replace(profile, phases=tuple(phases))
