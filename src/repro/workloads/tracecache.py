"""Persistent on-disk trace cache.

Trace generation is pull-based and seeded, so the instruction stream of a
thread is a pure function of ``(profile, seed, slot, name, generator
version)``.  Grid sweeps re-derive the same streams for every cell that
shares a mix and seed; this module memoizes them on disk so the second and
later runs replay recorded columns instead of re-running the generator
stack (RNG pools, Markov phases, branch sites, address walks).

Design points:

* **Key** — sha256 over ``(TRACEGEN_VERSION, seed, slot, name,
  repr(profile))``.  The requested instruction count is *not* part of the
  key: streams are prefix-closed, so one file serves any run that needs a
  prefix and is extended in place when a run needs more.
* **Replay is bit-identical** — recorded columns are converted back to
  plain Python ints/bools, so replayed :class:`Instruction` objects are
  field-for-field equal to freshly generated ones and
  ``SMTProcessor.fingerprint()`` is unchanged (covered by
  ``tests/test_fingerprint_golden.py``).
* **Overrun fallback** — when a run consumes past the recorded prefix the
  wrapper rebuilds the seeded generator, discards the recorded prefix, and
  serves (and records) live from there.  Correct by construction, costs one
  regeneration; the next flush extends the file so the cache converges on
  the longest prefix any run has needed.
* **Atomic, shareable files** — archives are framed in the versioned
  artifact envelope of :mod:`repro.storage.artifact` (magic, version,
  payload CRC32) and land through
  :func:`repro.storage.atomic.atomic_write_bytes`, so concurrent sweep
  workers never observe a torn file and last-writer-wins is safe (both
  writers hold the same stream). Legacy bare-``.npz`` archives (written
  before the envelope) still load; torn or alien files are logged and
  regenerated — the cache is an optimization, never a correctness input.
* **Flush is fault-isolated** — one archive failing to write (disk full,
  injected fault) is logged and counted, and the remaining traces still
  flush; :meth:`TraceCache.flush` reports per-trace failures in its
  :class:`FlushResult`.

Activation: :func:`set_trace_cache` (used by the CLI) or the
``REPRO_TRACE_CACHE`` environment variable naming a directory.
"""

from __future__ import annotations

import hashlib
import io
import logging
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.smt.instruction import Instruction
from repro.storage.artifact import is_enveloped, unpack_artifact, write_artifact
from repro.storage.atomic import read_bytes
from repro.storage.errors import StorageError

log = logging.getLogger("repro.tracecache")

_COLUMNS = ("kind", "pc", "dep1", "dep2", "addr", "cond", "taken", "target")
_DTYPES = ("i1", "i8", "i8", "i8", "i8", "i1", "i1", "i8")

#: Artifact-envelope format name and payload version for trace archives.
TRACE_FORMAT = "trace-columns"
TRACE_FORMAT_VERSION = 1


@dataclass
class FlushResult:
    """Outcome of one :meth:`TraceCache.flush`.

    Attributes:
        written: archives durably written.
        failures: one ``{"name", "slot", "error"}`` record per trace whose
            archive could not be written (the trace stays live and is
            retried on the next flush).
    """

    written: int = 0
    failures: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every grown trace was persisted."""
        return not self.failures


def _build_generator(profile, slot: int, name: str, seed: int):
    """Rebuild the seeded generator for one (mix slot, app) pair.

    Module-level (not a closure) so :class:`CachedTrace` stays picklable —
    checkpointing snapshots the whole processor, traces included.
    """
    from repro.util.seeds import SeedSequencer
    from repro.workloads.tracegen import TraceGenerator

    rng = SeedSequencer(seed).generator("trace", slot, name)
    return TraceGenerator(profile, slot, rng)


class CachedTrace:
    """Drop-in stand-in for ``TraceGenerator`` backed by recorded columns.

    Serves the recorded prefix from plain Python lists; past the prefix it
    falls back to a freshly rebuilt generator and keeps recording.  Exposes
    the ``seq``/``profile``/``tid`` surface the pipeline and fingerprint
    read.
    """

    def __init__(self, cache: "TraceCache", profile, slot: int, name: str,
                 seed: int, cols: Optional[List[list]]) -> None:
        self._cache = cache
        self.profile = profile
        self.tid = slot
        self.name = name
        self.seed = seed
        self.seq = 0
        self._cols: List[list] = cols if cols is not None else [[] for _ in _COLUMNS]
        self._n = len(self._cols[0])
        self._stored = self._n
        #: length of the prefix loaded from disk; emissions below this are
        #: replays, above it recordings (folded into cache stats at flush).
        self._loaded = self._n
        self._rep_folded = 0
        self._rec_folded = 0
        self._iter = None  # lazily built zip over the recorded columns
        self._gen = None

    def __getstate__(self):
        """Checkpoint support: the replay iterator is rebuilt on demand."""
        state = self.__dict__.copy()
        state["_iter"] = None
        return state

    # -- generation ---------------------------------------------------------
    def _materialize(self):
        """Rebuild the seeded generator and discard the recorded prefix."""
        gen = _build_generator(self.profile, self.tid, self.name, self.seed)
        if self._n:
            self._cache.stats["overruns"] += 1
            log.info(
                "trace cache overrun for %s slot %d: regenerating past %d recorded instructions",
                self.name, self.tid, self._n,
            )
            for _ in range(self._n):
                gen.next_instruction()
        self._gen = gen
        return gen

    def next_instruction(self) -> Instruction:
        """Emit the next instruction in program order (replay or record)."""
        i = self.seq
        if i < self._n:
            it = self._iter
            if it is None:
                # Replay always advances in lockstep with ``seq``, so one
                # zip over the column lists (from the current position)
                # serves the whole prefix without per-field indexing.
                cols = self._cols
                it = zip(*(c[i:] for c in cols)) if i else zip(*cols)
                self._iter = it
            self.seq = i + 1
            k, pc, d1, d2, ad, co, tk, tg = next(it)
            return Instruction(self.tid, i, k, pc, d1, d2, ad, co, tk, tg)
        gen = self._gen or self._materialize()
        instr = gen.next_instruction()
        k, pc, d1, d2, ad, co, tk, tg = self._cols
        k.append(instr.kind)
        pc.append(instr.pc)
        d1.append(instr.dep1)
        d2.append(instr.dep2)
        ad.append(instr.addr)
        co.append(instr.cond)
        tk.append(instr.taken)
        tg.append(instr.target)
        self._n += 1
        self.seq = i + 1
        return instr

    def take(self, n: int) -> List[Instruction]:
        """Emit the next ``n`` instructions (testing/analysis helper)."""
        return [self.next_instruction() for _ in range(n)]


class TraceCache:
    """Directory of recorded per-thread instruction streams."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._live: List[CachedTrace] = []
        self.stats: Dict[str, int] = {
            "hits": 0, "misses": 0, "replayed": 0, "recorded": 0,
            "overruns": 0, "flushed_files": 0, "flush_errors": 0,
        }

    # -- keying -------------------------------------------------------------
    def _path_for(self, profile, slot: int, name: str, seed: int) -> Path:
        from repro.workloads.tracegen import TRACEGEN_VERSION

        key = f"v{TRACEGEN_VERSION}|seed={seed}|slot={slot}|app={name}|{profile!r}"
        digest = hashlib.sha256(key.encode()).hexdigest()[:16]
        return self.root / f"{name}-s{slot}-{digest}.npz"

    # -- attach / flush -----------------------------------------------------
    def attach(self, profile, slot: int, name: str, seed: int) -> CachedTrace:
        """Return a trace for one mix slot, replaying from disk on a hit."""
        path = self._path_for(profile, slot, name, seed)
        cols = None
        if path.exists():
            try:
                blob = read_bytes(path)
                if is_enveloped(blob):
                    _, payload = unpack_artifact(blob, expect_format=TRACE_FORMAT)
                else:
                    # Legacy bare-.npz archive (pre-envelope): loads forward
                    # as-is; fsck reports it migratable and can rewrap it.
                    payload = blob
                with np.load(io.BytesIO(payload)) as data:
                    cols = [data[c].tolist() for c in _COLUMNS]
                # cond/taken are stored as i1; replayed instructions must
                # carry the same plain bools live generation produces.
                cols[5] = [bool(v) for v in cols[5]]
                cols[6] = [bool(v) for v in cols[6]]
            except Exception as exc:  # torn/corrupt/alien file: regenerate
                log.warning("trace cache: ignoring unreadable %s (%s)", path.name, exc)
                cols = None
        if cols is not None:
            self.stats["hits"] += 1
            log.info("trace cache hit: %s slot %d (%d instructions)",
                     name, slot, len(cols[0]))
        else:
            self.stats["misses"] += 1
            log.info("trace cache miss: %s slot %d — recording", name, slot)
        trace = CachedTrace(self, profile, slot, name, seed, cols)
        self._live.append(trace)
        return trace

    def flush(self) -> FlushResult:
        """Persist every live trace that grew past its on-disk prefix.

        Writes are atomic and enveloped (magic + version + payload CRC) so
        concurrent sweep workers sharing the directory never read a torn
        archive. One trace failing to write does not abort the flush: the
        failure is logged and counted (``stats["flush_errors"]``), the
        trace stays live for the next flush, and the remaining traces
        still persist. Returns a :class:`FlushResult` with the written
        count and per-trace failure records.
        """
        result = FlushResult()
        stats = self.stats
        for trace in self._live:
            # Fold replay/record tallies (derived from stream positions so
            # the per-instruction hot path carries no counter updates).
            rep = min(trace.seq, trace._loaded)
            rec = trace._n - trace._loaded
            stats["replayed"] += rep - trace._rep_folded
            stats["recorded"] += rec - trace._rec_folded
            trace._rep_folded = rep
            trace._rec_folded = rec
            if trace._n <= trace._stored:
                continue
            path = self._path_for(trace.profile, trace.tid, trace.name, trace.seed)
            arrays = {
                c: np.asarray(col, dtype=dt)
                for c, dt, col in zip(_COLUMNS, _DTYPES, trace._cols)
            }
            buf = io.BytesIO()
            np.savez_compressed(buf, **arrays)
            try:
                write_artifact(
                    path, TRACE_FORMAT, TRACE_FORMAT_VERSION, buf.getvalue()
                )
            except (StorageError, OSError) as exc:
                stats["flush_errors"] += 1
                result.failures.append(
                    {"name": trace.name, "slot": trace.tid, "error": str(exc)}
                )
                log.warning(
                    "trace cache: failed to write %s (%s); trace stays live "
                    "for the next flush",
                    path.name,
                    exc,
                )
                continue
            trace._stored = trace._n
            result.written += 1
            log.info("trace cache: wrote %s (%d instructions)", path.name, trace._n)
        self._live = [t for t in self._live if t._n > t._stored]
        self.stats["flushed_files"] += result.written
        return result


# -- module-level activation -----------------------------------------------
_ACTIVE: Optional[TraceCache] = None
_ENV_VAR = "REPRO_TRACE_CACHE"


def set_trace_cache(target: Union[TraceCache, str, Path, None]) -> Optional[TraceCache]:
    """Install (or clear, with ``None``) the process-wide trace cache."""
    global _ACTIVE
    if target is None:
        _ACTIVE = None
    elif isinstance(target, TraceCache):
        _ACTIVE = target
    else:
        _ACTIVE = TraceCache(target)
    return _ACTIVE


def active_trace_cache() -> Optional[TraceCache]:
    """The installed cache, falling back to ``$REPRO_TRACE_CACHE``."""
    global _ACTIVE
    if _ACTIVE is None:
        root = os.environ.get(_ENV_VAR)
        if root:
            _ACTIVE = TraceCache(root)
    return _ACTIVE


def flush_trace_cache() -> FlushResult:
    """Flush the active cache if any; safe no-op otherwise."""
    cache = _ACTIVE
    return cache.flush() if cache is not None else FlushResult()
