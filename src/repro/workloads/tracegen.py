"""Per-thread synthetic instruction-trace generator.

Combines the control-flow and data-address generators with the profile's
instruction mix, dependence model, and Markov phase model to emit
:class:`~repro.smt.instruction.Instruction` streams on demand. The
generator is pull-based: the pipeline's fetch unit asks for the next N
instructions, so wrong-path and stalled threads generate nothing (this also
keeps memory flat — there is no materialized trace file).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.smt.instruction import (
    BRANCH,
    FADD,
    FDIV,
    FMUL,
    IALU,
    IMUL,
    LOAD,
    STORE,
    SYSCALL,
    Instruction,
)
from repro.util.randpool import RandPool
from repro.util.seeds import SeedSequencer
from repro.workloads.addrgen import DataAddressGenerator, _THREAD_REGION
from repro.workloads.branchgen import ControlFlowGenerator
from repro.workloads.profiles import ApplicationProfile, PhaseProfile

_BASE_PHASE = PhaseProfile()

#: Bump whenever generated streams change (new draw order, new fields…) so
#: stale on-disk :mod:`~repro.workloads.tracecache` entries self-invalidate.
TRACEGEN_VERSION = 1

# Calibration constants (see DESIGN.md §2 and EXPERIMENTS.md):
# the profile tables describe *relative* application behaviour; these
# globals scale the dependence model so that the 8-thread fixed-ICOUNT
# aggregate IPC lands in the ~1–3 band the paper's Figure 8 sweeps its
# IPC thresholds (1..5) across.
_DEP_MEAN_SCALE = 2.0  # stretch producer distances (synthetic ILP)
_MEM_DEP_SCALE = 0.40  # damp load-consumer density (memory-level parallelism)
_BRANCH_MEM_DEP_SCALE = 0.25  # branches ride induction vars, not loads
_DEP2_PROB = 0.25  # probability of a second source operand dependence


class TraceGenerator:
    """Generates the dynamic instruction stream of one software thread."""

    def __init__(
        self,
        profile: ApplicationProfile,
        tid: int,
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.tid = tid
        self.pool = RandPool(rng)
        self.addrgen = DataAddressGenerator(profile, tid, rng, self.pool)
        self.cfgen = ControlFlowGenerator(
            profile, tid, rng, self.pool, code_base=tid * _THREAD_REGION
        )
        self.seq = 0
        self._block_remaining = self.cfgen.next_block_length()
        self._last_load_seq = -1
        self._mem_dep = profile.mem_dep_frac * _MEM_DEP_SCALE
        # Phase state.
        self._phases = profile.phases or (_BASE_PHASE,)
        self._weights = np.array([p.weight for p in self._phases], dtype=float)
        self._weights /= self._weights.sum()
        self.phase: PhaseProfile = self._phases[0]
        self._phase_remaining = 0
        self._load_frac = 0.0
        self._dep_mean = 1.0
        self._enter_phase(self._pick_phase())

    # -- phase machinery ----------------------------------------------------
    def _pick_phase(self) -> PhaseProfile:
        if len(self._phases) == 1:
            return self._phases[0]
        u = self.pool.uniform()
        acc = 0.0
        for phase, w in zip(self._phases, self._weights):
            acc += w
            if u < acc:
                return phase
        return self._phases[-1]

    def _enter_phase(self, phase: PhaseProfile) -> None:
        self.phase = phase
        self._phase_remaining = self.pool.geometric(float(phase.mean_length))
        self.addrgen.set_phase_scale(phase.footprint_scale)
        self.cfgen.set_phase_scale(phase.mispredict_scale)
        # Rates that depend only on (profile, phase): computed once per
        # phase entry instead of once per instruction in the hot loop.
        p = self.profile
        self._load_frac = min(0.7, p.load_frac * phase.load_scale)
        self._dep_mean = max(1.0, p.dep_mean * phase.dep_scale * _DEP_MEAN_SCALE)

    # -- instruction synthesis ----------------------------------------------
    def _deps(self, seq: int, kind: int, branch_noise: float = 0.0) -> tuple:
        """Draw producer seqs (always < ``seq``) for the new instruction.

        ``branch_noise`` (branches only) is the site's minority-outcome
        probability: noisy branches are noisy *because* they test loaded
        data, so their load-dependence scales with it — predictable loop
        branches ride induction variables instead. This correlation is what
        makes misprediction storms expensive (long wrong-path windows while
        the branch waits on memory), the §1 phenomenon BRCOUNT addresses.
        """
        pool = self.pool
        uniform = pool.uniform
        dep_mean = self._dep_mean
        if kind == BRANCH:
            data_dependence = min(1.0, _BRANCH_MEM_DEP_SCALE + 8.0 * branch_noise)
            mem_dep = self.profile.mem_dep_frac * data_dependence
        else:
            mem_dep = self._mem_dep
        last_load = self._last_load_seq
        if 0 <= last_load < seq and uniform() < mem_dep:
            dep1 = last_load
        else:
            dep1 = seq - pool.geometric(dep_mean)
        dep2 = -1
        if kind != LOAD and kind != SYSCALL and uniform() < _DEP2_PROB:
            dep2 = seq - pool.geometric(dep_mean)
        return (dep1 if dep1 >= 0 else -1, dep2 if dep2 >= 0 else -1)

    def _pick_kind(self) -> int:
        p = self.profile
        uniform = self.pool.uniform
        u = uniform()
        load_frac = self._load_frac
        if u < load_frac:
            return LOAD
        u -= load_frac
        if u < p.store_frac:
            return STORE
        u -= p.store_frac
        if p.syscall_rate and u < p.syscall_rate:
            return SYSCALL
        # Compute op: split int/fp.
        if uniform() < p.fp_frac:
            v = uniform()
            if v < p.fdiv_frac:
                return FDIV
            if v < p.fdiv_frac + p.fmul_frac:
                return FMUL
            return FADD
        return IMUL if uniform() < p.imul_frac else IALU

    def next_instruction(self) -> Instruction:
        """Emit the next instruction in program order."""
        if self._phase_remaining <= 0:
            self._enter_phase(self._pick_phase())
        self._phase_remaining -= 1

        seq = self.seq
        self.seq += 1
        if self._block_remaining <= 1:
            # Block-ending branch.
            self._block_remaining = self.cfgen.next_block_length()
            pc, is_cond, taken, target, noise = self.cfgen.branch()
            dep1, dep2 = self._deps(seq, BRANCH, branch_noise=noise)
            return Instruction(
                self.tid, seq, BRANCH, pc, dep1, dep2,
                cond=is_cond, taken=taken, target=target,
            )
        self._block_remaining -= 1
        kind = self._pick_kind()
        pc = self.cfgen.advance()
        dep1, dep2 = self._deps(seq, kind)
        addr = self.addrgen.next_address() if kind == LOAD or kind == STORE else 0
        instr = Instruction(self.tid, seq, kind, pc, dep1, dep2, addr=addr)
        if kind == LOAD:
            self._last_load_seq = seq
        return instr

    def take(self, n: int) -> List[Instruction]:
        """Emit the next ``n`` instructions (testing/analysis helper)."""
        return [self.next_instruction() for _ in range(n)]


def make_generators(
    app_names: Sequence[str],
    seed: int = 0,
    profiles: Optional[Dict[str, ApplicationProfile]] = None,
) -> List[TraceGenerator]:
    """Build one generator per thread for the named applications.

    Each thread gets an independent seed substream keyed by (slot, name), so
    two copies of the same program in one mix diverge (as two processes
    with different inputs would) while the whole mix stays reproducible.

    When a :mod:`~repro.workloads.tracecache` is active the returned traces
    replay recorded streams from disk (bit-identical to live generation)
    and record anything generated past the cached prefix.
    """
    from repro.workloads.profiles import get_profile
    from repro.workloads.tracecache import active_trace_cache

    table = profiles or {}
    cache = active_trace_cache()
    seeds = SeedSequencer(seed)
    gens = []
    for slot, name in enumerate(app_names):
        profile = table.get(name) or get_profile(name)
        if cache is not None:
            gens.append(cache.attach(profile, slot, name, seed))
        else:
            rng = seeds.generator("trace", slot, name)
            gens.append(TraceGenerator(profile, slot, rng))
    return gens
