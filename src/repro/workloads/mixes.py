"""The thirteen application mixes.

The paper (§5) forms thirteen 8-program mixtures from SPEC CPU2000 "based
on single-application performance, memory footprint and type (integer or
floating-point)", keeping int/fp counts even in mixed combinations, and
derives 4- and 6-thread cases by randomly excluding applications from the
8-thread mixes. The exact mix tables are not published, so we reconstruct
thirteen mixes that systematically cover the same axes, including the
homogeneous mixes the §6 similarity finding requires and the §1 motivating
case (half control-intensive / half other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.workloads.profiles import PROFILES, get_profile


@dataclass(frozen=True)
class Mix:
    """A named multiprogrammed workload.

    Attributes:
        name: mix identifier (``mix01`` .. ``mix13``).
        apps: the 8 application names (slots map to hardware contexts).
        description: what this mix stresses.
        homogeneous: True when all 8 slots run the same program — the
            paper's "more similar applications" case.
    """

    name: str
    apps: Tuple[str, ...]
    description: str
    homogeneous: bool = False

    def __post_init__(self) -> None:
        if len(self.apps) != 8:
            raise ValueError(f"{self.name}: mixes are defined at 8 threads")
        unknown = [a for a in self.apps if a not in PROFILES]
        if unknown:
            raise ValueError(f"{self.name}: unknown applications {unknown}")

    def subset(self, num_threads: int, seed: int = 0) -> Tuple[str, ...]:
        """Randomly exclude apps to reach ``num_threads`` (paper §5)."""
        if not 1 <= num_threads <= 8:
            raise ValueError("num_threads must be in [1, 8]")
        if num_threads == 8:
            return self.apps
        from repro.util.seeds import stable_hash

        rng = np.random.default_rng(np.random.SeedSequence(seed, spawn_key=(stable_hash(self.name),)))
        keep = sorted(rng.choice(8, size=num_threads, replace=False).tolist())
        return tuple(self.apps[i] for i in keep)

    @property
    def int_count(self) -> int:
        return sum(1 for a in self.apps if get_profile(a).suite == "int")

    @property
    def fp_count(self) -> int:
        return 8 - self.int_count

    def similarity(self) -> float:
        """Crude mixture-similarity score in (0, 1]: 1 = homogeneous.

        Defined as the maximum fraction of slots sharing one (ipc_class,
        memory_bound, suite) behaviour class.
        """
        classes = [
            (get_profile(a).ipc_class, get_profile(a).memory_bound, get_profile(a).suite)
            for a in self.apps
        ]
        best = max(classes.count(c) for c in set(classes))
        return best / len(classes)


MIXES: List[Mix] = [
    Mix(
        "mix01",
        ("gzip", "eon", "crafty", "vortex", "bzip2", "gcc", "gap", "perlbmk"),
        "all-integer, mostly high-IPC",
    ),
    Mix(
        "mix02",
        ("gcc", "crafty", "perlbmk", "parser", "gcc", "crafty", "perlbmk", "parser"),
        "control-intensive integer (branch-heavy, §1 BRCOUNT case)",
    ),
    Mix(
        "mix03",
        ("mcf", "art", "equake", "swim", "lucas", "ammp", "parser", "twolf"),
        "memory-bound, large footprints",
    ),
    Mix(
        "mix04",
        ("swim", "mgrid", "applu", "lucas", "wupwise", "art", "equake", "mesa"),
        "all floating-point, streaming-heavy",
    ),
    Mix(
        "mix05",
        ("gzip", "gcc", "vortex", "twolf", "swim", "mesa", "art", "applu"),
        "balanced 4 int + 4 fp across IPC classes",
    ),
    Mix(
        "mix06",
        ("bzip2", "crafty", "mcf", "gap", "wupwise", "equake", "mgrid", "lucas"),
        "balanced 4 int + 4 fp, alternative draw",
    ),
    Mix(
        "mix07",
        ("gcc", "crafty", "perlbmk", "parser", "swim", "mgrid", "applu", "lucas"),
        "half control-intensive int, half fp (paper §1 motivating mixture)",
    ),
    Mix(
        "mix08",
        ("mcf", "art", "equake", "ammp", "gzip", "eon", "vortex", "mesa"),
        "half memory-bound, half cpu-bound",
    ),
    Mix(
        "mix09",
        ("gzip",) * 8,
        "homogeneous: 8 x gzip (similar applications)",
        homogeneous=True,
    ),
    Mix(
        "mix10",
        ("mcf",) * 8,
        "homogeneous: 8 x mcf (similar, memory-bound)",
        homogeneous=True,
    ),
    Mix(
        "mix11",
        ("crafty",) * 8,
        "homogeneous: 8 x crafty (similar, control-intensive)",
        homogeneous=True,
    ),
    Mix(
        "mix12",
        ("vpr", "gap", "mesa", "bzip2", "ammp", "parser", "wupwise", "twolf"),
        "diverse random draw 1",
    ),
    Mix(
        "mix13",
        ("eon", "mcf", "mgrid", "gzip", "perlbmk", "art", "vortex", "swim"),
        "diverse random draw 2",
    ),
]

_BY_NAME = {m.name: m for m in MIXES}


def get_mix(name: str) -> Mix:
    """Look up a mix by name (``mix01`` .. ``mix13``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown mix {name!r}; known: {sorted(_BY_NAME)}") from None


def mix_names() -> List[str]:
    """All mix names in definition order."""
    return [m.name for m in MIXES]
