"""Per-application statistical profiles.

Each profile captures an application's behaviour along the axes the paper
uses to form mixes (single-thread IPC class, memory footprint, int/fp) plus
the dynamic event rates the ADTS heuristics observe. Values approximate the
published characterizations of the SPEC CPU2000 programs (Henning, IEEE
Computer 33(7); Tullsen et al.; KleinOsowski & Lilja) — they need to be
*representative*, not exact, since the paper's mechanism consumes only
coarse per-quantum counters.

Phases: most SPEC programs alternate between qualitatively different
execution phases (e.g. mcf's pointer-chasing vs. bookkeeping). Phase
variation is what gives an *adaptive* policy room over any fixed policy, so
profiles carry a small Markov phase model; scales multiply the base values
while a phase is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class PhaseProfile:
    """Multiplicative overrides active while a phase holds.

    Attributes:
        name: label for debugging/reporting.
        weight: stationary probability of being in this phase.
        mean_length: mean phase length in *instructions* (geometric).
        mispredict_scale: multiplies the profile's branch minority rate.
        footprint_scale: multiplies the data footprint (capacity pressure).
        load_scale: multiplies the load fraction.
        dep_scale: multiplies the mean dependence distance (ILP).
    """

    name: str = "base"
    weight: float = 1.0
    mean_length: int = 30_000
    mispredict_scale: float = 1.0
    footprint_scale: float = 1.0
    load_scale: float = 1.0
    dep_scale: float = 1.0


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical model of one application.

    Attributes:
        name: SPEC-like program name.
        suite: ``"int"`` or ``"fp"``.
        ipc_class: ``"high"`` / ``"med"`` / ``"low"`` — the paper's first
            mix-formation axis (single-thread IPC).
        footprint_kb: data working-set size; drives L1D/L2 miss rates.
        hot_kb: size of the high-locality subset of the footprint.
        hot_fraction: fraction of data accesses hitting the hot subset.
        stream_fraction: fraction of accesses that stream sequentially.
        code_kb: instruction footprint; drives L1I miss rate.
        avg_block: mean basic-block length (instructions per branch).
        cond_branch_frac: fraction of branches that are conditional.
        mispredict_target: mean per-site minority outcome probability —
            approximately the misprediction rate a 2-bit predictor sees.
        load_frac / store_frac: memory-op densities (of all instructions).
        fp_frac: fraction of non-memory compute ops that are FP.
        fdiv_frac / fmul_frac: split within FP ops.
        imul_frac: integer-multiply share of integer compute ops.
        dep_mean: mean producer distance in instructions (higher = more ILP).
        mem_dep_frac: probability a dependence chains onto a recent load.
        syscall_rate: per-instruction probability of a system call.
        phases: Markov phase set (weights need not be normalized).
    """

    name: str
    suite: str
    ipc_class: str
    footprint_kb: int
    hot_kb: int = 16
    hot_fraction: float = 0.75
    stream_fraction: float = 0.10
    code_kb: int = 64
    avg_block: int = 6
    cond_branch_frac: float = 0.85
    mispredict_target: float = 0.06
    load_frac: float = 0.25
    store_frac: float = 0.10
    fp_frac: float = 0.0
    fdiv_frac: float = 0.05
    fmul_frac: float = 0.35
    imul_frac: float = 0.03
    dep_mean: float = 4.0
    mem_dep_frac: float = 0.35
    syscall_rate: float = 0.0
    phases: Tuple[PhaseProfile, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.suite not in ("int", "fp"):
            raise ValueError(f"{self.name}: suite must be 'int' or 'fp'")
        if self.ipc_class not in ("high", "med", "low"):
            raise ValueError(f"{self.name}: ipc_class must be high/med/low")
        if self.footprint_kb <= 0 or self.hot_kb <= 0 or self.code_kb <= 0:
            raise ValueError(f"{self.name}: footprints must be positive")
        if self.avg_block < 2:
            raise ValueError(f"{self.name}: avg_block must be >= 2")
        if not 0.0 <= self.load_frac + self.store_frac <= 0.9:
            raise ValueError(f"{self.name}: memory-op fraction out of range")
        if not 0.0 <= self.mispredict_target <= 0.5:
            raise ValueError(f"{self.name}: mispredict_target must be in [0, 0.5]")
        if self.dep_mean < 1.0:
            raise ValueError(f"{self.name}: dep_mean must be >= 1")

    @property
    def branch_frac(self) -> float:
        """Dynamic branch density implied by the basic-block length."""
        return 1.0 / self.avg_block

    @property
    def is_fp(self) -> bool:
        return self.suite == "fp"

    @property
    def memory_bound(self) -> bool:
        """Heuristic classification used by mix construction."""
        return self.footprint_kb >= 2048 or self.hot_fraction < 0.55

    @property
    def control_intensive(self) -> bool:
        """Branch-dense and hard to predict (the paper's §1 example class)."""
        return self.avg_block <= 5 and self.mispredict_target >= 0.055


def _two_phase(
    compute_len: int = 40_000,
    memory_len: int = 20_000,
    footprint_scale: float = 6.0,
    load_scale: float = 1.7,
    mispredict_scale: float = 1.0,
) -> Tuple[PhaseProfile, ...]:
    """Common compute/memory alternation."""
    return (
        PhaseProfile("compute", weight=2.0, mean_length=compute_len),
        PhaseProfile(
            "memory",
            weight=1.0,
            mean_length=memory_len,
            footprint_scale=footprint_scale,
            load_scale=load_scale,
            mispredict_scale=mispredict_scale,
            dep_scale=0.8,
        ),
    )


def _branchy_phase(quiet_len: int = 50_000, storm_len: int = 15_000) -> Tuple[PhaseProfile, ...]:
    """Alternation between predictable and misprediction-storm phases
    (the paper's §1 motivating scenario for BRCOUNT)."""
    return (
        PhaseProfile("predictable", weight=3.0, mean_length=quiet_len, mispredict_scale=0.4),
        PhaseProfile("storm", weight=0.65, mean_length=storm_len, mispredict_scale=5.0),
    )


# ---------------------------------------------------------------------------
# SPEC CPU2000-inspired profile set.
# ---------------------------------------------------------------------------
_PROFILE_LIST = [
    # ---- CINT2000 -------------------------------------------------------
    ApplicationProfile(
        "gzip", "int", "high", footprint_kb=180, hot_kb=32, hot_fraction=0.85,
        code_kb=24, avg_block=7, mispredict_target=0.055, load_frac=0.22,
        store_frac=0.09, dep_mean=4.5, phases=_two_phase(60_000, 15_000, 2.0),
    ),
    ApplicationProfile(
        "vpr", "int", "med", footprint_kb=2048, hot_kb=64, hot_fraction=0.60,
        code_kb=96, avg_block=6, mispredict_target=0.075, load_frac=0.28,
        store_frac=0.10, dep_mean=3.5, phases=_two_phase(35_000, 25_000, 2.5),
    ),
    ApplicationProfile(
        "gcc", "int", "med", footprint_kb=1400, hot_kb=48, hot_fraction=0.65,
        code_kb=512, avg_block=4, mispredict_target=0.075, load_frac=0.26,
        store_frac=0.13, dep_mean=3.0, phases=_branchy_phase(),
    ),
    ApplicationProfile(
        "mcf", "int", "low", footprint_kb=65_536, hot_kb=32, hot_fraction=0.35,
        stream_fraction=0.05, code_kb=16, avg_block=6, mispredict_target=0.08,
        load_frac=0.33, store_frac=0.08, dep_mean=2.5, mem_dep_frac=0.6,
        phases=_two_phase(25_000, 45_000, 1.5, 1.3),
    ),
    ApplicationProfile(
        "crafty", "int", "high", footprint_kb=768, hot_kb=64, hot_fraction=0.80,
        code_kb=160, avg_block=4, mispredict_target=0.085, load_frac=0.27,
        store_frac=0.07, dep_mean=4.0, phases=_branchy_phase(40_000, 20_000),
    ),
    ApplicationProfile(
        "parser", "int", "med", footprint_kb=12_288, hot_kb=40, hot_fraction=0.55,
        code_kb=128, avg_block=5, mispredict_target=0.075, load_frac=0.26,
        store_frac=0.11, dep_mean=3.0, phases=_two_phase(30_000, 20_000, 2.0),
    ),
    ApplicationProfile(
        "eon", "int", "high", footprint_kb=256, hot_kb=48, hot_fraction=0.90,
        code_kb=192, avg_block=7, mispredict_target=0.025, load_frac=0.28,
        store_frac=0.14, fp_frac=0.35, dep_mean=5.0,
    ),
    ApplicationProfile(
        "perlbmk", "int", "med", footprint_kb=20_480, hot_kb=56, hot_fraction=0.70,
        code_kb=384, avg_block=4, mispredict_target=0.065, load_frac=0.29,
        store_frac=0.15, dep_mean=3.5, syscall_rate=2e-5, phases=_branchy_phase(),
    ),
    ApplicationProfile(
        "gap", "int", "med", footprint_kb=32_768, hot_kb=64, hot_fraction=0.70,
        code_kb=96, avg_block=6, mispredict_target=0.045, load_frac=0.26,
        store_frac=0.10, imul_frac=0.08, dep_mean=4.0,
        phases=_two_phase(45_000, 20_000, 2.5),
    ),
    ApplicationProfile(
        "vortex", "int", "high", footprint_kb=49_152, hot_kb=96, hot_fraction=0.75,
        code_kb=256, avg_block=6, mispredict_target=0.02, load_frac=0.30,
        store_frac=0.17, dep_mean=5.0, syscall_rate=1e-5,
    ),
    ApplicationProfile(
        "bzip2", "int", "high", footprint_kb=90_112, hot_kb=48, hot_fraction=0.80,
        stream_fraction=0.20, code_kb=24, avg_block=7, mispredict_target=0.07,
        load_frac=0.25, store_frac=0.10, dep_mean=4.5,
        phases=_two_phase(55_000, 20_000, 2.0),
    ),
    ApplicationProfile(
        "twolf", "int", "low", footprint_kb=1536, hot_kb=32, hot_fraction=0.60,
        code_kb=128, avg_block=5, mispredict_target=0.08, load_frac=0.27,
        store_frac=0.09, dep_mean=2.8, phases=_two_phase(30_000, 30_000, 2.0),
    ),
    # ---- CFP2000 --------------------------------------------------------
    ApplicationProfile(
        "wupwise", "fp", "high", footprint_kb=180_224, hot_kb=128, hot_fraction=0.70,
        stream_fraction=0.25, code_kb=32, avg_block=10, cond_branch_frac=0.7,
        mispredict_target=0.01, load_frac=0.28, store_frac=0.12, fp_frac=0.75,
        dep_mean=6.0,
    ),
    ApplicationProfile(
        "swim", "fp", "low", footprint_kb=196_608, hot_kb=64, hot_fraction=0.30,
        stream_fraction=0.55, code_kb=16, avg_block=14, cond_branch_frac=0.6,
        mispredict_target=0.008, load_frac=0.32, store_frac=0.14, fp_frac=0.85,
        dep_mean=7.0, mem_dep_frac=0.5,
    ),
    ApplicationProfile(
        "mgrid", "fp", "med", footprint_kb=57_344, hot_kb=96, hot_fraction=0.45,
        stream_fraction=0.45, code_kb=16, avg_block=16, cond_branch_frac=0.6,
        mispredict_target=0.006, load_frac=0.35, store_frac=0.08, fp_frac=0.85,
        dep_mean=6.5, phases=_two_phase(50_000, 30_000, 1.8),
    ),
    ApplicationProfile(
        "applu", "fp", "med", footprint_kb=184_320, hot_kb=96, hot_fraction=0.50,
        stream_fraction=0.40, code_kb=48, avg_block=13, cond_branch_frac=0.65,
        mispredict_target=0.01, load_frac=0.31, store_frac=0.11, fp_frac=0.80,
        fdiv_frac=0.08, dep_mean=5.5,
    ),
    ApplicationProfile(
        "mesa", "fp", "high", footprint_kb=9216, hot_kb=64, hot_fraction=0.85,
        code_kb=320, avg_block=7, mispredict_target=0.03, load_frac=0.27,
        store_frac=0.13, fp_frac=0.55, dep_mean=5.0,
    ),
    ApplicationProfile(
        "art", "fp", "low", footprint_kb=3584, hot_kb=24, hot_fraction=0.30,
        stream_fraction=0.50, code_kb=16, avg_block=8, cond_branch_frac=0.75,
        mispredict_target=0.012, load_frac=0.36, store_frac=0.06, fp_frac=0.70,
        dep_mean=3.0, mem_dep_frac=0.65, phases=_two_phase(20_000, 40_000, 1.5, 1.2),
    ),
    ApplicationProfile(
        "equake", "fp", "low", footprint_kb=49_152, hot_kb=48, hot_fraction=0.40,
        stream_fraction=0.30, code_kb=24, avg_block=9, cond_branch_frac=0.7,
        mispredict_target=0.015, load_frac=0.34, store_frac=0.09, fp_frac=0.75,
        dep_mean=3.5, mem_dep_frac=0.6,
    ),
    ApplicationProfile(
        "ammp", "fp", "low", footprint_kb=26_624, hot_kb=40, hot_fraction=0.45,
        code_kb=64, avg_block=9, cond_branch_frac=0.7, mispredict_target=0.02,
        load_frac=0.32, store_frac=0.08, fp_frac=0.75, fdiv_frac=0.10,
        dep_mean=3.0, mem_dep_frac=0.55, phases=_two_phase(30_000, 35_000, 1.8),
    ),
    ApplicationProfile(
        "lucas", "fp", "med", footprint_kb=143_360, hot_kb=128, hot_fraction=0.55,
        stream_fraction=0.35, code_kb=16, avg_block=18, cond_branch_frac=0.55,
        mispredict_target=0.005, load_frac=0.30, store_frac=0.12, fp_frac=0.90,
        fmul_frac=0.55, dep_mean=6.0,
    ),
]

#: All known profiles, keyed by name.
PROFILES: Dict[str, ApplicationProfile] = {p.name: p for p in _PROFILE_LIST}


def get_profile(name: str) -> ApplicationProfile:
    """Look up a profile by SPEC-like program name."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown application profile {name!r}; known: {sorted(PROFILES)}") from None
