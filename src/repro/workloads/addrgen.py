"""Data-address generator.

Produces an effective-address stream whose *reuse-distance profile* — not
just its footprint — matches the application class, because reuse distance
is what determines which cache level serves an access. Three classes:

* **near reuse** (``hot_fraction`` of accesses): a tight recency window —
  short reuse distances, L1-resident under light sharing;
* **far reuse**: a wide recency window over a mid-size working set —
  reuse distances that overflow a shared L1 but fit the 1 MB L2;
* **stream**: sequential walk (every line a compulsory miss, no reuse);
* **cold**: uniform over the whole footprint — DRAM for large-footprint
  programs. The cold share grows with the profile's memory-boundness.

The point of driving *real* caches with these streams (instead of fixing
miss rates outright) is that inter-thread capacity interference — the
paper's clogging mechanism — emerges: 8 threads' near-reuse windows
overflow a shared 32 KB L1, homogeneous memory-bound mixes crush the L2,
and the per-thread miss counters diverge accordingly.

Each hardware context gets a disjoint, set-staggered virtual region.
"""

from __future__ import annotations

import numpy as np

from repro.util.randpool import RandPool
from repro.workloads.profiles import ApplicationProfile

_THREAD_REGION = 1 << 30  # spacing between per-thread address spaces
_DATA_OFFSET = 32 * 1024 * 1024  # data sits above the code region
_LINE = 64
_MID_BYTES_CAP = 96 * 1024  # far-reuse working set (per thread; L2-class)
_BASE_COLD_SHARE = 0.10
_STREAM_STRIDE = 8  # streaming walks touch every word: 8 accesses/line


class ReuseWindow:
    """A recency window: re-touch recent lines with geometric rank, refresh
    with new lines from a backing region."""

    __slots__ = ("lines", "head", "size", "rank_mean", "refresh_prob", "region_base", "region_bytes")

    def __init__(
        self,
        size: int,
        rank_mean: float,
        refresh_prob: float,
        region_base: int,
        region_bytes: int,
    ) -> None:
        self.size = size
        self.rank_mean = rank_mean
        self.refresh_prob = refresh_prob
        self.region_base = region_base
        self.region_bytes = max(_LINE, region_bytes)
        self.lines = [region_base] * size
        self.head = 0

    def next_address(self, pool: RandPool) -> int:
        """Next address from this window's reuse/refresh process."""
        if pool.bernoulli(self.refresh_prob):
            addr = self.region_base + pool.integer(self.region_bytes)
            self.head = (self.head + 1) % self.size
            self.lines[self.head] = addr
            return addr
        rank = min(self.size - 1, pool.geometric(self.rank_mean) - 1)
        return self.lines[(self.head - rank) % self.size]

    def set_region(self, region_bytes: int) -> None:
        """Resize the backing region (phase override)."""
        self.region_bytes = max(_LINE, region_bytes)


class DataAddressGenerator:
    """Stateful per-thread address stream."""

    def __init__(
        self,
        profile: ApplicationProfile,
        tid: int,
        rng: np.random.Generator,
        pool: RandPool | None = None,
    ) -> None:
        self.profile = profile
        self.tid = tid
        # Staggered per thread: power-of-two-spaced address spaces would
        # alias every thread's hot data to the same cache sets. The stagger
        # is an odd number of cache lines (coprime with any set count).
        self.base = tid * _THREAD_REGION + _DATA_OFFSET + tid * (53 * 4096 + 64)
        self.pool = pool or RandPool(rng)
        self.footprint_scale = 1.0  # phase override hook
        self._stream_ptr = 0
        self._stream_bytes = max(_LINE, min(profile.footprint_kb, 4096) * 1024 // 4)
        # Near-reuse: tight window over the hot region (L1-class).
        self.near = ReuseWindow(
            size=32,
            rank_mean=4.0,
            refresh_prob=0.12,
            region_base=self.base,
            region_bytes=self.hot_bytes,
        )
        # Far-reuse: wide window over the mid working set (L2-class).
        self.far = ReuseWindow(
            size=256,
            rank_mean=32.0,
            refresh_prob=0.08,
            region_base=self.base + 4 * 1024 * 1024,
            region_bytes=min(self.footprint_bytes, _MID_BYTES_CAP),
        )
        self._accesses = 0

    @property
    def footprint_bytes(self) -> int:
        return int(self.profile.footprint_kb * 1024 * self.footprint_scale)

    @property
    def hot_bytes(self) -> int:
        return min(self.profile.hot_kb * 1024, self.footprint_bytes)

    def next_address(self) -> int:
        """Next data effective address (byte address)."""
        p = self.profile
        pool = self.pool
        u = pool.uniform()
        self._accesses += 1
        hot = p.hot_fraction
        if u < hot:
            return self.near.next_address(pool)
        if u < hot + p.stream_fraction:
            # Sequential word-granular walk (one compulsory miss per line,
            # seven spatial hits); wraps within the stream window.
            self._stream_ptr = (self._stream_ptr + _STREAM_STRIDE) % self._stream_bytes
            return self.base + 8 * 1024 * 1024 + self._stream_ptr
        # Remaining accesses: far reuse (L2-class) vs. truly cold (DRAM).
        if pool.bernoulli(self._cold_share()):
            return self.base + 16 * 1024 * 1024 + pool.integer(max(1, self.footprint_bytes))
        return self.far.next_address(pool)

    def _cold_share(self) -> float:
        """Fraction of non-hot/non-stream accesses that roam the full
        footprint. Grows with memory-boundness: a 64 MB-footprint,
        low-locality program (mcf-like) pays far more DRAM trips than a
        180 KB one (gzip-like)."""
        p = self.profile
        size_pressure = min(1.0, self.footprint_bytes / (64 * 1024 * 1024))
        locality_deficit = max(0.0, 1.0 - p.hot_fraction)
        return min(0.9, _BASE_COLD_SHARE + 0.5 * size_pressure * locality_deficit)

    def set_phase_scale(self, footprint_scale: float) -> None:
        """Apply a phase's footprint multiplier (>= 0.1 enforced)."""
        self.footprint_scale = max(0.1, footprint_scale)
        self.near.set_region(self.hot_bytes)
        self.far.set_region(min(self.footprint_bytes, _MID_BYTES_CAP))

    @property
    def accesses(self) -> int:
        return self._accesses
