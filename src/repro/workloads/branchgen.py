"""Control-flow generator.

Models a program's control flow as a set of branch *sites* scattered across
a code footprint. Each site has a persistent minority-outcome probability
drawn when the site is first visited, so a 2-bit/gshare predictor sees a
realistic per-site accuracy distribution: an exponential mix of strongly
biased sites (predictable) and a tail of noisy sites. The mean minority
probability equals the profile's ``mispredict_target``, which is (to first
order) the misprediction rate a saturating-counter predictor achieves.

PC layout: instructions are word-sized; basic blocks are geometric in
length; a taken branch jumps to a (loop-biased) block within the code
footprint, which generates the L1I behaviour for large-code programs like
gcc and perlbmk.
"""

from __future__ import annotations

from math import log as _log
from typing import Dict, Tuple

import numpy as np

from repro.util.randpool import RandPool
from repro.workloads.profiles import ApplicationProfile

_CODE_REGION = 16 * 1024 * 1024  # per-thread code space offset within its region
_WORD = 4


class ControlFlowGenerator:
    """Stateful per-thread PC/branch-outcome stream."""

    def __init__(
        self,
        profile: ApplicationProfile,
        tid: int,
        rng: np.random.Generator,
        pool: RandPool | None = None,
        code_base: int = 0,
    ) -> None:
        self.profile = profile
        self.tid = tid
        self.pool = pool or RandPool(rng)
        # Stagger per-thread code layouts: power-of-two-spaced address
        # spaces would alias every thread's hot code to the same L1I sets
        # (set-conflict livelock); real processes have unrelated layouts.
        # The stagger is an ODD number of cache lines so it is coprime with
        # every power-of-two set count.
        self.code_base = code_base + _CODE_REGION + tid * (37 * 4096 + 64)
        self.code_bytes = profile.code_kb * 1024
        self.pc = self.code_base
        self.mispredict_scale = 1.0  # phase override hook
        # site pc -> (minority_probability, majority_taken)
        self._sites: Dict[int, Tuple[float, bool]] = {}
        # block start pc -> block length. Block structure is a property of
        # the *code*, not of the visit: revisiting a block must replay the
        # same branch PCs or no branch site ever repeats and predictors
        # cannot train.
        self._block_lengths: Dict[int, int] = {}
        # branch site pc -> taken-target (static CFG edge); a small
        # ``indirect_frac`` of visits re-draw the target, modeling indirect
        # branches and returns.
        self._site_targets: Dict[int, int] = {}
        self.indirect_frac = 0.02
        # Loop model: remember a few recent targets and revisit them.
        self._recent_targets = [self.code_base]
        self.branches_emitted = 0

    # ------------------------------------------------------------------
    def _site_params(self, pc: int) -> Tuple[float, bool, bool]:
        """Per-site static properties: (minority prob, majority direction,
        is-conditional). Drawn once per site and cached — branch *sites*
        have stable behaviour; only dynamic outcomes vary."""
        site = self._sites.get(pc)
        if site is None:
            # Exponential distribution of per-site noise, clipped to [0, .5];
            # mean equals the profile's target misprediction rate.
            noise = min(0.5, -self.profile.mispredict_target * _log(max(1e-12, 1.0 - self.pool.uniform())))
            majority_taken = self.pool.bernoulli(0.6)  # branches skew taken
            is_cond = self.pool.bernoulli(self.profile.cond_branch_frac)
            site = (noise, majority_taken, is_cond)
            self._sites[pc] = site
        return site

    def next_block_length(self) -> int:
        """Length of the basic block starting at the current PC.

        Deterministic per block-start address (drawn once, cached), so the
        block-ending branch sits at a stable site PC across revisits.
        """
        start = self.pc
        length = self._block_lengths.get(start)
        if length is None:
            length = max(2, self.pool.geometric(self.profile.avg_block))
            self._block_lengths[start] = length
        return length

    def advance(self) -> int:
        """PC of the next sequential instruction."""
        pc = self.pc
        self.pc += _WORD
        return pc

    def branch(self) -> Tuple[int, bool, bool, int, float]:
        """Emit the block-ending branch at the current PC.

        Returns ``(pc, is_conditional, taken, target, noise)`` and moves the
        PC to the successor (target if taken, fall-through otherwise).
        ``noise`` is the site's minority-outcome probability — callers use
        it to correlate hard-to-predict branches with data dependence.
        """
        pc = self.advance()
        self.branches_emitted += 1
        noise, majority_taken, is_cond = self._site_params(pc)
        if is_cond:
            effective_noise = min(0.5, noise * self.mispredict_scale)
            minority = self.pool.bernoulli(effective_noise)
            taken = majority_taken != minority
        else:
            taken = True  # unconditional jumps/calls
            effective_noise = 0.0
        if taken:
            target = self._site_targets.get(pc)
            if target is None or self.pool.bernoulli(self.indirect_frac):
                target = self._pick_target(pc)
                self._site_targets[pc] = target
            self.pc = target
        else:
            target = self.pc
        return pc, is_cond, taken, target, effective_noise

    def _pick_target(self, pc: int) -> int:
        """Loop-biased target selection within the code footprint."""
        if self._recent_targets and self.pool.bernoulli(0.85):
            # Revisit a recent target: loops and hot call sites.
            return self._recent_targets[self.pool.integer(len(self._recent_targets))]
        offset = (self.pool.integer(max(1, self.code_bytes // _WORD))) * _WORD
        target = self.code_base + offset
        self._recent_targets.append(target)
        if len(self._recent_targets) > 16:
            self._recent_targets.pop(0)
        return target

    def set_phase_scale(self, mispredict_scale: float) -> None:
        """Apply a phase's misprediction multiplier."""
        self.mispredict_scale = max(0.0, mispredict_scale)

    @property
    def known_sites(self) -> int:
        return len(self._sites)
