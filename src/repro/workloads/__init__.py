"""Synthetic SPEC CPU2000-like workloads.

The paper drives SimpleSMT with SPEC CPU2000 binaries, classified along
three axes to build its 13 mixes: single-thread IPC, memory footprint, and
integer vs floating point. SPEC binaries (and a functional ISA simulator to
run them) are out of scope here, so this package generates *statistical
instruction traces*: per-application profiles reproduce the published
behavioural characteristics of the SPEC programs along exactly those axes
plus the event rates (conditional-branch density, misprediction rate, cache
miss rate, load/store density) that the ADTS heuristics' threshold
conditions test. See DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.profiles import ApplicationProfile, PhaseProfile, PROFILES, get_profile
from repro.workloads.addrgen import DataAddressGenerator
from repro.workloads.branchgen import ControlFlowGenerator
from repro.workloads.tracegen import TRACEGEN_VERSION, TraceGenerator, make_generators
from repro.workloads.tracecache import (
    FlushResult,
    TraceCache,
    active_trace_cache,
    flush_trace_cache,
    set_trace_cache,
)
from repro.workloads.mixes import Mix, MIXES, get_mix, mix_names

__all__ = [
    "ApplicationProfile",
    "PhaseProfile",
    "PROFILES",
    "get_profile",
    "DataAddressGenerator",
    "ControlFlowGenerator",
    "TraceGenerator",
    "TRACEGEN_VERSION",
    "FlushResult",
    "TraceCache",
    "active_trace_cache",
    "flush_trace_cache",
    "set_trace_cache",
    "make_generators",
    "Mix",
    "MIXES",
    "get_mix",
    "mix_names",
]
