"""Runtime fault injection, as a scheduler-hook interposer.

The :class:`FaultInjector` wraps any :class:`~repro.smt.pipeline.SchedulerHook`
(normally an :class:`~repro.core.adts.ADTSController`) and perturbs exactly
the three interfaces the paper's mechanism depends on:

* the **telemetry path** — the quantum record/counter snapshots handed to
  ``on_quantum_end`` can be replayed stale or bit-flipped;
* the **detector thread** — queued DT work can be dropped, delayed behind a
  bogus task, or starved of idle slots for a window;
* the **actuation path** — ``processor.set_policy`` is interposed so switch
  commands can be lost, and spurious switches can be applied behind the
  controller's back; workload threads can be transiently hung.

The pipeline itself is never modified: everything the injector does goes
through public surfaces (hook arguments, ``set_policy``,
``ThreadContext.block_fetch_until``), so a clean run with an injector whose
plan is all-zeros is bit-identical to a run without one.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from typing import Dict, Optional

import numpy as np

from repro.core.detector import DetectorTask
from repro.faults.plan import FaultPlan
from repro.policies.registry import POLICY_NAMES
from repro.smt.counters import QuantumSnapshot
from repro.smt.pipeline import SchedulerHook
from repro.util.randpool import RandPool
from repro.util.seeds import SeedSequencer

#: Snapshot fields eligible for bit flips — every event counter, never the
#: thread id (a corrupt tid would be an out-of-range *address*, which real
#: status-register reads cannot produce).
_CORRUPTIBLE_FIELDS = tuple(f for f in QuantumSnapshot.__slots__ if f != "tid")

#: Bit positions a flip may hit: low bits model subtle skew, high bits model
#: gross (watchdog-detectable) corruption.
_MAX_FLIP_BIT = 16


class FaultInjector(SchedulerHook):
    """Injects a :class:`FaultPlan` around an inner scheduler hook."""

    def __init__(self, plan: FaultPlan, inner: Optional[SchedulerHook] = None) -> None:
        self.plan = plan
        self.inner = inner or SchedulerHook()
        rng = np.random.default_rng(SeedSequencer(plan.seed).seed_for("faults"))
        self.pool = RandPool(rng, batch=1024)
        #: injected-fault tally by fault name.
        self.counts: Dict[str, int] = {}
        self.processor = None
        self._real_set_policy = None
        self._starve_until = -1
        self._prev_record = None
        self._prev_snapshots = None

    # -- bookkeeping ---------------------------------------------------------
    def _hit(self, rate: float) -> bool:
        """One seeded Bernoulli draw; zero-rate faults draw nothing, so
        disabling a family never perturbs another family's stream."""
        return rate > 0.0 and self.pool.bernoulli(rate)

    def _count(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def faults_injected(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> dict:
        """Injection telemetry, merged into ``RunResult.scheduler``."""
        return {
            "faults_injected": self.faults_injected,
            "fault_counts": dict(self.counts),
        }

    # -- SchedulerHook ------------------------------------------------------
    def attach(self, processor) -> None:
        self.processor = processor
        self.inner.attach(processor)
        # Interpose the actuation path: every switch command — the inner
        # controller's or the watchdog's — routes through the fault gate.
        self._real_set_policy = processor.set_policy
        processor.set_policy = self._set_policy_gate

    def _set_policy_gate(self, policy) -> None:
        if self._hit(self.plan.policy_drop_rate):
            self._count("policy_drop")
            return
        self._real_set_policy(policy)

    def on_cycle(self, now: int, idle_slots: int) -> int:
        if now < self._starve_until:
            # Forced DT starvation: the detector sees a full fetch buffer.
            self.inner.on_cycle(now, 0)
            return 0
        return self.inner.on_cycle(now, idle_slots)

    def on_quantum_end(self, now: int, record, snapshots) -> None:
        plan = self.plan
        detector = getattr(self.inner, "detector", None)

        # (b) detector-thread faults — applied before the inner hook reads
        # the boundary, so this boundary's own work can be affected.
        if detector is not None:
            if self._hit(plan.dt_drop_rate) and detector.busy:
                detector.drop_all()
                self._count("dt_drop")
            if self._hit(plan.dt_delay_rate):
                detector.enqueue(
                    DetectorTask("fault:dt_delay", plan.dt_delay_instructions), now
                )
                self._count("dt_delay")
        if self._hit(plan.dt_starvation_rate):
            self._starve_until = now + plan.dt_starvation_cycles
            self._count("dt_starvation")

        # (a) telemetry corruption.
        faulty_record, faulty_snaps = record, snapshots
        if self._hit(plan.counter_stale_rate) and self._prev_record is not None:
            faulty_record, faulty_snaps = self._prev_record, self._prev_snapshots
            self._count("counter_stale")
        elif self._hit(plan.counter_bitflip_rate):
            faulty_record, faulty_snaps = self._bitflip(record, snapshots)
            self._count("counter_bitflip")

        # (c) actuation faults beyond command loss.
        if self._hit(plan.policy_spurious_rate):
            self._real_set_policy(POLICY_NAMES[self.pool.integer(len(POLICY_NAMES))])
            self._count("policy_spurious")

        # (d) transient thread hang in the workload.
        if self._hit(plan.thread_hang_rate):
            tid = self.pool.integer(self.processor.num_threads)
            self.processor.contexts[tid].block_fetch_until(now + plan.thread_hang_cycles)
            self._count("thread_hang")

        # (e) process-level faults — the hosting worker itself dies or hangs.
        # These exist to exercise the supervised executor's crash containment
        # and heartbeat-staleness kill; see FaultPlan for why 'all' excludes
        # them.
        if self._hit(plan.worker_crash_rate):
            self._count("worker_crash")  # unobservable from this process
            os.kill(os.getpid(), signal.SIGKILL)
        if self._hit(plan.worker_hang_rate):
            self._count("worker_hang")
            # CPU-bound spin, not sleep: this is the hang a thread-based
            # timeout cannot interrupt and a heartbeat monitor must detect.
            deadline = time.monotonic() + plan.worker_hang_seconds
            while time.monotonic() < deadline:
                pass

        self._prev_record, self._prev_snapshots = record, snapshots
        self.inner.on_quantum_end(now, faulty_record, faulty_snaps)

    # -- corruption ---------------------------------------------------------
    def _bitflip(self, record, snapshots):
        """Flip one bit in one counter: either a per-thread snapshot field
        or the aggregate committed count the IPC check reads."""
        target = self.pool.integer(len(snapshots) + 1)
        bit = self.pool.integer(_MAX_FLIP_BIT)
        if target == len(snapshots):
            flipped = dataclasses.replace(record, committed=record.committed ^ (1 << bit))
            return flipped, snapshots
        snap = snapshots[target]
        field = _CORRUPTIBLE_FIELDS[self.pool.integer(len(_CORRUPTIBLE_FIELDS))]
        corrupt = snap.replace(**{field: getattr(snap, field) ^ (1 << bit)})
        out = list(snapshots)
        out[target] = corrupt
        return record, out
