"""Seeded fault injection: perturb telemetry, the detector thread, policy
actuation and the workload, deterministically, to evaluate ADTS's graceful
degradation (the robustness evaluation layer the paper's §3–§4 discussion
implies but never builds)."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, IN_PROCESS_FAULT_KINDS, FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "FAULT_KINDS", "IN_PROCESS_FAULT_KINDS"]
