"""Deterministic fault plans.

A :class:`FaultPlan` is a frozen description of *which* perturbations to
inject and *how often*, plus its own seed. All randomness during injection
comes from a :class:`~repro.util.randpool.RandPool` derived from that seed
through the standard :class:`~repro.util.seeds.SeedSequencer` substream
machinery, so a (workload seed, fault plan) pair always reproduces the same
run byte-for-byte — faulty runs are as replayable as clean ones.

Rates are per scheduling-quantum boundary (the granularity at which the
detector thread reads the machine), matching the failure modes the paper's
§3–§4 discussion worries about: counters describing a quantum that is
already over, detector-thread work arriving late or not at all, and policy
commands that never land.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Sequence

#: CLI-facing fault families (``--faults counters,dt``). ``worker`` is the
#: process-level family (hard crash / CPU-bound hang of the hosting
#: process); it exists to exercise the supervised executor and is therefore
#: *not* part of ``all`` — an unsupervised run has nothing to contain it.
#: ``service`` is likewise service-level (synthetic overload at admission,
#: forced full-tier failures that push a circuit breaker toward open); it
#: only has meaning under :class:`~repro.service.SimulationService` and is
#: also excluded from ``all``. ``disk`` is the filesystem family (torn
#: writes, ENOSPC, failed renames — injected at the storage layer by
#: :mod:`repro.storage.faultfs`, not at scheduler boundaries); it never
#: changes simulation results (artifacts are recovered or regenerated), so
#: it too is excluded from ``all`` and must be requested by name.
#: ``corruption`` is the silent-data-corruption family (a served result's
#: summary counters bit-flipped between computation and the front door);
#: like ``service`` it only has meaning under the serving stack — here the
#: sharded front door — and is excluded from ``all``.
FAULT_KINDS = (
    "counters", "dt", "policy", "hangs", "worker", "service", "corruption", "disk"
)

#: The families ``--faults all`` (and :meth:`FaultPlan.storm`) enable.
IN_PROCESS_FAULT_KINDS = ("counters", "dt", "policy", "hangs")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, declarative description of the faults to inject.

    Attributes:
        seed: root seed of the injector's private random stream.
        counter_stale_rate: P(per boundary) the detector sees the *previous*
            quantum's status counters (a stale read).
        counter_bitflip_rate: P(per boundary) one counter field is read with
            one bit flipped.
        dt_drop_rate: P(per boundary) all queued detector-thread work is
            lost (its completions never fire).
        dt_delay_rate: P(per boundary) the DT is handed a bogus task of
            ``dt_delay_instructions`` that delays everything behind it.
        dt_delay_instructions: size of the injected delay task.
        dt_starvation_rate: P(per boundary) a forced starvation window
            begins: the DT sees zero idle slots for
            ``dt_starvation_cycles`` cycles.
        dt_starvation_cycles: length of a forced starvation window.
        policy_drop_rate: P(per switch command) a policy switch is lost.
        policy_spurious_rate: P(per boundary) a spurious switch to a random
            policy is applied behind the controller's back.
        thread_hang_rate: P(per boundary) one workload thread transiently
            hangs (cannot fetch) for ``thread_hang_cycles`` cycles.
        thread_hang_cycles: length of a transient thread hang.
        worker_crash_rate: P(per boundary) the hosting *process* dies by
            SIGKILL — the segfault/OOM-kill stand-in that exercises a
            supervisor's crash containment. Only meaningful under
            :class:`~repro.harness.executor.SupervisedExecutor`.
        worker_hang_rate: P(per boundary) the hosting process busy-spins
            (CPU-bound, heartbeats stop) for ``worker_hang_seconds`` —
            the uninterruptible hang ``guarded_run`` cannot kill.
        worker_hang_seconds: wall-clock length of an injected process hang
            (finite, so an *unsupervised* run eventually recovers instead
            of wedging forever).
        service_overload_rate: P(per submitted request) the simulation
            service treats its admission queue as saturated for that
            submit, forcing the request down the degradation ladder
            (degrade or reject) regardless of true queue depth — the
            chaos stand-in for a traffic spike.
        service_breaker_trip_rate: P(per full-fidelity dispatch) the
            dispatched attempt is forced to fail (worker SIGKILL under a
            supervised pool), pushing the service's circuit breaker toward
            open. Only meaningful under
            :class:`~repro.service.SimulationService`.
        service_corrupt_result_rate: P(per full-fidelity result crossing
            the serving front door) one mantissa bit of a summary counter
            is silently flipped before the payload is served and stored —
            the serving-layer analogue of ``counter_bitflip_rate``: no
            crash, no error, just a wrong answer with a valid checksum.
            Only meaningful under
            :class:`~repro.service.router.ShardedService`, whose shadow
            verifier exists to catch exactly this.
        disk_torn_write_rate: P(per storage write) only a prefix of the
            data lands before the write fails (power-loss tear).
        disk_enospc_rate: P(per storage write) the device fills up after
            ``disk_enospc_after_bytes`` bytes (ENOSPC mid-record).
        disk_enospc_after_bytes: bytes that land before an injected ENOSPC.
        disk_rename_fail_rate: P(per atomic rename) the rename fails,
            leaving only the temp file.
        disk_bitrot_rate: P(per storage write) one bit is silently flipped
            before the data lands (caught later by envelope checksums).
        disk_read_eio_rate: P(per storage read) the read fails with EIO.
        disk_slow_io_rate: P(per storage operation) the operation stalls
            for ``disk_slow_io_seconds`` first.
        disk_slow_io_seconds: wall-clock length of an injected I/O stall.
    """

    seed: int = 0
    counter_stale_rate: float = 0.0
    counter_bitflip_rate: float = 0.0
    dt_drop_rate: float = 0.0
    dt_delay_rate: float = 0.0
    dt_delay_instructions: int = 4096
    dt_starvation_rate: float = 0.0
    dt_starvation_cycles: int = 512
    policy_drop_rate: float = 0.0
    policy_spurious_rate: float = 0.0
    thread_hang_rate: float = 0.0
    thread_hang_cycles: int = 1024
    worker_crash_rate: float = 0.0
    worker_hang_rate: float = 0.0
    worker_hang_seconds: float = 30.0
    service_overload_rate: float = 0.0
    service_breaker_trip_rate: float = 0.0
    service_corrupt_result_rate: float = 0.0
    disk_torn_write_rate: float = 0.0
    disk_enospc_rate: float = 0.0
    disk_enospc_after_bytes: int = 64
    disk_rename_fail_rate: float = 0.0
    disk_bitrot_rate: float = 0.0
    disk_read_eio_rate: float = 0.0
    disk_slow_io_rate: float = 0.0
    disk_slow_io_seconds: float = 0.02

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"FaultPlan.{f.name}={value!r}: must be in [0, 1]")
            if f.name.endswith(("_cycles", "_instructions", "_seconds", "_bytes")) and value < 0:
                raise ValueError(f"FaultPlan.{f.name}={value!r}: must be >= 0")

    @property
    def any_enabled(self) -> bool:
        """True when at least one fault family has a non-zero rate."""
        return any(
            getattr(self, f.name) > 0.0 for f in fields(self) if f.name.endswith("_rate")
        )

    @property
    def any_scheduler_enabled(self) -> bool:
        """True when a *result-affecting* (non-disk) family is live.

        Disk faults only perturb the storage layer — artifacts are
        recovered or regenerated, never silently wrong — so they neither
        need a :class:`~repro.faults.FaultInjector` on the scheduler hook
        chain nor belong in a sweep cell's identity key.
        """
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name.endswith("_rate") and not f.name.startswith("disk_")
        )

    @property
    def any_disk_enabled(self) -> bool:
        """True when at least one disk fault has a non-zero rate."""
        return any(
            getattr(self, f.name) > 0.0
            for f in fields(self)
            if f.name.startswith("disk_") and f.name.endswith("_rate")
        )

    def disk_plan(self):
        """This plan's disk family as a :class:`~repro.storage.faultfs.
        DiskFaultPlan` (what :func:`~repro.storage.faultfs.faultfs_session`
        consumes), or None when no disk fault is enabled."""
        if not self.any_disk_enabled:
            return None
        from repro.storage.faultfs import DiskFaultPlan

        return DiskFaultPlan(
            seed=self.seed,
            torn_write_rate=self.disk_torn_write_rate,
            enospc_rate=self.disk_enospc_rate,
            enospc_after_bytes=self.disk_enospc_after_bytes,
            rename_fail_rate=self.disk_rename_fail_rate,
            bitrot_rate=self.disk_bitrot_rate,
            read_eio_rate=self.disk_read_eio_rate,
            slow_io_rate=self.disk_slow_io_rate,
            slow_io_seconds=self.disk_slow_io_seconds,
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan on a different injection stream."""
        return replace(self, seed=seed)

    def without_worker_faults(self) -> "FaultPlan":
        """The same plan with the process-level (crash/hang) family off.

        The supervised executor applies this on retries: worker faults exist
        to exercise the supervisor once, not to make a cell permanently
        unrunnable (a seeded crash would otherwise recur on every attempt).
        """
        if self.worker_crash_rate == 0.0 and self.worker_hang_rate == 0.0:
            return self
        return replace(self, worker_crash_rate=0.0, worker_hang_rate=0.0)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_kinds(
        cls, kinds: Sequence[str], rate: float = 0.25, seed: int = 0
    ) -> "FaultPlan":
        """Build a plan enabling whole fault families at a shared rate.

        ``kinds`` is a subset of :data:`FAULT_KINDS` (or ``["all"]``, which
        enables the in-process families only — ``worker`` faults kill the
        hosting process and must be requested by name).
        """
        chosen = set(kinds)
        if "all" in chosen:
            chosen = set(IN_PROCESS_FAULT_KINDS)
        unknown = chosen - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; known: {list(FAULT_KINDS)} or 'all'"
            )
        kw = {}
        if "counters" in chosen:
            kw["counter_stale_rate"] = rate
            kw["counter_bitflip_rate"] = rate
        if "dt" in chosen:
            kw["dt_drop_rate"] = rate
            kw["dt_delay_rate"] = rate
            kw["dt_starvation_rate"] = rate
        if "policy" in chosen:
            kw["policy_drop_rate"] = rate
            kw["policy_spurious_rate"] = rate
        if "hangs" in chosen:
            kw["thread_hang_rate"] = rate
        if "worker" in chosen:
            kw["worker_crash_rate"] = rate
            kw["worker_hang_rate"] = rate
        if "service" in chosen:
            kw["service_overload_rate"] = rate
            kw["service_breaker_trip_rate"] = rate
        if "corruption" in chosen:
            kw["service_corrupt_result_rate"] = rate
        if "disk" in chosen:
            kw["disk_torn_write_rate"] = rate
            kw["disk_enospc_rate"] = rate
            kw["disk_rename_fail_rate"] = rate
        return cls(seed=seed, **kw)

    @classmethod
    def storm(cls, seed: int = 0, rate: float = 0.25) -> "FaultPlan":
        """Everything at once — the resilience experiment's stress preset."""
        return cls.from_kinds(["all"], rate=rate, seed=seed)

    @classmethod
    def chaos_day(
        cls, seed: int = 0, rate: float = 0.1, corrupt_rate: float = 0.0
    ) -> "FaultPlan":
        """The combined-fault campaign preset: every *recoverable* family.

        Enables the service family (synthetic overload + forced breaker
        trips) and the recoverable disk faults (torn writes, ENOSPC, failed
        renames) at ``rate``; the in-process scheduler families and worker
        crash/hang ride along per-request via
        :attr:`~repro.service.SimRequest.fault_kinds` so they land inside
        supervised attempts rather than in the service process. Bitrot and
        read-EIO are deliberately *excluded*: they manufacture genuinely
        unrepairable artifacts that ``fsck`` must quarantine, which would
        violate the campaign's "journal fsck-clean afterwards" contract by
        design rather than by bug. ``corrupt_rate`` enables the silent
        result-corruption family separately: it is only survivable when
        the campaign also runs shadow verification, so it must be asked
        for explicitly (``repro chaosday --corrupt-rate``).
        """
        return cls(
            seed=seed,
            service_overload_rate=rate,
            service_breaker_trip_rate=rate,
            service_corrupt_result_rate=corrupt_rate,
            disk_torn_write_rate=rate,
            disk_enospc_rate=rate,
            disk_rename_fail_rate=rate,
        )
