"""Bimodal (per-PC 2-bit counter) direction predictor."""

from __future__ import annotations

from repro.branch.base import BranchPredictor, TwoBitCounterTable


class BimodalPredictor(BranchPredictor):
    """Classic bimodal predictor: PC-indexed 2-bit saturating counters.

    The table is shared across hardware contexts (real SMT shares predictor
    arrays), so threads alias and interfere — an effect BRCOUNT exploits.
    """

    def __init__(self, entries: int = 2048) -> None:
        super().__init__()
        self.table = TwoBitCounterTable(entries)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self.table.mask

    def predict(self, tid: int, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, tid: int, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)

    def reset(self) -> None:
        super().reset()
        self.table.reset()
