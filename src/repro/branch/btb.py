"""Branch Target Buffer.

Direct-mapped tagged target store. A taken branch whose target misses in
the BTB costs a fetch-redirect bubble even when the direction prediction
was correct; this contributes to the front-end waste that BRCOUNT-style
policies react to.
"""

from __future__ import annotations

import numpy as np


class BranchTargetBuffer:
    """Direct-mapped BTB with full tags."""

    def __init__(self, entries: int = 256) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("BTB size must be a positive power of two")
        self.entries = entries
        self.mask = entries - 1
        self._tags = np.full(entries, -1, dtype=np.int64)
        self._targets = np.zeros(entries, dtype=np.int64)
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> int:
        """Predicted target for the branch at ``pc``, or -1 on BTB miss."""
        idx = (pc >> 2) & self.mask
        if self._tags[idx] == pc:
            self.hits += 1
            return int(self._targets[idx])
        self.misses += 1
        return -1

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of the branch at ``pc``."""
        idx = (pc >> 2) & self.mask
        self._tags[idx] = pc
        self._targets[idx] = target

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset(self) -> None:
        """Invalidate all entries and clear statistics."""
        self._tags.fill(-1)
        self._targets.fill(0)
        self.hits = 0
        self.misses = 0
