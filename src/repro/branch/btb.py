"""Branch Target Buffer.

Direct-mapped tagged target store. A taken branch whose target misses in
the BTB costs a fetch-redirect bubble even when the direction prediction
was correct; this contributes to the front-end waste that BRCOUNT-style
policies react to.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped BTB with full tags.

    Tag/target stores are plain lists: one lookup per fetched branch makes
    this a hot structure, and list indexing avoids NumPy scalar dispatch.
    """

    __slots__ = ("entries", "mask", "_tags", "_targets", "hits", "misses")

    def __init__(self, entries: int = 256) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("BTB size must be a positive power of two")
        self.entries = entries
        self.mask = entries - 1
        self._tags = [-1] * entries
        self._targets = [0] * entries
        self.hits = 0
        self.misses = 0

    def lookup(self, pc: int) -> int:
        """Predicted target for the branch at ``pc``, or -1 on BTB miss."""
        idx = (pc >> 2) & self.mask
        if self._tags[idx] == pc:
            self.hits += 1
            return self._targets[idx]
        self.misses += 1
        return -1

    def update(self, pc: int, target: int) -> None:
        """Install/refresh the target of the branch at ``pc``."""
        idx = (pc >> 2) & self.mask
        self._tags[idx] = pc
        self._targets[idx] = target

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset(self) -> None:
        """Invalidate all entries and clear statistics."""
        self._tags = [-1] * self.entries
        self._targets = [0] * self.entries
        self.hits = 0
        self.misses = 0
