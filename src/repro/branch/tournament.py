"""Tournament (combining) predictor, McFarling style.

A chooser table of 2-bit counters selects between two component predictors
per branch; the chooser trains toward whichever component was right when
they disagree. Default components: bimodal (good for statically biased
branches, which dominate the synthetic workloads) and local two-level
(good for patterned branches).
"""

from __future__ import annotations

from typing import Optional

from repro.branch.base import BranchPredictor, TwoBitCounterTable
from repro.branch.bimodal import BimodalPredictor
from repro.branch.local import LocalHistoryPredictor


class TournamentPredictor(BranchPredictor):
    """Chooser + two component predictors."""

    def __init__(
        self,
        component_a: Optional[BranchPredictor] = None,
        component_b: Optional[BranchPredictor] = None,
        chooser_entries: int = 2048,
    ) -> None:
        super().__init__()
        self.a = component_a or BimodalPredictor(2048)
        self.b = component_b or LocalHistoryPredictor()
        # Chooser counter: >=2 means "trust component a".
        self.chooser = TwoBitCounterTable(chooser_entries)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self.chooser.mask

    def predict(self, tid: int, pc: int) -> bool:
        if self.chooser.predict(self._index(pc)):
            return self.a.predict(tid, pc)
        return self.b.predict(tid, pc)

    def update(self, tid: int, pc: int, taken: bool) -> None:
        pa = self.a.predict(tid, pc)
        pb = self.b.predict(tid, pc)
        if pa != pb:
            # Train the chooser toward the correct component.
            self.chooser.update(self._index(pc), pa == taken)
        self.a.update(tid, pc, taken)
        self.b.update(tid, pc, taken)

    def reset(self) -> None:
        super().reset()
        self.a.reset()
        self.b.reset()
        self.chooser.reset()
