"""Branch-prediction substrate.

SimpleSMT inherits SimpleScalar's predictors; the paper's BRCOUNT policy
and COND_BR heuristic condition both key off conditional-branch density and
misprediction rate, so the predictor's *accuracy profile per thread* is the
behaviour that must be faithful. Provided: 2-bit bimodal, gshare, and a
simple BTB, all with SMT-aware (thread-tagged) global history.
"""

from repro.branch.base import BranchPredictor, TwoBitCounterTable
from repro.branch.bimodal import BimodalPredictor
from repro.branch.gshare import GsharePredictor
from repro.branch.local import LocalHistoryPredictor
from repro.branch.tournament import TournamentPredictor
from repro.branch.btb import BranchTargetBuffer

__all__ = [
    "BranchPredictor",
    "TwoBitCounterTable",
    "BimodalPredictor",
    "GsharePredictor",
    "LocalHistoryPredictor",
    "TournamentPredictor",
    "BranchTargetBuffer",
]


def create_predictor(name: str, entries: int = 2048, max_threads: int = 16) -> BranchPredictor:
    """Build a predictor by config name."""
    if name == "bimodal":
        return BimodalPredictor(entries)
    if name == "gshare":
        return GsharePredictor(entries, max_threads=max_threads)
    if name == "local":
        return LocalHistoryPredictor(pattern_entries=entries)
    if name == "tournament":
        return TournamentPredictor(chooser_entries=entries)
    raise KeyError(f"unknown predictor {name!r}")
