"""Two-level local-history predictor (PAg), Yeh & Patt style.

A per-branch history table (indexed by PC, shared across contexts like all
predictor arrays on SMT) feeds a pattern table of 2-bit counters. Local
history captures per-branch periodic patterns that bimodal cannot (e.g.
loop branches with fixed trip counts).
"""

from __future__ import annotations

import numpy as np

from repro.branch.base import BranchPredictor, TwoBitCounterTable


class LocalHistoryPredictor(BranchPredictor):
    """PAg: per-PC local history -> shared pattern table."""

    def __init__(
        self,
        history_entries: int = 1024,
        history_bits: int = 8,
        pattern_entries: int = 1024,
    ) -> None:
        super().__init__()
        if history_entries <= 0 or history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a positive power of two")
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self._hist_mask = history_entries - 1
        self._pattern_mask = (1 << history_bits) - 1
        self._histories = np.zeros(history_entries, dtype=np.int64)
        self.table = TwoBitCounterTable(pattern_entries)

    def _history_index(self, pc: int) -> int:
        return (pc >> 2) & self._hist_mask

    def predict(self, tid: int, pc: int) -> bool:
        history = int(self._histories[self._history_index(pc)])
        return self.table.predict(history)

    def update(self, tid: int, pc: int, taken: bool) -> None:
        idx = self._history_index(pc)
        history = int(self._histories[idx])
        self.table.update(history, taken)
        self._histories[idx] = ((history << 1) | int(taken)) & self._pattern_mask

    def reset(self) -> None:
        super().reset()
        self._histories.fill(0)
        self.table.reset()
