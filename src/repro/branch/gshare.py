"""Gshare direction predictor with per-context global history."""

from __future__ import annotations

from repro.branch.base import BranchPredictor, TwoBitCounterTable


class GsharePredictor(BranchPredictor):
    """Gshare: PC xor global-history indexed 2-bit counters.

    The pattern table is shared by all contexts; the global-history
    register is per context (``max_threads`` of them), since interleaving
    independent threads' outcomes into one history register would make the
    history meaningless.
    """

    def __init__(self, entries: int = 2048, history_bits: int = 10, max_threads: int = 16) -> None:
        super().__init__()
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.table = TwoBitCounterTable(entries)
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self._history = [0] * max_threads

    def _index(self, tid: int, pc: int) -> int:
        return ((pc >> 2) ^ self._history[tid]) & self.table.mask

    def predict(self, tid: int, pc: int) -> bool:
        return self.table.predict(self._index(tid, pc))

    def update(self, tid: int, pc: int, taken: bool) -> None:
        self.table.update(self._index(tid, pc), taken)
        self._history[tid] = ((self._history[tid] << 1) | int(taken)) & self._history_mask

    def history(self, tid: int) -> int:
        """Current global-history register of context ``tid``."""
        return self._history[tid]

    def reset(self) -> None:
        super().reset()
        self.table.reset()
        self._history = [0] * len(self._history)
