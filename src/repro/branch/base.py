"""Common predictor machinery: the saturating-counter table and interface."""

from __future__ import annotations

import abc


class TwoBitCounterTable:
    """A table of 2-bit saturating counters stored in a plain list.

    Counter states: 0 strongly-not-taken, 1 weakly-not-taken,
    2 weakly-taken, 3 strongly-taken. Initialized weakly-taken (2),
    the SimpleScalar convention. List storage keeps the per-prediction
    read/update free of NumPy scalar dispatch (this table is consulted
    for every conditional branch fetched).
    """

    __slots__ = ("entries", "mask", "_table")

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("counter table size must be a positive power of two")
        self.entries = entries
        self.mask = entries - 1
        self._table = [2] * entries

    def predict(self, index: int) -> bool:
        """Taken prediction for table slot ``index``."""
        return self._table[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        """Train slot ``index`` toward the actual outcome."""
        i = index & self.mask
        table = self._table
        if taken:
            if table[i] < 3:
                table[i] += 1
        elif table[i] > 0:
            table[i] -= 1

    def counter(self, index: int) -> int:
        """Raw counter value at ``index`` (testing/inspection)."""
        return self._table[index & self.mask]

    def reset(self) -> None:
        """Re-initialize every counter to weakly-taken."""
        self._table = [2] * self.entries


class BranchPredictor(abc.ABC):
    """Direction predictor interface.

    Predictors are thread-aware: on SMT, speculative global history must be
    kept per hardware context or cross-thread aliasing destroys accuracy
    (contexts share the *tables*, like real SMT hardware, but not the
    history registers).
    """

    def __init__(self) -> None:
        self.lookups = 0
        self.correct = 0

    @abc.abstractmethod
    def predict(self, tid: int, pc: int) -> bool:
        """Predict direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, tid: int, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""

    def predict_and_update(self, tid: int, pc: int, taken: bool) -> bool:
        """Convenience for trace-driven use: returns True iff correct."""
        self.lookups += 1
        prediction = self.predict(tid, pc)
        self.update(tid, pc, taken)
        ok = prediction == taken
        if ok:
            self.correct += 1
        return ok

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 1.0

    def reset(self) -> None:
        """Clear accuracy statistics (and, in subclasses, tables)."""
        self.lookups = 0
        self.correct = 0
