"""Common predictor machinery: the saturating-counter table and interface."""

from __future__ import annotations

import abc

import numpy as np


class TwoBitCounterTable:
    """A table of 2-bit saturating counters stored in a NumPy array.

    Counter states: 0 strongly-not-taken, 1 weakly-not-taken,
    2 weakly-taken, 3 strongly-taken. Initialized weakly-taken (2),
    the SimpleScalar convention.
    """

    def __init__(self, entries: int) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("counter table size must be a positive power of two")
        self.entries = entries
        self.mask = entries - 1
        self._table = np.full(entries, 2, dtype=np.int8)

    def predict(self, index: int) -> bool:
        """Taken prediction for table slot ``index``."""
        return bool(self._table[index & self.mask] >= 2)

    def update(self, index: int, taken: bool) -> None:
        """Train slot ``index`` toward the actual outcome."""
        i = index & self.mask
        if taken:
            if self._table[i] < 3:
                self._table[i] += 1
        elif self._table[i] > 0:
            self._table[i] -= 1

    def counter(self, index: int) -> int:
        """Raw counter value at ``index`` (testing/inspection)."""
        return int(self._table[index & self.mask])

    def reset(self) -> None:
        """Re-initialize every counter to weakly-taken."""
        self._table.fill(2)


class BranchPredictor(abc.ABC):
    """Direction predictor interface.

    Predictors are thread-aware: on SMT, speculative global history must be
    kept per hardware context or cross-thread aliasing destroys accuracy
    (contexts share the *tables*, like real SMT hardware, but not the
    history registers).
    """

    def __init__(self) -> None:
        self.lookups = 0
        self.correct = 0

    @abc.abstractmethod
    def predict(self, tid: int, pc: int) -> bool:
        """Predict direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, tid: int, pc: int, taken: bool) -> None:
        """Train with the resolved outcome."""

    def predict_and_update(self, tid: int, pc: int, taken: bool) -> bool:
        """Convenience for trace-driven use: returns True iff correct."""
        self.lookups += 1
        prediction = self.predict(tid, pc)
        self.update(tid, pc, taken)
        ok = prediction == taken
        if ok:
            self.correct += 1
        return ok

    @property
    def accuracy(self) -> float:
        return self.correct / self.lookups if self.lookups else 1.0

    def reset(self) -> None:
        """Clear accuracy statistics (and, in subclasses, tables)."""
        self.lookups = 0
        self.correct = 0
