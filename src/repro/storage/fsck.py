"""Artifact-tree audit and repair (the ``repro fsck`` engine).

Scans a results/cache/journal tree, classifies every artifact file, repairs
what can be repaired *safely* (a repair never loses data that validated),
and quarantines the rest to ``*.corrupt`` so sweeps regenerate instead of
re-reading bad bytes. Classification taxonomy:

* ``healthy`` — validates against its checksums as-is;
* ``migratable`` — intact but written in a legacy format (bare
  ``REPRO-SNAP`` checkpoint, bare ``.npz`` archive, journal lines without
  per-line CRCs, plain-JSON report); repair rewrites it in the current
  enveloped/checksummed form, preserving the payload bit-for-bit;
* ``torn-tail`` — a journal whose final line is truncated (mid-write
  kill); repair truncates the tail, keeping every complete record;
* ``corrupt`` — fails validation in a way no repair can trust (bad magic
  where an artifact must be, checksum mismatch, undecodable interior);
  repair quarantines the file (and, for journals, salvages the records
  that still validate into a rewritten journal);
* ``stale-temp`` — an orphaned atomic-write temp file (a crash between
  write and rename); repair removes it;
* ``alien`` — an artifact-suffixed file whose content matches no known
  format and parses as nothing; treated as corrupt.

Result-store entries (``sim-result`` documents) additionally have their
content address verified: the digest re-derived from the embedded
canonical request must match the stored identity *and* the filename — a
checksum-valid but mislabeled entry is corrupt, because serving it would
answer the wrong simulation. Coalescing leases (``*.lease``) held by dead
PIDs classify as ``stale-temp`` and are removed; live ones are left alone.

Files that are not artifacts (locks, previous ``*.corrupt`` quarantines,
unrelated extensions) are left untouched. The report is machine-readable
(:meth:`FsckReport.to_dict`) and :attr:`FsckReport.exit_code` is non-zero
iff this run quarantined something — "fsck found real damage" is scriptable.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.storage.artifact import (
    canonical_json_crc,
    is_enveloped,
    unpack_artifact,
    write_artifact,
)
from repro.storage.atomic import atomic_write_bytes, quarantine
from repro.storage.errors import ArtifactError

#: File suffixes fsck treats as artifacts it must be able to classify.
ARTIFACT_SUFFIXES = (".snap", ".npz", ".jsonl", ".json")

#: Classification statuses, in severity order (worst first).
STATUSES = (
    "corrupt",
    "divergent",
    "alien",
    "torn-tail",
    "stale-temp",
    "migratable",
    "healthy",
)


@dataclass
class FsckEntry:
    """One scanned file's classification and the action taken on it.

    ``action`` is one of ``none`` (healthy, or dry-run), ``migrated``,
    ``truncated``, ``salvaged`` (journal rewritten from surviving
    records), ``quarantined``, ``removed`` (stale temp), or ``failed``
    (a repair itself hit an I/O error).
    """

    path: str
    status: str
    action: str = "none"
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-serializable form."""
        return {
            "path": self.path,
            "status": self.status,
            "action": self.action,
            "detail": self.detail,
        }


@dataclass
class FsckReport:
    """Outcome of one tree scan."""

    root: str
    repair: bool
    entries: List[FsckEntry] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        """Entries per status."""
        out: Dict[str, int] = {}
        for e in self.entries:
            out[e.status] = out.get(e.status, 0) + 1
        return out

    @property
    def quarantined(self) -> List[FsckEntry]:
        """Entries this run moved aside to ``*.corrupt``."""
        return [e for e in self.entries if e.action == "quarantined"]

    @property
    def exit_code(self) -> int:
        """Non-zero iff this run quarantined at least one file — the
        scriptable "real damage was found" signal. Repairable damage
        (torn tails, migrations, stale temps) exits zero."""
        return 1 if self.quarantined else 0

    def to_dict(self) -> dict:
        """Machine-readable report."""
        return {
            "root": self.root,
            "repair": self.repair,
            "counts": self.counts,
            "exit_code": self.exit_code,
            "entries": [e.to_dict() for e in self.entries],
        }

    def format_text(self) -> str:
        """Terminal rendering: one line per non-healthy file plus totals."""
        lines = [f"repro fsck {self.root} ({'repair' if self.repair else 'dry-run'})"]
        for e in self.entries:
            if e.status == "healthy":
                continue
            detail = f" — {e.detail}" if e.detail else ""
            lines.append(f"  [{e.status}] {e.path} -> {e.action}{detail}")
        counts = self.counts
        total = sum(counts.values())
        summary = ", ".join(f"{counts[s]} {s}" for s in STATUSES if s in counts)
        lines.append(f"{total} artifact(s): {summary or 'none found'}")
        return "\n".join(lines)


def _probe_jsonl(path: Path, blob: bytes, repair: bool) -> FsckEntry:
    """Classify (and optionally repair) a JSONL run journal."""
    from repro.harness.journal import _entry_crc, scan_journal_lines

    # Replacement-decode: a bitrotted byte poisons only its own line's
    # JSON/CRC, so the rest of the journal still salvages.
    scan = scan_journal_lines(blob.decode("utf-8", errors="replace").splitlines())
    rewritten = "".join(
        json.dumps({"key": k, "payload": p, "crc": _entry_crc(k, p)}) + "\n"
        for k, p in scan["entries"].items()
    )
    if scan["bad_lines"]:
        detail = (
            f"{len(scan['bad_lines'])} corrupt line(s) {scan['bad_lines']}, "
            f"{len(scan['entries'])} record(s) salvageable"
        )
        if not repair:
            return FsckEntry(str(path), "corrupt", "none", detail)
        dest = quarantine(path)
        if dest is None:
            return FsckEntry(str(path), "corrupt", "failed", detail)
        atomic_write_bytes(path, rewritten.encode("utf-8"))
        return FsckEntry(
            str(path), "corrupt", "quarantined",
            f"{detail}; original at {dest.name}, salvaged journal rewritten",
        )
    if scan["torn_tail"]:
        detail = f"torn final line, {len(scan['entries'])} complete record(s)"
        if not repair:
            return FsckEntry(str(path), "torn-tail", "none", detail)
        atomic_write_bytes(path, rewritten.encode("utf-8"))
        return FsckEntry(str(path), "torn-tail", "truncated", detail)
    if scan["missing_crc"]:
        detail = f"{scan['missing_crc']} record(s) without per-line CRC"
        if not repair:
            return FsckEntry(str(path), "migratable", "none", detail)
        atomic_write_bytes(path, rewritten.encode("utf-8"))
        return FsckEntry(str(path), "migratable", "migrated", detail)
    return FsckEntry(str(path), "healthy")


def _probe_legacy_snapshot(path: Path, blob: bytes, repair: bool) -> FsckEntry:
    """Classify a bare (pre-envelope) ``REPRO-SNAP`` checkpoint."""
    from repro.smt.checkpoint import (
        CHECKPOINT_FORMAT,
        CHECKPOINT_VERSION,
        CheckpointError,
        parse_snapshot_payload,
    )

    try:
        payload = parse_snapshot_payload(path, blob)
    except CheckpointError as exc:
        return _quarantine_entry(path, "corrupt", str(exc), repair)
    if not repair:
        return FsckEntry(str(path), "migratable", "none", "legacy v1 snapshot frame")
    write_artifact(path, CHECKPOINT_FORMAT, CHECKPOINT_VERSION, payload)
    return FsckEntry(
        str(path), "migratable", "migrated", "rewrapped in the v2 envelope"
    )


def _probe_legacy_npz(path: Path, blob: bytes, repair: bool) -> FsckEntry:
    """Classify a bare (pre-envelope) ``.npz`` trace archive."""
    import numpy as np

    from repro.workloads.tracecache import _COLUMNS, TRACE_FORMAT, TRACE_FORMAT_VERSION

    try:
        with np.load(io.BytesIO(blob)) as data:
            missing = [c for c in _COLUMNS if c not in data.files]
        if missing:
            return _quarantine_entry(
                path, "corrupt", f"npz missing columns {missing}", repair
            )
    except Exception as exc:
        return _quarantine_entry(path, "corrupt", f"unreadable npz: {exc}", repair)
    if not repair:
        return FsckEntry(str(path), "migratable", "none", "legacy bare npz archive")
    write_artifact(path, TRACE_FORMAT, TRACE_FORMAT_VERSION, blob)
    return FsckEntry(
        str(path), "migratable", "migrated", "rewrapped in the artifact envelope"
    )


def _probe_json(path: Path, blob: bytes, repair: bool) -> FsckEntry:
    """Classify a JSON document artifact (embedded-metadata scheme)."""
    try:
        doc = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        return _quarantine_entry(path, "corrupt", f"undecodable JSON: {exc}", repair)
    if not isinstance(doc, dict) or "artifact" not in doc:
        # Plain legacy JSON (e.g. a committed baseline): intact and loadable,
        # deliberately NOT rewritten — fsck must not dirty checked-in files.
        return FsckEntry(str(path), "migratable", "none", "plain JSON (no envelope)")
    meta = doc["artifact"]
    payload = {k: v for k, v in doc.items() if k != "artifact"}
    if canonical_json_crc(payload) != meta.get("crc32"):
        return _quarantine_entry(path, "corrupt", "embedded checksum mismatch", repair)
    if meta.get("format") == "sim-result":
        return _probe_sim_result(path, payload, repair)
    if meta.get("format") == "behaviour-profile":
        return _probe_behavior_profile(path, payload, repair)
    return FsckEntry(str(path), "healthy")


def _probe_sim_result(path: Path, payload: dict, repair: bool) -> FsckEntry:
    """Verify a result-store entry's content address end-to-end.

    The CRC already proved the bytes are what the writer wrote; this
    proves the writer filed them honestly: the digest re-derived from the
    embedded canonical request must match both the stored ``identity``
    and the filename stem. A mismatch is a mislabeled (or tampered) entry
    — served, it would answer the *wrong* simulation with a perfectly
    valid checksum — so it is quarantined as corrupt.
    """
    from repro.service.identity import fields_digest

    stored = payload.get("identity")
    request = payload.get("request")
    if not isinstance(stored, str) or not isinstance(request, dict):
        return _quarantine_entry(
            path, "corrupt", "sim-result missing identity/request fields", repair
        )
    derived = fields_digest(request)
    if derived != stored:
        return _quarantine_entry(
            path,
            "corrupt",
            f"content-address mismatch: stored identity {stored[:12]}… but "
            f"request digests to {derived[:12]}…",
            repair,
        )
    if path.stem != stored:
        return _quarantine_entry(
            path,
            "corrupt",
            f"filed under {path.stem[:12]}… but contains result {stored[:12]}…",
            repair,
        )
    if not isinstance(payload.get("payload"), dict):
        return _quarantine_entry(
            path, "corrupt", "sim-result payload is not an object", repair
        )
    integrity = payload.get("integrity", "unverified")
    if integrity not in ("unverified", "verified"):
        # A live entry carrying any other integrity marking (including a
        # hand-edited "divergent") must never be served: quarantine it, so
        # "fsck exits 0" implies "no divergent-marked entry can be served".
        return _quarantine_entry(
            path,
            "corrupt",
            f"sim-result integrity status {integrity!r} is not servable",
            repair,
        )
    return FsckEntry(str(path), "healthy")


def _probe_behavior_profile(path: Path, payload: dict, repair: bool) -> FsckEntry:
    """Verify a behaviour profile's structure beyond its checksum.

    A profile drives baseline comparisons and CI gates, so a structurally
    damaged one (no metrics, non-numeric values, missing label) would
    poison every drift verdict computed from it — quarantine rather than
    serve. Booleans are rejected explicitly: they pass ``isinstance(...,
    int)`` but are never legitimate metric values.
    """
    label = payload.get("label")
    source = payload.get("source")
    metrics = payload.get("metrics")
    identity = payload.get("identity")
    if not isinstance(label, str) or not label:
        return _quarantine_entry(
            path, "corrupt", "behaviour-profile missing label", repair
        )
    if not isinstance(source, str) or not source:
        return _quarantine_entry(
            path, "corrupt", "behaviour-profile missing source", repair
        )
    if not isinstance(metrics, dict) or not metrics:
        return _quarantine_entry(
            path, "corrupt", "behaviour-profile carries no metrics", repair
        )
    for name, value in metrics.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return _quarantine_entry(
                path,
                "corrupt",
                f"behaviour-profile metric {name!r} is not numeric",
                repair,
            )
    if not isinstance(identity, dict):
        return _quarantine_entry(
            path, "corrupt", "behaviour-profile missing identity block", repair
        )
    return FsckEntry(str(path), "healthy")


def _probe_lease(path: Path, repair: bool) -> Optional[FsckEntry]:
    """Classify a result-store coalescing lease.

    A lease stamped with a live PID is working state, not an artifact
    problem — left untouched, like a ``.lock``. One stamped with a dead
    PID is leftover from a crashed leader: classified ``stale-temp`` and
    removed on repair (the store's own startup sweep does the same; fsck
    covers stores no service has reopened yet). An unparseable stamp is
    left alone — a racing acquirer writes its PID an instant after
    creating the file, and fsck must never break a live acquisition.
    """
    from repro.storage.atomic import pid_alive

    try:
        holder = int(path.read_text(encoding="ascii").strip())
    except (OSError, ValueError):
        return None
    if pid_alive(holder):
        return None
    if not repair:
        return FsckEntry(
            str(path), "stale-temp", "none", f"lease holder {holder} is dead"
        )
    try:
        path.unlink()
        action = "removed"
    except OSError:
        action = "failed"
    return FsckEntry(
        str(path), "stale-temp", action, f"lease holder {holder} is dead"
    )


def _quarantine_entry(path: Path, status: str, detail: str, repair: bool) -> FsckEntry:
    """Build the entry for a file that must be moved aside."""
    if not repair:
        return FsckEntry(str(path), status, "none", detail)
    dest = quarantine(path)
    if dest is None:
        return FsckEntry(str(path), status, "failed", detail)
    return FsckEntry(str(path), status, "quarantined", f"{detail}; moved to {dest.name}")


def fsck_file(path: Union[str, Path], repair: bool = True) -> Optional[FsckEntry]:
    """Classify (and optionally repair) one file; None when not an artifact.

    Content is probed before the suffix is trusted, so a renamed or
    mislabeled artifact still classifies by what it actually contains.
    """
    path = Path(path)
    name = path.name
    if name.endswith(".lock") or ".corrupt" in name:
        return None  # locks and existing quarantine evidence: not ours to touch
    if name.endswith(".divergent"):
        # Shadow-verification divergence evidence: already quarantined by
        # the verifier (the live entry was evicted), kept for diagnosis.
        # Reported so operators see it, but it is contained damage — no
        # action, and it does not fail the fsck run.
        return FsckEntry(
            str(path),
            "divergent",
            "none",
            "quarantined divergent result (verification evidence)",
        )
    if name.endswith(".lease"):
        return _probe_lease(path, repair)
    if ".tmp." in name:
        if repair:
            try:
                path.unlink()
                action = "removed"
            except OSError:
                action = "failed"
        else:
            action = "none"
        return FsckEntry(str(path), "stale-temp", action, "orphaned atomic-write temp")
    try:
        blob = path.read_bytes()
    except OSError as exc:
        return FsckEntry(str(path), "corrupt", "failed", f"unreadable: {exc}")
    if is_enveloped(blob):
        try:
            unpack_artifact(blob)
            return FsckEntry(str(path), "healthy")
        except ArtifactError as exc:
            return _quarantine_entry(path, "corrupt", str(exc), repair)
    if blob[:10] == b"REPRO-SNAP":
        return _probe_legacy_snapshot(path, blob, repair)
    if blob[:4] == b"PK\x03\x04" and path.suffix == ".npz":
        return _probe_legacy_npz(path, blob, repair)
    if path.suffix == ".jsonl":
        return _probe_jsonl(path, blob, repair)
    if path.suffix == ".json":
        return _probe_json(path, blob, repair)
    if path.suffix in ARTIFACT_SUFFIXES:
        return _quarantine_entry(
            path, "alien", "artifact suffix but unrecognized content", repair
        )
    return None  # not an artifact: out of scope


def fsck_tree(root: Union[str, Path], repair: bool = True) -> FsckReport:
    """Scan a tree, classify every artifact, repair/quarantine per policy.

    With ``repair=False`` (dry run) nothing on disk changes; the report
    shows what a repair run *would* do. Scan order is sorted for
    deterministic reports.
    """
    root = Path(root)
    report = FsckReport(root=str(root), repair=repair)
    paths = sorted(p for p in root.rglob("*") if p.is_file()) if root.is_dir() else [root]
    for path in paths:
        entry = fsck_file(path, repair=repair)
        if entry is not None:
            report.entries.append(entry)
    return report
