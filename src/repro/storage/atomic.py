"""Atomic durable-write primitives with fsync discipline and bounded retry.

Every persistent artifact in the repo (run journals, simulator snapshots,
trace-cache archives, bench reports) lands on disk through the helpers
here, so durability policy lives in exactly one place:

* **whole files** go through :func:`atomic_write_bytes` — write to a
  uniquely-named temp file in the target directory, fsync, ``os.replace``,
  fsync the directory: readers never observe a partial file under any kill
  timing, and a crash after the replace cannot resurrect the old contents;
* **append-only records** go through :func:`append_line` — the full record
  is pre-serialized and issued as a *single* ``os.write``; if the write
  tears (ENOSPC mid-record, injected fault) the file is truncated back to
  its pre-write length before the retry, so a torn tail can never
  masquerade as corruption on resume;
* **reads** go through :func:`read_bytes` so injected/real EIO is retried.

Transient ``OSError``\\ s (see :data:`repro.storage.errors.TRANSIENT_ERRNOS`)
are retried with exponential backoff plus jitter; a failure that outlives
the budget is raised classified (:func:`~repro.storage.errors.classify_oserror`)
— :class:`~repro.storage.errors.DiskFullError` for ENOSPC,
:class:`~repro.storage.errors.StoragePermissionError` for EACCES/EPERM,
:class:`~repro.storage.errors.TransientStorageError` otherwise.

All raw I/O routes through the installed :class:`~repro.storage.faultfs.
FaultFS` (if any), which is how the disk-fault family of
:class:`~repro.faults.FaultPlan` reaches every storage call uniformly.
"""

from __future__ import annotations

import itertools
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.storage.errors import classify_oserror, is_transient
from repro.storage.faultfs import active_faultfs

#: Monotonic counter making concurrent temp names unique within a process.
_TMP_COUNTER = itertools.count()

#: Jitter source for retry backoff. Deliberately *not* seeded: backoff
#: timing never affects results (all artifact contents are deterministic),
#: and distinct jitter across workers is exactly what de-correlates their
#: retries against a shared overloaded device.
_JITTER = random.Random()


@dataclass(frozen=True)
class RetrySpec:
    """Bounded retry-with-jitter policy for one storage operation.

    Attributes:
        attempts: total tries (first attempt included).
        base_delay_s: delay before the second try.
        factor: exponential growth of the delay per retry.
        max_delay_s: delay ceiling.
        jitter: uniform fractional jitter added on top (0.5 = up to +50%).
    """

    attempts: int = 5
    base_delay_s: float = 0.005
    factor: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        base = min(self.max_delay_s, self.base_delay_s * self.factor ** (attempt - 1))
        return base * (1.0 + self.jitter * _JITTER.random())


DEFAULT_RETRY = RetrySpec()


def _write_all(fd: int, data: bytes) -> None:
    """Write every byte of ``data`` (short writes count as torn writes)."""
    ffs = active_faultfs()
    written = ffs.write(fd, data) if ffs is not None else os.write(fd, data)
    if written != len(data):
        raise OSError(5, f"short write: {written} of {len(data)} bytes")


def _replace(src: Union[str, Path], dst: Union[str, Path]) -> None:
    ffs = active_faultfs()
    if ffs is not None:
        ffs.replace(src, dst)
    else:
        os.replace(src, dst)


def fsync_dir(path: Union[str, Path]) -> None:
    """Persist a directory's entry table (best-effort; not supported on all
    filesystems). Called after ``os.replace`` so the rename itself survives
    a crash on journaling filesystems."""
    try:
        dirfd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
    except OSError:
        pass


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    fsync: bool = True,
    retry: RetrySpec = DEFAULT_RETRY,
) -> None:
    """Atomically replace ``path`` with ``data`` (temp + fsync + rename).

    Readers never observe a partial file; concurrent writers race safely
    (last rename wins, both files were complete). Transient failures are
    retried per ``retry``; the temp file is always cleaned up. Raises a
    classified :class:`~repro.storage.errors.StorageError` on exhaustion.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    for attempt in range(1, retry.attempts + 1):
        tmp = path.parent / f".{path.name}.tmp.{os.getpid()}.{next(_TMP_COUNTER)}"
        try:
            fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            try:
                _write_all(fd, data)
                if fsync:
                    os.fsync(fd)
            finally:
                os.close(fd)
            _replace(tmp, path)
            if fsync:
                fsync_dir(path.parent)
            return
        except OSError as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if attempt >= retry.attempts or not is_transient(exc):
                raise classify_oserror(exc) from exc
            time.sleep(retry.delay(attempt))


def append_line(
    path: Union[str, Path],
    line: Union[str, bytes],
    fsync: bool = True,
    retry: RetrySpec = DEFAULT_RETRY,
) -> None:
    """Durably append one pre-serialized record as a single write.

    The newline is added here; ``line`` must not contain one. The whole
    record goes down in one ``os.write`` so a mid-record failure cannot
    interleave with another record, and on any failure (ENOSPC after N
    bytes, torn write) the file is truncated back to its pre-append length
    before retrying — the torn tail is healed immediately instead of being
    discovered as "corruption" on the next resume.

    The truncate-on-failure repair assumes a single writer, which the
    journal's flock already enforces.
    """
    data = line.encode("utf-8") if isinstance(line, str) else line
    data += b"\n"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        start = os.fstat(fd).st_size
        for attempt in range(1, retry.attempts + 1):
            try:
                _write_all(fd, data)
                if fsync:
                    os.fsync(fd)
                return
            except OSError as exc:
                try:
                    os.ftruncate(fd, start)
                except OSError:
                    pass  # the torn tail stays; load()/fsck truncate it later
                if attempt >= retry.attempts or not is_transient(exc):
                    raise classify_oserror(exc) from exc
                time.sleep(retry.delay(attempt))
    finally:
        os.close(fd)


def read_bytes(
    path: Union[str, Path], retry: RetrySpec = DEFAULT_RETRY
) -> bytes:
    """Read a whole file, retrying transient EIO.

    A missing file raises ``FileNotFoundError`` unclassified (absence is a
    caller-level condition, not a storage fault); other exhausted failures
    raise classified :class:`~repro.storage.errors.StorageError`."""
    ffs = active_faultfs()
    for attempt in range(1, retry.attempts + 1):
        try:
            if ffs is not None:
                return ffs.read_bytes(path)
            return Path(path).read_bytes()
        except FileNotFoundError:
            raise
        except OSError as exc:
            if attempt >= retry.attempts or not is_transient(exc):
                raise classify_oserror(exc) from exc
            time.sleep(retry.delay(attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal-0 probe).

    The storage layer's lease/lock staleness checks all route through
    here: a lease or lock stamped with a dead PID is safe to break, one
    stamped with a PID we cannot signal (EPERM) is definitely alive.
    """
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but isn't ours (EPERM): definitely alive
    return True


def quarantine(path: Union[str, Path]) -> Optional[Path]:
    """Move a damaged artifact aside to ``<name>.corrupt`` (best-effort).

    Retry loops then regenerate instead of re-reading the same bad bytes
    forever, and ``repro fsck`` finds the evidence. Numbered suffixes keep
    repeated quarantines from overwriting each other. Returns the new path,
    or None when the rename itself failed (nothing worse than the status
    quo). Quarantine renames bypass the fault injector: the repair path
    must not be able to fail recursively.
    """
    path = Path(path)
    dest = path.with_name(path.name + ".corrupt")
    n = 0
    while dest.exists():
        n += 1
        dest = path.with_name(f"{path.name}.corrupt.{n}")
    try:
        os.replace(path, dest)
    except OSError:
        return None
    return dest
