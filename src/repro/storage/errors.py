"""Storage failure taxonomy.

Every way a durable-artifact operation can fail maps onto one class here,
so callers react per-category — retry a :class:`TransientStorageError`,
free space on a :class:`DiskFullError`, quarantine on an
:class:`ArtifactCorruptError` — instead of pattern-matching ``OSError``
messages. :mod:`repro.harness.errors` re-exports the whole hierarchy so
harness code sees one unified taxonomy.

This module is deliberately dependency-free (it sits below both
``repro.storage`` and ``repro.harness`` in the import graph).
"""

from __future__ import annotations

import errno


class StorageError(Exception):
    """Base class for all durable-storage failures."""


class DiskFullError(StorageError):
    """The device is out of space or quota (``ENOSPC``/``EDQUOT``)."""


class StoragePermissionError(StorageError):
    """The artifact path is not writable/readable (``EACCES``/``EPERM``).

    Permission *flaps* (NFS re-exports, container remounts) are transient;
    the atomic layer retries before raising this.
    """


class TransientStorageError(StorageError):
    """An I/O failure that did not resolve within the bounded retries
    (``EIO``, ``EAGAIN``, ``EBUSY``, short writes, injected torn writes)."""


class ArtifactError(StorageError):
    """Base class for envelope-level artifact failures."""


class ArtifactCorruptError(ArtifactError):
    """The artifact's bytes do not validate (bad magic, torn frame,
    checksum mismatch, undecodable payload). The file cannot be trusted."""


class ArtifactVersionError(ArtifactError):
    """The artifact is intact but written by an incompatible schema version
    (newer than this code understands, with no registered migration)."""


#: ``errno`` values treated as transient and retried by the atomic layer.
#: ENOSPC is included deliberately: at fleet scale a full disk is routinely
#: a *momentary* condition (log rotation, a sibling's temp file) and the
#: retry-with-jitter absorbs it; a persistently full disk still surfaces as
#: :class:`DiskFullError` once the budget is spent.
TRANSIENT_ERRNOS = frozenset(
    e
    for e in (
        errno.EAGAIN,
        errno.EINTR,
        errno.EIO,
        errno.ENOSPC,
        errno.EBUSY,
        errno.EACCES,
        errno.EPERM,
        getattr(errno, "EDQUOT", None),
    )
    if e is not None
)


def classify_oserror(exc: OSError) -> StorageError:
    """Map a raw ``OSError`` onto the storage taxonomy (not raised here).

    The returned instance carries the original message; callers ``raise
    classify_oserror(exc) from exc`` so the errno chain stays visible.
    """
    no = exc.errno
    detail = f"[{errno.errorcode.get(no, no)}] {exc}"
    if no in (errno.ENOSPC, getattr(errno, "EDQUOT", -1)):
        return DiskFullError(detail)
    if no in (errno.EACCES, errno.EPERM):
        return StoragePermissionError(detail)
    return TransientStorageError(detail)


def is_transient(exc: BaseException) -> bool:
    """Whether ``exc`` is an ``OSError`` the atomic layer should retry."""
    return isinstance(exc, OSError) and exc.errno in TRANSIENT_ERRNOS
