"""Versioned artifact envelope: magic, schema version, checksum, provenance.

Binary artifacts (checkpoints, trace-cache archives) are framed as::

    REPROART1\\n | u32 header-length | header JSON (utf-8) | payload bytes

The header carries ``format`` (artifact family, e.g. ``"smt-checkpoint"``),
``version`` (schema version of the *payload*, owned by the family),
``length`` and ``crc32`` of the payload, and ``writer`` provenance
(pid/host/tool). Validation is strictly layered: magic, then header
decode, then length, then CRC — so ``repro fsck`` can tell a torn tail
(frame shorter than the header promises) from bitrot (full length, wrong
checksum) from an alien file (no magic).

JSON documents (bench reports and other human-readable artifacts) can't
carry a binary frame without losing greppability, so they embed the same
metadata *inside* the document under an ``"artifact"`` key, with the CRC
computed over the canonical JSON of the rest of the document
(:func:`canonical_json_crc`). Legacy plain-JSON documents load fine and
classify as *migratable*.

Old formats load forward through per-family migration hooks registered
with :func:`register_migration`; the storage layer itself stays
format-agnostic.
"""

from __future__ import annotations

import json
import os
import socket
import struct
import zlib
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.storage.atomic import RetrySpec, atomic_write_bytes, read_bytes
from repro.storage.errors import ArtifactCorruptError, ArtifactVersionError

#: Frame magic. Fixed 10 bytes; the trailing newline makes ``head -c`` and
#: ``file``-style probes print something sane on a binary artifact.
MAGIC = b"REPROART1\n"

_HEAD = struct.Struct("<10sI")

#: Per-(format, payload-version) migration hooks: ``bytes -> bytes`` maps an
#: old payload to the current schema at load time.
_MIGRATIONS: Dict[Tuple[str, int], Callable[[bytes], bytes]] = {}


def register_migration(
    fmt: str, version: int, fn: Callable[[bytes], bytes]
) -> None:
    """Register a load-forward hook for ``fmt`` payloads at ``version``.

    The hook receives the old payload bytes and returns bytes in the
    current schema; :func:`read_artifact` applies it transparently when
    ``expect_version`` is newer than the stored version.
    """
    _MIGRATIONS[(fmt, version)] = fn


def writer_provenance(tool: str = "repro") -> dict:
    """Who wrote this artifact (pid/host/tool), for post-mortems."""
    return {"pid": os.getpid(), "host": socket.gethostname(), "tool": tool}


def pack_artifact(
    fmt: str, version: int, payload: bytes, tool: str = "repro"
) -> bytes:
    """Frame ``payload`` in the envelope; returns the full file bytes."""
    header = {
        "format": fmt,
        "version": version,
        "length": len(payload),
        "crc32": zlib.crc32(payload),
        "writer": writer_provenance(tool),
    }
    hjson = json.dumps(header, sort_keys=True).encode("utf-8")
    return _HEAD.pack(MAGIC, len(hjson)) + hjson + payload


def write_artifact(
    path: Union[str, Path],
    fmt: str,
    version: int,
    payload: bytes,
    tool: str = "repro",
    fsync: bool = True,
    retry: Optional[RetrySpec] = None,
) -> None:
    """Atomically write ``payload`` to ``path`` inside the envelope."""
    blob = pack_artifact(fmt, version, payload, tool=tool)
    kwargs = {} if retry is None else {"retry": retry}
    atomic_write_bytes(path, blob, fsync=fsync, **kwargs)


def is_enveloped(blob: bytes) -> bool:
    """Whether ``blob`` starts with the envelope magic."""
    return blob[: len(MAGIC)] == MAGIC


def unpack_artifact(
    blob: bytes,
    expect_format: Optional[str] = None,
    expect_version: Optional[int] = None,
) -> Tuple[dict, bytes]:
    """Validate an in-memory envelope; returns ``(header, payload)``.

    Raises :class:`~repro.storage.errors.ArtifactCorruptError` on bad
    magic / torn frame / checksum mismatch, and
    :class:`~repro.storage.errors.ArtifactVersionError` on a format or
    version this code cannot load (no migration registered).
    """
    if len(blob) < _HEAD.size:
        raise ArtifactCorruptError(f"torn artifact: {len(blob)} bytes, no frame header")
    magic, hlen = _HEAD.unpack_from(blob)
    if magic != MAGIC:
        raise ArtifactCorruptError(f"bad magic {magic!r}: not a repro artifact")
    body = blob[_HEAD.size :]
    if len(body) < hlen:
        raise ArtifactCorruptError(
            f"torn artifact: header claims {hlen} bytes, {len(body)} present"
        )
    try:
        header = json.loads(body[:hlen].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptError(f"undecodable artifact header: {exc}") from exc
    # A bit-flip inside the header JSON can keep it parseable while renaming
    # or retyping a required key; treat any malformed header as corruption.
    if (
        not isinstance(header, dict)
        or not isinstance(header.get("length"), int)
        or not isinstance(header.get("crc32"), int)
        or header["length"] < 0
    ):
        raise ArtifactCorruptError("malformed artifact header (damaged fields)")
    payload = body[hlen:]
    length = header["length"]
    if len(payload) < length:
        raise ArtifactCorruptError(
            f"torn artifact payload: header claims {length} bytes, "
            f"{len(payload)} present"
        )
    payload = payload[:length]
    if zlib.crc32(payload) != header.get("crc32"):
        raise ArtifactCorruptError(
            f"artifact checksum mismatch ({header.get('format')!r} payload)"
        )
    if expect_format is not None and header.get("format") != expect_format:
        raise ArtifactVersionError(
            f"artifact format {header.get('format')!r}, expected {expect_format!r}"
        )
    if expect_version is not None and header.get("version") != expect_version:
        hook = _MIGRATIONS.get((header.get("format"), header.get("version")))
        if hook is None:
            raise ArtifactVersionError(
                f"artifact {header.get('format')!r} version "
                f"{header.get('version')}, expected {expect_version} "
                f"(no migration registered)"
            )
        payload = hook(payload)
        header = dict(header, version=expect_version, migrated_from=header["version"])
    return header, payload


def read_artifact(
    path: Union[str, Path],
    expect_format: Optional[str] = None,
    expect_version: Optional[int] = None,
) -> Tuple[dict, bytes]:
    """Read + validate the envelope at ``path``; returns ``(header, payload)``."""
    return unpack_artifact(
        read_bytes(path), expect_format=expect_format, expect_version=expect_version
    )


# -- JSON-document artifacts -------------------------------------------------
def canonical_json_crc(obj: object) -> int:
    """CRC32 over the canonical (sorted-keys) JSON encoding of ``obj``."""
    return zlib.crc32(json.dumps(obj, sort_keys=True, default=str).encode("utf-8"))


def embed_json_artifact(payload: dict, fmt: str, version: int) -> dict:
    """Return ``payload`` with an embedded ``"artifact"`` metadata block.

    The CRC covers everything *except* the metadata block itself, so the
    document stays a plain greppable JSON object. The payload is JSON-
    normalized first (round-tripped) so the stored CRC matches a load-side
    recompute over the parsed document bit-for-bit.
    """
    payload = json.loads(json.dumps(payload, default=str))
    doc = {k: v for k, v in payload.items() if k != "artifact"}
    doc["artifact"] = {
        "format": fmt,
        "version": version,
        "crc32": canonical_json_crc({k: v for k, v in doc.items() if k != "artifact"}),
        "writer": writer_provenance(),
    }
    return doc


def load_json_artifact(
    path: Union[str, Path], expect_format: Optional[str] = None
) -> Tuple[Optional[dict], dict]:
    """Load a JSON document artifact; returns ``(meta_or_None, payload)``.

    ``meta`` is None for a legacy plain-JSON document (valid, migratable).
    Raises :class:`~repro.storage.errors.ArtifactCorruptError` when the
    document does not parse or its embedded CRC does not match, and
    :class:`~repro.storage.errors.ArtifactVersionError` on a format
    mismatch.
    """
    blob = read_bytes(path)
    try:
        doc = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptError(f"{path}: undecodable JSON artifact: {exc}") from exc
    if not isinstance(doc, dict) or "artifact" not in doc:
        return None, doc if isinstance(doc, dict) else {"value": doc}
    meta = doc["artifact"]
    payload = {k: v for k, v in doc.items() if k != "artifact"}
    if canonical_json_crc(payload) != meta.get("crc32"):
        raise ArtifactCorruptError(f"{path}: JSON artifact checksum mismatch")
    if expect_format is not None and meta.get("format") != expect_format:
        raise ArtifactVersionError(
            f"{path}: JSON artifact format {meta.get('format')!r}, "
            f"expected {expect_format!r}"
        )
    return meta, payload
