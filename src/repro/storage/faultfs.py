"""Seeded filesystem fault injection around the storage layer.

At production scale disk faults are routine inputs, not exceptional ones:
writes tear mid-record on power loss, renames fail on ENOSPC metadata
updates, bits rot under the checksum, reads return EIO, and I/O stalls for
seconds behind a saturated device. :class:`FaultFS` injects all of these,
deterministically, at the three choke points every durable write/read in
this codebase already flows through (:mod:`repro.storage.atomic`):

* ``write`` — torn write at a seeded offset, ENOSPC after N bytes, silent
  bitrot (one flipped bit *under* the payload checksum), slow I/O;
* ``replace`` — the atomic-rename step fails, leaving only the temp file;
* ``read_bytes`` — read returns EIO, or is slowed.

All randomness comes from a :class:`~repro.util.randpool.RandPool` over the
plan's seed, so a (workload seed, disk-fault plan) pair reproduces the same
fault sequence byte-for-byte — faulty runs are as replayable as clean ones.
Torn/ENOSPC/rename faults are *transient* (each operation draws afresh, so
the atomic layer's bounded retry normally recovers); bitrot is persistent
by nature and is caught later by envelope checksums (``repro fsck``).

The injector is a new fault family of :class:`repro.faults.FaultPlan`
(``--faults disk``); :meth:`FaultPlan.disk_plan` converts a plan's
``disk_*`` rates into the :class:`DiskFaultPlan` consumed here.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

import numpy as np

from repro.util.randpool import RandPool
from repro.util.seeds import SeedSequencer


@dataclass(frozen=True)
class DiskFaultPlan:
    """Seeded, declarative description of the disk faults to inject.

    Rates are per storage *operation* (one write, one rename, one read),
    not per byte. Attributes:

        seed: root seed of the injector's private random stream.
        torn_write_rate: P(per write) only a seeded prefix of the data
            lands before the write fails with EIO — the power-loss tear.
        enospc_rate: P(per write) the device "fills up" after
            ``enospc_after_bytes`` bytes and the write fails with ENOSPC.
        enospc_after_bytes: bytes that land before an injected ENOSPC.
        rename_fail_rate: P(per rename) the atomic ``os.replace`` fails
            with EIO, leaving the temp file behind.
        bitrot_rate: P(per write) one bit of the data is silently flipped
            before it lands — undetectable until a checksum is verified.
        read_eio_rate: P(per read) the read fails with EIO.
        slow_io_rate: P(per operation) the operation stalls for
            ``slow_io_seconds`` first.
        slow_io_seconds: wall-clock length of an injected I/O stall.
    """

    seed: int = 0
    torn_write_rate: float = 0.0
    enospc_rate: float = 0.0
    enospc_after_bytes: int = 64
    rename_fail_rate: float = 0.0
    bitrot_rate: float = 0.0
    read_eio_rate: float = 0.0
    slow_io_rate: float = 0.0
    slow_io_seconds: float = 0.02

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ValueError(f"DiskFaultPlan.{f.name}={value!r}: must be in [0, 1]")
            if f.name.endswith(("_bytes", "_seconds")) and value < 0:
                raise ValueError(f"DiskFaultPlan.{f.name}={value!r}: must be >= 0")

    @property
    def any_enabled(self) -> bool:
        """True when at least one disk fault has a non-zero rate."""
        return any(
            getattr(self, f.name) > 0.0 for f in fields(self) if f.name.endswith("_rate")
        )


class FaultFS:
    """Injects a :class:`DiskFaultPlan` at the storage layer's I/O hooks."""

    def __init__(self, plan: DiskFaultPlan) -> None:
        self.plan = plan
        rng = np.random.default_rng(SeedSequencer(plan.seed).seed_for("faultfs"))
        self.pool = RandPool(rng, batch=256)
        #: injected-fault tally by fault name.
        self.counts: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------------
    def _hit(self, rate: float) -> bool:
        """One seeded Bernoulli draw; zero-rate faults draw nothing, so
        disabling one fault never perturbs another fault's stream."""
        return rate > 0.0 and self.pool.bernoulli(rate)

    def _count(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1

    @property
    def faults_injected(self) -> int:
        """Total injected faults across all kinds."""
        return sum(self.counts.values())

    def summary(self) -> dict:
        """Injection telemetry, merged into ``RunResult.scheduler``."""
        return {
            "disk_faults_injected": self.faults_injected,
            "disk_fault_counts": dict(self.counts),
        }

    def _maybe_stall(self) -> None:
        if self._hit(self.plan.slow_io_rate):
            self._count("slow_io")
            time.sleep(self.plan.slow_io_seconds)

    # -- storage hooks (called by repro.storage.atomic) ----------------------
    def write(self, fd: int, data: bytes) -> int:
        """Write ``data`` to ``fd``, possibly torn / ENOSPC'd / bitrotted."""
        plan = self.plan
        self._maybe_stall()
        if self._hit(plan.torn_write_rate):
            self._count("torn_write")
            cut = self.pool.integer(len(data)) if data else 0
            if cut:
                os.write(fd, data[:cut])
            raise OSError(5, f"faultfs: torn write after {cut} of {len(data)} bytes")
        if self._hit(plan.enospc_rate):
            self._count("enospc")
            landed = min(plan.enospc_after_bytes, len(data))
            if landed:
                os.write(fd, data[:landed])
            raise OSError(28, f"faultfs: no space left after {landed} bytes")
        if self._hit(plan.bitrot_rate) and data:
            self._count("bitrot")
            corrupt = bytearray(data)
            pos = self.pool.integer(len(corrupt))
            corrupt[pos] ^= 1 << self.pool.integer(8)
            data = bytes(corrupt)
        return os.write(fd, data)

    def replace(self, src: Union[str, Path], dst: Union[str, Path]) -> None:
        """``os.replace`` with an injectable rename failure."""
        self._maybe_stall()
        if self._hit(self.plan.rename_fail_rate):
            self._count("rename_fail")
            raise OSError(5, f"faultfs: rename {src} -> {dst} failed")
        os.replace(src, dst)

    def read_bytes(self, path: Union[str, Path]) -> bytes:
        """Read a whole file with an injectable EIO."""
        self._maybe_stall()
        if self._hit(self.plan.read_eio_rate):
            self._count("read_eio")
            raise OSError(5, f"faultfs: read error on {path}")
        return Path(path).read_bytes()


# -- process-wide installation ----------------------------------------------
_ACTIVE: Optional[FaultFS] = None


def install_faultfs(ffs: Optional[FaultFS]) -> Optional[FaultFS]:
    """Install (or clear, with ``None``) the process-wide fault injector."""
    global _ACTIVE
    _ACTIVE = ffs
    return _ACTIVE


def active_faultfs() -> Optional[FaultFS]:
    """The currently installed injector, or None for clean I/O."""
    return _ACTIVE


@contextmanager
def faultfs_session(
    target: Union[DiskFaultPlan, FaultFS, None]
) -> Iterator[Optional[FaultFS]]:
    """Scope a fault injector around a block, restoring the previous one.

    Accepts a plan (a fresh :class:`FaultFS` is built), an injector, or
    None (the block runs clean even if an outer session is active).
    """
    ffs: Optional[FaultFS]
    if isinstance(target, DiskFaultPlan):
        ffs = FaultFS(target) if target.any_enabled else None
    else:
        ffs = target
    previous = _ACTIVE
    install_faultfs(ffs)
    try:
        yield ffs
    finally:
        install_faultfs(previous)
