"""Unified durable-artifact storage layer.

Every artifact the harness persists — run journals, simulator
checkpoints, trace caches, benchmark reports — goes through this
package: atomic write/rename with fsync discipline and bounded retry
(:mod:`repro.storage.atomic`), a versioned self-describing envelope
with payload checksums and migration hooks
(:mod:`repro.storage.artifact`), a seeded filesystem fault injector
(:mod:`repro.storage.faultfs`), and an audit/repair engine behind
``repro fsck`` (:mod:`repro.storage.fsck`).

Layering: this package never imports from :mod:`repro.harness` or
:mod:`repro.smt` at module scope (``fsck`` reaches them lazily inside
probe functions), so artifact owners are free to import storage.
"""

from repro.storage.artifact import (
    MAGIC,
    canonical_json_crc,
    embed_json_artifact,
    is_enveloped,
    load_json_artifact,
    pack_artifact,
    read_artifact,
    register_migration,
    unpack_artifact,
    write_artifact,
    writer_provenance,
)
from repro.storage.atomic import (
    DEFAULT_RETRY,
    RetrySpec,
    append_line,
    atomic_write_bytes,
    fsync_dir,
    pid_alive,
    quarantine,
    read_bytes,
)
from repro.storage.errors import (
    ArtifactCorruptError,
    ArtifactError,
    ArtifactVersionError,
    DiskFullError,
    StorageError,
    StoragePermissionError,
    TransientStorageError,
    classify_oserror,
    is_transient,
)
from repro.storage.faultfs import (
    DiskFaultPlan,
    FaultFS,
    active_faultfs,
    faultfs_session,
    install_faultfs,
)
from repro.storage.fsck import FsckEntry, FsckReport, fsck_file, fsck_tree

__all__ = [
    "MAGIC",
    "canonical_json_crc",
    "embed_json_artifact",
    "is_enveloped",
    "load_json_artifact",
    "pack_artifact",
    "read_artifact",
    "register_migration",
    "unpack_artifact",
    "write_artifact",
    "writer_provenance",
    "DEFAULT_RETRY",
    "RetrySpec",
    "append_line",
    "atomic_write_bytes",
    "fsync_dir",
    "pid_alive",
    "quarantine",
    "read_bytes",
    "ArtifactCorruptError",
    "ArtifactError",
    "ArtifactVersionError",
    "DiskFullError",
    "StorageError",
    "StoragePermissionError",
    "TransientStorageError",
    "classify_oserror",
    "is_transient",
    "DiskFaultPlan",
    "FaultFS",
    "active_faultfs",
    "faultfs_session",
    "install_faultfs",
    "FsckEntry",
    "FsckReport",
    "fsck_file",
    "fsck_tree",
]
