"""RR — round-robin fetch (Tullsen's baseline; also the paper's 'oblivious'
job-scheduling analogue at the fetch level)."""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class RoundRobinPolicy(FetchPolicy):
    name = "rr"

    def __init__(self) -> None:
        super().__init__()
        self._next = 0

    def key(self, tid: int, counters: CounterBank) -> float:
        # Distance from the rotation head; pure rotation, no feedback.
        n = max(1, len(counters))
        return (tid - self._next) % n

    def rank(self, candidates: Sequence[int], counters: CounterBank) -> List[int]:
        ranked = sorted(candidates, key=lambda t: self.key(t, counters))
        if ranked:
            self._next = (ranked[0] + 1) % max(1, len(counters))
        return ranked
