"""ACCIPC — prioritize threads with the highest accumulated IPC
(paper's addition): threads that historically drain the pipeline fastest
get fetch slots first, maximizing raw throughput at some fairness cost."""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class AccIPCPolicy(FetchPolicy):
    name = "accipc"

    def key(self, tid: int, counters: CounterBank) -> float:
        # Higher accumulated IPC => lower key => fetched first.
        return -counters[tid].accumulated_ipc

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [
            -(tc.total_committed / tc.active_cycles) if tc.active_cycles else -0.0
            for tc in (th[t] for t in candidates)
        ]
