"""ACCIPC — prioritize threads with the highest accumulated IPC
(paper's addition): threads that historically drain the pipeline fastest
get fetch slots first, maximizing raw throughput at some fairness cost."""

from __future__ import annotations

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class AccIPCPolicy(FetchPolicy):
    name = "accipc"

    def key(self, tid: int, counters: CounterBank) -> float:
        # Higher accumulated IPC => lower key => fetched first.
        return -counters[tid].accumulated_ipc
