"""The ten fetch policies of the paper's Table 1.

Each policy ranks the runnable hardware contexts every cycle; the Thread
Selection Unit fetches from the top-ranked threads. Policy provenance
(paper §5): ICOUNT, BRCOUNT, L1DMISSCOUNT and RR come from Tullsen et al.
(ISCA'96); LDCOUNT, MEMCOUNT, ACCIPC and STALLCOUNT are the paper's
additions; L1MISSCOUNT and L1IMISSCOUNT complete the cache-focused set.
"""

from repro.policies.base import FetchPolicy
from repro.policies.registry import (
    POLICY_NAMES,
    create_policy,
    policy_class,
)
from repro.policies.icount import ICountPolicy
from repro.policies.brcount import BRCountPolicy
from repro.policies.ldcount import LDCountPolicy
from repro.policies.memcount import MemCountPolicy
from repro.policies.l1miss import L1MissCountPolicy, L1IMissCountPolicy, L1DMissCountPolicy
from repro.policies.accipc import AccIPCPolicy
from repro.policies.stallcount import StallCountPolicy
from repro.policies.roundrobin import RoundRobinPolicy

__all__ = [
    "FetchPolicy",
    "POLICY_NAMES",
    "create_policy",
    "policy_class",
    "ICountPolicy",
    "BRCountPolicy",
    "LDCountPolicy",
    "MemCountPolicy",
    "L1MissCountPolicy",
    "L1IMissCountPolicy",
    "L1DMissCountPolicy",
    "AccIPCPolicy",
    "StallCountPolicy",
    "RoundRobinPolicy",
]
