"""LDCOUNT — deprioritize threads with many in-flight loads (paper's addition)."""

from __future__ import annotations

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class LDCountPolicy(FetchPolicy):
    name = "ldcount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].in_flight_loads
