"""BRCOUNT — deprioritize threads with many unresolved branches.

Threads with the most in-flight (not yet resolved) conditional branches are
the ones most likely to be filling the pipeline with wrong-path
instructions; fetching them last limits wrong-path waste (paper §1's
motivating scenario: four control-intensive applications in a storm of
mispredictions starving the other four threads).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class BRCountPolicy(FetchPolicy):
    name = "brcount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].in_flight_branches

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [th[t].in_flight_branches for t in candidates]
