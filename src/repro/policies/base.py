"""Fetch-policy interface.

A policy assigns each runnable thread a *key* from its live hardware
counters; **lower key = higher fetch priority**. The TSU sorts candidate
threads by ``(key, tie_breaker)`` each cycle. Keys read only
:class:`~repro.smt.counters.ThreadCounters` — the same restriction the
paper's hardware thread-selection units have.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

from repro.smt.counters import CounterBank


class FetchPolicy(abc.ABC):
    """Ranks hardware contexts for instruction fetch."""

    #: Registry name; subclasses must set this.
    name: str = ""

    def __init__(self) -> None:
        if not self.name:
            raise TypeError(f"{type(self).__name__} must define a registry name")
        self._rotation = 0

    @abc.abstractmethod
    def key(self, tid: int, counters: CounterBank) -> float:
        """Priority key for thread ``tid`` (lower fetches first)."""

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        """Priority keys for every candidate, in candidate order.

        ``rank()`` calls this once per cycle instead of invoking
        :meth:`key` through a sort-key closure per comparison; concrete
        policies override it with a single list comprehension over the
        counter bank so the per-cycle ranking cost is one bulk read of the
        live counters rather than repeated per-thread method dispatch.
        """
        return [self.key(t, counters) for t in candidates]

    def rank(self, candidates: Sequence[int], counters: CounterBank) -> List[int]:
        """Candidates sorted best-first.

        Ties break by a rotating offset so equal-key threads share fetch
        bandwidth fairly instead of starving the higher-numbered contexts
        (matches the round-robin tie-break in SimpleSMT).
        """
        n = len(counters)
        self._rotation = rot = (self._rotation + 1) % max(1, n)
        if len(candidates) <= 1:
            return list(candidates)
        # Decorated sort: tie-break offsets are distinct per tid, so the
        # (key, tie, tid) tuples order exactly as sorting by (key, tie).
        decorated = sorted(
            zip(self.keys(candidates, counters), ((t + rot) % n for t in candidates), candidates)
        )
        return [t for _k, _tie, t in decorated]

    def on_quantum_boundary(self) -> None:
        """Hook for policies with per-quantum state (default: none)."""

    def __repr__(self) -> str:
        return f"<FetchPolicy {self.name}>"
