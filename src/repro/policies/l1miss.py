"""The cache-miss family: L1MISSCOUNT, L1IMISSCOUNT, L1DMISSCOUNT.

L1DMISSCOUNT is Tullsen's MISSCOUNT (deprioritize threads with outstanding
D-cache misses — they will clog the IQ with dependents that cannot issue);
the paper adds the instruction-side and combined variants "to have a closer
look at the effect of the caches" (§5).

Outstanding I-cache misses do not accumulate per thread the way D-misses do
(the thread simply cannot fetch), so the I-side signal is an exponentially
decayed recent-miss count, which is what a small hardware leaky counter
would provide.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class L1DMissCountPolicy(FetchPolicy):
    name = "l1dmisscount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].outstanding_l1d_misses

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [th[t].outstanding_l1d_misses for t in candidates]


class L1IMissCountPolicy(FetchPolicy):
    name = "l1imisscount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].recent_l1i_misses

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [th[t].recent_l1i_misses for t in candidates]


class L1MissCountPolicy(FetchPolicy):
    name = "l1misscount"

    def key(self, tid: int, counters: CounterBank) -> float:
        c = counters[tid]
        return c.outstanding_l1d_misses + c.recent_l1i_misses

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [
            th[t].outstanding_l1d_misses + th[t].recent_l1i_misses for t in candidates
        ]
