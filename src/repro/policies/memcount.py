"""MEMCOUNT — deprioritize threads with many in-flight memory accesses
(loads + stores; paper's addition)."""

from __future__ import annotations

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class MemCountPolicy(FetchPolicy):
    name = "memcount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].in_flight_mem
