"""MEMCOUNT — deprioritize threads with many in-flight memory accesses
(loads + stores; paper's addition)."""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class MemCountPolicy(FetchPolicy):
    name = "memcount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].in_flight_mem

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [th[t].in_flight_mem for t in candidates]
