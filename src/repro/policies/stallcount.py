"""STALLCOUNT — deprioritize threads that recently incurred pipeline stalls
(paper's addition). The signal is a leaky per-thread stall counter."""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class StallCountPolicy(FetchPolicy):
    name = "stallcount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].recent_stalls

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [th[t].recent_stalls for t in candidates]
