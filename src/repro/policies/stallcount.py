"""STALLCOUNT — deprioritize threads that recently incurred pipeline stalls
(paper's addition). The signal is a leaky per-thread stall counter."""

from __future__ import annotations

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class StallCountPolicy(FetchPolicy):
    name = "stallcount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].recent_stalls
