"""Name-based policy construction (used by ADTS heuristics and the CLI-ish
harness, which deal in policy *names* exactly as the detector thread's
software would)."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.policies.base import FetchPolicy


def _registry() -> Dict[str, Type[FetchPolicy]]:
    from repro.policies.accipc import AccIPCPolicy
    from repro.policies.brcount import BRCountPolicy
    from repro.policies.icount import ICountPolicy
    from repro.policies.l1miss import (
        L1DMissCountPolicy,
        L1IMissCountPolicy,
        L1MissCountPolicy,
    )
    from repro.policies.ldcount import LDCountPolicy
    from repro.policies.memcount import MemCountPolicy
    from repro.policies.roundrobin import RoundRobinPolicy
    from repro.policies.stallcount import StallCountPolicy

    classes = [
        ICountPolicy,
        BRCountPolicy,
        LDCountPolicy,
        MemCountPolicy,
        L1MissCountPolicy,
        L1IMissCountPolicy,
        L1DMissCountPolicy,
        AccIPCPolicy,
        StallCountPolicy,
        RoundRobinPolicy,
    ]
    return {cls.name: cls for cls in classes}


#: The ten policy names of Table 1, in table order.
POLICY_NAMES: List[str] = list(_registry().keys())


def policy_class(name: str) -> Type[FetchPolicy]:
    """The policy class registered under ``name``."""
    table = _registry()
    try:
        return table[name]
    except KeyError:
        raise KeyError(f"unknown fetch policy {name!r}; known: {sorted(table)}") from None


def create_policy(name: str) -> FetchPolicy:
    """Instantiate a fresh policy by name."""
    return policy_class(name)()
