"""ICOUNT — Tullsen et al.'s best-on-average policy.

Gives priority to the threads with the fewest instructions in the decode
and rename stages and the instruction queues, producing balanced window use
and favouring threads that drain quickly (paper §1). This is the paper's
baseline *and* the default/fallback state of every ADTS heuristic.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.policies.base import FetchPolicy
from repro.smt.counters import CounterBank


class ICountPolicy(FetchPolicy):
    name = "icount"

    def key(self, tid: int, counters: CounterBank) -> float:
        return counters[tid].icount

    def keys(self, candidates: Sequence[int], counters: CounterBank) -> List[float]:
        th = counters.threads
        return [th[t].front_end + th[t].iq_int + th[t].iq_fp for t in candidates]
