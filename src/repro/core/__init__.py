"""Adaptive Dynamic Thread Scheduling (ADTS) — the paper's contribution.

A *detector thread* (DT) occupies one designated hardware context at the
lowest fetch priority, making progress only through otherwise-wasted fetch
slots. At every scheduling quantum (8K cycles) it compares the quantum's
committed IPC against a threshold; when throughput is low it identifies
clogging threads, chooses a replacement fetch policy with one of the
Type 1–4 heuristics, and switches the Thread Selection Unit's policy.
"""

from repro.core.thresholds import ThresholdConfig
from repro.core.quantum import QuantumObservation
from repro.core.flags import ThreadControlFlags
from repro.core.history import SwitchHistoryBuffer, SwitchQualityLedger
from repro.core.clogging import CloggingReport, identify_clogging_threads
from repro.core.detector import DetectorThread, DetectorTask
from repro.core.heuristics import (
    Heuristic,
    Type1Heuristic,
    Type2Heuristic,
    Type3Heuristic,
    Type3GradientHeuristic,
    Type4Heuristic,
    HEURISTICS,
    create_heuristic,
)
from repro.core.adts import ADTSController
from repro.core.oracle import OracleScheduler, oracle_upper_bound
from repro.core.autotune import ThresholdAutoTuner, QuantileTracker, RunningMean
from repro.core.jobsched import Job, JobPool, JobSchedulerHook

__all__ = [
    "ThresholdConfig",
    "QuantumObservation",
    "ThreadControlFlags",
    "SwitchHistoryBuffer",
    "SwitchQualityLedger",
    "CloggingReport",
    "identify_clogging_threads",
    "DetectorThread",
    "DetectorTask",
    "Heuristic",
    "Type1Heuristic",
    "Type2Heuristic",
    "Type3Heuristic",
    "Type3GradientHeuristic",
    "Type4Heuristic",
    "HEURISTICS",
    "create_heuristic",
    "ADTSController",
    "OracleScheduler",
    "oracle_upper_bound",
    "ThresholdAutoTuner",
    "QuantileTracker",
    "RunningMean",
    "Job",
    "JobPool",
    "JobSchedulerHook",
]
