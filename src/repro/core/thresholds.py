"""Threshold configuration for the detector thread's conditions.

The per-metric constants are the paper's (§4.3.2), "determined by
simulation ... averaged over 13 different mixes": they are configuration,
not constants, because the paper stresses that the DT management kernel can
rewrite them as the system drifts (one of the arguments for a programmable
detector thread).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ThresholdConfig:
    """All detection thresholds.

    Attributes:
        ipc_threshold: committed IPC below which a quantum is classified
            low-throughput (the paper sweeps 1..5; best value 2).
        l1_miss_rate: COND_MEM sub-condition 1 — L1 misses per cycle.
        lsq_full_rate: COND_MEM sub-condition 2 — LSQ-full events per cycle.
        mispredict_rate: COND_BR sub-condition 1 — branch mispredictions
            per cycle.
        cond_branch_rate: COND_BR sub-condition 2 — conditional branches
            per cycle.

    Defaults are this simulator's calibration by the paper's own §4.3.2
    procedure (8-thread runs over the mixes, mean of each metric). For the
    record, the paper's SimpleSMT constants were 0.19 / 0.45 / 0.02 / 0.38;
    ours land at 0.16 / 3.2 / 0.033 / 0.39 — the L1 and branch rates agree
    closely, while the LSQ-full rate differs in units (our counter can fire
    on every stalled dispatch attempt within a cycle).
    """

    ipc_threshold: float = 2.0
    l1_miss_rate: float = 0.16
    lsq_full_rate: float = 3.2
    mispredict_rate: float = 0.033
    cond_branch_rate: float = 0.39

    #: The original SimpleSMT constants from the paper, for reference.
    PAPER_VALUES = {
        "l1_miss_rate": 0.19,
        "lsq_full_rate": 0.45,
        "mispredict_rate": 0.02,
        "cond_branch_rate": 0.38,
    }

    def __post_init__(self) -> None:
        if self.ipc_threshold < 0:
            raise ValueError("ipc_threshold must be non-negative")
        for name in ("l1_miss_rate", "lsq_full_rate", "mispredict_rate", "cond_branch_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def with_ipc_threshold(self, value: float) -> "ThresholdConfig":
        """The same condition constants with a different IPC threshold
        (the Figure 7/8 sweep axis)."""
        from dataclasses import replace

        return replace(self, ipc_threshold=value)
