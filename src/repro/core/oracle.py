"""Oracle (clairvoyant) per-quantum scheduling — the upper bound.

The paper's earlier study derived "an upper-bound for the performance
improvement we can hope to achieve" (~30% over fixed ICOUNT, §1/§6) by
oracle-scheduling each quantum. We reproduce that bound directly: at each
quantum boundary, fork the full machine state, run the next quantum once
under every candidate policy, keep the policy that committed the most
instructions, and advance the real machine under it.

This is expensive (deepcopy of the whole simulator per candidate per
quantum) and is intended for the A3 bound experiment, not for sweeps.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from repro.smt.pipeline import SMTProcessor

DEFAULT_CANDIDATES = ("icount", "brcount", "l1misscount")


@dataclass
class OracleQuantum:
    """Outcome of one oracle-scheduled quantum."""

    index: int
    chosen: str
    per_policy_committed: dict
    committed: int


@dataclass
class OracleResult:
    """Full oracle run."""

    quanta: List[OracleQuantum] = field(default_factory=list)
    cycles: int = 0

    @property
    def committed(self) -> int:
        return sum(q.committed for q in self.quanta)

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    def policy_usage(self) -> dict:
        """How often each policy won."""
        usage: dict = {}
        for q in self.quanta:
            usage[q.chosen] = usage.get(q.chosen, 0) + 1
        return usage


class OracleScheduler:
    """Clairvoyant per-quantum policy selection."""

    def __init__(self, candidates: Sequence[str] = DEFAULT_CANDIDATES) -> None:
        if not candidates:
            raise ValueError("need at least one candidate policy")
        self.candidates = tuple(candidates)

    def run(self, processor: SMTProcessor, quanta: int) -> OracleResult:
        """Advance ``processor`` for ``quanta`` quanta, oracle-choosing the
        policy at every boundary. Mutates (and returns through) the live
        processor's stats; trial runs happen on deep copies."""
        result = OracleResult()
        q_cycles = processor.quantum_cycles
        for q in range(quanta):
            per_policy = {}
            for name in self.candidates:
                trial = copy.deepcopy(processor)
                trial.set_policy(name)
                before = trial.stats.committed
                trial.run(q_cycles)
                per_policy[name] = trial.stats.committed - before
            chosen = max(per_policy, key=per_policy.get)
            processor.set_policy(chosen)
            before = processor.stats.committed
            processor.run(q_cycles)
            result.quanta.append(
                OracleQuantum(
                    index=q,
                    chosen=chosen,
                    per_policy_committed=per_policy,
                    committed=processor.stats.committed - before,
                )
            )
        result.cycles = quanta * q_cycles
        return result


def oracle_upper_bound(
    make_processor: Callable[[], SMTProcessor],
    quanta: int,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
) -> dict:
    """Oracle IPC vs. fixed-ICOUNT IPC on identical machines/workloads.

    ``make_processor`` must build a *fresh, identically seeded* processor
    on each call so both runs see the same instruction streams.
    """
    oracle_proc = make_processor()
    oracle = OracleScheduler(candidates).run(oracle_proc, quanta)
    fixed_proc = make_processor()
    fixed_proc.set_policy("icount")
    fixed_proc.run(quanta * fixed_proc.quantum_cycles)
    fixed_ipc = fixed_proc.stats.ipc
    return {
        "oracle_ipc": oracle.ipc,
        "fixed_icount_ipc": fixed_ipc,
        "headroom": (oracle.ipc / fixed_ipc - 1.0) if fixed_ipc else 0.0,
        "policy_usage": oracle.policy_usage(),
    }
