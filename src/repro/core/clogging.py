"""Clogging-thread identification (Identify_CloggingThreads(), §4).

"By looking at the per-thread status counters, the threads that are
clogging the pipelines for various reasons can be identified and marked so
that the job scheduler can later suspend them once loaded without going
through the possibly long process of identifying them for itself."

A thread is *clogging* when it occupies a disproportionate share of a
shared resource while contributing a disproportionately small share of the
committed work — the imbalance definition of §1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.smt.counters import QuantumSnapshot


@dataclass(frozen=True)
class CloggingReport:
    """Verdict for one thread."""

    tid: int
    clogging: bool
    reasons: tuple = field(default_factory=tuple)
    occupancy_share: float = 0.0
    commit_share: float = 0.0


def identify_clogging_threads(
    snapshots: Sequence[QuantumSnapshot],
    occupancy_factor: float = 1.1,
    starvation_factor: float = 0.5,
) -> List[CloggingReport]:
    """Classify each thread from its quantum snapshot.

    A thread is flagged when its share of fetched-but-uncommitted work
    (pipeline occupancy pressure) exceeds ``occupancy_factor`` times its
    fair share while its commit share is below ``starvation_factor`` times
    fair share, or when it is the dominant source of a pathological event
    class (mispredict squashes, L1D misses, LSQ-full stalls).
    """
    n = len(snapshots)
    if n == 0:
        return []
    fair = 1.0 / n
    total_commit = sum(s.committed for s in snapshots) or 1
    total_pressure = sum(max(0, s.fetched - s.committed) for s in snapshots) or 1
    total_squash = sum(s.squashed for s in snapshots)
    total_l1d = sum(s.l1d_misses for s in snapshots)
    total_lsq = sum(s.lsq_full for s in snapshots)

    reports: List[CloggingReport] = []
    for s in snapshots:
        reasons: List[str] = []
        pressure_share = max(0, s.fetched - s.committed) / total_pressure
        commit_share = s.committed / total_commit
        if pressure_share > occupancy_factor * fair and commit_share < starvation_factor * fair:
            reasons.append("occupancy-vs-commit imbalance")
        if total_squash and s.squashed / total_squash > 0.5 and s.squashed > s.committed:
            reasons.append("wrong-path storm")
        if total_l1d and s.l1d_misses / total_l1d > 0.5 and commit_share < fair:
            reasons.append("dcache-miss dominance")
        if total_lsq and s.lsq_full / total_lsq > 0.5 and commit_share < fair:
            reasons.append("lsq saturation")
        reports.append(
            CloggingReport(
                tid=s.tid,
                clogging=bool(reasons),
                reasons=tuple(reasons),
                occupancy_share=pressure_share,
                commit_share=commit_share,
            )
        )
    return reports
