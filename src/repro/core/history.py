"""Switching history (Type 4) and the switch-quality ledger (Figure 7).

Two distinct record-keepers:

* :class:`SwitchHistoryBuffer` — the *mechanism* Type 4 adds: per
  (incumbent policy, condition value) counters of positive and negative
  switch outcomes, consulted before each transition;
* :class:`SwitchQualityLedger` — *instrumentation* for the evaluation: it
  tracks every switch and whether it turned out benign (throughput rose in
  the following quantum), producing the Figure 7(c)/(d) series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

HistoryKey = Tuple[str, bool, bool]  # (incumbent, cond_mem, cond_br)


@dataclass
class HistoryEntry:
    """poscnt/negcnt for one (incumbent, condition) case (§4.3.3 Type 4)."""

    poscnt: int = 0
    negcnt: int = 0

    @property
    def favourable(self) -> bool:
        """Regular transition is favoured while poscnt > negcnt."""
        return self.poscnt > self.negcnt


class SwitchHistoryBuffer:
    """The Type 4 heuristic's memory of how past switches worked out."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: Dict[HistoryKey, HistoryEntry] = {}
        self._pending: Optional[HistoryKey] = None

    def lookup(self, key: HistoryKey) -> HistoryEntry:
        """Entry for ``key``, creating (and bounding) as needed."""
        entry = self._entries.get(key)
        if entry is None:
            entry = HistoryEntry()
            if len(self._entries) >= self.capacity:
                # Bounded hardware buffer: evict the stalest (arbitrary
                # first) entry, as a real DT PRAM table would wrap.
                self._entries.pop(next(iter(self._entries)))
            self._entries[key] = entry
        return entry

    def note_switch(self, key: HistoryKey) -> None:
        """Remember that a switch was just made for case ``key``; the
        outcome arrives one quantum later via :meth:`record_outcome`."""
        self._pending = key

    def record_outcome(self, improved: bool) -> None:
        """Credit/debit the pending case with the observed outcome."""
        if self._pending is None:
            return
        entry = self.lookup(self._pending)
        if improved:
            entry.poscnt += 1
        else:
            entry.negcnt += 1
        self._pending = None

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class SwitchEvent:
    """One policy switch, for the quality ledger."""

    quantum_index: int
    from_policy: str
    to_policy: str
    ipc_before: float
    ipc_after: Optional[float] = None

    @property
    def benign(self) -> Optional[bool]:
        """True if throughput rose after the switch (paper §4.2's 'quality
        of a switch'); None while the following quantum is still running."""
        if self.ipc_after is None:
            return None
        return self.ipc_after > self.ipc_before


@dataclass
class SwitchQualityLedger:
    """Evaluation-side record of all switches and their quality."""

    events: List[SwitchEvent] = field(default_factory=list)
    _open: Optional[SwitchEvent] = None

    def record_switch(
        self, quantum_index: int, from_policy: str, to_policy: str, ipc_before: float
    ) -> None:
        """Open a switch event; judged by the next quantum's IPC."""
        event = SwitchEvent(quantum_index, from_policy, to_policy, ipc_before)
        self.events.append(event)
        self._open = event

    def record_quantum_ipc(self, ipc: float) -> None:
        """Close the most recent switch with the next quantum's IPC."""
        if self._open is not None and self._open.ipc_after is None:
            self._open.ipc_after = ipc
            self._open = None

    @property
    def num_switches(self) -> int:
        return len(self.events)

    @property
    def num_benign(self) -> int:
        return sum(1 for e in self.events if e.benign)

    @property
    def num_malignant(self) -> int:
        return sum(1 for e in self.events if e.benign is False)

    @property
    def benign_probability(self) -> float:
        """P(benign switch) — the Figure 7(c)/(d) metric."""
        judged = self.num_benign + self.num_malignant
        return self.num_benign / judged if judged else 0.0
