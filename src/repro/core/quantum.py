"""Per-quantum observation derived from the hardware status counters.

This is the only view of the machine the detector thread's heuristics get:
aggregate per-cycle event rates over the finished quantum, exactly the
quantities whose thresholds §4.3.2 calibrates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.thresholds import ThresholdConfig
from repro.smt.counters import QuantumSnapshot
from repro.smt.stats import QuantumRecord


@dataclass(frozen=True)
class QuantumObservation:
    """Aggregate rates for one finished scheduling quantum."""

    index: int
    cycles: int
    ipc: float
    prev_ipc: float
    l1_miss_rate: float
    lsq_full_rate: float
    mispredict_rate: float
    cond_branch_rate: float

    @classmethod
    def from_snapshots(
        cls,
        record: QuantumRecord,
        snapshots: Sequence[QuantumSnapshot],
        prev_ipc: float = 0.0,
    ) -> "QuantumObservation":
        cycles = max(1, record.cycles)
        l1_misses = sum(s.l1_misses for s in snapshots)
        lsq_full = sum(s.lsq_full for s in snapshots)
        mispredicts = sum(s.mispredicts for s in snapshots)
        cond_branches = sum(s.cond_branches for s in snapshots)
        return cls(
            index=record.index,
            cycles=cycles,
            ipc=record.ipc,
            prev_ipc=prev_ipc,
            l1_miss_rate=l1_misses / cycles,
            lsq_full_rate=lsq_full / cycles,
            mispredict_rate=mispredicts / cycles,
            cond_branch_rate=cond_branches / cycles,
        )

    # -- the paper's conditions (§4.3.2) ------------------------------------
    def low_throughput(self, thresholds: ThresholdConfig) -> bool:
        """IPC_last < IPC_thold — the low-throughput trigger."""
        return self.ipc < thresholds.ipc_threshold

    def cond_mem(self, thresholds: ThresholdConfig) -> bool:
        """True when memory-side imbalance is indicated."""
        return (
            self.l1_miss_rate > thresholds.l1_miss_rate
            or self.lsq_full_rate > thresholds.lsq_full_rate
        )

    def cond_br(self, thresholds: ThresholdConfig) -> bool:
        """True when control-side imbalance is indicated."""
        return (
            self.mispredict_rate > thresholds.mispredict_rate
            or self.cond_branch_rate > thresholds.cond_branch_rate
        )

    @property
    def gradient(self) -> float:
        """Throughput gradient vs. the previous quantum (Type 3'/4 input)."""
        return self.ipc - self.prev_ipc
