"""Job-scheduler symbiosis (paper §3).

The paper argues the detector thread lowers the system job scheduler's
burden: clogging threads are pre-identified in the thread control flags, so
"the system thread ... will look at the flag and suspend a clogging thread
without going through the process of determining which thread to suspend."

This module implements that loop: a :class:`JobPool` holds more software
jobs than hardware contexts; a :class:`JobSchedulerHook` wraps an
:class:`~repro.core.adts.ADTSController` and, at every job-scheduling
interval (a multiple of the DT's scheduling quantum — the paper notes job
quanta are ~milliseconds vs. the DT's 8K cycles), swaps resident jobs:

* ``guided`` mode evicts the DT-flagged cloggers first;
* ``oblivious`` mode evicts round-robin (the Parekh et al. baseline).

Swapped-out jobs keep their trace position and resume later, so the pool
is time-shared, not truncated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.core.adts import ADTSController
from repro.smt.pipeline import SchedulerHook
from repro.util.seeds import SeedSequencer
from repro.workloads.profiles import get_profile
from repro.workloads.tracegen import TraceGenerator


@dataclass
class Job:
    """One software job: a named program with persistent execution state."""

    job_id: int
    app: str
    trace: TraceGenerator
    scheduled_intervals: int = 0
    evictions_as_clogger: int = 0


class JobPool:
    """More jobs than contexts; builds one persistent trace per job."""

    def __init__(self, apps: Sequence[str], seed: int = 0) -> None:
        if not apps:
            raise ValueError("job pool cannot be empty")
        seeds = SeedSequencer(seed)
        self.jobs: List[Job] = []
        for jid, app in enumerate(apps):
            # Trace tid == job id so each job owns a distinct address space
            # regardless of which hardware context it lands on.
            trace = TraceGenerator(get_profile(app), jid, seeds.generator("job", jid, app))
            self.jobs.append(Job(jid, app, trace))

    def __len__(self) -> int:
        return len(self.jobs)


class JobSchedulerHook(SchedulerHook):
    """Time-shares a job pool over the hardware contexts.

    Composes an ADTS controller (policy switching + clogging flags keep
    working); adds job swapping every ``interval_quanta`` scheduling quanta.
    """

    def __init__(
        self,
        pool: JobPool,
        mode: str = "guided",
        interval_quanta: int = 4,
        swaps_per_interval: int = 2,
        switch_penalty: int = 200,
        adts: Optional[ADTSController] = None,
    ) -> None:
        if mode not in ("guided", "oblivious"):
            raise ValueError("mode must be 'guided' or 'oblivious'")
        if interval_quanta <= 0 or swaps_per_interval < 0:
            raise ValueError("bad scheduling interval parameters")
        self.pool = pool
        self.mode = mode
        self.interval_quanta = interval_quanta
        self.swaps_per_interval = swaps_per_interval
        self.switch_penalty = switch_penalty
        self.adts = adts or ADTSController()
        self.processor = None
        #: context -> resident job
        self.resident: Dict[int, Job] = {}
        self.waiting: Deque[Job] = deque()
        self._rr_victim = 0
        self.swaps = 0
        self.guided_evictions = 0

    # -- SchedulerHook --------------------------------------------------------
    def attach(self, processor) -> None:
        self.processor = processor
        self.adts.attach(processor)
        n = processor.num_threads
        if len(self.pool) < n:
            raise ValueError("job pool smaller than the number of contexts")
        for tid in range(n):
            self.resident[tid] = self.pool.jobs[tid]
        self.waiting = deque(self.pool.jobs[n:])
        # Bind resident jobs' traces (constructor traces are placeholders
        # when the pool drives the machine).
        for tid, job in self.resident.items():
            processor.contexts[tid].trace = job.trace
            processor.contexts[tid].done_upto = job.trace.seq - 1

    def on_cycle(self, now: int, idle_slots: int) -> int:
        return self.adts.on_cycle(now, idle_slots)

    def on_quantum_end(self, now: int, record, snapshots) -> None:
        self.adts.on_quantum_end(now, record, snapshots)
        if (record.index + 1) % self.interval_quanta == 0:
            self._job_scheduling_pass(now)

    # -- scheduling ----------------------------------------------------------
    def _pick_victims(self, count: int) -> List[int]:
        n = self.processor.num_threads
        victims: List[int] = []
        if self.mode == "guided":
            flagged = [t for t in self.adts.flags.marked_for_suspension() if t < n]
            victims.extend(flagged[:count])
            self.guided_evictions += len(victims)
        while len(victims) < count:
            candidate = self._rr_victim
            self._rr_victim = (self._rr_victim + 1) % n
            if candidate not in victims:
                victims.append(candidate)
        return victims[:count]

    def _job_scheduling_pass(self, now: int) -> None:
        if not self.waiting or self.swaps_per_interval == 0:
            return
        count = min(self.swaps_per_interval, len(self.waiting))
        for tid in self._pick_victims(count):
            incoming = self.waiting.popleft()
            outgoing = self.resident[tid]
            if tid in self.adts.flags.marked_for_suspension():
                outgoing.evictions_as_clogger += 1
                self.adts.flags.clear_suspension_mark(tid)
            self.processor.swap_thread(tid, incoming.trace, self.switch_penalty)
            incoming.scheduled_intervals += 1
            self.resident[tid] = incoming
            self.waiting.append(outgoing)
            self.swaps += 1

    # -- analysis --------------------------------------------------------------
    def summary(self) -> dict:
        """Scheduling statistics and current residency."""
        return {
            "mode": self.mode,
            "swaps": self.swaps,
            "guided_evictions": self.guided_evictions,
            "resident": {t: j.app for t, j in self.resident.items()},
            "waiting": [j.app for j in self.waiting],
            "adts": self.adts.summary(),
        }
