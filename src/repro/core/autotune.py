"""Self-tuning detection thresholds (paper §4.3.2's proposed extension).

"There can be no single golden reference measures that can always be used.
To be more effective, the threshold values should be updated to reflect
newly found information. ... The system's detector thread management kernel
can profile the system and determine whether current threshold numbers are
obsolete and if so, it may update the values" — the paper leaves the
policy open; this module implements two natural ones:

* :class:`QuantileTracker` — streaming estimate of a metric's quantile
  (P² -style stochastic approximation, O(1) state: fits a DT register);
* :class:`ThresholdAutoTuner` — re-derives the ``ThresholdConfig`` every
  ``update_interval`` quanta: the IPC threshold tracks a low quantile of
  recent quantum IPC (so "low throughput" always means "unusually low for
  the current workload"), and the condition constants track the recent
  means of their metrics (the paper's own calibration rule, applied
  online).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig


class QuantileTracker:
    """Streaming quantile via stochastic approximation.

    Classic Robbins–Monro update: the estimate moves up by ``step*q`` on
    samples above it and down by ``step*(1-q)`` on samples below, so it
    converges to the q-quantile with one register of state — implementable
    in a few DT instructions.
    """

    def __init__(self, q: float, initial: float = 0.0, step: float = 0.05) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if step <= 0:
            raise ValueError("step must be positive")
        self.q = q
        self.step = step
        self.estimate = initial
        self.samples = 0

    def update(self, value: float) -> float:
        """Ingest one sample; returns the updated quantile estimate."""
        # Scale the step to the running magnitude so the tracker is
        # unit-free across metrics.
        scale = max(abs(self.estimate), abs(value), 1e-6)
        if value > self.estimate:
            self.estimate += self.step * self.q * scale
        else:
            self.estimate -= self.step * (1.0 - self.q) * scale
        self.samples += 1
        return self.estimate


class RunningMean:
    """Exponentially-weighted running mean (one DT register)."""

    def __init__(self, alpha: float = 0.1, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value = initial
        self.samples = 0

    def update(self, sample: float) -> float:
        """Ingest one sample; returns the updated mean."""
        if self.samples == 0:
            self.value = sample
        else:
            self.value += self.alpha * (sample - self.value)
        self.samples += 1
        return self.value


@dataclass
class TunerEvent:
    """One threshold update, for analysis."""

    quantum_index: int
    thresholds: ThresholdConfig


class ThresholdAutoTuner:
    """Online re-calibration of the DT's thresholds.

    Feed it every quantum observation; read ``thresholds`` before deciding.
    The IPC threshold tracks the ``ipc_quantile`` of recent quantum IPC;
    the four condition constants track their metrics' running means (the
    paper's §4.3.2 rule, applied continuously instead of once offline).
    """

    def __init__(
        self,
        initial: Optional[ThresholdConfig] = None,
        ipc_quantile: float = 0.35,
        update_interval: int = 8,
        alpha: float = 0.15,
    ) -> None:
        if update_interval <= 0:
            raise ValueError("update_interval must be positive")
        self.thresholds = initial or ThresholdConfig()
        self.update_interval = update_interval
        self._ipc = QuantileTracker(
            ipc_quantile, initial=self.thresholds.ipc_threshold
        )
        self._means: Dict[str, RunningMean] = {
            "l1_miss_rate": RunningMean(alpha, self.thresholds.l1_miss_rate),
            "lsq_full_rate": RunningMean(alpha, self.thresholds.lsq_full_rate),
            "mispredict_rate": RunningMean(alpha, self.thresholds.mispredict_rate),
            "cond_branch_rate": RunningMean(alpha, self.thresholds.cond_branch_rate),
        }
        self._since_update = 0
        self.events: List[TunerEvent] = []

    def observe(self, obs: QuantumObservation) -> ThresholdConfig:
        """Ingest one quantum; returns the (possibly updated) thresholds."""
        self._ipc.update(obs.ipc)
        self._means["l1_miss_rate"].update(obs.l1_miss_rate)
        self._means["lsq_full_rate"].update(obs.lsq_full_rate)
        self._means["mispredict_rate"].update(obs.mispredict_rate)
        self._means["cond_branch_rate"].update(obs.cond_branch_rate)
        self._since_update += 1
        if self._since_update >= self.update_interval:
            self._since_update = 0
            self.thresholds = replace(
                self.thresholds,
                ipc_threshold=max(0.05, self._ipc.estimate),
                l1_miss_rate=max(0.0, self._means["l1_miss_rate"].value),
                lsq_full_rate=max(0.0, self._means["lsq_full_rate"].value),
                mispredict_rate=max(0.0, self._means["mispredict_rate"].value),
                cond_branch_rate=max(0.0, self._means["cond_branch_rate"].value),
            )
            self.events.append(TunerEvent(obs.index, self.thresholds))
        return self.thresholds

    @property
    def num_updates(self) -> int:
        return len(self.events)
