"""The policy-determination heuristics (Determine_NewPolicy(), §4.3.3)."""

from repro.core.heuristics.base import Heuristic, Decision
from repro.core.heuristics.type1 import Type1Heuristic
from repro.core.heuristics.type2 import Type2Heuristic
from repro.core.heuristics.type3 import Type3Heuristic, Type3GradientHeuristic
from repro.core.heuristics.type4 import Type4Heuristic

#: Heuristic registry in the paper's naming: type1, type2, type3,
#: type3g (the paper's "Type 3'"), type4.
HEURISTICS = {
    "type1": Type1Heuristic,
    "type2": Type2Heuristic,
    "type3": Type3Heuristic,
    "type3g": Type3GradientHeuristic,
    "type4": Type4Heuristic,
}

#: Display names matching the paper's figures.
HEURISTIC_LABELS = {
    "type1": "Type 1",
    "type2": "Type 2",
    "type3": "Type 3",
    "type3g": "Type 3'",
    "type4": "Type 4",
}


def create_heuristic(name: str, **kwargs) -> Heuristic:
    """Instantiate a heuristic by registry name."""
    try:
        cls = HEURISTICS[name]
    except KeyError:
        raise KeyError(f"unknown heuristic {name!r}; known: {sorted(HEURISTICS)}") from None
    return cls(**kwargs)


__all__ = [
    "Heuristic",
    "Decision",
    "Type1Heuristic",
    "Type2Heuristic",
    "Type3Heuristic",
    "Type3GradientHeuristic",
    "Type4Heuristic",
    "HEURISTICS",
    "HEURISTIC_LABELS",
    "create_heuristic",
]
