"""Type 1 — fixed two-state transition (Figure 4).

"No status indicators are referenced ... Once a low throughput condition
has been detected, transition to the other [policy] (either BRCOUNT or
ICOUNT) will unconditionally be made. Initially, the default fetch policy
will be ICOUNT." Cheap enough to live in hardware, but blind to *why*
throughput is low.
"""

from __future__ import annotations

from repro.core.heuristics.base import Decision, Heuristic
from repro.core.quantum import QuantumObservation


class Type1Heuristic(Heuristic):
    name = "type1"
    cost_instructions = 16

    _FLIP = {"icount": "brcount", "brcount": "icount"}

    def decide(self, incumbent: str, obs: QuantumObservation) -> Decision:
        nxt = self._FLIP.get(incumbent, "icount")
        return Decision(nxt, switched=nxt != incumbent, reason="type1 unconditional flip")
