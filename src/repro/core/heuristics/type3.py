"""Type 3 — condition-directed transitions (Figure 6), and Type 3'
(gradient-gated Type 3).

From the incumbent policy, the heuristic checks the condition pointing at
the problem class the incumbent is *not* addressing and moves to the policy
that addresses it; with no condition indicated it falls back to ICOUNT,
"which works best on the average". (FSM edges reconstructed from the §4.3.3
prose; see DESIGN.md §3.)

Type 3' adds the §4.3.3 gradient feature: "Even when low throughput is
detected, if the throughput is higher than the throughput observed one
quantum earlier (positive gradient), switching policies is not allowed."
"""

from __future__ import annotations

from repro.core.heuristics.base import Decision, Heuristic
from repro.core.quantum import QuantumObservation


class Type3Heuristic(Heuristic):
    name = "type3"
    cost_instructions = 96

    def decide(self, incumbent: str, obs: QuantumObservation) -> Decision:
        th = self.thresholds
        mem = obs.cond_mem(th)
        br = obs.cond_br(th)
        if incumbent == "brcount":
            # BRCOUNT failed: the imbalance is not in branches.
            nxt = "l1misscount" if mem else "icount"
            reason = "COND_MEM" if mem else "!COND_MEM fallback"
        elif incumbent == "l1misscount":
            nxt = "brcount" if br else "icount"
            reason = "COND_BR" if br else "!COND_BR fallback"
        else:  # icount (or anything else): route by whichever condition fires
            if mem:
                nxt, reason = "l1misscount", "COND_MEM"
            elif br:
                nxt, reason = "brcount", "COND_BR"
            else:
                nxt, reason = "icount", "no condition: stay"
        return Decision(nxt, switched=nxt != incumbent, reason=f"type3 {reason}")


class Type3GradientHeuristic(Type3Heuristic):
    """Type 3' — Type 3 plus the positive-gradient hold."""

    name = "type3g"
    cost_instructions = 112

    def decide(self, incumbent: str, obs: QuantumObservation) -> Decision:
        if obs.gradient > 0:
            return Decision(incumbent, switched=False, reason="positive gradient: hold")
        return super().decide(incumbent, obs)
