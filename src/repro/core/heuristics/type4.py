"""Type 4 — Type 3' plus the switching history buffer (§4.3.3).

Each switching case is keyed by (incumbent policy, condition values); the
buffer counts positive and negative outcomes per case. "Before making the
final decision, poscnt and negcnt are compared. If poscnt is greater, then
a regular switching is made. Otherwise, the opposite direction will be
chosen" — the opposite being the third policy of the {ICOUNT, BRCOUNT,
L1MISSCOUNT} triangle.

(The paper's own conclusion: this is *not* worth it — "there seemed to be
no correlation in time domain regarding the fetch policies". The
reproduction keeps it faithful so Figure 7(d)'s extra malignant switches
can be observed.)
"""

from __future__ import annotations

from repro.core.heuristics.base import Decision
from repro.core.heuristics.type3 import Type3GradientHeuristic
from repro.core.history import SwitchHistoryBuffer
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig

_TRIANGLE = {"icount", "brcount", "l1misscount"}


class Type4Heuristic(Type3GradientHeuristic):
    name = "type4"
    cost_instructions = 192

    def __init__(
        self,
        thresholds: ThresholdConfig | None = None,
        history_capacity: int = 64,
    ) -> None:
        super().__init__(thresholds)
        self.history = SwitchHistoryBuffer(history_capacity)

    def decide(self, incumbent: str, obs: QuantumObservation) -> Decision:
        tentative = super().decide(incumbent, obs)
        if not tentative.switched:
            return tentative
        key = (incumbent, obs.cond_mem(self.thresholds), obs.cond_br(self.thresholds))
        entry = self.history.lookup(key)
        if entry.poscnt == entry.negcnt == 0 or entry.favourable:
            choice, how = tentative.next_policy, "regular"
        else:
            opposite = _TRIANGLE - {incumbent, tentative.next_policy}
            choice = opposite.pop() if opposite else tentative.next_policy
            how = "opposite (history unfavourable)"
        self.history.note_switch(key)
        return Decision(
            choice,
            switched=choice != incumbent,
            reason=f"type4 {how} [{tentative.reason}]",
        )

    def record_outcome(self, improved: bool) -> None:
        self.history.record_outcome(improved)

    def reset(self) -> None:
        self.history = SwitchHistoryBuffer(self.history.capacity)
