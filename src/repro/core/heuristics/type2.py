"""Type 2 — fixed three-state cycle (Figure 5).

Like Type 1 but with L1MISSCOUNT added to the finite state machine; the
transition order is ICOUNT → L1MISSCOUNT → BRCOUNT → ICOUNT → … ("the
variants based on this scheme can be made by changing the sequence of the
transitions"), still without consulting any status indicator.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.heuristics.base import Decision, Heuristic
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig


class Type2Heuristic(Heuristic):
    name = "type2"
    cost_instructions = 24

    def __init__(
        self,
        thresholds: ThresholdConfig | None = None,
        sequence: Sequence[str] = ("icount", "l1misscount", "brcount"),
    ) -> None:
        super().__init__(thresholds)
        if len(sequence) < 2:
            raise ValueError("Type 2 needs at least two policies in its cycle")
        self.sequence = tuple(sequence)

    def decide(self, incumbent: str, obs: QuantumObservation) -> Decision:
        try:
            idx = self.sequence.index(incumbent)
        except ValueError:
            idx = -1  # unknown incumbent: restart the cycle at its head
        nxt = self.sequence[(idx + 1) % len(self.sequence)]
        return Decision(nxt, switched=nxt != incumbent, reason="type2 cyclic transition")
