"""Heuristic interface.

A heuristic is consulted only when the detector thread has classified the
previous quantum as low-throughput; it returns the fetch policy to engage
for the next quantum (possibly the incumbent, i.e. no switch). The
``cost_instructions`` attribute is the heuristic's decision-code footprint
in detector-thread instructions — richer heuristics cost more idle slots
(§4.3.1's sophistication/overhead trade-off), which the
:class:`~repro.core.detector.DetectorThread` charges for.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig


@dataclass(frozen=True)
class Decision:
    """A heuristic's verdict for the next quantum."""

    next_policy: str
    switched: bool
    reason: str = ""


class Heuristic(abc.ABC):
    """Base class for Determine_NewPolicy() implementations."""

    #: registry name; subclasses set this.
    name: str = ""
    #: decision-code size in DT instructions (see module docstring).
    cost_instructions: int = 32

    def __init__(self, thresholds: ThresholdConfig | None = None) -> None:
        self.thresholds = thresholds or ThresholdConfig()

    @abc.abstractmethod
    def decide(self, incumbent: str, obs: QuantumObservation) -> Decision:
        """Choose the policy for the next quantum.

        Called only on low-throughput quanta; ``obs`` is the finished
        quantum's observation and ``incumbent`` the policy that produced it.
        """

    def record_outcome(self, improved: bool) -> None:
        """Feedback hook: the quantum after a switch improved or not.

        Only Type 4 uses this (its switching history buffer).
        """

    def reset(self) -> None:
        """Clear any internal state between runs."""

    def __repr__(self) -> str:
        return f"<Heuristic {self.name}>"
