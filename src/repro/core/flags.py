"""Thread control flags.

"A thread will have its own set of flags. A flag may tell whether a thread
can be fetched in the next cycle while another flag may tell whether it
should be context-switched in the next opportunity." (§4)

The flags object is the write-side interface the detector thread uses; the
pipeline's fetch gate reads the same state through
:class:`~repro.smt.context.ThreadContext`.
"""

from __future__ import annotations

from typing import Dict, List


class ThreadControlFlags:
    """Per-thread control bits shared between the DT and the TSU."""

    def __init__(self, processor) -> None:
        self._processor = processor

    # -- fetch-inhibit flag ---------------------------------------------------
    def set_fetchable(self, tid: int, fetchable: bool) -> None:
        """Allow or inhibit instruction fetch for context ``tid``."""
        self._processor.contexts[tid].fetchable = fetchable

    def is_fetchable(self, tid: int) -> bool:
        """Current fetch-inhibit flag state of ``tid``."""
        return self._processor.contexts[tid].fetchable

    # -- context-switch flag ---------------------------------------------------
    def mark_for_suspension(self, tid: int) -> None:
        """Flag ``tid`` as clogging: the job scheduler should swap it out.

        The flag by itself changes nothing (the OS acts on it); the paper's
        point is that the job scheduler finds the victim pre-identified.
        """
        self._processor.contexts[tid].suspended = False  # not yet suspended
        self._marks().add(tid)

    def clear_suspension_mark(self, tid: int) -> None:
        """Withdraw a clogging mark."""
        self._marks().discard(tid)

    def marked_for_suspension(self) -> List[int]:
        """Threads currently flagged for the job scheduler (sorted)."""
        return sorted(self._marks())

    def suspend_now(self, tid: int) -> None:
        """Job-scheduler action: actually stop the thread (examples use
        this to demonstrate the §3 context-switch path)."""
        self._processor.contexts[tid].suspended = True
        self._marks().discard(tid)

    def resume(self, tid: int) -> None:
        """Job-scheduler action: let a suspended thread run again."""
        self._processor.contexts[tid].suspended = False

    def _marks(self) -> set:
        marks = getattr(self._processor, "_suspension_marks", None)
        if marks is None:
            marks = set()
            self._processor._suspension_marks = marks
        return marks

    def snapshot(self) -> Dict[int, Dict[str, bool]]:
        """Debug/report view of every thread's flags."""
        return {
            ctx.tid: {
                "fetchable": ctx.fetchable,
                "suspended": ctx.suspended,
                "marked": ctx.tid in self._marks(),
            }
            for ctx in self._processor.contexts
        }
