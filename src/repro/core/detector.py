"""Functional model of the detector thread (§3, §4.1).

The DT is a real (if special) thread: its program loops over
Status-check → Identify_CloggingThreads() → Determine_NewPolicy() →
Policy_Switch() → Policy_Enforce(). We model it functionally — the *work*
is Python code in the controller — but charge its *cost* faithfully: each
piece of DT work is a :class:`DetectorTask` with an instruction budget, and
the DT only executes instructions in fetch slots the normal threads left
idle (it has the lowest priority; "as long as the instruction fetch buffer
is full, no instructions from the detector thread can be fetched").

Consequences preserved from the paper:

* under high utilization the DT starves and decisions are delayed
  (acceptable — "it means that the processor pipeline slots are enjoying
  high utilization");
* richer heuristics cost more slots (§4.3.1's trade-off);
* DT work completes with a latency, so policy switches land mid-quantum.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional


@dataclass
class DetectorTask:
    """A unit of detector-thread work.

    Attributes:
        name: task label (for the activity log).
        instructions: DT instruction budget the task consumes.
        on_complete: callback fired when the last instruction executes.
        enqueued_at: cycle the task was queued (set by the DT).
    """

    name: str
    instructions: int
    on_complete: Optional[Callable[[int], None]] = None
    enqueued_at: int = -1


@dataclass
class TaskCompletion:
    """Record of one finished DT task, for overhead analysis."""

    name: str
    enqueued_at: int
    completed_at: int
    instructions: int

    @property
    def latency(self) -> int:
        return self.completed_at - self.enqueued_at


class DetectorThread:
    """Executes queued tasks using idle fetch slots.

    ``width`` caps how many DT instructions can retire per cycle even when
    more slots are idle (the DT context is a single thread; the paper's
    2–4 KB PRAM feeds at most a fetch block per cycle).
    """

    def __init__(self, width: int = 8, instant: bool = False) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.instant = instant
        self._queue: Deque[DetectorTask] = deque()
        self._remaining = 0
        # Telemetry.
        self.instructions_executed = 0
        self.active_cycles = 0
        self.starved_cycles = 0
        self.dropped_tasks = 0
        self.dropped_instructions = 0
        self.completions: List[TaskCompletion] = []

    @property
    def busy(self) -> bool:
        return bool(self._queue)

    @property
    def backlog_instructions(self) -> int:
        if not self._queue:
            return 0
        return self._remaining + sum(t.instructions for t in list(self._queue)[1:])

    def enqueue(self, task: DetectorTask, now: int) -> None:
        """Queue DT work; in ``instant`` mode it completes immediately
        (the zero-overhead ablation)."""
        task.enqueued_at = now
        if self.instant:
            self.instructions_executed += task.instructions
            self.completions.append(
                TaskCompletion(task.name, now, now, task.instructions)
            )
            if task.on_complete:
                task.on_complete(now)
            return
        was_empty = not self._queue
        self._queue.append(task)
        if was_empty:
            self._remaining = task.instructions

    def on_cycle(self, now: int, idle_slots: int) -> int:
        """Make progress with this cycle's idle slots; returns slots used."""
        if not self._queue:
            return 0
        self.active_cycles += 1
        if idle_slots <= 0:
            self.starved_cycles += 1
            return 0
        budget = min(idle_slots, self.width)
        consumed = 0
        while budget > 0 and self._queue:
            step = min(budget, self._remaining)
            self._remaining -= step
            budget -= step
            consumed += step
            if self._remaining == 0:
                task = self._queue.popleft()
                self.completions.append(
                    TaskCompletion(task.name, task.enqueued_at, now, task.instructions)
                )
                if task.on_complete:
                    task.on_complete(now)
                if self._queue:
                    self._remaining = self._queue[0].instructions
        self.instructions_executed += consumed
        return consumed

    def drop_all(self) -> int:
        """Abandon queued work (used when a decision becomes stale, when a
        fault loses the queue, or when the watchdog re-arms)."""
        dropped = len(self._queue)
        self.dropped_tasks += dropped
        self.dropped_instructions += self.backlog_instructions
        self._queue.clear()
        self._remaining = 0
        return dropped

    def mean_task_latency(self) -> float:
        """Mean enqueue-to-completion latency over finished tasks."""
        if not self.completions:
            return 0.0
        return sum(c.latency for c in self.completions) / len(self.completions)
