"""The ADTS controller: wires the detector thread into the pipeline.

Implements the §4 software architecture (Figure 2/3): at every quantum
boundary the status counters are read; if ``IPC_last < IPC_thold`` the
quantum is low-throughput, Identify_CloggingThreads() marks the clogging
threads' control flags, Determine_NewPolicy() picks a replacement policy,
and Policy_Switch() engages it — all of it *charged to the detector
thread*, which progresses only through idle fetch slots, so the switch
lands some cycles into the next quantum (or is skipped entirely if the DT
is still busy, which the controller records).

Robustness: the controller carries a **watchdog** (§3's implicit contract
that ADTS must degrade gracefully when the machine misbehaves). Two failure
signatures trigger a fallback to safe-mode fixed ICOUNT for a configurable
number of quanta before re-arming:

* **implausible counter readings** — an IPC outside the machine's physical
  range, per-thread committed counts that exceed the commit bandwidth or go
  negative, per-thread sums that disagree with the aggregate, or a replayed
  (non-monotonic) quantum index — the signatures of stale or bit-flipped
  status registers;
* **persistent decision starvation** — many *consecutive* missed decisions.
  Occasional misses are the paper's benign high-utilization case; an
  unbroken streak means the control loop is effectively dead.

While in safe mode the controller stops consulting the heuristics (garbage
in, garbage out), drops any queued detector-thread work, and re-asserts the
safe policy at every boundary (the actuation path itself may be faulty).
Every fallback is recorded in the decision log and ``summary()``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.clogging import identify_clogging_threads
from repro.core.detector import DetectorTask, DetectorThread
from repro.core.flags import ThreadControlFlags
from repro.core.heuristics import Heuristic, create_heuristic
from repro.core.history import SwitchQualityLedger
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig
from repro.smt.pipeline import SchedulerHook

#: DT instruction budgets for the fixed parts of the loop (§4.1); the
#: heuristic's own cost comes from ``Heuristic.cost_instructions``.
CHECK_COST = 64
IDENTIFY_COST = 128
SWITCH_COST = 32


@dataclass(frozen=True)
class WatchdogConfig:
    """Knobs for the controller's graceful-degradation watchdog.

    Attributes:
        missed_decision_limit: consecutive missed decisions before fallback.
            Deliberately generous — isolated misses are the paper's benign
            high-utilization case, not a fault.
        implausible_limit: consecutive implausible counter readings before
            fallback.
        safe_mode_quanta: quanta to hold the safe policy before re-arming.
        safe_policy: the fixed policy engaged during safe mode (ICOUNT, the
            best-on-average Table-1 policy, per §4.3.3).
        max_ipc: IPC plausibility ceiling; None uses the machine's commit
            width (nothing can commit faster than the commit bandwidth).
    """

    missed_decision_limit: int = 8
    implausible_limit: int = 2
    safe_mode_quanta: int = 8
    safe_policy: str = "icount"
    max_ipc: Optional[float] = None

    def __post_init__(self) -> None:
        if self.missed_decision_limit < 1:
            raise ValueError("missed_decision_limit must be >= 1")
        if self.implausible_limit < 1:
            raise ValueError("implausible_limit must be >= 1")
        if self.safe_mode_quanta < 1:
            raise ValueError("safe_mode_quanta must be >= 1")
        if self.max_ipc is not None and self.max_ipc <= 0:
            raise ValueError("max_ipc must be positive")


@dataclass
class DecisionLog:
    """One boundary's decision, for analysis."""

    quantum_index: int
    ipc: float
    low_throughput: bool
    incumbent: str
    chosen: str
    switched: bool
    reason: str = ""
    applied_at_cycle: int = -1


class ADTSController(SchedulerHook):
    """Adaptive Dynamic Thread Scheduling, as a pipeline scheduler hook."""

    def __init__(
        self,
        heuristic: str | Heuristic = "type3",
        thresholds: Optional[ThresholdConfig] = None,
        detector: Optional[DetectorThread] = None,
        instant_dt: bool = False,
        mark_clogging: bool = True,
        inhibit_cloggers: bool = False,
        autotune=None,
        watchdog: Optional[WatchdogConfig] = None,
    ) -> None:
        self.thresholds = thresholds or ThresholdConfig()
        if isinstance(heuristic, str):
            self.heuristic = create_heuristic(heuristic, thresholds=self.thresholds)
        else:
            self.heuristic = heuristic
        self.detector = detector or DetectorThread(instant=instant_dt)
        self.mark_clogging = mark_clogging
        #: §3's stronger action: "preventing a specific thread from being
        #: fetched". Inhibition lasts one quantum (re-evaluated each
        #: boundary), so no thread can starve indefinitely.
        self.inhibit_cloggers = inhibit_cloggers
        self._inhibited: set = set()
        #: optional ThresholdAutoTuner (§4.3.2's threshold-update kernel).
        self.autotune = autotune
        self.watchdog = watchdog or WatchdogConfig()
        self.ledger = SwitchQualityLedger()
        self.decisions: List[DecisionLog] = []
        self.missed_decisions = 0
        self.low_throughput_quanta = 0
        # Watchdog state/telemetry.
        self.fallback_events = 0
        self.implausible_quanta = 0
        self.safe_mode_quanta_spent = 0
        self._missed_streak = 0
        self._implausible_streak = 0
        self._safe_until = -1  # first quantum index past safe mode (-1 = armed)
        self._last_seen_index = -1
        self._prev_ipc = 0.0
        self._awaiting_outcome = False
        self._ipc_before_switch = 0.0
        self.processor = None
        self.flags: Optional[ThreadControlFlags] = None
        self._commit_width = 8  # refined at attach()

    # -- SchedulerHook ------------------------------------------------------
    def attach(self, processor) -> None:
        self.processor = processor
        self.flags = ThreadControlFlags(processor)
        self._commit_width = getattr(processor.config, "commit_width", self._commit_width)

    def on_cycle(self, now: int, idle_slots: int) -> int:
        return self.detector.on_cycle(now, idle_slots)

    def on_quantum_end(self, now: int, record, snapshots) -> None:
        # Fetch inhibition is a one-quantum action: lift it first — always,
        # including in safe mode, so no thread stays inhibited indefinitely.
        if self._inhibited:
            for tid in self._inhibited:
                self.flags.set_fetchable(tid, True)
            self._inhibited.clear()

        plausible = self._plausible(record, snapshots)
        if plausible:
            self._implausible_streak = 0
            if record.index > self._last_seen_index:
                self._last_seen_index = record.index
        else:
            self.implausible_quanta += 1
            self._implausible_streak += 1

        if self.in_safe_mode:
            if record.index < self._safe_until:
                self.safe_mode_quanta_spent += 1
                # Re-assert the fallback every boundary: the actuation path
                # itself may be faulty (dropped or spurious switches).
                if self.processor.policy_name != self.watchdog.safe_policy:
                    self.processor.set_policy(self.watchdog.safe_policy)
                if plausible:
                    self._prev_ipc = record.ipc
                return
            # Safe window served: re-arm the adaptive loop.
            self._safe_until = -1
            self._missed_streak = 0
            self._implausible_streak = 0

        if not plausible:
            # Never feed corrupt telemetry to the learner or the heuristics.
            if self._implausible_streak >= self.watchdog.implausible_limit:
                self._enter_safe_mode(
                    now,
                    record,
                    f"{self._implausible_streak} consecutive implausible counter readings",
                )
            return

        obs = QuantumObservation.from_snapshots(record, snapshots, prev_ipc=self._prev_ipc)
        # Let the threshold-management kernel re-calibrate (§4.3.2).
        if self.autotune is not None:
            self.thresholds = self.autotune.observe(obs)
            self.heuristic.thresholds = self.thresholds
        # Close out the previous switch's quality measurement.
        self.ledger.record_quantum_ipc(record.ipc)
        if self._awaiting_outcome:
            self.heuristic.record_outcome(record.ipc > self._ipc_before_switch)
            self._awaiting_outcome = False
        self._prev_ipc = record.ipc

        if not obs.low_throughput(self.thresholds):
            return
        self.low_throughput_quanta += 1
        if self.detector.busy:
            # Still chewing on the previous boundary's work: the paper's
            # starvation case. Skip this decision.
            self.missed_decisions += 1
            self._missed_streak += 1
            if self._missed_streak >= self.watchdog.missed_decision_limit:
                self._enter_safe_mode(
                    now, record, f"{self._missed_streak} consecutive missed decisions"
                )
            return
        self._missed_streak = 0

        incumbent = record.policy
        decision = self.heuristic.decide(incumbent, obs)
        log = DecisionLog(
            quantum_index=record.index,
            ipc=record.ipc,
            low_throughput=True,
            incumbent=incumbent,
            chosen=decision.next_policy,
            switched=decision.switched,
            reason=decision.reason,
        )
        self.decisions.append(log)

        # Charge the DT for the whole loop body, then act on completion.
        self.detector.enqueue(DetectorTask("ipc_check", CHECK_COST), now)
        if self.mark_clogging:
            # functools.partial over bound methods (not lambdas) so a
            # checkpoint taken while DT work is queued can pickle the queue.
            self.detector.enqueue(
                DetectorTask(
                    "identify_clogging",
                    IDENTIFY_COST,
                    on_complete=functools.partial(self._apply_clogging, snapshots),
                ),
                now,
            )
        self.detector.enqueue(
            DetectorTask("determine_policy", self.heuristic.cost_instructions), now
        )
        if decision.switched:
            self.detector.enqueue(
                DetectorTask(
                    "policy_switch",
                    SWITCH_COST,
                    on_complete=functools.partial(
                        self._apply_switch, decision, log, record.ipc, record.index
                    ),
                ),
                now,
            )

    # -- watchdog -------------------------------------------------------------
    @property
    def in_safe_mode(self) -> bool:
        """True while the watchdog holds the safe fixed policy."""
        return self._safe_until >= 0

    def _plausible(self, record, snapshots: Sequence) -> bool:
        """Sanity-check one boundary's telemetry against physical limits.

        Catches the signatures of stale or bit-flipped status counters:
        out-of-range IPC, per-thread committed counts beyond the commit
        bandwidth (or negative), per-thread sums that disagree with the
        aggregate the IPC check used, and replayed quantum indices.
        """
        cycles = record.cycles
        if cycles <= 0:
            return False
        if record.index <= self._last_seen_index:
            return False  # a quantum that is already over: stale counters
        max_commit = cycles * self._commit_width
        committed = record.committed
        if committed < 0 or committed > max_commit:
            return False
        max_ipc = self.watchdog.max_ipc
        if max_ipc is not None and record.ipc > max_ipc:
            return False
        total = 0
        for snap in snapshots:
            if not snap.is_non_negative() or snap.committed > max_commit:
                return False
            total += snap.committed
        if total != committed:
            return False
        return True

    def _enter_safe_mode(self, now: int, record, reason: str) -> None:
        """Fall back to the safe fixed policy for ``safe_mode_quanta``."""
        self.fallback_events += 1
        dropped = self.detector.drop_all()
        self._awaiting_outcome = False
        self._safe_until = record.index + 1 + self.watchdog.safe_mode_quanta
        self.processor.set_policy(self.watchdog.safe_policy)
        self.decisions.append(
            DecisionLog(
                quantum_index=record.index,
                ipc=record.ipc,
                low_throughput=True,
                incumbent=record.policy,
                chosen=self.watchdog.safe_policy,
                switched=True,
                reason=(
                    f"watchdog fallback: {reason}; dropped {dropped} queued DT "
                    f"task(s); fixed {self.watchdog.safe_policy} for "
                    f"{self.watchdog.safe_mode_quanta} quanta"
                ),
                applied_at_cycle=now,
            )
        )

    # -- actions --------------------------------------------------------------
    def _apply_switch(self, decision, log: DecisionLog, ipc_before: float, qindex: int, at_cycle: int) -> None:
        if self.in_safe_mode:
            # A stale switch completing after the watchdog tripped must not
            # override the fallback policy.
            log.reason += " [suppressed: safe mode]"
            return
        self.processor.set_policy(decision.next_policy)
        log.applied_at_cycle = at_cycle
        self.ledger.record_switch(qindex, log.incumbent, decision.next_policy, ipc_before)
        self._awaiting_outcome = True
        self._ipc_before_switch = ipc_before

    def _apply_clogging(self, snapshots, at_cycle: int) -> None:
        reports = identify_clogging_threads(snapshots)
        clogging = [r.tid for r in reports if r.clogging]
        for report in reports:
            if report.clogging:
                self.flags.mark_for_suspension(report.tid)
            else:
                self.flags.clear_suspension_mark(report.tid)
        if self.inhibit_cloggers and clogging:
            # Never inhibit everyone: leave at least half the contexts live.
            for tid in clogging[: max(1, len(reports) // 2)]:
                self.flags.set_fetchable(tid, False)
                self._inhibited.add(tid)

    # -- analysis -----------------------------------------------------------
    @property
    def num_switches(self) -> int:
        return self.ledger.num_switches

    @property
    def benign_probability(self) -> float:
        return self.ledger.benign_probability

    def summary(self) -> dict:
        """Run-level ADTS statistics (switches, quality, DT telemetry)."""
        return {
            "heuristic": self.heuristic.name,
            "ipc_threshold": self.thresholds.ipc_threshold,
            "low_throughput_quanta": self.low_throughput_quanta,
            "switches": self.num_switches,
            "benign_probability": self.benign_probability,
            "missed_decisions": self.missed_decisions,
            "fallback_events": self.fallback_events,
            "implausible_quanta": self.implausible_quanta,
            "safe_mode_quanta": self.safe_mode_quanta_spent,
            "dt_instructions": self.detector.instructions_executed,
            "dt_starved_cycles": self.detector.starved_cycles,
            "dt_dropped_tasks": self.detector.dropped_tasks,
            "dt_mean_task_latency": self.detector.mean_task_latency(),
        }
