"""The ADTS controller: wires the detector thread into the pipeline.

Implements the §4 software architecture (Figure 2/3): at every quantum
boundary the status counters are read; if ``IPC_last < IPC_thold`` the
quantum is low-throughput, Identify_CloggingThreads() marks the clogging
threads' control flags, Determine_NewPolicy() picks a replacement policy,
and Policy_Switch() engages it — all of it *charged to the detector
thread*, which progresses only through idle fetch slots, so the switch
lands some cycles into the next quantum (or is skipped entirely if the DT
is still busy, which the controller records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.clogging import identify_clogging_threads
from repro.core.detector import DetectorTask, DetectorThread
from repro.core.flags import ThreadControlFlags
from repro.core.heuristics import Heuristic, create_heuristic
from repro.core.history import SwitchQualityLedger
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig
from repro.smt.pipeline import SchedulerHook

#: DT instruction budgets for the fixed parts of the loop (§4.1); the
#: heuristic's own cost comes from ``Heuristic.cost_instructions``.
CHECK_COST = 64
IDENTIFY_COST = 128
SWITCH_COST = 32


@dataclass
class DecisionLog:
    """One boundary's decision, for analysis."""

    quantum_index: int
    ipc: float
    low_throughput: bool
    incumbent: str
    chosen: str
    switched: bool
    reason: str = ""
    applied_at_cycle: int = -1


class ADTSController(SchedulerHook):
    """Adaptive Dynamic Thread Scheduling, as a pipeline scheduler hook."""

    def __init__(
        self,
        heuristic: str | Heuristic = "type3",
        thresholds: Optional[ThresholdConfig] = None,
        detector: Optional[DetectorThread] = None,
        instant_dt: bool = False,
        mark_clogging: bool = True,
        inhibit_cloggers: bool = False,
        autotune=None,
    ) -> None:
        self.thresholds = thresholds or ThresholdConfig()
        if isinstance(heuristic, str):
            self.heuristic = create_heuristic(heuristic, thresholds=self.thresholds)
        else:
            self.heuristic = heuristic
        self.detector = detector or DetectorThread(instant=instant_dt)
        self.mark_clogging = mark_clogging
        #: §3's stronger action: "preventing a specific thread from being
        #: fetched". Inhibition lasts one quantum (re-evaluated each
        #: boundary), so no thread can starve indefinitely.
        self.inhibit_cloggers = inhibit_cloggers
        self._inhibited: set = set()
        #: optional ThresholdAutoTuner (§4.3.2's threshold-update kernel).
        self.autotune = autotune
        self.ledger = SwitchQualityLedger()
        self.decisions: List[DecisionLog] = []
        self.missed_decisions = 0
        self.low_throughput_quanta = 0
        self._prev_ipc = 0.0
        self._awaiting_outcome = False
        self._ipc_before_switch = 0.0
        self.processor = None
        self.flags: Optional[ThreadControlFlags] = None

    # -- SchedulerHook ------------------------------------------------------
    def attach(self, processor) -> None:
        self.processor = processor
        self.flags = ThreadControlFlags(processor)

    def on_cycle(self, now: int, idle_slots: int) -> int:
        return self.detector.on_cycle(now, idle_slots)

    def on_quantum_end(self, now: int, record, snapshots) -> None:
        obs = QuantumObservation.from_snapshots(record, snapshots, prev_ipc=self._prev_ipc)
        # Fetch inhibition is a one-quantum action: lift it first.
        if self._inhibited:
            for tid in self._inhibited:
                self.flags.set_fetchable(tid, True)
            self._inhibited.clear()
        # Let the threshold-management kernel re-calibrate (§4.3.2).
        if self.autotune is not None:
            self.thresholds = self.autotune.observe(obs)
            self.heuristic.thresholds = self.thresholds
        # Close out the previous switch's quality measurement.
        self.ledger.record_quantum_ipc(record.ipc)
        if self._awaiting_outcome:
            self.heuristic.record_outcome(record.ipc > self._ipc_before_switch)
            self._awaiting_outcome = False
        self._prev_ipc = record.ipc

        if not obs.low_throughput(self.thresholds):
            return
        self.low_throughput_quanta += 1
        if self.detector.busy:
            # Still chewing on the previous boundary's work: the paper's
            # starvation case. Skip this decision.
            self.missed_decisions += 1
            return

        incumbent = record.policy
        decision = self.heuristic.decide(incumbent, obs)
        log = DecisionLog(
            quantum_index=record.index,
            ipc=record.ipc,
            low_throughput=True,
            incumbent=incumbent,
            chosen=decision.next_policy,
            switched=decision.switched,
            reason=decision.reason,
        )
        self.decisions.append(log)

        # Charge the DT for the whole loop body, then act on completion.
        self.detector.enqueue(DetectorTask("ipc_check", CHECK_COST), now)
        if self.mark_clogging:
            self.detector.enqueue(
                DetectorTask(
                    "identify_clogging",
                    IDENTIFY_COST,
                    on_complete=lambda at, snaps=snapshots: self._apply_clogging(snaps),
                ),
                now,
            )
        self.detector.enqueue(
            DetectorTask("determine_policy", self.heuristic.cost_instructions), now
        )
        if decision.switched:
            self.detector.enqueue(
                DetectorTask(
                    "policy_switch",
                    SWITCH_COST,
                    on_complete=lambda at, d=decision, lg=log, ipc=record.ipc, qi=record.index:
                        self._apply_switch(at, d, lg, ipc, qi),
                ),
                now,
            )

    # -- actions --------------------------------------------------------------
    def _apply_switch(self, at_cycle: int, decision, log: DecisionLog, ipc_before: float, qindex: int) -> None:
        self.processor.set_policy(decision.next_policy)
        log.applied_at_cycle = at_cycle
        self.ledger.record_switch(qindex, log.incumbent, decision.next_policy, ipc_before)
        self._awaiting_outcome = True
        self._ipc_before_switch = ipc_before

    def _apply_clogging(self, snapshots) -> None:
        reports = identify_clogging_threads(snapshots)
        clogging = [r.tid for r in reports if r.clogging]
        for report in reports:
            if report.clogging:
                self.flags.mark_for_suspension(report.tid)
            else:
                self.flags.clear_suspension_mark(report.tid)
        if self.inhibit_cloggers and clogging:
            # Never inhibit everyone: leave at least half the contexts live.
            for tid in clogging[: max(1, len(reports) // 2)]:
                self.flags.set_fetchable(tid, False)
                self._inhibited.add(tid)

    # -- analysis -----------------------------------------------------------
    @property
    def num_switches(self) -> int:
        return self.ledger.num_switches

    @property
    def benign_probability(self) -> float:
        return self.ledger.benign_probability

    def summary(self) -> dict:
        """Run-level ADTS statistics (switches, quality, DT telemetry)."""
        return {
            "heuristic": self.heuristic.name,
            "ipc_threshold": self.thresholds.ipc_threshold,
            "low_throughput_quanta": self.low_throughput_quanta,
            "switches": self.num_switches,
            "benign_probability": self.benign_probability,
            "missed_decisions": self.missed_decisions,
            "dt_instructions": self.detector.instructions_executed,
            "dt_starved_cycles": self.detector.starved_cycles,
            "dt_mean_task_latency": self.detector.mean_task_latency(),
        }
