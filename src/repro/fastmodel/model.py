"""The fast quantum-level model.

Each thread is a Markov phase chain over its profile's phases; a quantum
maps the 8 threads' current phase states plus the active fetch policy to an
aggregate IPC through a two-part closed form:

* **per-thread demand** — a CPI model (base + branch penalty + memory
  stalls, damped by MLP) gives each thread's standalone throughput;
* **shared supply** — the fetch engine delivers ``fetch_bandwidth`` useful
  slots/cycle scaled by a *policy allocation efficiency* that depends on
  the mix state: ICOUNT is the best allocator in general but bleeds slots
  to wrong-path fetch when threads are in misprediction storms; BRCOUNT is
  a worse general allocator but recovers those slots; L1MISSCOUNT likewise
  for memory phases; RR is simply worse. These terms encode, at quantum
  granularity, exactly the §1 slot-waste mechanisms the detailed pipeline
  exhibits cycle by cycle.

The *actual* Type 1–4 heuristic implementations from
:mod:`repro.core.heuristics` drive policy switching on the model's emitted
:class:`~repro.core.quantum.QuantumObservation`s, so fast-model sweeps
exercise the real decision code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.heuristics import Heuristic, create_heuristic
from repro.core.history import SwitchQualityLedger
from repro.core.quantum import QuantumObservation
from repro.core.thresholds import ThresholdConfig
from repro.fastmodel.calibrate import CalibrationConstants, DEFAULT_CONSTANTS
from repro.util.seeds import SeedSequencer
from repro.workloads.mixes import get_mix
from repro.workloads.profiles import ApplicationProfile, PhaseProfile, get_profile

_BASE_PHASE = PhaseProfile()


def _l1_miss_per_load(p: ApplicationProfile, footprint_scale: float) -> float:
    """First-order L1D miss probability per load, mirroring the address
    generator's class structure (refresh + stream compulsory + cold/mid)."""
    hot = p.hot_fraction
    stream = p.stream_fraction
    other = max(0.0, 1.0 - hot - stream)
    return min(0.95, 0.12 * hot + stream / 8.0 + 0.85 * other)


def _dram_per_load(p: ApplicationProfile, footprint_scale: float) -> float:
    """First-order DRAM-trip probability per load (cold class + stream
    spill), mirroring ``DataAddressGenerator._cold_share``."""
    footprint = p.footprint_kb * 1024 * footprint_scale
    size_pressure = min(1.0, footprint / (64 * 1024 * 1024))
    locality_deficit = max(0.0, 1.0 - p.hot_fraction)
    cold_share = min(0.9, 0.10 + 0.5 * size_pressure * locality_deficit)
    other = max(0.0, 1.0 - p.hot_fraction - p.stream_fraction)
    return min(0.9, other * cold_share + 0.25 * p.stream_fraction / 8.0)


@dataclass
class _ThreadState:
    profile: ApplicationProfile
    phases: Tuple[PhaseProfile, ...]
    weights: np.ndarray
    phase: PhaseProfile
    remaining: int  # instructions left in the current phase
    # (l1_miss_per_load, dram_per_load) per phase, precomputed at
    # construction: the rates depend only on (profile, footprint_scale),
    # both fixed per phase, so recomputing them every quantum is waste.
    derived: Tuple[Tuple[float, float], ...] = ()
    phase_idx: int = 0

    @property
    def storming(self) -> bool:
        return self.phase.mispredict_scale > 1.5

    @property
    def memory_phase(self) -> bool:
        return self.phase.footprint_scale > 2.0 or self.phase.load_scale > 1.3


#: Per-policy (base-constant name, storm-delta scale, mem-delta scale);
#: scales multiply the corresponding brcount/l1miss deltas so the whole
#: Table 1 family is expressible from the four calibrated policies.
_POLICY_TRAITS: Dict[str, Tuple[str, str, float, str, float]] = {
    "icount": ("icount_base", "icount_storm_delta", 1.0, "icount_mem_delta", 1.0),
    "brcount": ("brcount_base", "brcount_storm_delta", 1.0, "brcount_mem_delta", 1.0),
    "l1misscount": ("l1miss_base", "l1miss_storm_delta", 1.0, "l1miss_mem_delta", 1.0),
    "l1dmisscount": ("l1miss_base", "l1miss_storm_delta", 1.0, "l1miss_mem_delta", 0.9),
    "l1imisscount": ("l1miss_base", "l1miss_storm_delta", 1.0, "l1miss_mem_delta", 0.4),
    "ldcount": ("l1miss_base", "l1miss_storm_delta", 1.0, "l1miss_mem_delta", 0.7),
    "memcount": ("l1miss_base", "l1miss_storm_delta", 1.0, "l1miss_mem_delta", 0.8),
    "accipc": ("rr_base", "icount_storm_delta", 0.3, "icount_mem_delta", 0.3),
    "stallcount": ("brcount_base", "brcount_storm_delta", 0.5, "l1miss_mem_delta", 0.5),
    "rr": ("rr_base", "icount_storm_delta", 0.0, "icount_mem_delta", 0.0),
}


class FastMixModel:
    """Per-quantum statistical model of one mix on the SMT machine."""

    def __init__(
        self,
        mix: Union[str, Sequence[str]],
        seed: int = 0,
        quantum_cycles: int = 8192,
        num_threads: int = 8,
        constants: CalibrationConstants = DEFAULT_CONSTANTS,
    ) -> None:
        if isinstance(mix, str):
            apps = get_mix(mix).subset(num_threads, seed=seed)
        else:
            apps = tuple(mix)
        self.apps = apps
        self.quantum_cycles = quantum_cycles
        self.constants = constants
        seeds = SeedSequencer(seed)
        self.rng = seeds.generator("fastmodel")
        self.threads: List[_ThreadState] = []
        for slot, name in enumerate(apps):
            profile = get_profile(name)
            phases = profile.phases or (_BASE_PHASE,)
            weights = np.array([p.weight for p in phases], dtype=float)
            weights /= weights.sum()
            derived = tuple(
                (_l1_miss_per_load(profile, ph.footprint_scale),
                 _dram_per_load(profile, ph.footprint_scale))
                for ph in phases
            )
            state = _ThreadState(profile, phases, weights, phases[0], 0, derived)
            self._enter_phase(state)
            self.threads.append(state)
        self._noise = 0.0
        self.quantum_index = 0

    # -- phase chain ----------------------------------------------------------
    def _enter_phase(self, state: _ThreadState) -> None:
        idx = int(self.rng.choice(len(state.phases), p=state.weights))
        state.phase = state.phases[idx]
        state.phase_idx = idx
        state.remaining = max(1, int(self.rng.geometric(1.0 / state.phase.mean_length)))

    def _advance_phase(self, state: _ThreadState, committed: int) -> None:
        state.remaining -= committed
        guard = 0
        while state.remaining <= 0:
            carry = state.remaining  # instructions already burned past the boundary
            self._enter_phase(state)
            state.remaining += carry
            guard += 1
            if guard >= 100:  # quanta vastly longer than phases: resample once
                state.remaining = max(1, state.remaining)
                break

    # -- per-quantum equations -------------------------------------------------
    def _thread_demand(self, state: _ThreadState) -> Tuple[float, Dict[str, float]]:
        """Standalone IPC and event rates (per instruction) for one thread."""
        c = self.constants
        p = state.profile
        ph = state.phase
        branch_per_instr = p.branch_frac * p.cond_branch_frac
        mispredict_per_branch = min(0.5, p.mispredict_target * ph.mispredict_scale)
        load_frac = min(0.7, p.load_frac * ph.load_scale)
        l1_miss, dram = state.derived[state.phase_idx]
        cpi = (
            c.base_cpi / max(0.5, ph.dep_scale)
            + branch_per_instr * mispredict_per_branch * c.mispredict_cost
            + load_frac * (l1_miss * c.l2_latency + dram * c.mem_latency) * c.mlp_damp
        )
        rates = {
            "cond_branch_per_instr": branch_per_instr,
            "mispredict_per_instr": branch_per_instr * mispredict_per_branch,
            "l1_miss_per_instr": load_frac * l1_miss,
            "mem_pressure": load_frac * (l1_miss + dram),
        }
        return 1.0 / cpi, rates

    def _policy_efficiency(self, policy: str, storm_share: float, mem_share: float) -> float:
        c = self.constants
        base_key, storm_key, storm_scale, mem_key, mem_scale = _POLICY_TRAITS.get(
            policy, ("rr_base", "icount_storm_delta", 0.0, "icount_mem_delta", 0.0)
        )
        eff = (
            getattr(c, base_key)
            + getattr(c, storm_key) * storm_scale * storm_share
            + getattr(c, mem_key) * mem_scale * mem_share
        )
        return max(0.3, min(1.0, eff))

    def run_quantum(self, policy: str) -> Tuple[float, QuantumObservation]:
        """Advance one quantum under ``policy``; returns (ipc, observation)."""
        c = self.constants
        demands, all_rates = [], []
        storm_share = 0.0
        mem_share = 0.0
        for state in self.threads:
            ipc1, rates = self._thread_demand(state)
            demands.append(ipc1)
            all_rates.append(rates)
            if state.storming:
                storm_share += 1.0 / len(self.threads)
            if state.memory_phase:
                mem_share += 1.0 / len(self.threads)
        demand = float(np.sum(demands))
        eff = self._policy_efficiency(policy, storm_share, mem_share)
        supply = c.fetch_bandwidth * (1.0 - c.smt_overhead) * eff
        ipc = min(demand, supply)
        # AR(1) multiplicative noise (phase-independent quantum jitter).
        self._noise = c.noise_rho * self._noise + self.rng.normal(0.0, c.noise_sigma)
        ipc = max(0.05, ipc * (1.0 + self._noise))

        # Aggregate per-cycle observation rates (what the DT's counters see).
        weights = np.array(demands) / max(1e-9, demand)
        mispredict_rate = ipc * float(
            np.dot(weights, [r["mispredict_per_instr"] for r in all_rates])
        )
        cond_rate = ipc * float(
            np.dot(weights, [r["cond_branch_per_instr"] for r in all_rates])
        )
        l1_rate = ipc * float(np.dot(weights, [r["l1_miss_per_instr"] for r in all_rates]))
        pressure = float(np.dot(weights, [r["mem_pressure"] for r in all_rates]))
        lsq_full_rate = max(0.0, min(8.0, 40.0 * (pressure - 0.10)))

        obs = QuantumObservation(
            index=self.quantum_index,
            cycles=self.quantum_cycles,
            ipc=ipc,
            prev_ipc=0.0,  # caller threads prev_ipc through run loops
            l1_miss_rate=l1_rate,
            lsq_full_rate=lsq_full_rate,
            mispredict_rate=mispredict_rate,
            cond_branch_rate=cond_rate,
        )
        # Evolve the phase chains by this quantum's committed work.
        committed_per_thread = ipc * self.quantum_cycles * weights
        for state, n in zip(self.threads, committed_per_thread):
            self._advance_phase(state, int(n))
        self.quantum_index += 1
        return ipc, obs


@dataclass
class FastRunResult:
    """Outcome of a fast-model run."""

    ipc: float
    quantum_ipcs: List[float] = field(default_factory=list)
    switches: int = 0
    benign_probability: float = 0.0
    policy_usage: Dict[str, int] = field(default_factory=dict)


def fast_run_fixed(
    mix: Union[str, Sequence[str]],
    policy: str = "icount",
    quanta: int = 64,
    seed: int = 0,
    quantum_cycles: int = 8192,
    constants: CalibrationConstants = DEFAULT_CONSTANTS,
) -> FastRunResult:
    """Fixed-policy fast run."""
    model = FastMixModel(mix, seed=seed, quantum_cycles=quantum_cycles, constants=constants)
    ipcs = [model.run_quantum(policy)[0] for _ in range(quanta)]
    return FastRunResult(
        ipc=float(np.mean(ipcs)),
        quantum_ipcs=ipcs,
        policy_usage={policy: quanta},
    )


def fast_serve(
    mix: Union[str, Sequence[str]],
    mode: str = "adts",
    policy: str = "icount",
    heuristic: str = "type3",
    threshold: float = 2.0,
    quanta: int = 64,
    seed: int = 0,
    quantum_cycles: int = 8192,
    constants: CalibrationConstants = DEFAULT_CONSTANTS,
) -> Dict[str, float]:
    """One request-shaped fast-model run, as a grid-cell-shaped payload.

    This is the simulation service's degraded tier: same payload keys as
    the detailed engine's ``service_cell`` task (``ipc`` / ``switches`` /
    ``benign_probability``), so a degraded response is a drop-in for a
    full-fidelity one — only the response's ``tier``/``degraded`` marking
    tells them apart.
    """
    if mode == "adts":
        r = fast_run_adts(
            mix, heuristic, ThresholdConfig(ipc_threshold=threshold),
            quanta=quanta, seed=seed, quantum_cycles=quantum_cycles,
            constants=constants,
        )
    else:
        r = fast_run_fixed(
            mix, policy, quanta=quanta, seed=seed,
            quantum_cycles=quantum_cycles, constants=constants,
        )
    return {
        "ipc": r.ipc,
        "switches": r.switches,
        "benign_probability": r.benign_probability,
    }


def fast_run_adts(
    mix: Union[str, Sequence[str]],
    heuristic: Union[str, Heuristic] = "type3",
    thresholds: Optional[ThresholdConfig] = None,
    quanta: int = 64,
    seed: int = 0,
    quantum_cycles: int = 8192,
    constants: CalibrationConstants = DEFAULT_CONSTANTS,
) -> FastRunResult:
    """ADTS fast run: the real heuristic drives policy switching on the
    model's observations (instant-DT approximation; the detailed engine
    charges DT latency)."""
    thresholds = thresholds or ThresholdConfig()
    heur = create_heuristic(heuristic, thresholds=thresholds) if isinstance(heuristic, str) else heuristic
    model = FastMixModel(mix, seed=seed, quantum_cycles=quantum_cycles, constants=constants)
    ledger = SwitchQualityLedger()
    policy = "icount"
    usage: Dict[str, int] = {}
    ipcs: List[float] = []
    prev_ipc = 0.0
    awaiting = False
    ipc_before = 0.0
    for q in range(quanta):
        ipc, obs = model.run_quantum(policy)
        ipcs.append(ipc)
        usage[policy] = usage.get(policy, 0) + 1
        obs = QuantumObservation(
            index=obs.index,
            cycles=obs.cycles,
            ipc=obs.ipc,
            prev_ipc=prev_ipc,
            l1_miss_rate=obs.l1_miss_rate,
            lsq_full_rate=obs.lsq_full_rate,
            mispredict_rate=obs.mispredict_rate,
            cond_branch_rate=obs.cond_branch_rate,
        )
        ledger.record_quantum_ipc(ipc)
        if awaiting:
            heur.record_outcome(ipc > ipc_before)
            awaiting = False
        if obs.low_throughput(thresholds):
            decision = heur.decide(policy, obs)
            if decision.switched:
                ledger.record_switch(q, policy, decision.next_policy, ipc)
                awaiting = True
                ipc_before = ipc
                policy = decision.next_policy
        prev_ipc = ipc
    return FastRunResult(
        ipc=float(np.mean(ipcs)),
        quantum_ipcs=ipcs,
        switches=ledger.num_switches,
        benign_probability=ledger.benign_probability,
        policy_usage=usage,
    )
