"""Calibration constants for the fast model, and a fitting utility.

The fast model's constants were chosen so that its per-mix fixed-policy
IPCs and policy orderings track the detailed simulator on the quick mix set
(see EXPERIMENTS.md). `calibrate_against_detailed` re-fits the two global
scale constants if the detailed simulator's calibration changes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Sequence


@dataclass(frozen=True)
class CalibrationConstants:
    """Free parameters of the fast model's contention/CPI equations.

    CPI model (per thread):
        cpi = base_cpi + mispredict_rate*branch_frac*mispredict_cost
            + load_frac*(l1_miss*l2_latency + l2_miss_bpi*mem_latency)*mlp_damp

    Contention model: threads share ``fetch_bandwidth`` useful slots per
    cycle; the active policy sets an allocation efficiency (how well slots
    go to threads that can use them) and a per-policy misallocation cost.
    """

    base_cpi: float = 1.15
    mispredict_cost: float = 14.0
    l2_latency: float = 11.0
    mem_latency: float = 111.0
    mlp_damp: float = 0.50
    fetch_bandwidth: float = 3.0
    smt_overhead: float = 0.12  # fraction of bandwidth lost to sharing
    # Policy allocation-efficiency terms: eff = base + storm_delta *
    # storm_share + mem_delta * mem_share. ICOUNT is the best general
    # allocator but bleeds fetch slots to wrong-path instructions when
    # threads are in misprediction storms (§1) and keeps feeding
    # memory-thrashing threads whose pipes look empty; the cause-specific
    # policies are worse allocators in general but recover those slots.
    icount_base: float = 0.97
    icount_storm_delta: float = -1.50
    icount_mem_delta: float = -0.45
    brcount_base: float = 0.87
    brcount_storm_delta: float = +0.18
    brcount_mem_delta: float = -0.15
    l1miss_base: float = 0.87
    l1miss_storm_delta: float = -0.10
    l1miss_mem_delta: float = +0.20
    rr_base: float = 0.82
    noise_sigma: float = 0.08  # per-quantum AR(1) noise
    noise_rho: float = 0.4


DEFAULT_CONSTANTS = CalibrationConstants()


def calibrate_against_detailed(
    mixes: Sequence[str] = ("mix02", "mix05", "mix09", "mix10"),
    quanta: int = 16,
    quantum_cycles: int = 2048,
    constants: CalibrationConstants = DEFAULT_CONSTANTS,
) -> CalibrationConstants:
    """Re-fit the two global scale constants (base_cpi, fetch_bandwidth) so
    the fast model's fixed-ICOUNT IPC matches the detailed simulator on the
    given mixes (ratio-of-means fit, one pass — not a full optimizer)."""
    from repro import build_processor
    from repro.fastmodel.model import FastMixModel

    detailed: Dict[str, float] = {}
    for mix in mixes:
        proc = build_processor(mix=mix, quantum_cycles=quantum_cycles)
        proc.run_quanta(quanta)
        detailed[mix] = proc.stats.ipc
    fast: Dict[str, float] = {}
    for mix in mixes:
        model = FastMixModel(mix, seed=0, quantum_cycles=quantum_cycles, constants=constants)
        ipcs = [model.run_quantum("icount")[0] for _ in range(quanta)]
        fast[mix] = sum(ipcs) / len(ipcs)
    ratio = sum(detailed.values()) / max(1e-9, sum(fast.values()))
    # Bandwidth scales throughput in the saturated regime; apply the whole
    # correction there (base_cpi dominates the unsaturated regime, which the
    # quick mixes are not in).
    return replace(constants, fetch_bandwidth=constants.fetch_bandwidth * ratio)
