"""Quantum-granularity statistical model for wide parameter sweeps.

The detailed pipeline simulates ~15–25K cycles/s in CPython; the full
Figure 7/8 grid (5 thresholds x 5 heuristics x 13 mixes) at paper scale
would take hours. This package provides a vectorized per-quantum model:
each thread is a Markov phase chain emitting event *rates*; a closed-form
contention model maps the 8 threads' states plus the active fetch policy to
an aggregate quantum IPC. The real ADTS heuristics (the exact classes from
:mod:`repro.core.heuristics`) run unchanged on the emitted observations.

Calibration targets the detailed simulator (see `calibrate.py`); the
benchmarks label which engine produced each series.
"""

from repro.fastmodel.model import (
    FastMixModel,
    FastRunResult,
    fast_run_adts,
    fast_run_fixed,
    fast_serve,
)
from repro.fastmodel.calibrate import CalibrationConstants, DEFAULT_CONSTANTS, calibrate_against_detailed

__all__ = [
    "FastMixModel",
    "FastRunResult",
    "fast_run_fixed",
    "fast_run_adts",
    "fast_serve",
    "CalibrationConstants",
    "DEFAULT_CONSTANTS",
    "calibrate_against_detailed",
]
