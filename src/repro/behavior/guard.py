"""In-service drift guard: rolling-window comparison against a baseline.

The guard runs inside ``SimulationService``/``ShardedService`` pump
loops. Each ``observe(now, summary)`` appends a flattened snapshot to a
sliding window; once the window spans enough admitted traffic the guard
computes windowed per-request rates (:func:`~repro.behavior.profile.
service_rates`) and compares them against the baseline profile's
``rate.*`` metrics with :func:`~repro.behavior.drift.compute_drift`.

On *sustained* drift it escalates through the robustness ladder instead
of aborting — mirroring the Autoscaler's hysteresis (consecutive-streak
thresholds, cooldown, bounded event log) so a single noisy window never
flaps the guard:

* level 0 ``steady``   — baseline and live window agree,
* level 1 ``warning``  — sustained warn: telemetry event + log.warning,
* level 2 ``drifting`` — sustained drift: event, log.warning, optional
  ``on_escalate`` hook, and (opt-in) degradation pressure: services
  answer degradable requests with the fast model while the guard holds
  level 2. Requests are still answered exactly once — degradation is a
  quality knob, never a drop — so the drain contract holds.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

from repro.behavior.drift import (
    VERDICT_DRIFT,
    VERDICT_OK,
    VERDICT_WARN,
    DriftConfig,
    DriftReport,
    compute_drift,
)
from repro.behavior.profile import flatten_metrics, service_rates

log = logging.getLogger("repro.behavior")

#: Guard levels, index == level.
LEVELS = ("steady", "warning", "drifting")


@dataclass(frozen=True)
class DriftGuardConfig:
    """Hysteresis knobs for in-service drift detection.

    Attributes:
        window: snapshots kept in the sliding window; the rates are
            computed across the whole window (oldest vs newest).
        min_submitted: admitted requests the window must span before
            any comparison runs — tiny windows are all noise.
        warn_streak: consecutive non-ok comparisons before escalating
            to level 1.
        drift_streak: consecutive ``drift`` comparisons before
            escalating to level 2.
        clear_streak: consecutive ``ok`` comparisons before stepping
            back down one level (never jumps straight to steady).
        cooldown_s: minimum seconds between level *changes*.
        degrade_on_drift: when True, :attr:`DriftGuard.degrade_active`
            goes high at level 2 and services answer degradable
            requests with the fast model until the guard steps down.
        max_events: bound on the retained event log.
        drift: tolerance bands for the windowed comparison. Rates are
            per-request fractions, so the floor must be far below 1.0.
    """

    window: int = 64
    min_submitted: int = 8
    warn_streak: int = 4
    drift_streak: int = 6
    clear_streak: int = 6
    cooldown_s: float = 2.0
    degrade_on_drift: bool = False
    max_events: int = 256
    # Wide bands by design: a rolling window is compared against the
    # baseline's *whole-run* rates, and load phases (burst, drain)
    # legitimately deviate from the run average. Only sustained, large
    # departures should climb the ladder.
    drift: DriftConfig = field(
        default_factory=lambda: DriftConfig(
            rel_tol=0.5, abs_floor=0.1, warn_fraction=0.75
        )
    )

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if self.min_submitted < 1:
            raise ValueError("min_submitted must be >= 1")
        for name in ("warn_streak", "drift_streak", "clear_streak"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")


@dataclass(frozen=True)
class GuardEvent:
    """One guard level transition (or periodic drift re-assertion)."""

    t: float
    kind: str  # escalate | clear
    level: int
    verdict: str
    detail: str

    def to_dict(self) -> dict:
        """JSON-ready form for event streams and reports."""
        return {
            "t": round(self.t, 6),
            "kind": self.kind,
            "level": self.level,
            "state": LEVELS[self.level],
            "verdict": self.verdict,
            "detail": self.detail,
        }


class DriftGuard:
    """Clock-agnostic rolling drift detector with escalation hysteresis."""

    def __init__(
        self,
        baseline: Mapping[str, float],
        config: Optional[DriftGuardConfig] = None,
        baseline_id: Optional[str] = None,
        on_escalate: Optional[Callable[[GuardEvent], None]] = None,
    ) -> None:
        # Only the baseline's windowed-rate metrics are comparable online.
        metrics = getattr(baseline, "metrics", baseline)
        self.baseline: Dict[str, float] = {
            k: float(v) for k, v in metrics.items() if k.startswith("rate.")
        }
        if not self.baseline:
            raise ValueError("baseline carries no rate.* metrics")
        self.baseline_id = baseline_id or getattr(baseline, "profile_id", None)
        self.config = config or DriftGuardConfig()
        self.on_escalate = on_escalate
        self._window: Deque[Dict[str, float]] = deque(maxlen=self.config.window)
        self.level = 0
        self.last_report: Optional[DriftReport] = None
        self.last_verdict: Optional[str] = None
        self._bad_streak = 0  # consecutive non-ok comparisons
        self._drift_streak = 0  # consecutive drift comparisons
        self._ok_streak = 0
        self._last_change_t: Optional[float] = None
        self.comparisons = 0
        self.escalations = 0
        self.clears = 0
        self.events: List[GuardEvent] = []
        self._pending: Deque[GuardEvent] = deque()

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> str:
        return LEVELS[self.level]

    @property
    def degrade_active(self) -> bool:
        """Whether services should degrade degradable requests now."""
        return self.config.degrade_on_drift and self.level >= 2

    # -- observation ---------------------------------------------------------
    def observe(self, now: float, summary: Mapping[str, object]) -> None:
        """Feed one service ``summary()`` snapshot; maybe change level."""
        flat = flatten_metrics(
            {k: v for k, v in summary.items() if k != "behavior"}
        )
        self._window.append(flat)
        if len(self._window) < 2:
            return
        oldest = self._window[0]
        span = flat.get("submitted", 0.0) - oldest.get("submitted", 0.0)
        if span < self.config.min_submitted:
            return
        rates = service_rates(flat, oldest)
        if not rates:
            return
        # Pin the comparison to the baseline's keyset: schema growth in
        # live summaries must not read as drift.
        current = {k: rates[k] for k in self.baseline if k in rates}
        report = compute_drift(self.baseline, current, self.config.drift)
        self.comparisons += 1
        self.last_report = report
        self.last_verdict = report.verdict
        self._advance(now, report)

    # -- hysteresis ladder ---------------------------------------------------
    def _advance(self, now: float, report: DriftReport) -> None:
        cfg = self.config
        if report.verdict == VERDICT_OK:
            self._ok_streak += 1
            self._bad_streak = 0
            self._drift_streak = 0
        else:
            self._ok_streak = 0
            self._bad_streak += 1
            if report.verdict == VERDICT_DRIFT:
                self._drift_streak += 1
            else:
                self._drift_streak = 0

        target = self.level
        if self.level < 2 and self._drift_streak >= cfg.drift_streak:
            target = 2
        elif self.level < 1 and self._bad_streak >= cfg.warn_streak:
            target = 1
        elif self.level > 0 and self._ok_streak >= cfg.clear_streak:
            target = self.level - 1

        if target == self.level:
            return
        if (
            self._last_change_t is not None
            and now - self._last_change_t < cfg.cooldown_s
        ):
            return
        kind = "escalate" if target > self.level else "clear"
        self.level = target
        self._last_change_t = now
        # Streaks restart at the new level so stepping down requires
        # fresh evidence, not leftovers from the climb.
        self._ok_streak = 0
        self._bad_streak = 0
        self._drift_streak = 0
        worst = report.worst
        detail = report.summary() if worst is None else str(worst)
        event = GuardEvent(
            t=now,
            kind=kind,
            level=target,
            verdict=report.verdict,
            detail=detail,
        )
        self._record(event)
        if kind == "escalate":
            self.escalations += 1
            log.warning(
                "drift guard %s (baseline %s): %s",
                LEVELS[target],
                self.baseline_id,
                detail,
            )
            if self.on_escalate is not None:
                self.on_escalate(event)
        else:
            self.clears += 1
            log.info(
                "drift guard stepped down to %s (baseline %s)",
                LEVELS[target],
                self.baseline_id,
            )

    def _record(self, event: GuardEvent) -> None:
        self.events.append(event)
        if len(self.events) > self.config.max_events:
            del self.events[: -self.config.max_events]
        self._pending.append(event)

    # -- telemetry -----------------------------------------------------------
    def take_events(self) -> List[GuardEvent]:
        """Drain events recorded since the last call (for ServeLoop)."""
        out = list(self._pending)
        self._pending.clear()
        return out

    def brief(self) -> Dict[str, object]:
        """Compact live view for ``summary()`` blocks."""
        return {
            "baseline": self.baseline_id,
            "state": self.state,
            "last_verdict": self.last_verdict,
            "comparisons": self.comparisons,
            "escalations": self.escalations,
            "degrade_active": self.degrade_active,
        }

    def summary(self) -> Dict[str, object]:
        """Full telemetry for ``stats()`` / reports."""
        out = dict(self.brief())
        out.update(
            clears=self.clears,
            window=len(self._window),
            tracked_rates=sorted(self.baseline),
            last_report=(
                self.last_report.to_dict()
                if self.last_report is not None
                else None
            ),
            events=[e.to_dict() for e in self.events[-16:]],
        )
        return out
