"""Structured drift between behaviour profiles.

Comparison semantics follow the goldens gate
(:mod:`repro.harness.regression`): a metric drifts when its absolute
delta exceeds ``rel_tol`` of ``max(|baseline|, |current|, abs_floor)`` —
relative tolerance with an absolute floor, so small counts don't flap.
On top of that, every metric gets a three-way verdict:

* ``ok``    — inside ``warn_fraction * rel_tol`` of the scale,
* ``warn``  — outside the ok band but within tolerance,
* ``drift`` — beyond tolerance.

Tolerances are *seeded-noise-aware by default*: metrics that measure
wall-clock (``*_per_s``, ``wall_s``, waits, speedups) are scheduler
noise on a shared machine and get :attr:`DriftConfig.noisy_rel_tol`
(wide); everything else in this codebase is seed-deterministic and gets
the tight default. Per-metric overrides (exact name or prefix) and an
ignore list refine both.

The report's dict form is deterministic (sorted, timestamp-free): the
same pair of profiles always renders the same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

VERDICT_OK = "ok"
VERDICT_WARN = "warn"
VERDICT_DRIFT = "drift"
VERDICTS = (VERDICT_OK, VERDICT_WARN, VERDICT_DRIFT)

#: Name fragments that mark a metric as wall-clock-derived (noisy).
_NOISY_MARKS = ("_per_s", "wall", "speedup", "wait")


def is_noisy_metric(name: str) -> bool:
    """Whether ``name`` measures wall-clock rather than seeded behaviour."""
    return any(mark in name for mark in _NOISY_MARKS)


@dataclass(frozen=True)
class DriftConfig:
    """Tolerance bands for one comparison.

    Attributes:
        rel_tol: default relative tolerance for deterministic metrics.
        abs_floor: scale floor — near-zero metrics never demand absurd
            precision (mirrors the goldens gate).
        warn_fraction: the ok band ends at ``warn_fraction * rel_tol``;
            between there and ``rel_tol`` a metric is ``warn``.
        noisy_rel_tol: tolerance for wall-clock-derived metrics
            (:func:`is_noisy_metric`) — wide, because machines differ.
        overrides: per-metric ``rel_tol`` by exact name or prefix
            (longest matching prefix wins, exact name beats any prefix).
        ignore: name fragments excluded from comparison entirely (used
            by CI gates that only trust the deterministic subset).
    """

    rel_tol: float = 0.05
    abs_floor: float = 1.0
    warn_fraction: float = 0.5
    noisy_rel_tol: float = 0.75
    overrides: Mapping[str, float] = field(default_factory=dict)
    ignore: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.rel_tol < 0 or self.noisy_rel_tol < 0:
            raise ValueError("tolerances must be >= 0")
        if self.abs_floor <= 0:
            raise ValueError("abs_floor must be positive")
        if not 0.0 <= self.warn_fraction <= 1.0:
            raise ValueError("warn_fraction must be in [0, 1]")

    def tolerance_for(self, name: str) -> float:
        """The relative tolerance governing metric ``name``."""
        if name in self.overrides:
            return self.overrides[name]
        best: Optional[str] = None
        for prefix in self.overrides:
            if name.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is not None:
            return self.overrides[best]
        return self.noisy_rel_tol if is_noisy_metric(name) else self.rel_tol

    def ignored(self, name: str) -> bool:
        """Whether metric ``name`` is excluded from the comparison."""
        return any(frag in name for frag in self.ignore)


@dataclass(frozen=True)
class MetricDrift:
    """One metric's delta against the baseline."""

    metric: str
    baseline: float
    current: float
    rel_delta: float
    rel_tol: float
    verdict: str

    def to_dict(self) -> dict:
        """JSON-ready form (rel_delta rounded for stable rendering)."""
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "rel_delta": round(self.rel_delta, 9),
            "rel_tol": self.rel_tol,
            "verdict": self.verdict,
        }

    def __str__(self) -> str:
        return (
            f"{self.metric}: {self.baseline:g} -> {self.current:g} "
            f"({self.rel_delta:+.1%} vs tol {self.rel_tol:.0%}) [{self.verdict}]"
        )


@dataclass
class DriftReport:
    """Machine-readable outcome of one profile comparison."""

    baseline_id: Optional[str]
    profile_id: Optional[str]
    verdict: str = VERDICT_OK
    metrics: List[MetricDrift] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)
    extra: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.verdict == VERDICT_OK

    @property
    def counts(self) -> Dict[str, int]:
        out = {v: 0 for v in VERDICTS}
        for m in self.metrics:
            out[m.verdict] += 1
        return out

    @property
    def worst(self) -> Optional[MetricDrift]:
        """The metric farthest past its tolerance (None when all ok)."""
        offenders = [m for m in self.metrics if m.verdict != VERDICT_OK]
        if not offenders:
            return None
        return max(offenders, key=lambda m: m.rel_delta / max(m.rel_tol, 1e-12))

    def to_dict(self) -> dict:
        """Deterministic JSON form: sorted, timestamp-free."""
        worst = self.worst
        return {
            "baseline": self.baseline_id,
            "profile": self.profile_id,
            "verdict": self.verdict,
            "counts": self.counts,
            "compared": len(self.metrics),
            "missing": list(self.missing),
            "extra": list(self.extra),
            "worst": worst.to_dict() if worst is not None else None,
            "offenders": [
                m.to_dict() for m in self.metrics if m.verdict != VERDICT_OK
            ],
        }

    def summary(self) -> str:
        """One-line human verdict."""
        c = self.counts
        head = (
            f"{self.verdict.upper()}: {len(self.metrics)} metric(s) compared "
            f"(ok {c[VERDICT_OK]}, warn {c[VERDICT_WARN]}, drift {c[VERDICT_DRIFT]}"
        )
        if self.missing:
            head += f", missing {len(self.missing)}"
        if self.extra:
            head += f", new {len(self.extra)}"
        head += ")"
        worst = self.worst
        if worst is not None:
            head += f"; worst: {worst}"
        return head


def _metrics_of(profile_or_metrics) -> Tuple[Optional[str], Dict[str, float]]:
    if isinstance(profile_or_metrics, Mapping):
        return None, dict(profile_or_metrics)
    return profile_or_metrics.profile_id, dict(profile_or_metrics.metrics)


def compute_drift(
    baseline: Union[Mapping, object],
    current: Union[Mapping, object],
    config: Optional[DriftConfig] = None,
) -> DriftReport:
    """Compare ``current`` against ``baseline``.

    Both sides are either a
    :class:`~repro.behavior.profile.BehaviorProfile` or a plain
    ``name -> value`` mapping (the DriftGuard's windowed rates).
    Verdict folding: any drifting metric makes the report ``drift``;
    otherwise any warn — or any missing/extra metric (schema drift) —
    makes it ``warn``; a profile compared against itself is ``ok`` with
    every delta exactly zero.
    """
    cfg = config or DriftConfig()
    base_id, base = _metrics_of(baseline)
    cur_id, cur = _metrics_of(current)
    report = DriftReport(baseline_id=base_id, profile_id=cur_id)
    for name in sorted(base):
        if cfg.ignored(name):
            continue
        if name not in cur:
            report.missing.append(name)
            continue
        b, c = float(base[name]), float(cur[name])
        scale = max(abs(b), abs(c), cfg.abs_floor)
        rel_delta = abs(b - c) / scale
        tol = cfg.tolerance_for(name)
        if rel_delta > tol:
            verdict = VERDICT_DRIFT
        elif rel_delta > cfg.warn_fraction * tol:
            verdict = VERDICT_WARN
        else:
            verdict = VERDICT_OK
        report.metrics.append(
            MetricDrift(name, b, c, rel_delta, tol, verdict)
        )
    report.extra = sorted(
        name for name in cur if name not in base and not cfg.ignored(name)
    )
    counts = report.counts
    if counts[VERDICT_DRIFT]:
        report.verdict = VERDICT_DRIFT
    elif counts[VERDICT_WARN] or report.missing or report.extra:
        report.verdict = VERDICT_WARN
    else:
        report.verdict = VERDICT_OK
    return report
