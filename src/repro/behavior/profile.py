"""Behaviour profiles: a labelled window of telemetry with identity.

A *behaviour profile* freezes what the system actually did — sim counters
and policy-switch rates, service queue/refusal/breaker/DLQ/verification
rates, bench rates, batch dedup/fork telemetry — into one flat numeric
metric namespace, stamped with identity metadata (commit, seed, config
fingerprint, host). The paper's thesis applied to the system itself:
measured behaviour, not assumptions, is what a baseline should pin.

Profiles are deliberately timestamp-free: the payload of a snapshot is a
pure function of what was measured plus the environment identity, so the
same seeded run snapshots to the same content-addressed profile id and a
drift report against a baseline is byte-reproducible.

Capture helpers by layer:

* :func:`profile_from_service` — any service exposing the unified
  ``summary()`` schema (:class:`~repro.service.SimulationService` or
  :class:`~repro.service.ShardedService`), with whole-run ``rate.*``
  metrics derived per submitted request — the same namespace the online
  :class:`~repro.behavior.guard.DriftGuard` recomputes over its rolling
  window.
* :func:`profile_from_bench` — a ``bench-report`` payload (legacy plain
  JSON like ``BENCH_PR4.json`` or the enveloped ``BENCH_PR9.json``).
* :func:`profile_from_campaign` — a ``chaos-campaign`` report.
* :func:`profile_from_sim` — sim counters (``SimStats.summary()`` /
  :class:`~repro.harness.runner.RunResult`) plus an optional
  policy-switching report and batch-engine telemetry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

#: Storage-artifact identity of a behaviour profile.
PROFILE_FORMAT = "behaviour-profile"
PROFILE_VERSION = 1

#: ``rate.<name>`` metrics derived from the unified service ``summary()``
#: schema: numerator path in the flattened summary, denominator is
#: ``submitted``. The whole-run capture and the DriftGuard's rolling
#: window both speak exactly this namespace, so an offline baseline is
#: directly comparable to an online window.
SERVICE_RATE_KEYS: Dict[str, str] = {
    "rate.answered": "answered",
    "rate.journal_hits": "cache.journal_hits",
    "rate.store_hits": "cache.store_hits",
    "rate.simulations": "simulations",
    "rate.shard_restarts": "shard_restarts",
    "rate.coalesced_waiters": "coalescing.coalesced_waiters",
    "rate.waiter_refusals": "coalescing.waiter_refusals",
    "rate.dlq_refused": "dlq.refused",
    "rate.verification_divergent": "verification.divergent",
}

_LABEL_OK = re.compile(r"[^A-Za-z0-9._-]+")


def flatten_metrics(obj: object, prefix: str = "") -> Dict[str, float]:
    """Flatten nested telemetry into ``dotted.name -> float`` leaves.

    Only numeric leaves survive (bools become 0.0/1.0 — useful for flags
    like ``bit_identical``); strings, Nones and lists are dropped, so
    event logs and free-form provenance never pollute the metric space.
    """
    out: Dict[str, float] = {}
    if isinstance(obj, Mapping):
        for key in sorted(obj):
            name = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_metrics(obj[key], name))
        return out
    if isinstance(obj, bool):
        out[prefix] = 1.0 if obj else 0.0
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def _sanitize_label(label: str) -> str:
    cleaned = _LABEL_OK.sub("-", label).strip("-.")
    if not cleaned:
        raise ValueError(f"unusable profile label {label!r}")
    return cleaned


@dataclass(frozen=True)
class BehaviorProfile:
    """One captured window of behaviour, ready for baselining."""

    label: str
    source: str  # "service" | "bench" | "sim" | "chaosday" | "imported"
    metrics: Dict[str, float] = field(default_factory=dict)
    identity: Dict[str, object] = field(default_factory=dict)
    window: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "label", _sanitize_label(self.label))
        if not self.metrics:
            raise ValueError("a behaviour profile needs at least one metric")
        bad = sorted(
            k for k, v in self.metrics.items()
            if not isinstance(v, (int, float)) or isinstance(v, bool)
        )
        if bad:
            raise ValueError(f"non-numeric metrics: {bad[:5]}")

    @property
    def profile_id(self) -> str:
        """Content-addressed id: ``<label>-<digest12>`` over the payload.

        Two snapshots of the same measured behaviour in the same
        environment collapse to the same id — re-snapshotting a seeded
        run is idempotent rather than duplicative.
        """
        from repro.service.identity import fields_digest

        return f"{self.label}-{fields_digest(self.to_payload())[:12]}"

    def to_payload(self) -> dict:
        """JSON document body (the ``"artifact"`` block rides alongside)."""
        return {
            "kind": PROFILE_FORMAT,
            "label": self.label,
            "source": self.source,
            "identity": dict(self.identity),
            "window": dict(self.window),
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "BehaviorProfile":
        """Rebuild from a stored payload; raises ValueError on damage."""
        if not isinstance(payload.get("metrics"), Mapping):
            raise ValueError("behaviour profile payload has no metrics object")
        metrics = {
            str(k): float(v)
            for k, v in payload["metrics"].items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
        return cls(
            label=str(payload.get("label", "")),
            source=str(payload.get("source", "unknown")),
            metrics=metrics,
            identity=dict(payload.get("identity") or {}),
            window=dict(payload.get("window") or {}),
        )


def profile_identity(
    seed: Optional[int] = None,
    config_fields: Optional[Mapping] = None,
    extra: Optional[Mapping] = None,
) -> Dict[str, object]:
    """Identity metadata: commit/branch, host, python, seed and a config
    fingerprint (:func:`~repro.service.identity.fields_digest` over the
    canonical config), so a baseline names exactly what it measured."""
    import platform
    import socket

    from repro.perf.bench import _git_metadata
    from repro.service.identity import fields_digest

    identity: Dict[str, object] = dict(_git_metadata())
    identity["host"] = socket.gethostname()
    identity["python"] = platform.python_version()
    if seed is not None:
        identity["seed"] = int(seed)
    if config_fields is not None:
        identity["config_digest"] = fields_digest(dict(config_fields))
    if extra:
        identity.update(dict(extra))
    return identity


def service_rates(
    flat_now: Mapping[str, float],
    flat_then: Optional[Mapping[str, float]] = None,
) -> Dict[str, float]:
    """The ``rate.*`` namespace over a summary delta.

    With ``flat_then`` omitted the rates cover the whole run; the
    DriftGuard passes the oldest snapshot in its rolling window instead.
    Returns {} when no request was submitted in the delta — there is no
    behaviour to rate yet.
    """
    then = flat_then or {}
    submitted = flat_now.get("submitted", 0.0) - then.get("submitted", 0.0)
    if submitted <= 0:
        return {}
    rates: Dict[str, float] = {}
    for name, path in SERVICE_RATE_KEYS.items():
        delta = flat_now.get(path, 0.0) - then.get(path, 0.0)
        rates[name] = delta / submitted
    return rates


def profile_from_service(
    service,
    label: str,
    seed: Optional[int] = None,
    breakdown: Optional[Mapping] = None,
    window: Optional[Mapping] = None,
) -> BehaviorProfile:
    """Capture a service's unified ``summary()`` plus derived rates.

    ``breakdown`` (a :func:`~repro.service.breakdown` result over the
    run's responses) folds outcome/tier shares in when the caller has
    the response stream at hand.
    """
    summary = service.summary()
    flat = flatten_metrics({k: v for k, v in summary.items() if k != "behavior"})
    metrics = dict(flat)
    metrics.update(service_rates(flat))
    if breakdown is not None:
        metrics.update(
            flatten_metrics(
                {
                    "deadline_miss_rate": breakdown.get("deadline_miss_rate"),
                    "degraded_share": breakdown.get("degraded_share"),
                    "outcomes": breakdown.get("outcomes"),
                    "tiers": breakdown.get("tiers"),
                },
                "breakdown",
            )
        )
    cfg = getattr(service, "config", None)
    config_fields = None
    if cfg is not None:
        from dataclasses import asdict

        config_fields = asdict(cfg)
    return BehaviorProfile(
        label=label,
        source="service",
        metrics=metrics,
        identity=profile_identity(seed=seed, config_fields=config_fields),
        window=dict(window or {}),
    )


def profile_from_bench(
    payload: Mapping, label: str, source: str = "bench"
) -> BehaviorProfile:
    """Capture a ``bench-report`` payload (legacy plain or enveloped)."""
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, Mapping) or not benchmarks:
        raise ValueError("bench report payload has no benchmarks")
    metrics = flatten_metrics(benchmarks, "bench")
    identity = profile_identity(seed=payload.get("seed"))
    # The report's own provenance outranks the capturing environment's:
    # an imported BENCH_PR4.json keeps the commit/machine it measured.
    git = payload.get("git")
    if isinstance(git, Mapping):
        identity.update({k: git[k] for k in ("commit", "branch") if k in git})
    machine = payload.get("machine")
    if isinstance(machine, Mapping) and "platform" in machine:
        identity["host"] = machine["platform"]
    return BehaviorProfile(
        label=label,
        source=source,
        metrics=metrics,
        identity=identity,
        window={"quick": bool(payload.get("quick", False))},
    )


def profile_from_campaign(
    report: Mapping, label: str, source: str = "chaosday"
) -> BehaviorProfile:
    """Capture the deterministic portion of a chaos-campaign report."""
    contract = report.get("contract")
    if not isinstance(contract, Mapping):
        raise ValueError("campaign report has no contract block")
    picked = {
        "contract": contract,
        "breakdown": report.get("breakdown"),
        "counters": report.get("counters"),
        "breaker": report.get("breaker"),
        "fsck": report.get("fsck"),
        "exit_code": report.get("exit_code"),
    }
    scaler = report.get("autoscaler")
    if isinstance(scaler, Mapping):
        picked["autoscaler"] = {
            k: scaler.get(k) for k in ("scale_ups", "scale_downs", "target")
        }
    sharding = report.get("sharding")
    if isinstance(sharding, Mapping):
        summary = dict(sharding.get("summary") or {})
        summary.pop("behavior", None)
        picked["sharding"] = summary
    metrics = flatten_metrics(picked)
    # Fold the summary-derived rate.* namespace in for sharded campaigns,
    # and a contract-derived rate for plain ones, so campaign baselines
    # can seed a DriftGuard directly.
    if isinstance(sharding, Mapping):
        metrics.update(service_rates(flatten_metrics(sharding.get("summary") or {})))
    cfg = report.get("config")
    return BehaviorProfile(
        label=label,
        source=source,
        metrics=metrics,
        identity=profile_identity(
            seed=(cfg or {}).get("seed"),
            config_fields=cfg if isinstance(cfg, Mapping) else None,
        ),
        window={
            "requests": contract.get("submitted"),
            "deterministic": bool(report.get("deterministic", False)),
        },
    )


def profile_from_sim(
    stats_summary: Mapping,
    label: str,
    switching: Optional[Mapping] = None,
    batch_telemetry: Optional[Mapping] = None,
    seed: Optional[int] = None,
    config_fields: Optional[Mapping] = None,
    window: Optional[Mapping] = None,
) -> BehaviorProfile:
    """Capture sim counters plus optional policy-switch / batch telemetry.

    ``stats_summary`` is a :meth:`~repro.smt.stats.SimStats.summary` dict
    (or any flat numeric mapping, e.g. ``{"ipc": ..., **result.scheduler}``
    from a :class:`~repro.harness.runner.RunResult`); ``switching`` a
    :meth:`~repro.analysis.switching.SwitchingReport.as_dict`;
    ``batch_telemetry`` a :attr:`~repro.smt.batch.BatchEngine.telemetry`.
    """
    metrics = flatten_metrics(stats_summary, "sim")
    if switching is not None:
        metrics.update(flatten_metrics(switching, "switching"))
    if batch_telemetry is not None:
        metrics.update(flatten_metrics(batch_telemetry, "batch"))
    if not metrics:
        raise ValueError("sim capture produced no numeric metrics")
    return BehaviorProfile(
        label=label,
        source="sim",
        metrics=metrics,
        identity=profile_identity(seed=seed, config_fields=config_fields),
        window=dict(window or {}),
    )
