"""Behaviour profiles, baselines, and drift-guarded operation.

Capture (:mod:`~repro.behavior.profile`) → persist and designate a
baseline (:mod:`~repro.behavior.store`) → compare
(:mod:`~repro.behavior.drift`) → guard live services
(:mod:`~repro.behavior.guard`). Offline gating lives in
:func:`repro.harness.regression.verify_profile`.
"""

from repro.behavior.drift import (
    VERDICT_DRIFT,
    VERDICT_OK,
    VERDICT_WARN,
    DriftConfig,
    DriftReport,
    MetricDrift,
    compute_drift,
    is_noisy_metric,
)
from repro.behavior.guard import (
    LEVELS,
    DriftGuard,
    DriftGuardConfig,
    GuardEvent,
)
from repro.behavior.profile import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    SERVICE_RATE_KEYS,
    BehaviorProfile,
    flatten_metrics,
    profile_from_bench,
    profile_from_campaign,
    profile_from_service,
    profile_from_sim,
    profile_identity,
    service_rates,
)
from repro.behavior.store import BASELINE_POINTER, ProfileStore, load_profile

__all__ = [
    "BASELINE_POINTER",
    "BehaviorProfile",
    "DriftConfig",
    "DriftGuard",
    "DriftGuardConfig",
    "DriftReport",
    "GuardEvent",
    "LEVELS",
    "MetricDrift",
    "PROFILE_FORMAT",
    "PROFILE_VERSION",
    "ProfileStore",
    "SERVICE_RATE_KEYS",
    "VERDICT_DRIFT",
    "VERDICT_OK",
    "VERDICT_WARN",
    "compute_drift",
    "flatten_metrics",
    "is_noisy_metric",
    "load_profile",
    "profile_from_bench",
    "profile_from_campaign",
    "profile_from_service",
    "profile_from_sim",
    "profile_identity",
    "service_rates",
]
