"""Durable profile store: CRC-versioned artifacts plus a baseline pointer.

One directory, one profile per ``<profile_id>.json`` — a greppable JSON
document carrying the embedded ``"artifact"`` metadata block (format
``behaviour-profile``), written atomically through ``repro.storage``. The
baseline designation is a separate tiny ``BASELINE`` pointer file holding
a profile id: designating a new baseline never rewrites (or re-checksums)
any profile artifact, and ``repro fsck`` audits the profiles like every
other artifact while ignoring the pointer (not an artifact).

The store also hosts the migration shim: :meth:`ProfileStore.import_report`
converts committed history — ``bench-report`` documents like
``BENCH_PR4.json`` (legacy plain JSON) and ``BENCH_PR9.json`` (enveloped),
or ``chaos-campaign`` reports — into behaviour profiles, so the perf
trajectory across PRs becomes baseline-comparable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.behavior.profile import (
    PROFILE_FORMAT,
    PROFILE_VERSION,
    BehaviorProfile,
    profile_from_bench,
    profile_from_campaign,
)
from repro.storage.artifact import embed_json_artifact, load_json_artifact
from repro.storage.atomic import atomic_write_bytes
from repro.storage.errors import ArtifactError

#: Pointer-file name; deliberately not ``*.json`` so fsck ignores it.
BASELINE_POINTER = "BASELINE"


def load_profile(path: Union[str, Path]) -> BehaviorProfile:
    """Load one profile artifact (enveloped or legacy plain JSON).

    Raises :class:`~repro.storage.errors.ArtifactError` on corruption or
    a foreign format, ValueError on a structurally damaged payload.
    """
    meta, payload = load_json_artifact(path)
    if meta is not None and meta.get("format") != PROFILE_FORMAT:
        from repro.storage.errors import ArtifactVersionError

        raise ArtifactVersionError(
            f"{path}: artifact format {meta.get('format')!r}, "
            f"expected {PROFILE_FORMAT!r}"
        )
    return BehaviorProfile.from_payload(payload)


class ProfileStore:
    """Directory of behaviour-profile artifacts with one baseline."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------
    def path_for(self, profile_id: str) -> Path:
        """Where ``profile_id`` lives (or would live) on disk."""
        return self.root / f"{profile_id}.json"

    # -- persistence ---------------------------------------------------------
    def save(self, profile: BehaviorProfile) -> str:
        """Write ``profile`` as an artifact; returns its id (idempotent:
        the id is content-addressed, so re-saving identical behaviour
        overwrites the same file)."""
        self.root.mkdir(parents=True, exist_ok=True)
        profile_id = profile.profile_id
        doc = embed_json_artifact(
            profile.to_payload(), PROFILE_FORMAT, PROFILE_VERSION
        )
        blob = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(self.path_for(profile_id), blob.encode("utf-8"))
        return profile_id

    def load(self, profile_id: str) -> BehaviorProfile:
        """Load one stored profile by id."""
        path = self.path_for(profile_id)
        if not path.exists():
            raise FileNotFoundError(f"no profile {profile_id!r} in {self.root}")
        return load_profile(path)

    def list_profiles(self) -> List[Dict[str, object]]:
        """Stable listing: id, label, source, metric count, baseline flag.

        Unloadable files are listed with an ``error`` instead of hiding
        damage (fsck is the repair tool; the listing is the inventory).
        """
        baseline = self.baseline_id()
        out: List[Dict[str, object]] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob("*.json")):
            entry: Dict[str, object] = {"id": path.stem}
            try:
                profile = load_profile(path)
            except (ArtifactError, ValueError, OSError) as exc:
                entry["error"] = f"{type(exc).__name__}: {exc}"
            else:
                entry.update(
                    label=profile.label,
                    source=profile.source,
                    metrics=len(profile.metrics),
                    seed=profile.identity.get("seed"),
                    commit=str(profile.identity.get("commit", ""))[:12],
                )
            entry["baseline"] = path.stem == baseline
            out.append(entry)
        return out

    # -- baseline designation ------------------------------------------------
    def set_baseline(self, profile_id: str) -> None:
        """Point the store's baseline at ``profile_id`` (must exist)."""
        if not self.path_for(profile_id).exists():
            raise FileNotFoundError(f"no profile {profile_id!r} in {self.root}")
        atomic_write_bytes(
            self.root / BASELINE_POINTER, (profile_id + "\n").encode("ascii")
        )

    def baseline_id(self) -> Optional[str]:
        """The designated baseline's id, or None when unset."""
        try:
            text = (self.root / BASELINE_POINTER).read_text("ascii").strip()
        except OSError:
            return None
        return text or None

    def load_baseline(self) -> Optional[BehaviorProfile]:
        """The designated baseline, or None when unset / missing."""
        profile_id = self.baseline_id()
        if profile_id is None:
            return None
        try:
            return self.load(profile_id)
        except (FileNotFoundError, ArtifactError, ValueError):
            return None

    # -- migration shim ------------------------------------------------------
    def import_report(
        self, path: Union[str, Path], label: Optional[str] = None
    ) -> str:
        """Import a committed report as a behaviour profile; returns the id.

        Recognizes ``bench-report`` documents (legacy plain JSON such as
        ``BENCH_PR4.json``, or enveloped such as ``BENCH_PR9.json``),
        ``chaos-campaign`` reports, and existing behaviour profiles
        (re-import). Anything else raises ValueError.
        """
        path = Path(path)
        meta, payload = load_json_artifact(path)
        fmt = (meta or {}).get("format")
        default_label = path.stem.lower()
        if fmt == PROFILE_FORMAT or payload.get("kind") == PROFILE_FORMAT:
            profile = BehaviorProfile.from_payload(payload)
            if label is not None and label != profile.label:
                profile = BehaviorProfile(
                    label=label,
                    source=profile.source,
                    metrics=profile.metrics,
                    identity=profile.identity,
                    window=profile.window,
                )
        elif fmt == "bench-report" or "benchmarks" in payload:
            profile = profile_from_bench(
                payload, label or default_label, source="imported"
            )
        elif fmt == "chaos-campaign" or "contract" in payload:
            profile = profile_from_campaign(
                payload, label or default_label, source="imported"
            )
        else:
            raise ValueError(
                f"{path}: not a bench report, campaign report or profile"
            )
        return self.save(profile)
