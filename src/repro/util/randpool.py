"""Batched random-number pool.

The trace generators draw several random numbers per instruction; calling
``Generator.random()`` scalar-at-a-time dominates the profile. ``RandPool``
amortizes by drawing NumPy batches and serving them from a cursor — the
standard vectorize-the-hot-loop idiom from the hpc-parallel guides, applied
to RNG.
"""

from __future__ import annotations

import numpy as np


class RandPool:
    """Serves scalar uniforms/geometrics from pre-drawn NumPy batches."""

    def __init__(self, rng: np.random.Generator, batch: int = 8192) -> None:
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.rng = rng
        self.batch = batch
        self._uniform = rng.random(batch)
        self._ucursor = 0

    def uniform(self) -> float:
        """One U[0,1) draw."""
        if self._ucursor >= self.batch:
            self.rng.random(out=self._uniform)
            self._ucursor = 0
        value = self._uniform[self._ucursor]
        self._ucursor += 1
        return value

    def geometric(self, mean: float) -> int:
        """Geometric draw with the given mean, support {1, 2, ...}.

        Uses inversion on a pooled uniform; mean <= 1 degenerates to 1.
        """
        if mean <= 1.0:
            return 1
        # P(success) for a geometric with mean `mean` starting at 1.
        p = 1.0 / mean
        u = self.uniform()
        # Inversion: ceil(log(1-u) / log(1-p)).
        return max(1, int(np.log1p(-u) / np.log1p(-p)) + 1)

    def integer(self, upper: int) -> int:
        """Uniform integer in [0, upper)."""
        if upper <= 1:
            return 0
        return int(self.uniform() * upper)

    def bernoulli(self, p: float) -> bool:
        """True with probability p."""
        return self.uniform() < p
