"""Batched random-number pool.

The trace generators draw several random numbers per instruction; calling
``Generator.random()`` scalar-at-a-time dominates the profile. ``RandPool``
amortizes by drawing NumPy batches and serving them from a cursor — the
standard vectorize-the-hot-loop idiom from the hpc-parallel guides, applied
to RNG.

Draws are served as plain Python floats: a ``np.float64`` scalar escaping
into the per-instruction arithmetic makes every downstream ``+``/``*``/``<``
dispatch through NumPy's scalar machinery (an order of magnitude slower
than float ops). ``ndarray.tolist()`` converts the batch once, preserving
every bit of each double.
"""

from __future__ import annotations

from math import log1p as _log1p

import numpy as np


class RandPool:
    """Serves scalar uniforms/geometrics from pre-drawn NumPy batches."""

    __slots__ = ("rng", "batch", "_buf", "_uniform", "_ucursor",
                 "_geo_mean", "_geo_denom")

    def __init__(self, rng: np.random.Generator, batch: int = 8192) -> None:
        if batch <= 0:
            raise ValueError("batch must be positive")
        self.rng = rng
        self.batch = batch
        self._buf = rng.random(batch)
        self._uniform = self._buf.tolist()
        self._ucursor = 0
        # Memoized log1p(-1/mean) for geometric(): callers cycle through a
        # handful of means (one per phase), so the last one usually repeats.
        self._geo_mean = 0.0
        self._geo_denom = 1.0

    def uniform(self) -> float:
        """One U[0,1) draw."""
        cursor = self._ucursor
        if cursor >= self.batch:
            self.rng.random(out=self._buf)
            self._uniform = self._buf.tolist()
            cursor = 0
        self._ucursor = cursor + 1
        return self._uniform[cursor]

    def geometric(self, mean: float) -> int:
        """Geometric draw with the given mean, support {1, 2, ...}.

        Uses inversion on a pooled uniform; mean <= 1 degenerates to 1.
        """
        if mean <= 1.0:
            return 1
        # Inversion: ceil(log(1-u) / log(1-p)) with p = 1/mean.  The
        # denominator depends only on `mean`, so memoize it.
        if mean != self._geo_mean:
            self._geo_mean = mean
            self._geo_denom = _log1p(-1.0 / mean)
        u = self.uniform()
        return max(1, int(_log1p(-u) / self._geo_denom) + 1)

    def integer(self, upper: int) -> int:
        """Uniform integer in [0, upper)."""
        if upper <= 1:
            return 0
        return int(self.uniform() * upper)

    def bernoulli(self, p: float) -> bool:
        """True with probability p."""
        return self.uniform() < p
