"""Deterministic seed-stream fan-out.

Every stochastic component in an experiment derives its ``Generator`` from
one experiment seed through named substreams, so (a) whole experiments are
reproducible from a single integer and (b) changing one component's draw
count never perturbs another component's stream.
"""

from __future__ import annotations

import zlib

import numpy as np


def stable_hash(value: object) -> int:
    """Process-independent 31-bit hash of ``value``'s string form.

    Python's built-in ``hash`` is randomized per process (PYTHONHASHSEED),
    which would silently make "seeded" experiments irreproducible across
    runs; CRC32 is stable everywhere.
    """
    return zlib.crc32(str(value).encode("utf-8")) & 0x7FFFFFFF


class SeedSequencer:
    """Fan a root seed out into independent named substreams."""

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)

    def seed_for(self, *names: object) -> np.random.SeedSequence:
        """A ``SeedSequence`` keyed by the root seed and a name tuple."""
        key = tuple(stable_hash(n) for n in names)
        return np.random.SeedSequence(entropy=self.root_seed, spawn_key=key)

    def generator(self, *names: object) -> np.random.Generator:
        """A fresh ``Generator`` on the named substream."""
        return np.random.default_rng(self.seed_for(*names))
