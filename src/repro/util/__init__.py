"""Shared utilities: batched RNG draws and seed-stream management."""

from repro.util.randpool import RandPool
from repro.util.seeds import SeedSequencer

__all__ = ["RandPool", "SeedSequencer"]
