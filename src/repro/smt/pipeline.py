"""The SMT processor: cycle-driven pipeline model.

Per-cycle phase order is the classic reverse-pipeline walk (commit first,
fetch last) so data never flows through more than one stage per cycle:

1. **commit** — per-thread ROB heads, shared commit width;
2. **complete** — pop the completion heap; resolve branches (trigger
   wrong-path squash) and wake dependents;
3. **issue** — scan the int/FP queues oldest-first for ready instructions,
   bounded by issue width and functional-unit ports; loads/stores probe the
   shared memory hierarchy;
4. **dispatch** — drain the front-end delay line into IQ/LSQ/ROB, stalling
   (and counting stall events) on full structures;
5. **fetch** — the Thread Selection Unit ranks fetchable contexts with the
   active fetch policy and fetches up to ``fetch_width`` instructions from
   up to ``fetch_threads_per_cycle`` threads, stopping each thread at a
   cache-block boundary (paper §5); leftover slots are offered to the
   scheduler hook (the detector thread).

Wrong-path modeling: a conditional branch that the shared predictor
mispredicts puts its thread into *wrong-path mode*; subsequent fetch cycles
for that thread produce junk instructions that consume fetch slots, IQ
entries and issue bandwidth until the branch executes, at which point the
junk is squashed and fetch redirects. This wasted-slot behaviour is the
phenomenon BRCOUNT-style policies (and hence ADTS) exist to manage.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.policies.base import FetchPolicy
from repro.policies.registry import create_policy
from repro.smt.config import DEFAULT_LATENCIES, SMTConfig
from repro.smt.context import ThreadContext
from repro.smt.counters import CounterBank
from repro.smt.execute import CompletionHeap, FunctionalUnitPool
from repro.smt.instruction import (
    BRANCH,
    IALU,
    LOAD,
    STORE,
    SYSCALL,
    Instruction,
)
from repro.smt.queues import InstructionQueue, LoadStoreQueue
from repro.smt.regfile import RenameRegisterPool, needs_register
from repro.smt.stats import QuantumRecord, SimStats

# Instruction.loc encoding (where the instruction currently lives).
_LOC_FRONT = 0
_LOC_IQ = 1
_LOC_EXEC = 2
_LOC_DONE = 3

_LINE_SHIFT = 6  # 64-byte fetch blocks


class SchedulerHook:
    """Interface through which ADTS (or any scheduler) observes the machine.

    The default implementation is inert — a fixed-policy processor.
    """

    def attach(self, processor: "SMTProcessor") -> None:
        """Called once when the hook is installed."""

    def on_cycle(self, now: int, idle_slots: int) -> int:
        """Called every cycle with the number of unused fetch slots.

        Returns the number of slots the hook consumed (detector-thread
        instructions executed this cycle).
        """
        return 0

    def on_quantum_end(self, now: int, record: QuantumRecord, snapshots) -> None:
        """Called at each scheduling-quantum boundary."""


class SMTProcessor:
    """An SMT processor executing one synthetic trace per hardware context."""

    def __init__(
        self,
        config: SMTConfig,
        traces: Sequence,
        policy: str | FetchPolicy = "icount",
        hook: Optional[SchedulerHook] = None,
        quantum_cycles: int = 8192,
        seed: int = 0,
        tracer=None,
    ) -> None:
        if len(traces) > config.num_threads:
            raise ValueError(
                f"{len(traces)} traces for {config.num_threads} hardware contexts"
            )
        if quantum_cycles <= 0:
            raise ValueError("quantum_cycles must be positive")
        self.config = config
        self.quantum_cycles = quantum_cycles
        self.num_threads = len(traces)
        self.contexts: List[ThreadContext] = [
            ThreadContext(t, trace) for t, trace in enumerate(traces)
        ]
        self.counters = CounterBank(self.num_threads)
        prefetcher = None
        if config.prefetcher == "nextline":
            from repro.memory.prefetch import NextLinePrefetcher

            prefetcher = NextLinePrefetcher()
        elif config.prefetcher == "stride":
            from repro.memory.prefetch import StridePrefetcher

            prefetcher = StridePrefetcher()
        self.hierarchy = MemoryHierarchy(config.hierarchy, prefetcher=prefetcher)
        from repro.branch import create_predictor

        self.predictor = create_predictor(
            config.predictor, config.predictor_entries, max_threads=self.num_threads
        )
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.iq_int = InstructionQueue(config.int_iq_entries, "int")
        self.iq_fp = InstructionQueue(config.fp_iq_entries, "fp")
        self.lsq = LoadStoreQueue(config.lsq_entries)
        self.lsq.reset_threads(self.num_threads)
        self.regs = RenameRegisterPool(config.rename_registers)
        self.regs.reset_threads(self.num_threads)
        self.fus = FunctionalUnitPool(config.int_units, config.mem_ports, config.fp_units)
        self.completions = CompletionHeap()
        # Front-end delay line, per thread (squash is per-thread) but with
        # *shared* capacity (see SMTConfig.fetch_buffer_entries).
        self._front_latency = max(1, config.front_end_stages - 1)
        self.front_q: List[Deque] = [deque() for _ in range(self.num_threads)]
        self._front_total = 0
        self.policy: FetchPolicy = (
            policy if isinstance(policy, FetchPolicy) else create_policy(policy)
        )
        self.hook = hook or SchedulerHook()
        self.hook.attach(self)
        self.stats = SimStats()
        self.now = 0
        self._commit_rotation = 0
        self._quantum_index = 0
        self._quantum_start_cycle = 0
        self._quantum_committed_base = 0
        self._drain_tid: Optional[int] = None  # syscall draining the pipe
        self._latencies: Dict[int, int] = dict(DEFAULT_LATENCIES)
        # (complete_cycle, tid) pairs for decrementing the outstanding
        # L1D-miss gauge when a miss's fill arrives.
        self._pending_miss_clear: List = []
        # Wrong-path instruction synthesis (kinds/waits/pollution addresses).
        self._wp_rng = random.Random(0x5EED ^ seed)
        #: optional PipelineTracer observing instruction lifecycles.
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def quantum_index(self) -> int:
        """Index of the quantum currently executing (0-based)."""
        return self._quantum_index

    @property
    def at_quantum_boundary(self) -> bool:
        """True exactly between quanta — the only safe checkpoint instant
        (no cycle is half-executed and the counters were just snapshotted)."""
        return self.now == self._quantum_start_cycle

    def fingerprint(self) -> str:
        """Digest of the architecturally-relevant machine state.

        Two processors with equal fingerprints are at the same point of the
        same deterministic run; checkpoint/restore equivalence tests and
        snapshot metadata use this to detect divergence cheaply without
        comparing whole object graphs.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(
            repr(
                (
                    self.now,
                    self._quantum_index,
                    self.policy_name,
                    self.stats.committed,
                    self.stats.fetched,
                    self.stats.squashed,
                    self.stats.idle_fetch_slots,
                    sorted(self.stats.per_thread_committed.items()),
                    self._wp_rng.getstate(),
                )
            ).encode()
        )
        for ctx in self.contexts:
            h.update(
                repr(
                    (
                        ctx.tid,
                        ctx.fetch_ready_cycle,
                        ctx.wrong_path,
                        ctx.done_upto,
                        len(ctx.rob),
                        ctx.trace.seq,
                    )
                ).encode()
            )
        for tc in self.counters:
            h.update(repr(sorted(tc.as_dict().items())).encode())
        return h.hexdigest()

    def set_policy(self, policy: str | FetchPolicy) -> None:
        """Switch the active fetch policy (ADTS's Policy_Switch())."""
        self.policy = policy if isinstance(policy, FetchPolicy) else create_policy(policy)

    @property
    def policy_name(self) -> str:
        return self.policy.name

    def run(self, cycles: int) -> SimStats:
        """Advance the machine ``cycles`` cycles; returns the stats object."""
        for _ in range(cycles):
            self.step()
        return self.stats

    def run_quanta(self, quanta: int) -> SimStats:
        """Advance a whole number of scheduling quanta."""
        return self.run(quanta * self.quantum_cycles)

    def swap_thread(self, tid: int, new_trace, switch_penalty: int = 200) -> None:
        """Context-switch hardware context ``tid`` to a different software
        thread (the job scheduler's action, §3).

        In-flight instructions of the outgoing thread are dropped (the OS
        discards pipeline state on a context switch; the handful of lost
        in-flight instructions is below the abstraction level of the trace
        model). The outgoing trace object keeps its position, so a swapped-
        out job can be swapped back in later and resume. Fetch restarts
        after ``switch_penalty`` cycles of context-switch cost.
        """
        ctx = self.contexts[tid]
        tc = self.counters[tid]
        # 1. Drop the front-end contents.
        fq = self.front_q[tid]
        while fq:
            instr, _ready = fq.pop()
            instr.squashed = True
            tc.front_end -= 1
            self._front_total -= 1
            if instr.kind == BRANCH and instr.cond:
                tc.in_flight_branches -= 1
        # 2. Drop the ROB (covers IQ-resident and executing instructions).
        rob = ctx.rob
        while rob:
            instr = rob.pop()
            instr.squashed = True
            tc.rob -= 1
            if not instr.issued:
                if instr.is_fp:
                    tc.iq_fp -= 1
                else:
                    tc.iq_int -= 1
            kind = instr.kind
            if needs_register(kind):
                self.regs.release(tid)
            if kind == LOAD or kind == STORE:
                self.lsq.release(tid)
                tc.lsq -= 1
                tc.in_flight_mem -= 1
                if kind == LOAD:
                    tc.in_flight_loads -= 1
            elif kind == BRANCH and instr.cond and not instr.completed:
                tc.in_flight_branches -= 1
            if kind == SYSCALL and self._drain_tid == tid:
                self._drain_tid = None
        # 3. Clear pending per-thread machine state.
        ctx.pending = None
        ctx.wrong_path = False
        ctx.wp_branch_seq = -1
        ctx.syscall_waiting = False
        ctx.suspended = False
        ctx.done_set.clear()
        tc.outstanding_l1d_misses = 0
        self._pending_miss_clear = [
            (cycle, t) for cycle, t in self._pending_miss_clear if t != tid
        ]
        tc.recent_l1i_misses = 0.0
        tc.recent_stalls = 0.0
        # 4. Bind the incoming thread. Its pre-swap instructions count as
        # architecturally complete (the OS restored its register state).
        ctx.trace = new_trace
        ctx.done_upto = new_trace.seq - 1
        ctx.block_fetch_until(self.now + max(1, switch_penalty))

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine one cycle (see the module docstring for
        the phase order)."""
        now = self.now
        self._commit(now)
        self._complete(now)
        self._drain_miss_gauges(now)
        self._syscall_drain_check(now)
        self._issue(now)
        self._dispatch(now)
        idle = self._fetch(now)
        consumed = self.hook.on_cycle(now, idle)
        if consumed < 0 or consumed > idle:
            # A misbehaving hook must not corrupt the slot accounting the
            # utilization analyses are built on: clamp to the physical range.
            consumed = min(max(consumed, 0), idle)
        self.stats.idle_fetch_slots += idle - consumed
        self.stats.detector_slots_consumed += consumed
        self.hierarchy.tick(now)
        counters = self.counters
        counters.decay_all()
        for t in counters:
            t.active_cycles += 1
        self.now = now + 1
        self.stats.cycles = self.now
        if self.now - self._quantum_start_cycle >= self.quantum_cycles:
            self._end_quantum()

    # -- commit -----------------------------------------------------------
    def _commit(self, now: int) -> None:
        budget = self.config.commit_width
        n = self.num_threads
        self._commit_rotation = (self._commit_rotation + 1) % n
        stats = self.stats
        for i in range(n):
            if budget <= 0:
                break
            tid = (self._commit_rotation + i) % n
            ctx = self.contexts[tid]
            rob = ctx.rob
            tc = self.counters[tid]
            while budget > 0 and rob:
                head = rob[0]
                if head.squashed:
                    # Should have been removed at squash; defensive.
                    rob.popleft()
                    continue
                if not head.completed:
                    break
                rob.popleft()
                budget -= 1
                tc.rob -= 1
                if self.tracer:
                    self.tracer.record(now, "commit", head)
                kind = head.kind
                if needs_register(kind):
                    self.regs.release(tid)
                if kind == LOAD or kind == STORE:
                    self.lsq.release(tid)
                    tc.lsq -= 1
                    tc.in_flight_mem -= 1
                    if kind == LOAD:
                        tc.in_flight_loads -= 1
                tc.q_committed += 1
                tc.total_committed += 1
                stats.committed += 1
                stats.per_thread_committed[tid] = stats.per_thread_committed.get(tid, 0) + 1
                if kind == SYSCALL:
                    self._finish_syscall(tid)

    # -- completion ---------------------------------------------------------
    def _complete(self, now: int) -> None:
        for instr in self.completions.pop_ready(now):
            if instr.squashed:
                continue
            instr.completed = True
            if self.tracer:
                self.tracer.record(now, "complete", instr)
            tid = instr.tid
            ctx = self.contexts[tid]
            tc = self.counters[tid]
            ctx.mark_completed(instr.seq)
            if instr.kind == BRANCH and instr.cond:
                tc.in_flight_branches -= 1
                if instr.mispredicted and ctx.wp_branch_seq == instr.seq:
                    self._squash_wrong_path(tid, now)

    # -- squash ---------------------------------------------------------------
    def _squash_wrong_path(self, tid: int, now: int) -> None:
        """Kill everything younger than the resolved mispredicted branch."""
        ctx = self.contexts[tid]
        tc = self.counters[tid]
        stats = self.stats
        # 1. Front-end delay line holds only junk at this point.
        fq = self.front_q[tid]
        while fq:
            instr, _ready = fq.pop()
            instr.squashed = True
            tc.front_end -= 1
            self._front_total -= 1
            tc.q_squashed += 1
            stats.squashed += 1
            if self.tracer:
                self.tracer.record(now, "squash", instr)
            if instr.kind == BRANCH and instr.cond:
                tc.in_flight_branches -= 1
        # 2. ROB tail: junk instructions (seq == -1) are contiguous at the tail.
        rob = ctx.rob
        while rob and rob[-1].seq == -1:
            instr = rob.pop()
            instr.squashed = True
            tc.rob -= 1
            tc.q_squashed += 1
            stats.squashed += 1
            if self.tracer:
                self.tracer.record(now, "squash", instr)
            if needs_register(instr.kind):
                self.regs.release(tid)
            if not instr.issued:
                tc.iq_int -= 1  # junk dispatches to the integer queue
            # issued junk is in the completion heap; _complete skips it.
            if instr.kind == LOAD:
                self.lsq.release(tid)
                tc.lsq -= 1
                tc.in_flight_mem -= 1
                tc.in_flight_loads -= 1
            elif instr.kind == BRANCH and instr.cond and not instr.completed:
                tc.in_flight_branches -= 1
        ctx.wrong_path = False
        ctx.wp_branch_seq = -1
        ctx.block_fetch_until(now + self.config.misfetch_penalty)

    # -- syscall drain ----------------------------------------------------------
    def _syscall_drain_check(self, now: int) -> None:
        """If a syscall is draining the pipe, start it once drained."""
        tid = self._drain_tid
        if tid is None:
            return
        ctx = self.contexts[tid]
        rob = ctx.rob
        if not rob or rob[0].kind != SYSCALL or rob[0].issued:
            return
        # Drained = no one else has anything in flight, our older work done.
        if len(self.completions):
            return
        for other in self.contexts:
            if other.tid != tid and other.rob:
                return
        if len(self.iq_int) or len(self.iq_fp):
            # Lazy entries may linger; compact and re-check.
            self.iq_int.compact()
            self.iq_fp.compact()
            if len(self.iq_int) or len(self.iq_fp):
                return
        syscall = rob[0]
        syscall.issued = True
        self.completions.schedule(syscall, now + self.config.syscall_drain_cycles)

    def _finish_syscall(self, tid: int) -> None:
        self._drain_tid = None
        self.contexts[tid].syscall_waiting = False
        self.stats.syscalls += 1

    # -- issue -------------------------------------------------------------
    def _issue(self, now: int) -> None:
        fus = self.fus
        fus.new_cycle()
        budget = self.config.issue_width
        budget = self._issue_queue(self.iq_int, budget, now)
        if budget > 0:
            self._issue_queue(self.iq_fp, budget, now)

    def _issue_queue(self, iq: InstructionQueue, budget: int, now: int) -> int:
        if budget <= 0 or not len(iq):
            return budget
        contexts = self.contexts
        counters = self.counters
        fus = self.fus
        latencies = self._latencies
        survivors: List[Instruction] = []
        append = survivors.append
        for instr in iq:
            if instr.squashed or instr.issued:
                continue  # lazy removal
            if budget <= 0:
                append(instr)
                continue
            tid = instr.tid
            if instr.seq != -1:
                if not contexts[tid].is_ready(instr):
                    tc = counters[tid]
                    tc.recent_stalls += 0.1  # waiting in IQ: mild stall signal
                    append(instr)
                    continue
            elif now < instr.wp_ready:
                # Wrong-path junk waiting on its phantom operands.
                append(instr)
                continue
            kind = instr.kind
            if not fus.try_claim(kind):
                append(instr)
                continue
            # Issue it.
            budget -= 1
            instr.issued = True
            if self.tracer:
                self.tracer.record(now, "issue", instr)
            tc = counters[tid]
            if iq is self.iq_int:
                tc.iq_int -= 1
            else:
                tc.iq_fp -= 1
            if kind == LOAD:
                result = self.hierarchy.load(instr.addr, now)
                if result.mshr_stall:
                    # Cannot allocate a miss entry: retry next cycle.
                    instr.issued = False
                    tc.iq_int += 1
                    tc.recent_stalls += 1.0
                    tc.q_stall_cycles += 1
                    budget += 1
                    append(instr)
                    continue
                latency = 1 + result.latency
                if result.l1_miss:
                    tc.outstanding_l1d_misses += 1
                    tc.q_l1d_misses += 1
                    if result.l2_miss:
                        tc.q_l2_misses += 1
                    # Remember to decrement the outstanding-miss gauge.
                    self._pending_miss_clear.append((now + latency, tid))
                self.completions.schedule(instr, now + latency)
            elif kind == STORE:
                result = self.hierarchy.store(instr.addr, now)
                if result.l1_miss:
                    tc.q_l1d_misses += 1
                    if result.l2_miss:
                        tc.q_l2_misses += 1
                # Stores complete quickly; the LSQ holds them until commit.
                self.completions.schedule(instr, now + latencies[STORE])
            else:
                self.completions.schedule(instr, now + latencies.get(kind, 1))
        iq.set_entries(survivors)
        return budget

    # -- dispatch -----------------------------------------------------------
    def _dispatch(self, now: int) -> None:
        if self._drain_tid is not None:
            return  # syscall draining: hold everything in the front end
        budget = self.config.rename_width
        n = self.num_threads
        start = self._commit_rotation  # reuse rotation for fairness
        for i in range(n):
            if budget <= 0:
                break
            tid = (start + i) % n
            budget = self._dispatch_thread(tid, budget, now)

    def _dispatch_thread(self, tid: int, budget: int, now: int) -> int:
        ctx = self.contexts[tid]
        if ctx.syscall_waiting:
            return budget
        fq = self.front_q[tid]
        tc = self.counters[tid]
        cfg = self.config
        while budget > 0 and fq:
            instr, ready_cycle = fq[0]
            if ready_cycle > now:
                break
            if len(ctx.rob) >= cfg.rob_entries_per_thread:
                tc.recent_stalls += 1.0
                tc.q_stall_cycles += 1
                break
            kind = instr.kind
            if kind == SYSCALL:
                if self._drain_tid is not None:
                    break  # another syscall is mid-drain
                fq.popleft()
                tc.front_end -= 1
                self._front_total -= 1
                ctx.rob.append(instr)
                tc.rob += 1
                ctx.syscall_waiting = True
                self._drain_tid = tid
                budget -= 1
                break
            needs_reg = needs_register(kind)
            if needs_reg and not self.regs.allocate(tid):
                # Shared rename pool exhausted: dispatch stalls machine-wide
                # pressure the paper's clogging analysis calls out.
                tc.q_reg_full += 1
                tc.recent_stalls += 1.0
                tc.q_stall_cycles += 1
                break
            is_mem = kind == LOAD or kind == STORE
            if is_mem and not self.lsq.allocate(tid):
                if needs_reg:
                    self.regs.release(tid)
                tc.q_lsq_full += 1
                tc.recent_stalls += 1.0
                tc.q_stall_cycles += 1
                break
            iq = self.iq_fp if instr.is_fp else self.iq_int
            if iq.full:
                iq.compact()
            if iq.full:
                if is_mem:
                    self.lsq.release(tid)
                if needs_reg:
                    self.regs.release(tid)
                tc.q_iq_full += 1
                tc.recent_stalls += 1.0
                tc.q_stall_cycles += 1
                break
            # Commit the dispatch.
            fq.popleft()
            tc.front_end -= 1
            self._front_total -= 1
            if self.tracer:
                self.tracer.record(now, "dispatch", instr)
            iq.insert(instr)
            if instr.is_fp:
                tc.iq_fp += 1
            else:
                tc.iq_int += 1
            ctx.rob.append(instr)
            tc.rob += 1
            if is_mem:
                tc.lsq += 1
                tc.in_flight_mem += 1
                if kind == LOAD:
                    tc.in_flight_loads += 1
            budget -= 1
        return budget

    # -- fetch --------------------------------------------------------------
    def _fetch(self, now: int) -> int:
        cfg = self.config
        fuel = cfg.fetch_width
        threads_used = 0
        free = cfg.fetch_buffer_entries - self._front_total
        if free <= 0 or self._drain_tid is not None:
            return fuel
        candidates = [ctx.tid for ctx in self.contexts if ctx.can_fetch(now)]
        if candidates:
            ranked = self.policy.rank(candidates, self.counters)
            for tid in ranked:
                if fuel <= 0 or free <= 0 or threads_used >= cfg.fetch_threads_per_cycle:
                    break
                got = self._fetch_thread(tid, min(fuel, free), now)
                # An attempt consumes the thread slot even when the I-cache
                # misses (the port was occupied by the probe) — this is
                # what makes single-thread-per-cycle fetch fragile.
                threads_used += 1
                if got > 0:
                    fuel -= got
                    free -= got
        return fuel

    def _fetch_thread(self, tid: int, fuel: int, now: int) -> int:
        ctx = self.contexts[tid]
        tc = self.counters[tid]
        stats = self.stats
        fq = self.front_q[tid]
        ready_at = now + self._front_latency
        if ctx.wrong_path:
            # Wrong-path fetch: the hardware cannot tell these from real
            # instructions, so neither can the counters — junk looks like
            # the real mix: it waits on (phantom) operands in the IQ, loads
            # pollute the caches, and branches inflate the unresolved-
            # branch counts that BRCOUNT keys on.
            count = min(fuel, self.config.fetch_width)
            rng = self._wp_rng
            for _ in range(count):
                r = rng.random()
                if r < 0.25:
                    addr = (tid << 30) + (32 << 20) + rng.randrange(0, 4 << 20)
                    junk = Instruction(tid, -1, LOAD, 0, addr=addr)
                    tc.q_loads += 1
                elif r < 0.40:
                    junk = Instruction(tid, -1, BRANCH, 0, cond=True)
                    tc.in_flight_branches += 1
                    tc.q_branches += 1
                    tc.q_cond_branches += 1
                else:
                    junk = Instruction(tid, -1, IALU, 0)
                # Phantom operand wait: geometric, mean ~6 cycles.
                junk.wp_ready = ready_at + min(40, int(rng.expovariate(1 / 6.0)))
                if self.tracer:
                    self.tracer.record(now, "fetch", junk)
                fq.append((junk, ready_at))
            tc.front_end += count
            self._front_total += count
            tc.q_fetched += count
            tc.total_fetched += count
            stats.fetched += count
            stats.wrong_path_fetched += count
            return count
        count = 0
        current_line = -1
        while count < fuel:
            instr = ctx.next_instruction()
            line = instr.pc >> _LINE_SHIFT
            if current_line < 0:
                result = self.hierarchy.ifetch(instr.pc, now)
                if result.l1_miss:
                    tc.recent_l1i_misses += 1.0
                    tc.q_l1i_misses += 1
                    if result.l2_miss:
                        tc.q_l2_misses += 1
                    ctx.push_back(instr)
                    ctx.block_fetch_until(now + result.latency)
                    return -1 if count == 0 else count
                current_line = line
            elif line != current_line:
                # Cache-block boundary: this thread is done for the cycle.
                ctx.push_back(instr)
                break
            # Accept the instruction. Instructions are stamped with the
            # *hardware context* id: a trace generator's own tid names its
            # address space, which differs from the context when the job
            # scheduler has remapped jobs (core/jobsched.py).
            instr.tid = tid
            if self.tracer:
                self.tracer.record(now, "fetch", instr)
            fq.append((instr, ready_at))
            count += 1
            tc.front_end += 1
            self._front_total += 1
            tc.q_fetched += 1
            tc.total_fetched += 1
            stats.fetched += 1
            if instr.kind == BRANCH:
                stop = self._fetch_branch(ctx, tc, instr, now)
                if stop:
                    break
            elif instr.kind == LOAD:
                tc.q_loads += 1
            elif instr.kind == STORE:
                tc.q_stores += 1
            elif instr.kind == SYSCALL:
                break  # fetch no further until the syscall retires
        return count

    def _fetch_branch(self, ctx: ThreadContext, tc, instr: Instruction, now: int) -> bool:
        """Handle prediction for a just-fetched branch; True = stop fetching."""
        tc.q_branches += 1
        if instr.cond:
            tc.q_cond_branches += 1
            self.stats.cond_branches += 1
            tc.in_flight_branches += 1
            correct = self.predictor.predict_and_update(ctx.tid, instr.pc, instr.taken)
            if not correct:
                instr.mispredicted = True
                tc.q_mispredicts += 1
                self.stats.mispredicted_branches += 1
                ctx.wrong_path = True
                ctx.wp_branch_seq = instr.seq
                return True
            if not instr.taken:
                return False  # correctly predicted not-taken: keep fetching
        # Taken (or unconditional) branch: check the BTB for the target.
        predicted_target = self.btb.lookup(instr.pc)
        if predicted_target != instr.target:
            self.btb.update(instr.pc, instr.target)
            ctx.block_fetch_until(now + self.config.misfetch_penalty)
        return True

    # -- quantum ------------------------------------------------------------
    def _end_quantum(self) -> None:
        committed = self.stats.committed - self._quantum_committed_base
        record = QuantumRecord(
            index=self._quantum_index,
            start_cycle=self._quantum_start_cycle,
            cycles=self.now - self._quantum_start_cycle,
            committed=committed,
            policy=self.policy.name,
        )
        self.stats.quantum_history.append(record)
        self.stats.cycles = self.now
        snapshots = self.counters.end_quantum()
        self.policy.on_quantum_boundary()
        self.hook.on_quantum_end(self.now, record, snapshots)
        self._quantum_index += 1
        self._quantum_start_cycle = self.now
        self._quantum_committed_base = self.stats.committed

    def _drain_miss_gauges(self, now: int) -> None:
        """Clear outstanding-L1D-miss gauges whose fills have arrived."""
        lst = self._pending_miss_clear
        if not lst:
            return
        keep = []
        for cycle, tid in lst:
            if cycle <= now:
                self.counters[tid].outstanding_l1d_misses -= 1
            else:
                keep.append((cycle, tid))
        self._pending_miss_clear = keep
