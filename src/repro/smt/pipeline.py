"""The SMT processor: cycle-driven pipeline model.

Per-cycle phase order is the classic reverse-pipeline walk (commit first,
fetch last) so data never flows through more than one stage per cycle:

1. **commit** — per-thread ROB heads, shared commit width;
2. **complete** — pop the completion heap; resolve branches (trigger
   wrong-path squash) and wake dependents;
3. **issue** — scan the int/FP queues oldest-first for ready instructions,
   bounded by issue width and functional-unit ports; loads/stores probe the
   shared memory hierarchy;
4. **dispatch** — drain the front-end delay line into IQ/LSQ/ROB, stalling
   (and counting stall events) on full structures;
5. **fetch** — the Thread Selection Unit ranks fetchable contexts with the
   active fetch policy and fetches up to ``fetch_width`` instructions from
   up to ``fetch_threads_per_cycle`` threads, stopping each thread at a
   cache-block boundary (paper §5); leftover slots are offered to the
   scheduler hook (the detector thread).

Wrong-path modeling: a conditional branch that the shared predictor
mispredicts puts its thread into *wrong-path mode*; subsequent fetch cycles
for that thread produce junk instructions that consume fetch slots, IQ
entries and issue bandwidth until the branch executes, at which point the
junk is squashed and fetch redirects. This wasted-slot behaviour is the
phenomenon BRCOUNT-style policies (and hence ADTS) exist to manage.
"""

from __future__ import annotations

import gc
import random
from collections import deque
from math import log as _log
from typing import Deque, Dict, List, Optional, Sequence

from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.policies.base import FetchPolicy
from repro.policies.registry import create_policy
from repro.smt.config import DEFAULT_LATENCIES, SMTConfig
from repro.smt.context import ThreadContext
from repro.smt.counters import CounterBank
from repro.smt.execute import CompletionHeap, FunctionalUnitPool
from repro.smt.instruction import (
    BRANCH,
    FADD,
    FDIV,
    IALU,
    LOAD,
    STORE,
    SYSCALL,
    Instruction,
)
from repro.smt.queues import InstructionQueue, LoadStoreQueue
from repro.smt.regfile import RenameRegisterPool, needs_register
from repro.smt.stats import QuantumRecord, SimStats

# Instruction.loc encoding (where the instruction currently lives).
_LOC_FRONT = 0
_LOC_IQ = 1
_LOC_EXEC = 2
_LOC_DONE = 3

_LINE_SHIFT = 6  # 64-byte fetch blocks

#: Span of the wrong-path pollution-address window (per thread).
_WP_ADDR_SPAN = 4 << 20

#: Sentinel for "no pending event" cycle trackers.
_NEVER = 1 << 62


class SchedulerHook:
    """Interface through which ADTS (or any scheduler) observes the machine.

    The default implementation is inert — a fixed-policy processor.
    """

    def attach(self, processor: "SMTProcessor") -> None:
        """Called once when the hook is installed."""

    def on_cycle(self, now: int, idle_slots: int) -> int:
        """Called every cycle with the number of unused fetch slots.

        Returns the number of slots the hook consumed (detector-thread
        instructions executed this cycle).
        """
        return 0

    def on_quantum_end(self, now: int, record: QuantumRecord, snapshots) -> None:
        """Called at each scheduling-quantum boundary."""


class SMTProcessor:
    """An SMT processor executing one synthetic trace per hardware context."""

    def __init__(
        self,
        config: SMTConfig,
        traces: Sequence,
        policy: str | FetchPolicy = "icount",
        hook: Optional[SchedulerHook] = None,
        quantum_cycles: int = 8192,
        seed: int = 0,
        tracer=None,
        idle_skip: bool = True,
    ) -> None:
        if len(traces) > config.num_threads:
            raise ValueError(
                f"{len(traces)} traces for {config.num_threads} hardware contexts"
            )
        if quantum_cycles <= 0:
            raise ValueError("quantum_cycles must be positive")
        self.config = config
        self.quantum_cycles = quantum_cycles
        self.num_threads = len(traces)
        self.contexts: List[ThreadContext] = [
            ThreadContext(t, trace) for t, trace in enumerate(traces)
        ]
        self.counters = CounterBank(self.num_threads)
        prefetcher = None
        if config.prefetcher == "nextline":
            from repro.memory.prefetch import NextLinePrefetcher

            prefetcher = NextLinePrefetcher()
        elif config.prefetcher == "stride":
            from repro.memory.prefetch import StridePrefetcher

            prefetcher = StridePrefetcher()
        self.hierarchy = MemoryHierarchy(config.hierarchy, prefetcher=prefetcher)
        from repro.branch import create_predictor

        self.predictor = create_predictor(
            config.predictor, config.predictor_entries, max_threads=self.num_threads
        )
        self.btb = BranchTargetBuffer(config.btb_entries)
        self.iq_int = InstructionQueue(config.int_iq_entries, "int")
        self.iq_fp = InstructionQueue(config.fp_iq_entries, "fp")
        self.lsq = LoadStoreQueue(config.lsq_entries)
        self.lsq.reset_threads(self.num_threads)
        self.regs = RenameRegisterPool(config.rename_registers)
        self.regs.reset_threads(self.num_threads)
        self.fus = FunctionalUnitPool(config.int_units, config.mem_ports, config.fp_units)
        self.completions = CompletionHeap()
        # Front-end delay line, per thread (squash is per-thread) but with
        # *shared* capacity (see SMTConfig.fetch_buffer_entries).
        self._front_latency = max(1, config.front_end_stages - 1)
        self.front_q: List[Deque] = [deque() for _ in range(self.num_threads)]
        self._front_total = 0
        self.policy: FetchPolicy = (
            policy if isinstance(policy, FetchPolicy) else create_policy(policy)
        )
        self.hook = hook or SchedulerHook()
        self.hook.attach(self)
        self.stats = SimStats()
        self.now = 0
        self._commit_rotation = 0
        self._quantum_index = 0
        self._quantum_start_cycle = 0
        self._quantum_committed_base = 0
        self._drain_tid: Optional[int] = None  # syscall draining the pipe
        self._latencies: Dict[int, int] = dict(DEFAULT_LATENCIES)
        # (complete_cycle, tid) pairs for decrementing the outstanding
        # L1D-miss gauge when a miss's fill arrives.
        self._pending_miss_clear: List = []
        # Wrong-path instruction synthesis (kinds/waits/pollution addresses).
        self._wp_rng = random.Random(0x5EED ^ seed)
        #: optional PipelineTracer observing instruction lifecycles.
        self.tracer = tracer
        # Hot-loop caches of frozen-config fields: the per-cycle stage walk
        # reads these thousands of times per simulated millisecond and the
        # dataclass attribute path is pure overhead there.
        self._fetch_width = config.fetch_width
        self._fetch_threads_per_cycle = config.fetch_threads_per_cycle
        self._fetch_buffer_entries = config.fetch_buffer_entries
        self._rename_width = config.rename_width
        self._rob_entries = config.rob_entries_per_thread
        self._issue_width = config.issue_width
        self._commit_width = config.commit_width
        self._misfetch_penalty = config.misfetch_penalty
        self._quantum_end_cycle = quantum_cycles
        #: earliest cycle in _pending_miss_clear (or _NEVER when empty).
        self._next_miss_clear = _NEVER
        #: the installed hook never overrides on_cycle: the per-cycle
        #: callback can be elided and idle stretches fast-forwarded.
        self._hook_inert = type(self.hook).on_cycle is SchedulerHook.on_cycle
        #: enable fast-forwarding across cycles where every stage is provably
        #: a no-op (see _try_idle_skip); bit-identical to stepping.
        self._idle_skip = idle_skip

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def quantum_index(self) -> int:
        """Index of the quantum currently executing (0-based)."""
        return self._quantum_index

    @property
    def at_quantum_boundary(self) -> bool:
        """True exactly between quanta — the only safe checkpoint instant
        (no cycle is half-executed and the counters were just snapshotted)."""
        return self.now == self._quantum_start_cycle

    def fingerprint(self) -> str:
        """Digest of the architecturally-relevant machine state.

        Two processors with equal fingerprints are at the same point of the
        same deterministic run; checkpoint/restore equivalence tests and
        snapshot metadata use this to detect divergence cheaply without
        comparing whole object graphs.
        """
        import hashlib

        h = hashlib.sha256()
        h.update(
            repr(
                (
                    self.now,
                    self._quantum_index,
                    self.policy_name,
                    self.stats.committed,
                    self.stats.fetched,
                    self.stats.squashed,
                    self.stats.idle_fetch_slots,
                    sorted(self.stats.per_thread_committed.items()),
                    self._wp_rng.getstate(),
                )
            ).encode()
        )
        for ctx in self.contexts:
            h.update(
                repr(
                    (
                        ctx.tid,
                        ctx.fetch_ready_cycle,
                        ctx.wrong_path,
                        ctx.done_upto,
                        len(ctx.rob),
                        ctx.trace.seq,
                    )
                ).encode()
            )
        for tc in self.counters:
            h.update(repr(sorted(tc.as_dict().items())).encode())
        return h.hexdigest()

    def set_policy(self, policy: str | FetchPolicy) -> None:
        """Switch the active fetch policy (ADTS's Policy_Switch())."""
        self.policy = policy if isinstance(policy, FetchPolicy) else create_policy(policy)

    @property
    def policy_name(self) -> str:
        return self.policy.name

    def run(self, cycles: int) -> SimStats:
        """Advance the machine ``cycles`` cycles; returns the stats object.

        When idle-cycle skipping is enabled (and the scheduler hook is the
        inert default), stretches of cycles where every stage is provably a
        no-op are fast-forwarded instead of stepped — the resulting machine
        state is bit-identical to per-cycle stepping. ``step()`` itself
        always advances exactly one cycle.
        """
        target = self.now + cycles
        step = self.step
        # The cycle loop allocates almost nothing cyclic (a few hundred
        # collectable objects per process), but CPython's generational GC
        # still walks the heap on its schedule — pausing it for the loop is
        # a measurable win with no retention risk at this allocation rate.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if self._idle_skip and self._hook_inert:
                skip = self._try_idle_skip
                while self.now < target:
                    skip(self.now, target - 1)
                    step()
            else:
                while self.now < target:
                    step()
        finally:
            if gc_was_enabled:
                gc.enable()
        return self.stats

    def run_quanta(self, quanta: int) -> SimStats:
        """Advance a whole number of scheduling quanta."""
        return self.run(quanta * self.quantum_cycles)

    def swap_thread(self, tid: int, new_trace, switch_penalty: int = 200) -> None:
        """Context-switch hardware context ``tid`` to a different software
        thread (the job scheduler's action, §3).

        In-flight instructions of the outgoing thread are dropped (the OS
        discards pipeline state on a context switch; the handful of lost
        in-flight instructions is below the abstraction level of the trace
        model). The outgoing trace object keeps its position, so a swapped-
        out job can be swapped back in later and resume. Fetch restarts
        after ``switch_penalty`` cycles of context-switch cost.
        """
        ctx = self.contexts[tid]
        tc = self.counters[tid]
        # 1. Drop the front-end contents.
        fq = self.front_q[tid]
        while fq:
            instr, _ready = fq.pop()
            instr.squashed = True
            tc.front_end -= 1
            self._front_total -= 1
            if instr.kind == BRANCH and instr.cond:
                tc.in_flight_branches -= 1
        # 2. Drop the ROB (covers IQ-resident and executing instructions).
        rob = ctx.rob
        while rob:
            instr = rob.pop()
            instr.squashed = True
            tc.rob -= 1
            if not instr.issued:
                if instr.is_fp:
                    tc.iq_fp -= 1
                else:
                    tc.iq_int -= 1
            kind = instr.kind
            if needs_register(kind):
                self.regs.release(tid)
            if kind == LOAD or kind == STORE:
                self.lsq.release(tid)
                tc.lsq -= 1
                tc.in_flight_mem -= 1
                if kind == LOAD:
                    tc.in_flight_loads -= 1
            elif kind == BRANCH and instr.cond and not instr.completed:
                tc.in_flight_branches -= 1
            if kind == SYSCALL and self._drain_tid == tid:
                self._drain_tid = None
        # 3. Clear pending per-thread machine state.
        ctx.pending = None
        ctx.wrong_path = False
        ctx.wp_branch_seq = -1
        ctx.syscall_waiting = False
        ctx.suspended = False
        ctx.done_set.clear()
        ctx.waiters.clear()  # squashed entries must not be woken by new seqs
        tc.outstanding_l1d_misses = 0
        self._pending_miss_clear = [
            (cycle, t) for cycle, t in self._pending_miss_clear if t != tid
        ]
        self._next_miss_clear = min(
            (cycle for cycle, _t in self._pending_miss_clear), default=_NEVER
        )
        tc.recent_l1i_misses = 0.0
        tc.recent_stalls = 0.0
        # 4. Bind the incoming thread. Its pre-swap instructions count as
        # architecturally complete (the OS restored its register state).
        ctx.trace = new_trace
        ctx.done_upto = new_trace.seq - 1
        ctx.block_fetch_until(self.now + max(1, switch_penalty))

    # ------------------------------------------------------------------
    # Cycle loop
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the machine one cycle (see the module docstring for
        the phase order)."""
        now = self.now
        self._commit(now)
        self._complete(now)
        # Guard the rare stages inline: the calls themselves are pure
        # per-cycle overhead when their early-exit condition holds.
        if self._next_miss_clear <= now:
            self._drain_miss_gauges(now)
        if self._drain_tid is not None:
            self._syscall_drain_check(now)
        self._issue(now)
        self._dispatch(now)
        idle = self._fetch(now)
        stats = self.stats
        if self._hook_inert:
            # The default hook consumes nothing; skip the call entirely.
            stats.idle_fetch_slots += idle
        else:
            consumed = self.hook.on_cycle(now, idle)
            if consumed < 0 or consumed > idle:
                # A misbehaving hook must not corrupt the slot accounting the
                # utilization analyses are built on: clamp to the physical range.
                consumed = min(max(consumed, 0), idle)
            stats.idle_fetch_slots += idle - consumed
            stats.detector_slots_consumed += consumed
        hierarchy = self.hierarchy
        if hierarchy.mshr._next_complete <= now:
            hierarchy.tick(now)
        self.counters.tick_all()
        self.now = now + 1
        stats.cycles = self.now
        if self.now >= self._quantum_end_cycle:
            self._end_quantum()

    # -- idle-cycle fast-forward --------------------------------------------
    def _try_idle_skip(self, now: int, cap: int) -> None:
        """Fast-forward across cycles in which every pipeline stage is a
        provable no-op, producing bit-identical state to stepping them.

        A cycle is skippable when nothing can commit (no completed/squashed
        ROB heads), nothing completes (completion heap empty or in the
        future), no miss gauge matures, no syscall is draining, nothing can
        issue (no ready IQ entry), nothing can dispatch (no matured
        front-queue head), and no context may fetch. The only per-cycle
        state changes in such a cycle are the counter decay/stall signals,
        the commit rotation, idle-slot accounting, and the MSHR retirement
        sweep — all of which this method applies in closed form EXCEPT the
        floating-point decay, which is applied by looping so the float
        results match per-cycle stepping bit for bit.

        ``cap`` bounds the wake-up cycle (run()'s target minus one); the
        quantum boundary additionally caps it so boundary cycles always
        execute as real steps. Never called unless the hook is inert.
        """
        if self._drain_tid is not None:
            return
        boundary_last = self._quantum_end_cycle - 1
        if cap > boundary_last:
            cap = boundary_last
        if cap <= now:
            return
        wake = cap
        nc = self.completions.next_cycle()
        if nc is not None:
            if nc <= now:
                return
            if nc < wake:
                wake = nc
        if self._pending_miss_clear:
            nm = self._next_miss_clear
            if nm <= now:
                return
            if nm < wake:
                wake = nm
        contexts = self.contexts
        for ctx in contexts:
            rob = ctx.rob
            if rob:
                head = rob[0]
                if head.completed or head.squashed:
                    return  # commit (or cleanup) work this cycle
        for fq in self.front_q:
            if fq:
                rc = fq[0][1]
                if rc <= now:
                    return  # dispatch work (or a dispatch-stall signal)
                if rc < wake:
                    wake = rc
        if self._fetch_buffer_entries > self._front_total:
            for ctx in contexts:
                if ctx.fetchable and not ctx.suspended and not ctx.syscall_waiting:
                    frc = ctx.fetch_ready_cycle
                    if frc <= now:
                        return  # a context can fetch this cycle
                    if frc < wake:
                        wake = frc
        # IQ scan: a ready live entry issues this cycle; a waiting junk
        # entry wakes by timer; waiting real entries wake via completions
        # (already bounded above) but accrue per-cycle stall signal.
        waiting = [0] * self.num_threads
        for iq in (self.iq_int, self.iq_fp):
            for instr in iq:
                if instr.squashed or instr.issued:
                    continue
                if instr.seq != -1:
                    if instr.iq_ready:
                        return  # ready: would issue this cycle
                    waiting[instr.tid] += 1
                else:
                    wr = instr.wp_ready
                    if wr <= now:
                        return
                    if wr < wake:
                        wake = wr
        k = wake - now
        if k <= 0:
            return
        # Apply k no-op cycles' worth of state evolution.
        threads = self.counters.threads
        for tc in threads:
            w = waiting[tc.tid]
            rs = tc.recent_stalls
            rl = tc.recent_l1i_misses
            if w:
                # Each skipped cycle: one +0.1 per waiting IQ entry, then
                # the end-of-cycle decay. Looped, not closed-form, so the
                # float trajectory is identical to stepping.
                for _ in range(k):
                    for _ in range(w):
                        rs += 0.1
                    rs *= 0.99
                tc.recent_stalls = rs
            elif rs != 0.0:
                for _ in range(k):
                    rs *= 0.99
                tc.recent_stalls = rs
            if rl != 0.0:
                for _ in range(k):
                    rl *= 0.99
                tc.recent_l1i_misses = rl
            tc.active_cycles += k
        self._commit_rotation = (self._commit_rotation + k) % self.num_threads
        stats = self.stats
        stats.idle_fetch_slots += self._fetch_width * k
        stats.idle_skipped_cycles += k
        stats.idle_skips += 1
        # MSHR retirement only deletes matured entries; one sweep at the
        # last skipped cycle equals k per-cycle sweeps.
        self.hierarchy.tick(wake - 1)
        self.now = wake
        stats.cycles = wake

    # -- commit -----------------------------------------------------------
    def _commit(self, now: int) -> None:
        budget = self._commit_width
        n = self.num_threads
        self._commit_rotation = rotation = (self._commit_rotation + 1) % n
        stats = self.stats
        contexts = self.contexts
        threads = self.counters.threads
        regs = self.regs
        lsq = self.lsq
        tracer = self.tracer
        per_thread = stats.per_thread_committed
        for i in range(n):
            if budget <= 0:
                break
            tid = (rotation + i) % n
            rob = contexts[tid].rob
            if not rob:
                continue
            tc = threads[tid]
            while budget > 0 and rob:
                head = rob[0]
                if head.squashed:
                    # Should have been removed at squash; defensive.
                    rob.popleft()
                    continue
                if not head.completed:
                    break
                rob.popleft()
                budget -= 1
                tc.rob -= 1
                if tracer:
                    tracer.record(now, "commit", head)
                kind = head.kind
                # needs_register(kind): opcodes are ordered so every
                # destination-writing class sorts below STORE.
                if kind < STORE:
                    regs.release(tid)
                if kind == LOAD or kind == STORE:
                    lsq.release(tid)
                    tc.lsq -= 1
                    tc.in_flight_mem -= 1
                    if kind == LOAD:
                        tc.in_flight_loads -= 1
                tc.q_committed += 1
                tc.total_committed += 1
                stats.committed += 1
                per_thread[tid] = per_thread.get(tid, 0) + 1
                if kind == SYSCALL:
                    self._finish_syscall(tid)

    # -- completion ---------------------------------------------------------
    def _complete(self, now: int) -> None:
        completions = self.completions
        nc = completions.next_cycle()
        if nc is None or nc > now:
            return  # nothing matures this cycle: skip the pop machinery
        contexts = self.contexts
        threads = self.counters.threads
        tracer = self.tracer
        for instr in completions.pop_ready(now):
            if instr.squashed:
                continue
            instr.completed = True
            if tracer:
                tracer.record(now, "complete", instr)
            tid = instr.tid
            ctx = contexts[tid]
            ctx.mark_completed(instr.seq)
            if instr.kind == BRANCH and instr.cond:
                threads[tid].in_flight_branches -= 1
                if instr.mispredicted and ctx.wp_branch_seq == instr.seq:
                    self._squash_wrong_path(tid, now)

    # -- squash ---------------------------------------------------------------
    def _squash_wrong_path(self, tid: int, now: int) -> None:
        """Kill everything younger than the resolved mispredicted branch."""
        ctx = self.contexts[tid]
        tc = self.counters[tid]
        stats = self.stats
        # 1. Front-end delay line holds only junk at this point.
        fq = self.front_q[tid]
        while fq:
            instr, _ready = fq.pop()
            instr.squashed = True
            tc.front_end -= 1
            self._front_total -= 1
            tc.q_squashed += 1
            stats.squashed += 1
            if self.tracer:
                self.tracer.record(now, "squash", instr)
            if instr.kind == BRANCH and instr.cond:
                tc.in_flight_branches -= 1
        # 2. ROB tail: junk instructions (seq == -1) are contiguous at the tail.
        rob = ctx.rob
        while rob and rob[-1].seq == -1:
            instr = rob.pop()
            instr.squashed = True
            tc.rob -= 1
            tc.q_squashed += 1
            stats.squashed += 1
            if self.tracer:
                self.tracer.record(now, "squash", instr)
            if needs_register(instr.kind):
                self.regs.release(tid)
            if not instr.issued:
                tc.iq_int -= 1  # junk dispatches to the integer queue
            # issued junk is in the completion heap; _complete skips it.
            if instr.kind == LOAD:
                self.lsq.release(tid)
                tc.lsq -= 1
                tc.in_flight_mem -= 1
                tc.in_flight_loads -= 1
            elif instr.kind == BRANCH and instr.cond and not instr.completed:
                tc.in_flight_branches -= 1
        ctx.wrong_path = False
        ctx.wp_branch_seq = -1
        ctx.block_fetch_until(now + self._misfetch_penalty)

    # -- syscall drain ----------------------------------------------------------
    def _syscall_drain_check(self, now: int) -> None:
        """If a syscall is draining the pipe, start it once drained."""
        tid = self._drain_tid
        if tid is None:
            return
        ctx = self.contexts[tid]
        rob = ctx.rob
        if not rob or rob[0].kind != SYSCALL or rob[0].issued:
            return
        # Drained = no one else has anything in flight, our older work done.
        if len(self.completions):
            return
        for other in self.contexts:
            if other.tid != tid and other.rob:
                return
        if len(self.iq_int) or len(self.iq_fp):
            # Lazy entries may linger; compact and re-check.
            self.iq_int.compact()
            self.iq_fp.compact()
            if len(self.iq_int) or len(self.iq_fp):
                return
        syscall = rob[0]
        syscall.issued = True
        self.completions.schedule(syscall, now + self.config.syscall_drain_cycles)

    def _finish_syscall(self, tid: int) -> None:
        self._drain_tid = None
        self.contexts[tid].syscall_waiting = False
        self.stats.syscalls += 1

    # -- issue -------------------------------------------------------------
    def _issue(self, now: int) -> None:
        self.fus.new_cycle()
        budget = self._issue_queue(self.iq_int, self._issue_width, now)
        if budget > 0:
            self._issue_queue(self.iq_fp, budget, now)

    def _issue_queue(self, iq: InstructionQueue, budget: int, now: int) -> int:
        entries = iq._entries  # hot loop: skip the __iter__/__len__ layer
        if budget <= 0 or not entries:
            return budget
        threads = self.counters.threads
        try_claim = self.fus.try_claim
        latencies = self._latencies
        store_latency = latencies[STORE]
        schedule = self.completions.schedule
        hierarchy = self.hierarchy
        tracer = self.tracer
        is_int_q = iq is self.iq_int
        # Copy-on-first-removal: scans that issue nothing (all entries
        # waiting, or budget exhausted) leave the entry list untouched
        # instead of rebuilding it every cycle.
        survivors: Optional[List[Instruction]] = None
        append = None
        for idx, instr in enumerate(entries):
            if instr.squashed or instr.issued:
                if survivors is None:
                    survivors = entries[:idx]
                    append = survivors.append
                continue  # lazy removal
            if budget <= 0:
                if append is not None:
                    append(instr)
                continue
            tid = instr.tid
            if instr.seq != -1:
                # Wake-up flag (hottest check in the scan): set at dispatch,
                # flipped by producer completions in mark_completed.
                if not instr.iq_ready:
                    threads[tid].recent_stalls += 0.1  # waiting in IQ: mild stall signal
                    if append is not None:
                        append(instr)
                    continue
            elif now < instr.wp_ready:
                # Wrong-path junk waiting on its phantom operands.
                if append is not None:
                    append(instr)
                continue
            kind = instr.kind
            if not try_claim(kind):
                if append is not None:
                    append(instr)
                continue
            # Issue it.
            if survivors is None:
                survivors = entries[:idx]
                append = survivors.append
            budget -= 1
            instr.issued = True
            if tracer:
                tracer.record(now, "issue", instr)
            tc = threads[tid]
            if is_int_q:
                tc.iq_int -= 1
            else:
                tc.iq_fp -= 1
            if kind == LOAD:
                result = hierarchy.load(instr.addr, now)
                if result.mshr_stall:
                    # Cannot allocate a miss entry: retry next cycle.
                    instr.issued = False
                    tc.iq_int += 1
                    tc.recent_stalls += 1.0
                    tc.q_stall_cycles += 1
                    budget += 1
                    append(instr)
                    continue
                latency = 1 + result.latency
                if result.l1_miss:
                    tc.outstanding_l1d_misses += 1
                    tc.q_l1d_misses += 1
                    if result.l2_miss:
                        tc.q_l2_misses += 1
                    # Remember to decrement the outstanding-miss gauge.
                    fill_cycle = now + latency
                    self._pending_miss_clear.append((fill_cycle, tid))
                    if fill_cycle < self._next_miss_clear:
                        self._next_miss_clear = fill_cycle
                schedule(instr, now + latency)
            elif kind == STORE:
                result = hierarchy.store(instr.addr, now)
                if result.l1_miss:
                    tc.q_l1d_misses += 1
                    if result.l2_miss:
                        tc.q_l2_misses += 1
                # Stores complete quickly; the LSQ holds them until commit.
                schedule(instr, now + store_latency)
            else:
                schedule(instr, now + latencies.get(kind, 1))
        if survivors is not None:
            iq.set_entries(survivors)
        return budget

    # -- dispatch -----------------------------------------------------------
    def _dispatch(self, now: int) -> None:
        if self._drain_tid is not None:
            return  # syscall draining: hold everything in the front end
        budget = self._rename_width
        n = self.num_threads
        start = self._commit_rotation  # reuse rotation for fairness
        front_q = self.front_q
        contexts = self.contexts
        threads = self.counters.threads
        dispatch_thread = self._dispatch_thread
        for i in range(n):
            if budget <= 0:
                break
            tid = (start + i) % n
            q = front_q[tid]
            # Peek head readiness here: a not-ready head is the common case
            # and the per-thread dispatch prologue is all wasted work then
            # (the loop would break on its first test, side-effect free).
            if q and q[0][1] <= now:
                budget = dispatch_thread(
                    tid, contexts[tid], threads[tid], q, budget, now
                )

    def _dispatch_thread(self, tid: int, ctx, tc, fq, budget: int,
                         now: int) -> int:
        if ctx.syscall_waiting:
            return budget
        rob = ctx.rob
        rob_limit = self._rob_entries
        regs = self.regs
        lsq = self.lsq
        tracer = self.tracer
        while budget > 0 and fq:
            instr, ready_cycle = fq[0]
            if ready_cycle > now:
                break
            if len(rob) >= rob_limit:
                tc.recent_stalls += 1.0
                tc.q_stall_cycles += 1
                break
            kind = instr.kind
            if kind == SYSCALL:
                if self._drain_tid is not None:
                    break  # another syscall is mid-drain
                fq.popleft()
                tc.front_end -= 1
                self._front_total -= 1
                rob.append(instr)
                tc.rob += 1
                ctx.syscall_waiting = True
                self._drain_tid = tid
                budget -= 1
                break
            # Resource claims below are RenameRegisterPool.allocate /
            # LoadStoreQueue.allocate / InstructionQueue.full spelled out
            # inline (same counters, same order) — this loop runs for every
            # dispatch attempt and the call overhead dominated the stage.
            needs_reg = kind < STORE  # == needs_register(kind)
            if needs_reg:
                if regs._free <= 0:
                    # Shared rename pool exhausted: dispatch stalls —
                    # machine-wide pressure the paper's clogging analysis
                    # calls out.
                    regs.alloc_failures += 1
                    tc.q_reg_full += 1
                    tc.recent_stalls += 1.0
                    tc.q_stall_cycles += 1
                    break
                regs._free -= 1
                regs._per_thread[tid] += 1
            is_mem = kind == LOAD or kind == STORE
            if is_mem:
                if lsq._total >= lsq.capacity:
                    lsq.full_events += 1
                    if needs_reg:
                        regs._per_thread[tid] -= 1
                        regs._free += 1
                    tc.q_lsq_full += 1
                    tc.recent_stalls += 1.0
                    tc.q_stall_cycles += 1
                    break
                lsq._per_thread[tid] += 1
                lsq._total += 1
            is_fp = FADD <= kind <= FDIV  # == instr.is_fp
            iq = self.iq_fp if is_fp else self.iq_int
            # len-vs-capacity inline (== iq.full, minus the property call).
            if len(iq._entries) >= iq.capacity:
                iq.compact()
            if len(iq._entries) >= iq.capacity:
                if is_mem:
                    lsq._per_thread[tid] -= 1
                    lsq._total -= 1
                if needs_reg:
                    regs._per_thread[tid] -= 1
                    regs._free += 1
                tc.q_iq_full += 1
                tc.recent_stalls += 1.0
                tc.q_stall_cycles += 1
                break
            # Commit the dispatch.
            fq.popleft()
            tc.front_end -= 1
            self._front_total -= 1
            if tracer:
                tracer.record(now, "dispatch", instr)
            iq._entries.append(instr)  # == iq.insert; capacity checked above
            if instr.seq != -1:
                # Wake-up registration: evaluate readiness once, here; the
                # issue scan then tests the flag and producer completions
                # (ThreadContext.mark_completed) flip it — no per-cycle
                # re-derivation.  Junk (seq == -1) uses wp_ready instead.
                du = ctx.done_upto
                ds = ctx.done_set
                d1 = instr.dep1
                d2 = instr.dep2
                w1 = d1 > du and d1 not in ds
                w2 = d2 > du and d2 not in ds
                if w1 or w2:
                    instr.iq_ready = False
                    waiters = ctx.waiters
                    if w1:
                        waiters.setdefault(d1, []).append(instr)
                    if w2 and d2 != d1:
                        waiters.setdefault(d2, []).append(instr)
            if is_fp:
                tc.iq_fp += 1
            else:
                tc.iq_int += 1
            rob.append(instr)
            tc.rob += 1
            if is_mem:
                tc.lsq += 1
                tc.in_flight_mem += 1
                if kind == LOAD:
                    tc.in_flight_loads += 1
            budget -= 1
        return budget

    # -- fetch --------------------------------------------------------------
    def _fetch(self, now: int) -> int:
        fuel = self._fetch_width
        free = self._fetch_buffer_entries - self._front_total
        if free <= 0 or self._drain_tid is not None:
            return fuel
        # Inlined ThreadContext.can_fetch over the context list.
        candidates = [
            ctx.tid
            for ctx in self.contexts
            if ctx.fetchable
            and not ctx.suspended
            and not ctx.syscall_waiting
            and now >= ctx.fetch_ready_cycle
        ]
        if candidates:
            threads_used = 0
            max_threads = self._fetch_threads_per_cycle
            fetch_thread = self._fetch_thread
            for tid in self.policy.rank(candidates, self.counters):
                if fuel <= 0 or free <= 0 or threads_used >= max_threads:
                    break
                got = fetch_thread(tid, fuel if fuel < free else free, now)
                # An attempt consumes the thread slot even when the I-cache
                # misses (the port was occupied by the probe) — this is
                # what makes single-thread-per-cycle fetch fragile.
                threads_used += 1
                if got > 0:
                    fuel -= got
                    free -= got
        return fuel

    def _fetch_thread(self, tid: int, fuel: int, now: int) -> int:
        ctx = self.contexts[tid]
        tc = self.counters.threads[tid]
        stats = self.stats
        fq = self.front_q[tid]
        fq_append = fq.append
        tracer = self.tracer
        ready_at = now + self._front_latency
        if ctx.wrong_path:
            # Wrong-path fetch: the hardware cannot tell these from real
            # instructions, so neither can the counters — junk looks like
            # the real mix: it waits on (phantom) operands in the IQ, loads
            # pollute the caches, and branches inflate the unresolved-
            # branch counts that BRCOUNT keys on.
            #
            # All junk decisions come from one pre-drawn ``random()`` batch:
            # exactly three uniforms per instruction (kind, address, wait),
            # so the stream position after N instructions is 3N draws
            # regardless of the kinds drawn.
            count = min(fuel, self._fetch_width)
            rand = self._wp_rng.random
            draws = [rand() for _ in range(3 * count)]
            j = 0
            load_base = (tid << 30) + (32 << 20)
            for _ in range(count):
                r = draws[j]
                u_addr = draws[j + 1]
                u_wait = draws[j + 2]
                j += 3
                if r < 0.25:
                    junk = Instruction(
                        tid, -1, LOAD, 0, addr=load_base + int(u_addr * _WP_ADDR_SPAN)
                    )
                    tc.q_loads += 1
                elif r < 0.40:
                    junk = Instruction(tid, -1, BRANCH, 0, cond=True)
                    tc.in_flight_branches += 1
                    tc.q_branches += 1
                    tc.q_cond_branches += 1
                else:
                    junk = Instruction(tid, -1, IALU, 0)
                # Phantom operand wait: exponential by inversion, mean ~6.
                junk.wp_ready = ready_at + min(40, int(-6.0 * _log(1.0 - u_wait)))
                if tracer:
                    tracer.record(now, "fetch", junk)
                fq_append((junk, ready_at))
            tc.front_end += count
            self._front_total += count
            tc.q_fetched += count
            tc.total_fetched += count
            stats.fetched += count
            stats.wrong_path_fetched += count
            return count
        count = 0
        current_line = -1
        next_instruction = ctx.next_instruction
        while count < fuel:
            instr = next_instruction()
            line = instr.pc >> _LINE_SHIFT
            if current_line < 0:
                # First iteration only: one I-cache probe per fetch attempt.
                result = self.hierarchy.ifetch(instr.pc, now)
                if result.l1_miss:
                    tc.recent_l1i_misses += 1.0
                    tc.q_l1i_misses += 1
                    if result.l2_miss:
                        tc.q_l2_misses += 1
                    ctx.push_back(instr)
                    ctx.block_fetch_until(now + result.latency)
                    return -1  # count is necessarily 0 here
                current_line = line
            elif line != current_line:
                # Cache-block boundary: this thread is done for the cycle.
                ctx.push_back(instr)
                break
            # Accept the instruction. Instructions are stamped with the
            # *hardware context* id: a trace generator's own tid names its
            # address space, which differs from the context when the job
            # scheduler has remapped jobs (core/jobsched.py).
            instr.tid = tid
            if tracer:
                tracer.record(now, "fetch", instr)
            fq_append((instr, ready_at))
            count += 1
            kind = instr.kind
            if kind == BRANCH:
                if self._fetch_branch(ctx, tc, instr, now):
                    break
            elif kind == LOAD:
                tc.q_loads += 1
            elif kind == STORE:
                tc.q_stores += 1
            elif kind == SYSCALL:
                break  # fetch no further until the syscall retires
        if count:
            # Per-fetch-group counter updates, applied in bulk: nothing in
            # the loop (including _fetch_branch) reads these fields.
            tc.front_end += count
            self._front_total += count
            tc.q_fetched += count
            tc.total_fetched += count
            stats.fetched += count
        return count

    def _fetch_branch(self, ctx: ThreadContext, tc, instr: Instruction, now: int) -> bool:
        """Handle prediction for a just-fetched branch; True = stop fetching."""
        tc.q_branches += 1
        if instr.cond:
            tc.q_cond_branches += 1
            self.stats.cond_branches += 1
            tc.in_flight_branches += 1
            correct = self.predictor.predict_and_update(ctx.tid, instr.pc, instr.taken)
            if not correct:
                instr.mispredicted = True
                tc.q_mispredicts += 1
                self.stats.mispredicted_branches += 1
                ctx.wrong_path = True
                ctx.wp_branch_seq = instr.seq
                return True
            if not instr.taken:
                return False  # correctly predicted not-taken: keep fetching
        # Taken (or unconditional) branch: check the BTB for the target.
        predicted_target = self.btb.lookup(instr.pc)
        if predicted_target != instr.target:
            self.btb.update(instr.pc, instr.target)
            ctx.block_fetch_until(now + self._misfetch_penalty)
        return True

    # -- quantum ------------------------------------------------------------
    def _end_quantum(self) -> None:
        committed = self.stats.committed - self._quantum_committed_base
        record = QuantumRecord(
            index=self._quantum_index,
            start_cycle=self._quantum_start_cycle,
            cycles=self.now - self._quantum_start_cycle,
            committed=committed,
            policy=self.policy.name,
        )
        self.stats.quantum_history.append(record)
        self.stats.cycles = self.now
        snapshots = self.counters.end_quantum()
        self.policy.on_quantum_boundary()
        self.hook.on_quantum_end(self.now, record, snapshots)
        self._quantum_index += 1
        self._quantum_start_cycle = self.now
        self._quantum_end_cycle = self.now + self.quantum_cycles
        self._quantum_committed_base = self.stats.committed

    def _drain_miss_gauges(self, now: int) -> None:
        """Clear outstanding-L1D-miss gauges whose fills have arrived."""
        lst = self._pending_miss_clear
        if not lst or now < self._next_miss_clear:
            return
        threads = self.counters.threads
        keep = []
        nxt = _NEVER
        for cycle, tid in lst:
            if cycle <= now:
                threads[tid].outstanding_l1d_misses -= 1
            else:
                keep.append((cycle, tid))
                if cycle < nxt:
                    nxt = cycle
        self._pending_miss_clear = keep
        self._next_miss_clear = nxt
