"""Dynamic instruction record.

Instructions are the unit flowing through every pipeline structure, so the
record is a ``__slots__`` class with plain-int fields (per the hpc guides:
no per-cycle dict/attribute churn in the hot loop). Opcode classes are
module-level ints, not an Enum, for cheap comparisons in the issue loop;
:class:`OpClass` wraps them for readable external APIs.
"""

from __future__ import annotations

from enum import IntEnum

# Opcode classes (hot-path constants).
IALU = 0
IMUL = 1
FADD = 2
FMUL = 3
FDIV = 4
LOAD = 5
STORE = 6
BRANCH = 7
SYSCALL = 8

KIND_NAMES = {
    IALU: "ialu",
    IMUL: "imul",
    FADD: "fadd",
    FMUL: "fmul",
    FDIV: "fdiv",
    LOAD: "load",
    STORE: "store",
    BRANCH: "branch",
    SYSCALL: "syscall",
}

_FP_KINDS = frozenset((FADD, FMUL, FDIV))
_MEM_KINDS = frozenset((LOAD, STORE))


class OpClass(IntEnum):
    """Readable wrapper over the hot-path opcode constants."""

    IALU = IALU
    IMUL = IMUL
    FADD = FADD
    FMUL = FMUL
    FDIV = FDIV
    LOAD = LOAD
    STORE = STORE
    BRANCH = BRANCH
    SYSCALL = SYSCALL


class Instruction:
    """One dynamic instruction.

    Static fields come from the trace generator; the mutable tail fields
    are pipeline state owned by :class:`repro.smt.pipeline.SMTProcessor`.

    Attributes:
        tid: hardware context id.
        seq: per-thread dynamic sequence number (program order).
        kind: opcode class constant (``IALU`` .. ``SYSCALL``).
        pc: instruction address (word-aligned).
        dep1, dep2: per-thread ``seq`` of producer instructions, or -1.
        addr: effective address for loads/stores, else 0.
        cond: for branches, True when the branch is conditional.
        taken: actual direction for conditional branches.
        target: actual target address for taken branches.
        completed: execution finished (result available).
        issued: left an instruction queue for a functional unit.
        squashed: on the wrong path of a mispredicted branch.
        mispredicted: branch whose prediction was wrong (set at fetch).
        complete_cycle: cycle at which execution completes, else -1.
        iq_ready: all producers complete (wake-up flag, maintained by the
            dispatch stage and producer completions — real schedulers wake
            consumers instead of polling, and so does the issue scan).
    """

    __slots__ = (
        "tid",
        "seq",
        "kind",
        "pc",
        "dep1",
        "dep2",
        "addr",
        "cond",
        "taken",
        "target",
        "completed",
        "issued",
        "squashed",
        "mispredicted",
        "complete_cycle",
        "wp_ready",
        "iq_ready",
    )

    def __init__(
        self,
        tid: int,
        seq: int,
        kind: int,
        pc: int,
        dep1: int = -1,
        dep2: int = -1,
        addr: int = 0,
        cond: bool = False,
        taken: bool = False,
        target: int = 0,
    ) -> None:
        self.tid = tid
        self.seq = seq
        self.kind = kind
        self.pc = pc
        self.dep1 = dep1
        self.dep2 = dep2
        self.addr = addr
        self.cond = cond
        self.taken = taken
        self.target = target
        self.completed = False
        self.issued = False
        self.squashed = False
        self.mispredicted = False
        self.complete_cycle = -1
        # Wrong-path instructions (seq == -1) emulate operand waits with an
        # earliest-issue cycle instead of real dependences.
        self.wp_ready = 0
        self.iq_ready = True

    # -- classification helpers (used outside the hot loop) ---------------
    @property
    def is_fp(self) -> bool:
        return self.kind in _FP_KINDS

    @property
    def is_mem(self) -> bool:
        return self.kind in _MEM_KINDS

    @property
    def is_branch(self) -> bool:
        return self.kind == BRANCH

    @property
    def is_load(self) -> bool:
        return self.kind == LOAD

    @property
    def is_store(self) -> bool:
        return self.kind == STORE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            f
            for f, on in (
                ("C", self.completed),
                ("I", self.issued),
                ("X", self.squashed),
                ("M", self.mispredicted),
            )
            if on
        )
        return (
            f"Instruction(t{self.tid}#{self.seq} {KIND_NAMES[self.kind]} "
            f"pc={self.pc:#x} deps=({self.dep1},{self.dep2}) {flags})"
        )
