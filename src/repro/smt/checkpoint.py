"""Mid-run simulator checkpointing: atomic, validated state snapshots.

A snapshot serializes the *complete* simulator state — pipeline queues and
contexts, RNG substreams, per-thread counters, the ADTS controller's FSM,
watchdog and decision history, any queued detector-thread work (the
callbacks are :func:`functools.partial` over bound methods, chosen for
exactly this reason), and a fault injector's plan cursor — so that

    run to quantum k, checkpoint, restore, run to the end

is bit-identical to an uninterrupted run. That turns crash recovery from
whole-cell granularity (the :class:`~repro.harness.journal.RunJournal`) into
sub-cell granularity: a supervisor can SIGKILL a hung worker and the retry
resumes from the last quantum boundary instead of cycle zero.

Snapshots are only taken *between* quanta (``SMTProcessor.at_quantum_boundary``)
— the one instant with no half-executed cycle and freshly-cleared quantum
counters — and are written torn-proof twice over: the payload is framed with
a magic/version/length/CRC32 header (a partial write never validates), and
the frame lands via write-to-temp + fsync + ``os.replace`` (readers never
observe a partial file under any kill timing).

Serialization is :mod:`pickle` of the live object graph. That is deliberate:
the simulator is pure in-process Python state with seeded NumPy/stdlib RNGs
(both of which pickle their exact stream position), and a structural
re-encoding of every queue would have to be maintained in lockstep with the
pipeline forever. The cost is that snapshots are only readable by the same
code version — which is what the versioned header enforces.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

#: File magic for snapshot frames.
MAGIC = b"REPRO-SNAP"
#: Bump on any change to the frame layout or the pickled bundle's schema.
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<10sIII")  # magic, version, payload length, crc32


class CheckpointError(Exception):
    """A snapshot could not be written, read, or trusted (torn/mismatched)."""


@dataclass
class Snapshot:
    """One restored checkpoint: the simulator plus its scheduler stack."""

    processor: object
    controller: Optional[object]
    injector: Optional[object]
    quantum_index: int
    cycle: int
    meta: dict


@dataclass(frozen=True)
class CheckpointPlan:
    """Where and how often a run should snapshot itself.

    Attributes:
        path: snapshot file (a single file, atomically replaced each time).
        every_quanta: snapshot period in quanta.
        keep_on_success: keep the final snapshot after a clean finish
            (default: delete it — a finished run needs no resume point).
    """

    path: Union[str, Path]
    every_quanta: int = 1
    keep_on_success: bool = False

    def __post_init__(self) -> None:
        if self.every_quanta < 1:
            raise ValueError("every_quanta must be >= 1")

    def due(self, quantum_index: int) -> bool:
        """Should a snapshot be taken after ``quantum_index`` quanta ran?"""
        return quantum_index % self.every_quanta == 0


def save_checkpoint(
    path: Union[str, Path],
    processor,
    controller=None,
    injector=None,
    meta: Optional[dict] = None,
) -> None:
    """Atomically write a snapshot of ``processor`` (and its hook stack).

    Raises :class:`CheckpointError` if the processor is mid-quantum: a
    snapshot between phase walks of a cycle would capture a state no real
    run ever restarts from.
    """
    if not processor.at_quantum_boundary:
        raise CheckpointError(
            f"checkpoint requested mid-quantum (cycle {processor.now}); "
            "snapshots are only taken at quantum boundaries"
        )
    bundle = {
        "processor": processor,
        "controller": controller,
        "injector": injector,
        "quantum_index": processor.quantum_index,
        "cycle": processor.now,
        "meta": dict(meta or {}),
    }
    try:
        payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"simulator state is not serializable: {exc}") from exc
    header = _HEADER.pack(MAGIC, CHECKPOINT_VERSION, len(payload), zlib.crc32(payload))
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    # Persist the rename itself (a crash right after os.replace must not
    # resurrect the previous snapshot on journaling filesystems).
    try:
        dirfd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
    except OSError:
        pass  # directory fsync is best-effort (not supported everywhere)


def load_checkpoint(path: Union[str, Path], expect_meta: Optional[dict] = None) -> Snapshot:
    """Read and validate a snapshot; raises :class:`CheckpointError` on a
    missing, torn, corrupt, or version-mismatched file.

    ``expect_meta`` keys, when given, must match the stored metadata — the
    guard against resuming a cell from some *other* run's snapshot.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no snapshot at {path}")
    blob = path.read_bytes()
    if len(blob) < _HEADER.size:
        raise CheckpointError(f"{path}: truncated snapshot header")
    magic, version, length, crc = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointError(f"{path}: not a repro snapshot (bad magic)")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: snapshot version {version} != supported {CHECKPOINT_VERSION}"
        )
    payload = blob[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointError(
            f"{path}: torn snapshot ({len(payload)} of {length} payload bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"{path}: snapshot payload fails its CRC")
    try:
        bundle = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(f"{path}: undecodable snapshot payload: {exc}") from exc
    meta = bundle.get("meta", {})
    if expect_meta:
        for key, want in expect_meta.items():
            got = meta.get(key)
            if got != want:
                raise CheckpointError(
                    f"{path}: snapshot is for a different run "
                    f"({key}={got!r}, expected {want!r})"
                )
    return Snapshot(
        processor=bundle["processor"],
        controller=bundle.get("controller"),
        injector=bundle.get("injector"),
        quantum_index=bundle["quantum_index"],
        cycle=bundle["cycle"],
        meta=meta,
    )


def discard_checkpoint(path: Union[str, Path]) -> None:
    """Remove a snapshot file if present (clean-finish housekeeping)."""
    path = Path(path)
    if path.exists():
        path.unlink()
