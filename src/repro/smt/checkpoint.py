"""Mid-run simulator checkpointing: atomic, validated state snapshots.

A snapshot serializes the *complete* simulator state — pipeline queues and
contexts, RNG substreams, per-thread counters, the ADTS controller's FSM,
watchdog and decision history, any queued detector-thread work (the
callbacks are :func:`functools.partial` over bound methods, chosen for
exactly this reason), and a fault injector's plan cursor — so that

    run to quantum k, checkpoint, restore, run to the end

is bit-identical to an uninterrupted run. That turns crash recovery from
whole-cell granularity (the :class:`~repro.harness.journal.RunJournal`) into
sub-cell granularity: a supervisor can SIGKILL a hung worker and the retry
resumes from the last quantum boundary instead of cycle zero.

Snapshots are only taken *between* quanta (``SMTProcessor.at_quantum_boundary``)
— the one instant with no half-executed cycle and freshly-cleared quantum
counters — and are written torn-proof twice over: the pickled payload rides
inside the versioned artifact envelope of :mod:`repro.storage.artifact`
(magic, schema version, length, CRC32, writer provenance — a partial write
never validates), and the frame lands through
:func:`repro.storage.atomic.atomic_write_bytes` (temp + fsync + rename +
directory fsync, with bounded retry on transient I/O errors). Snapshots
written by the pre-envelope v1 format (bare ``REPRO-SNAP`` frame) still
load forward. A file that fails validation is quarantined to ``*.corrupt``
*before* :class:`CheckpointError` is raised, so a retry loop regenerates
from scratch instead of re-reading the same bad bytes forever.

Serialization is :mod:`pickle` of the live object graph. That is deliberate:
the simulator is pure in-process Python state with seeded NumPy/stdlib RNGs
(both of which pickle their exact stream position), and a structural
re-encoding of every queue would have to be maintained in lockstep with the
pipeline forever. The cost is that snapshots are only readable by the same
code version — which is what the versioned header enforces.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.storage.artifact import is_enveloped, unpack_artifact, write_artifact
from repro.storage.atomic import quarantine, read_bytes
from repro.storage.errors import ArtifactError, ArtifactVersionError, StorageError

#: Legacy (v1) file magic; v2 snapshots use the shared artifact envelope.
MAGIC = b"REPRO-SNAP"
#: Bump on any change to the frame layout or the pickled bundle's schema.
#: v1 = bare REPRO-SNAP frame; v2 = artifact envelope (format below).
CHECKPOINT_VERSION = 2
#: Artifact-envelope format name for snapshot files.
CHECKPOINT_FORMAT = "smt-checkpoint"

_V1_HEADER = struct.Struct("<10sIII")  # magic, version, payload length, crc32


class CheckpointError(Exception):
    """A snapshot could not be written, read, or trusted (torn/mismatched)."""


class CheckpointVersionError(CheckpointError):
    """The snapshot file is intact but schema-incompatible (wrong artifact
    format or unsupported version). Unlike byte-level damage it is *not*
    quarantined — newer code may still read it."""


@dataclass
class Snapshot:
    """One restored checkpoint: the simulator plus its scheduler stack."""

    processor: object
    controller: Optional[object]
    injector: Optional[object]
    quantum_index: int
    cycle: int
    meta: dict


@dataclass(frozen=True)
class CheckpointPlan:
    """Where and how often a run should snapshot itself.

    Attributes:
        path: snapshot file (a single file, atomically replaced each time).
        every_quanta: snapshot period in quanta.
        keep_on_success: keep the final snapshot after a clean finish
            (default: delete it — a finished run needs no resume point).
    """

    path: Union[str, Path]
    every_quanta: int = 1
    keep_on_success: bool = False

    def __post_init__(self) -> None:
        if self.every_quanta < 1:
            raise ValueError("every_quanta must be >= 1")

    def due(self, quantum_index: int) -> bool:
        """Should a snapshot be taken after ``quantum_index`` quanta ran?"""
        return quantum_index % self.every_quanta == 0


def save_checkpoint(
    path: Union[str, Path],
    processor,
    controller=None,
    injector=None,
    meta: Optional[dict] = None,
) -> None:
    """Atomically write a snapshot of ``processor`` (and its hook stack).

    Raises :class:`CheckpointError` if the processor is mid-quantum: a
    snapshot between phase walks of a cycle would capture a state no real
    run ever restarts from.
    """
    if not processor.at_quantum_boundary:
        raise CheckpointError(
            f"checkpoint requested mid-quantum (cycle {processor.now}); "
            "snapshots are only taken at quantum boundaries"
        )
    bundle = {
        "processor": processor,
        "controller": controller,
        "injector": injector,
        "quantum_index": processor.quantum_index,
        "cycle": processor.now,
        "meta": dict(meta or {}),
    }
    try:
        payload = pickle.dumps(bundle, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"simulator state is not serializable: {exc}") from exc
    # StorageError from the atomic layer (disk full, retry-exhausted I/O)
    # propagates as-is: checkpointing callers degrade rather than abort.
    write_artifact(path, CHECKPOINT_FORMAT, CHECKPOINT_VERSION, payload)


def parse_snapshot_payload(path: Union[str, Path], blob: bytes) -> bytes:
    """Extract the pickled bundle from a snapshot file's raw bytes.

    Accepts both the current artifact-envelope framing and the legacy
    (pre-envelope) bare ``REPRO-SNAP`` v1 frame, which loads forward —
    the pickled bundle schema is unchanged between the two. Raises
    :class:`CheckpointError` on damage or an unsupported version; also
    used by ``repro fsck`` to classify snapshot files.
    """
    if is_enveloped(blob):
        try:
            header, payload = unpack_artifact(blob, expect_format=CHECKPOINT_FORMAT)
        except ArtifactVersionError as exc:
            raise CheckpointVersionError(f"{path}: {exc}") from exc
        except ArtifactError as exc:
            raise CheckpointError(f"{path}: {exc}") from exc
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointVersionError(
                f"{path}: snapshot version {header.get('version')} != "
                f"supported {CHECKPOINT_VERSION}"
            )
        return payload
    if blob[: len(MAGIC)] == MAGIC:  # legacy v1 frame: migrate forward
        if len(blob) < _V1_HEADER.size:
            raise CheckpointError(f"{path}: truncated snapshot header")
        _, version, length, crc = _V1_HEADER.unpack_from(blob)
        if version != 1:
            raise CheckpointVersionError(
                f"{path}: legacy snapshot version {version} != supported 1"
            )
        payload = blob[_V1_HEADER.size :]
        if len(payload) != length:
            raise CheckpointError(
                f"{path}: torn snapshot ({len(payload)} of {length} payload bytes)"
            )
        if zlib.crc32(payload) != crc:
            raise CheckpointError(f"{path}: snapshot payload fails its CRC")
        return payload
    raise CheckpointError(f"{path}: not a repro snapshot (bad magic)")


def load_checkpoint(path: Union[str, Path], expect_meta: Optional[dict] = None) -> Snapshot:
    """Read and validate a snapshot; raises :class:`CheckpointError` on a
    missing, torn, corrupt, or version-mismatched file.

    A file whose *bytes* are damaged (bad magic, torn frame, checksum or
    unpickle failure) is quarantined to ``*.corrupt`` before the raise, so
    retry loops regenerate instead of re-reading the same bad bytes; a
    version or metadata mismatch leaves the (intact) file in place.

    ``expect_meta`` keys, when given, must match the stored metadata — the
    guard against resuming a cell from some *other* run's snapshot.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"no snapshot at {path}")
    try:
        blob = read_bytes(path)
    except FileNotFoundError:
        raise CheckpointError(f"no snapshot at {path}") from None
    except StorageError as exc:
        raise CheckpointError(f"{path}: unreadable snapshot: {exc}") from exc
    try:
        payload = parse_snapshot_payload(path, blob)
    except CheckpointVersionError:
        raise  # intact but incompatible: keep the file
    except CheckpointError as exc:
        dest = quarantine(path)
        raise CheckpointError(
            f"{exc} (quarantined to {dest})" if dest else str(exc)
        ) from exc
    try:
        bundle = pickle.loads(payload)
    except Exception as exc:
        dest = quarantine(path)
        raise CheckpointError(
            f"{path}: undecodable snapshot payload: {exc}"
            + (f" (quarantined to {dest})" if dest else "")
        ) from exc
    meta = bundle.get("meta", {})
    if expect_meta:
        for key, want in expect_meta.items():
            got = meta.get(key)
            if got != want:
                raise CheckpointError(
                    f"{path}: snapshot is for a different run "
                    f"({key}={got!r}, expected {want!r})"
                )
    return Snapshot(
        processor=bundle["processor"],
        controller=bundle.get("controller"),
        injector=bundle.get("injector"),
        quantum_index=bundle["quantum_index"],
        cycle=bundle["cycle"],
        meta=meta,
    )


def discard_checkpoint(path: Union[str, Path]) -> None:
    """Remove a snapshot file if present (clean-finish housekeeping)."""
    path = Path(path)
    if path.exists():
        path.unlink()
