"""Execution resources: functional-unit pool and the completion heap."""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.smt.instruction import FADD, FDIV, LOAD, STORE, Instruction


class FunctionalUnitPool:
    """Per-cycle issue-port accounting.

    Units are fully pipelined (SimpleScalar default), so only *issue slots*
    per cycle are limited: ``int_units`` integer issues of which at most
    ``mem_ports`` may be memory operations, and ``fp_units`` FP issues.
    """

    __slots__ = ("int_units", "mem_ports", "fp_units", "_int_used", "_mem_used", "_fp_used")

    def __init__(self, int_units: int, mem_ports: int, fp_units: int) -> None:
        self.int_units = int_units
        self.mem_ports = mem_ports
        self.fp_units = fp_units
        self._int_used = 0
        self._mem_used = 0
        self._fp_used = 0

    def new_cycle(self) -> None:
        """Reset the per-cycle issue-slot counters."""
        self._int_used = 0
        self._mem_used = 0
        self._fp_used = 0

    def try_claim(self, kind: int) -> bool:
        """Claim an issue slot for an op of class ``kind``; False if none.

        Op classes are tested by opcode range (FADD..FDIV and LOAD..STORE
        are contiguous), which is the cheapest membership test on the
        per-issue-candidate path.
        """
        if FADD <= kind <= FDIV:
            if self._fp_used >= self.fp_units:
                return False
            self._fp_used += 1
            return True
        if LOAD <= kind <= STORE:
            if self._mem_used >= self.mem_ports or self._int_used >= self.int_units:
                return False
            self._mem_used += 1
            self._int_used += 1
            return True
        # IALU / IMUL / BRANCH / SYSCALL use integer issue slots.
        if self._int_used >= self.int_units:
            return False
        self._int_used += 1
        return True


class CompletionHeap:
    """Min-heap of (complete_cycle, tiebreak, instruction)."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Instruction]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, instr: Instruction, complete_cycle: int) -> None:
        """Queue ``instr`` to complete at ``complete_cycle``."""
        instr.complete_cycle = complete_cycle
        self._counter += 1
        heapq.heappush(self._heap, (complete_cycle, self._counter, instr))

    def next_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending completion, or None when empty."""
        heap = self._heap
        return heap[0][0] if heap else None

    def pop_ready(self, now: int) -> List[Instruction]:
        """All instructions completing at or before ``now``, oldest first."""
        ready: List[Instruction] = []
        heap = self._heap
        while heap and heap[0][0] <= now:
            ready.append(heapq.heappop(heap)[2])
        return ready

    def clear(self) -> None:
        """Drop all pending completions."""
        self._heap.clear()
