"""Execution resources: functional-unit pool and the completion heap."""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.smt.instruction import (
    BRANCH,
    FADD,
    FDIV,
    FMUL,
    IALU,
    IMUL,
    LOAD,
    STORE,
    SYSCALL,
    Instruction,
)

_FP = (FADD, FMUL, FDIV)


class FunctionalUnitPool:
    """Per-cycle issue-port accounting.

    Units are fully pipelined (SimpleScalar default), so only *issue slots*
    per cycle are limited: ``int_units`` integer issues of which at most
    ``mem_ports`` may be memory operations, and ``fp_units`` FP issues.
    """

    def __init__(self, int_units: int, mem_ports: int, fp_units: int) -> None:
        self.int_units = int_units
        self.mem_ports = mem_ports
        self.fp_units = fp_units
        self._int_used = 0
        self._mem_used = 0
        self._fp_used = 0

    def new_cycle(self) -> None:
        """Reset the per-cycle issue-slot counters."""
        self._int_used = 0
        self._mem_used = 0
        self._fp_used = 0

    def try_claim(self, kind: int) -> bool:
        """Claim an issue slot for an op of class ``kind``; False if none."""
        if kind in _FP:
            if self._fp_used >= self.fp_units:
                return False
            self._fp_used += 1
            return True
        if kind in (LOAD, STORE):
            if self._mem_used >= self.mem_ports or self._int_used >= self.int_units:
                return False
            self._mem_used += 1
            self._int_used += 1
            return True
        # IALU / IMUL / BRANCH / SYSCALL use integer issue slots.
        if self._int_used >= self.int_units:
            return False
        self._int_used += 1
        return True


class CompletionHeap:
    """Min-heap of (complete_cycle, tiebreak, instruction)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Instruction]] = []
        self._counter = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, instr: Instruction, complete_cycle: int) -> None:
        """Queue ``instr`` to complete at ``complete_cycle``."""
        instr.complete_cycle = complete_cycle
        self._counter += 1
        heapq.heappush(self._heap, (complete_cycle, self._counter, instr))

    def pop_ready(self, now: int) -> List[Instruction]:
        """All instructions completing at or before ``now``, oldest first."""
        ready: List[Instruction] = []
        heap = self._heap
        while heap and heap[0][0] <= now:
            ready.append(heapq.heappop(heap)[2])
        return ready

    def clear(self) -> None:
        """Drop all pending completions."""
        self._heap.clear()
