"""Per-thread hardware status indicators.

The paper's detector thread reads "per-thread status indicators ... updated
by circuitry located throughout the processor pipeline, based upon specific
events such as cache miss, pipeline stalls, population at each stage".
Two kinds of state live here:

* **live occupancy counters** — current population of pipeline structures
  (what ICOUNT/BRCOUNT-style fetch policies sort threads by, every cycle);
* **quantum event counters** — events accumulated since the last scheduling
  quantum boundary (what the detector-thread heuristics test against their
  thresholds), cleared by :meth:`ThreadCounters.end_quantum`.
"""

from __future__ import annotations

from typing import Dict, List


class ThreadCounters:
    """All hardware counters of one hardware context."""

    __slots__ = (
        "tid",
        # live occupancy
        "front_end",
        "iq_int",
        "iq_fp",
        "lsq",
        "rob",
        "in_flight_branches",
        "in_flight_loads",
        "in_flight_mem",
        "outstanding_l1d_misses",
        # decayed/windowed live signals
        "recent_l1i_misses",
        "recent_stalls",
        # lifetime accumulators
        "total_committed",
        "total_fetched",
        "active_cycles",
        # quantum event counters
        "q_fetched",
        "q_committed",
        "q_cond_branches",
        "q_branches",
        "q_mispredicts",
        "q_loads",
        "q_stores",
        "q_l1d_misses",
        "q_l1i_misses",
        "q_l2_misses",
        "q_lsq_full",
        "q_iq_full",
        "q_reg_full",
        "q_squashed",
        "q_stall_cycles",
    )

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self.front_end = 0
        self.iq_int = 0
        self.iq_fp = 0
        self.lsq = 0
        self.rob = 0
        self.in_flight_branches = 0
        self.in_flight_loads = 0
        self.in_flight_mem = 0
        self.outstanding_l1d_misses = 0
        self.recent_l1i_misses = 0.0
        self.recent_stalls = 0.0
        self.total_committed = 0
        self.total_fetched = 0
        self.active_cycles = 0
        self._clear_quantum()

    def _clear_quantum(self) -> None:
        self.q_fetched = 0
        self.q_committed = 0
        self.q_cond_branches = 0
        self.q_branches = 0
        self.q_mispredicts = 0
        self.q_loads = 0
        self.q_stores = 0
        self.q_l1d_misses = 0
        self.q_l1i_misses = 0
        self.q_l2_misses = 0
        self.q_lsq_full = 0
        self.q_iq_full = 0
        self.q_reg_full = 0
        self.q_squashed = 0
        self.q_stall_cycles = 0

    def as_dict(self) -> Dict[str, float]:
        """Every counter field by name (state digests, invariant reports)."""
        return {name: getattr(self, name) for name in self.__slots__}

    # -- derived live signals ------------------------------------------------
    @property
    def icount(self) -> int:
        """Instructions in the front end plus the instruction queues —
        exactly what Tullsen's ICOUNT prioritizes by."""
        return self.front_end + self.iq_int + self.iq_fp

    @property
    def accumulated_ipc(self) -> float:
        """Lifetime committed IPC of this context (ACCIPC policy input)."""
        return self.total_committed / self.active_cycles if self.active_cycles else 0.0

    def decay(self, factor: float = 0.99) -> None:
        """Exponential decay of the windowed signals; called once per cycle."""
        self.recent_l1i_misses *= factor
        self.recent_stalls *= factor

    # -- quantum bookkeeping ---------------------------------------------------
    def end_quantum(self) -> "QuantumSnapshot":
        """Freeze this quantum's event counts and clear the counters."""
        snap = QuantumSnapshot(
            tid=self.tid,
            fetched=self.q_fetched,
            committed=self.q_committed,
            cond_branches=self.q_cond_branches,
            branches=self.q_branches,
            mispredicts=self.q_mispredicts,
            loads=self.q_loads,
            stores=self.q_stores,
            l1d_misses=self.q_l1d_misses,
            l1i_misses=self.q_l1i_misses,
            l2_misses=self.q_l2_misses,
            lsq_full=self.q_lsq_full,
            iq_full=self.q_iq_full,
            reg_full=self.q_reg_full,
            squashed=self.q_squashed,
            stall_cycles=self.q_stall_cycles,
        )
        self._clear_quantum()
        return snap


class QuantumSnapshot:
    """Immutable per-thread event counts for one finished quantum."""

    __slots__ = (
        "tid", "fetched", "committed", "cond_branches", "branches",
        "mispredicts", "loads", "stores", "l1d_misses", "l1i_misses",
        "l2_misses", "lsq_full", "iq_full", "reg_full", "squashed",
        "stall_cycles",
    )

    def __init__(self, **kwargs: int) -> None:
        for name in self.__slots__:
            setattr(self, name, kwargs[name])

    @property
    def l1_misses(self) -> int:
        return self.l1d_misses + self.l1i_misses

    @property
    def mem_accesses(self) -> int:
        return self.loads + self.stores

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly view."""
        return {name: getattr(self, name) for name in self.__slots__}

    def replace(self, **overrides: int) -> "QuantumSnapshot":
        """A copy with some fields overridden (fault injection and
        what-if analysis; the snapshot itself stays immutable)."""
        data = self.as_dict()
        data.update(overrides)
        return QuantumSnapshot(**data)

    def is_non_negative(self) -> bool:
        """Basic integrity: hardware event counters can never go negative.

        A negative field means the reading is corrupt (or a model bug);
        the ADTS watchdog treats either as implausible telemetry.
        """
        return all(getattr(self, name) >= 0 for name in self.__slots__)


class CounterBank:
    """The counters of all hardware contexts, plus aggregates."""

    __slots__ = ("threads",)

    def __init__(self, num_threads: int) -> None:
        self.threads: List[ThreadCounters] = [ThreadCounters(t) for t in range(num_threads)]

    def __getitem__(self, tid: int) -> ThreadCounters:
        return self.threads[tid]

    def __len__(self) -> int:
        return len(self.threads)

    def __iter__(self):
        return iter(self.threads)

    def decay_all(self, factor: float = 0.99) -> None:
        """Per-cycle decay of every thread's windowed signals."""
        for t in self.threads:
            t.decay(factor)

    def tick_all(self, factor: float = 0.99) -> None:
        """Per-cycle decay plus active-cycle accounting, fused into one
        pass over the bank (the two updates are independent per thread).
        Multiplying an exactly-zero signal is skipped: ``0.0 * f == 0.0``
        bit-for-bit, and most signals sit at zero most of the time."""
        for t in self.threads:
            if t.recent_l1i_misses != 0.0:
                t.recent_l1i_misses *= factor
            if t.recent_stalls != 0.0:
                t.recent_stalls *= factor
            t.active_cycles += 1

    def end_quantum(self) -> List[QuantumSnapshot]:
        """Snapshot and clear every thread's quantum counters."""
        return [t.end_quantum() for t in self.threads]

    def total_committed_this_quantum(self) -> int:
        """Sum of q_committed over all threads (live)."""
        return sum(t.q_committed for t in self.threads)
