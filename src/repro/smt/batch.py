"""Lockstep batch engine: simulate many grid cells per pass.

A parameter sweep (threshold × heuristic × mix, ROADMAP item 2) runs tens
of cells that share one workload: same mix, same seed, same machine
configuration — only the *scheduler* differs. Run sequentially, every cell
pays full price for trace generation and cycle stepping even though cells
frequently take identical trajectories for many quanta (a threshold that
never fires leaves every heuristic on ICOUNT; distinct thresholds often
make the same switch decisions). This module exploits both redundancies
without changing a single simulated bit:

* **Shared trace streams** (:class:`SharedTraceStore`) — the instruction
  stream of a thread is a pure function of ``(generator version, seed,
  slot, app, profile)``, exactly the trace-cache key. The store
  materializes each stream once into column lists and hands every cell a
  lightweight cursor (:class:`SharedTrace`), so a 25-cell sweep decodes
  each trace once instead of 25 times. With a disk trace cache active the
  store aliases the cache's recorded columns, and extending past the
  prefix goes through the cache's own overrun path so flushes still
  persist the longest prefix.

* **Trajectory sharing** (:class:`BatchEngine`) — cells whose start state
  is identical (same apps/seed/machine/quantum grid/initial policy) are
  *grouped* onto one simulated machine. The group steps one quantum at a
  time; at every boundary each member's controller runs against recording
  proxies that capture the machine mutations it *would* make (policy
  switches, fetch inhibition, suspension marks) plus its detector-thread
  queue. Members whose captured signatures agree keep sharing the
  machine — the recorded ops are applied once. Members that disagree are
  **forked**: the machine is pickled (the same mechanism checkpointing
  already relies on) and each divergent partition continues on its own
  clone. Sharing is therefore exact by construction, not approximate: a
  cell's machine always evolves under precisely the mutations its own
  controller issued.

Lockstep invariants (violations raise :class:`BatchDivergenceError`):

* grouped members have bit-identical machines at every cycle, so their
  detector threads must consume identical fetch-slot counts every cycle;
* the only scheduler→machine mutations are the three recorded op kinds
  plus ``set_policy`` — all captured by the boundary proxies;
* boundary signatures include the *complete* post-boundary DT queue (so a
  watchdog's ``drop_all`` is visible) and the recorded ops, which is
  sufficient: queued task side effects are pure functions of payloads the
  group shares (clogging reports derive from the shared machine's counter
  snapshots; policy switches carry their target policy in the signature).

On numpy: the per-cell state here (detector queues, controller ledgers)
is scalar and branchy — per the ``util/randpool.py`` precedent, numpy
pays only for bulk sequential transforms. Trace columns stay plain
Python lists (they are consumed one scalar at a time by the pipeline, and
``tracecache`` already showed list indexing beats ndarray scalar reads);
the win comes from deduplicating whole quantum steps, not vectorizing
them. See DESIGN.md §15.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.smt.config import SMTConfig
from repro.smt.instruction import Instruction
from repro.smt.pipeline import SchedulerHook, SMTProcessor


class BatchDivergenceError(RuntimeError):
    """A lockstep invariant broke: grouped cells disagreed mid-quantum.

    This is a bug guard, not an expected runtime condition — divergence is
    only legal at quantum boundaries, where it is handled by forking.
    """


# ---------------------------------------------------------------------------
# Shared trace streams
# ---------------------------------------------------------------------------

class _Stream:
    """One materialized instruction stream, shared by every consumer cell.

    With a disk trace cache active, ``cols`` *aliases* the cache-attached
    trace's column lists: replayed prefixes are served for free and
    extension goes through the cache's canonical overrun path, so the
    cache's flush/extension bookkeeping is untouched. Without a cache the
    stream owns its columns and pulls from a seeded generator on demand.
    """

    __slots__ = ("cols", "n", "_master", "_gen")

    def __init__(self, profile, slot: int, name: str, seed: int) -> None:
        from repro.workloads.tracecache import _build_generator, active_trace_cache

        cache = active_trace_cache()
        if cache is not None:
            master = cache.attach(profile, slot, name, seed)
            self._master = master
            self._gen = None
            self.cols = master._cols
            self.n = master._n
        else:
            self._master = None
            self._gen = _build_generator(profile, slot, name, seed)
            self.cols = [[] for _ in range(8)]
            self.n = 0

    def extend_to(self, i: int) -> None:
        """Grow the stream until instruction ``i`` exists."""
        master = self._master
        if master is not None:
            if master.seq < master._n:
                # Jump the master to record mode: consumers replayed the
                # prefix straight from the shared columns, so extension is
                # exactly the sequential engine's overrun path (rebuild the
                # generator, spin past the prefix, record live from there).
                master.seq = master._n
            while master._n <= i:
                master.next_instruction()
            self.n = master._n
        else:
            gen = self._gen
            k, pc, d1, d2, ad, co, tk, tg = self.cols
            n = self.n
            while n <= i:
                ins = gen.next_instruction()
                k.append(ins.kind)
                pc.append(ins.pc)
                d1.append(ins.dep1)
                d2.append(ins.dep2)
                ad.append(ins.addr)
                co.append(ins.cond)
                tk.append(ins.taken)
                tg.append(ins.target)
                n += 1
            self.n = n


class SharedTrace:
    """Per-cell cursor over a shared stream (``TraceGenerator`` stand-in).

    Exposes the ``tid``/``seq``/``profile`` surface the pipeline and
    fingerprint read. Pickling (machine forks, checkpoints) drops the
    stream reference — columns would otherwise be copied per clone — and
    the engine rebinds the cursor via :meth:`SharedTraceStore.rebind`.
    """

    __slots__ = ("profile", "tid", "name", "seed", "seq", "_stream", "_cols")

    def __init__(self, stream: _Stream, profile, slot: int, name: str, seed: int) -> None:
        self._stream = stream
        self._cols = stream.cols
        self.profile = profile
        self.tid = slot
        self.name = name
        self.seed = seed
        self.seq = 0

    def __getstate__(self):
        return (self.profile, self.tid, self.name, self.seed, self.seq)

    def __setstate__(self, state):
        self.profile, self.tid, self.name, self.seed, self.seq = state
        self._stream = None
        self._cols = None

    def next_instruction(self) -> Instruction:
        """The next instruction at this cursor, extending the shared
        stream on demand; bit-identical to a private generator's output."""
        i = self.seq
        stream = self._stream
        if i >= stream.n:
            stream.extend_to(i)
        c = self._cols
        self.seq = i + 1
        return Instruction(
            self.tid, i, c[0][i], c[1][i], c[2][i], c[3][i],
            c[4][i], c[5][i], c[6][i], c[7][i],
        )

    def take(self, n: int) -> List[Instruction]:
        """The next ``n`` instructions (the bulk-fetch API traces expose)."""
        return [self.next_instruction() for _ in range(n)]


class SharedTraceStore:
    """Materializes each ``(seed, slot, app)`` stream once; hands out cursors."""

    def __init__(self) -> None:
        self._streams: Dict[tuple, _Stream] = {}

    def _stream_for(self, profile, slot: int, name: str, seed: int) -> _Stream:
        from repro.workloads.tracegen import TRACEGEN_VERSION

        key = (TRACEGEN_VERSION, seed, slot, name, repr(profile))
        stream = self._streams.get(key)
        if stream is None:
            stream = _Stream(profile, slot, name, seed)
            self._streams[key] = stream
        return stream

    def make_traces(self, apps: Sequence[str], seed: int) -> List[SharedTrace]:
        """One cursor per mix slot — mirrors ``make_generators`` keying."""
        from repro.workloads.profiles import get_profile

        return [
            SharedTrace(self._stream_for(get_profile(name), slot, name, seed),
                        get_profile(name), slot, name, seed)
            for slot, name in enumerate(apps)
        ]

    def rebind(self, trace: SharedTrace) -> None:
        """Reattach an unpickled cursor to its (possibly new) stream."""
        stream = self._stream_for(trace.profile, trace.tid, trace.name, trace.seed)
        trace._stream = stream
        trace._cols = stream.cols

    @property
    def stream_count(self) -> int:
        return len(self._streams)


# ---------------------------------------------------------------------------
# Cells and results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchCell:
    """One simulation the batch engine owes a result for.

    The fields mirror :class:`~repro.harness.runner.RunConfig` plus the
    scheduler selection of ``run_adts``/``run_fixed``; a cell's result is
    bit-identical to the corresponding sequential run.
    """

    mix: Union[str, Sequence[str]] = "mix01"
    num_threads: int = 8
    seed: int = 0
    quantum_cycles: int = 2048
    quanta: int = 32
    warmup_quanta: int = 4
    mode: str = "adts"  # "adts" | "fixed"
    policy: str = "icount"  # fixed-mode policy (ADTS always starts on icount)
    heuristic: str = "type3"
    thresholds: Optional[object] = None  # ThresholdConfig; None = defaults
    instant_dt: bool = False
    watchdog: Optional[object] = None  # WatchdogConfig
    machine: Optional[SMTConfig] = None
    fault_plan: Optional[object] = None  # FaultPlan
    label: Optional[str] = None  # caller bookkeeping (e.g. journal key)

    def total_quanta(self) -> int:
        """Quanta actually simulated (measured window plus warmup)."""
        return self.quanta + self.warmup_quanta


@dataclass
class BatchCellResult:
    """Outcome of one cell — field-for-field what the sequential run yields."""

    index: int
    cell: BatchCell
    ipc: float
    committed: int
    cycles: int
    quantum_ipcs: List[float] = field(default_factory=list)
    scheduler: Dict = field(default_factory=dict)
    fingerprint: str = ""


class _Member:
    """One cell's seat in a group: its controller/injector live here (on the
    member, never on the shared machine), so forking a group never has to
    clone scheduler state — only the machine is pickled."""

    __slots__ = ("index", "cell", "controller", "injector")

    def __init__(self, index: int, cell: BatchCell, controller, injector=None) -> None:
        self.index = index
        self.cell = cell
        self.controller = controller
        self.injector = injector


class _Group:
    __slots__ = ("proc", "members", "hook", "total", "solo")

    def __init__(self, proc, members, hook, total: int, solo: bool) -> None:
        self.proc = proc
        self.members = members
        self.hook = hook
        self.total = total
        self.solo = solo


# ---------------------------------------------------------------------------
# Boundary capture
# ---------------------------------------------------------------------------

#: Signature of a member with no controller: empty queue, no budget, no ops.
_FIXED_SIG: Tuple = ((), 0, ())


class _BoundaryRecorder:
    """Stand-in for the processor *and* the control flags during one
    controller boundary call.

    Records every machine mutation the controller issues instead of
    applying it, so identical mutations from N grouped members collapse to
    one application — and differing mutations are detected and turned into
    a fork before they can touch the shared machine. Reads are served
    pending-first (``policy_name`` reflects a just-recorded switch) so the
    controller observes exactly the state it would sequentially.
    """

    __slots__ = ("_proc", "_pending_policy", "ops")

    def __init__(self, proc) -> None:
        self._proc = proc
        self._pending_policy: Optional[str] = None
        self.ops: List[tuple] = []

    # -- processor surface --------------------------------------------------
    @property
    def policy_name(self) -> str:
        if self._pending_policy is not None:
            return self._pending_policy
        return self._proc.policy_name

    def set_policy(self, policy) -> None:
        self._pending_policy = policy
        self.ops.append(("set_policy", policy))

    # -- ThreadControlFlags surface -----------------------------------------
    def set_fetchable(self, tid: int, fetchable: bool) -> None:
        self.ops.append(("set_fetchable", tid, bool(fetchable)))

    def mark_for_suspension(self, tid: int) -> None:
        self.ops.append(("mark_for_suspension", tid))

    def clear_suspension_mark(self, tid: int) -> None:
        self.ops.append(("clear_suspension_mark", tid))


def _apply_ops(proc, ops: Sequence[tuple]) -> None:
    """Apply one member's recorded boundary mutations to the real machine.

    Equivalent to the sequential in-hook application: between the hook
    callback and the end of ``run_quanta(1)`` the pipeline only advances
    policy-independent bookkeeping (quantum index/start cycle), and
    ``set_policy`` merely swaps the policy object — no cycle-stamped state.
    """
    if not ops:
        return
    from repro.core.flags import ThreadControlFlags

    flags = ThreadControlFlags(proc)
    for op in ops:
        tag = op[0]
        if tag == "set_policy":
            proc.set_policy(op[1])
        elif tag == "set_fetchable":
            flags.set_fetchable(op[1], op[2])
        elif tag == "mark_for_suspension":
            flags.mark_for_suspension(op[1])
        elif tag == "clear_suspension_mark":
            flags.clear_suspension_mark(op[1])
        else:  # pragma: no cover - recorder and applier move in lockstep
            raise BatchDivergenceError(f"unknown recorded op {tag!r}")


def _task_key(task) -> Optional[str]:
    """The part of a queued DT task's side effect the machine can feel.

    ``policy_switch`` carries its target policy (the callback applies it on
    completion). Every other task's effect is either nil (``ipc_check``,
    ``determine_policy``) or a pure function of counter snapshots the whole
    group shares (``identify_clogging``), so name+cost suffice.
    """
    cb = task.on_complete
    if cb is not None and task.name == "policy_switch":
        return cb.args[0].next_policy
    return None


class _GroupHook(SchedulerHook):
    """The shared machine's hook: multiplexes callbacks to every member.

    Mid-quantum it ticks each member's detector thread in lockstep and
    enforces that they consume identical fetch slots (they must — grouped
    members have identical queues). At boundaries it runs each member's
    controller against a :class:`_BoundaryRecorder` and publishes per-member
    signatures for the engine to partition on.
    """

    def __init__(self, members: List[_Member]) -> None:
        self.processor = None
        self.members = members
        self._controllers = [m.controller for m in members if m.controller is not None]
        self._busy = False
        self.boundary_sigs: Optional[List[tuple]] = None
        self.boundary_ops: Optional[List[tuple]] = None

    def attach(self, processor) -> None:
        self.processor = processor

    def refresh_busy(self) -> None:
        self._busy = any(c.detector.busy for c in self._controllers)

    def on_cycle(self, now: int, idle_slots: int) -> int:
        if not self._busy:
            return 0
        ctrls = self._controllers
        first = ctrls[0].detector
        consumed = first.on_cycle(now, idle_slots)
        for ctrl in ctrls[1:]:
            if ctrl.detector.on_cycle(now, idle_slots) != consumed:
                raise BatchDivergenceError(
                    f"grouped detector threads consumed different slot counts "
                    f"at cycle {now}"
                )
        if not first.busy:
            self._busy = False
        return consumed

    def on_quantum_end(self, now: int, record, snapshots) -> None:
        proc = self.processor
        sigs: List[tuple] = []
        ops: List[tuple] = []
        for member in self.members:
            ctrl = member.controller
            if ctrl is None:
                sigs.append(_FIXED_SIG)
                ops.append(())
                continue
            recorder = _BoundaryRecorder(proc)
            real_flags = ctrl.flags
            ctrl.processor = recorder
            ctrl.flags = recorder
            try:
                ctrl.on_quantum_end(now, record, snapshots)
            finally:
                ctrl.processor = proc
                ctrl.flags = real_flags
            det = ctrl.detector
            queue_sig = tuple(
                (t.name, t.instructions, _task_key(t)) for t in det._queue
            )
            recorded = tuple(recorder.ops)
            sigs.append((queue_sig, det._remaining, recorded))
            ops.append(recorded)
        self.boundary_sigs = sigs
        self.boundary_ops = ops


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

def _resolve_apps(cell: BatchCell) -> Tuple[str, ...]:
    """Mirror ``build_processor``'s mix resolution exactly."""
    if isinstance(cell.mix, str):
        from repro.workloads import get_mix

        return tuple(get_mix(cell.mix).subset(cell.num_threads, seed=cell.seed))
    return tuple(cell.mix)


def _initial_policy(cell: BatchCell) -> str:
    # ADTS always boots on ICOUNT (§4.3.3); fixed cells run their own policy.
    return "icount" if cell.mode == "adts" else cell.policy


def _scheduler_faulted(cell: BatchCell) -> bool:
    plan = cell.fault_plan
    return plan is not None and plan.any_scheduler_enabled


class BatchEngine:
    """Steps N cells through one process, sharing traces and trajectories.

    Results are bit-identical to running each cell through the sequential
    drivers (``tests/test_fingerprint_golden.py`` pins this). Cells whose
    plan carries scheduler faults run as solo groups — their injector sits
    between machine and controller exactly as in a sequential run, so no
    fault can bleed into (or out of) a grouped cell — but they still share
    trace streams with the rest of the batch.
    """

    def __init__(self, cells: Sequence[BatchCell],
                 store: Optional[SharedTraceStore] = None) -> None:
        self.cells = list(cells)
        self.store = store if store is not None else SharedTraceStore()
        self.telemetry: Dict[str, int] = {
            "cells": len(self.cells),
            "groups_initial": 0,
            "groups_final": 0,
            "forks": 0,
            "quantum_steps": 0,
            "quantum_steps_sequential": sum(c.total_quanta() for c in self.cells),
            "trace_streams": 0,
        }

    # -- group formation ----------------------------------------------------
    def _form_groups(self) -> List[_Group]:
        buckets: Dict[tuple, List[tuple]] = {}
        for index, cell in enumerate(self.cells):
            if cell.mode not in ("adts", "fixed"):
                raise ValueError(f"unknown cell mode {cell.mode!r}")
            apps = _resolve_apps(cell)
            key = (
                apps, cell.seed, repr(cell.machine), cell.quantum_cycles,
                cell.total_quanta(), _initial_policy(cell),
            )
            if _scheduler_faulted(cell):
                # Faulted machines must never share state: the injector
                # perturbs the machine itself, not just the controller.
                key = key + ("solo", index)
            buckets.setdefault(key, []).append((index, cell, apps))
        return [self._build_group(entries) for entries in buckets.values()]

    def _build_group(self, entries: List[tuple]) -> _Group:
        _, cell0, apps = entries[0]
        cfg = cell0.machine or SMTConfig(num_threads=max(len(apps), 1))
        if cfg.num_threads < len(apps):
            raise ValueError("config.num_threads smaller than requested thread count")
        members: List[_Member] = []
        for index, cell, _ in entries:
            controller = None
            if cell.mode == "adts":
                from repro.core.adts import ADTSController
                from repro.core.thresholds import ThresholdConfig

                controller = ADTSController(
                    heuristic=cell.heuristic,
                    thresholds=cell.thresholds or ThresholdConfig(),
                    instant_dt=cell.instant_dt,
                    watchdog=cell.watchdog,
                )
            members.append(_Member(index, cell, controller))

        solo = _scheduler_faulted(cell0)
        traces = self.store.make_traces(apps, cell0.seed)
        if solo:
            # Sequential hook chain, verbatim: controller (or nothing)
            # wrapped by this cell's own seeded injector.
            from repro.faults import FaultInjector

            member = members[0]
            injector = FaultInjector(cell0.fault_plan, member.controller)
            member.injector = injector
            machine_hook: Optional[SchedulerHook] = injector
            group_hook = None
        elif any(m.controller is not None for m in members):
            group_hook = _GroupHook(members)
            machine_hook = group_hook
        else:
            group_hook = None
            machine_hook = None
        proc = SMTProcessor(
            cfg, traces, policy=_initial_policy(cell0), hook=machine_hook,
            quantum_cycles=cell0.quantum_cycles, seed=cell0.seed,
        )
        if group_hook is not None:
            for member in members:
                if member.controller is not None:
                    member.controller.attach(proc)
        return _Group(proc, members, group_hook, cell0.total_quanta(), solo)

    # -- stepping -----------------------------------------------------------
    def run(self, progress=None) -> List[BatchCellResult]:
        """Run every cell to completion; returns results in cell order.

        ``progress`` (optional) is called after every lockstep round with
        the number of rounds completed — the supervised executor uses it as
        its worker heartbeat.
        """
        if not self.cells:
            return []
        groups = self._form_groups()
        self.telemetry["groups_initial"] = len(groups)
        pending = [g for g in groups if g.total > 0]
        finished = [g for g in groups if g.total <= 0]
        rounds = 0
        while pending:
            stepped: List[_Group] = []
            for group in pending:
                group.proc.run_quanta(1)
                self.telemetry["quantum_steps"] += 1
                stepped.extend(self._after_quantum(group))
            rounds += 1
            if progress is not None:
                progress(rounds)
            pending = []
            for group in stepped:
                if group.proc.quantum_index >= group.total:
                    finished.append(group)
                else:
                    pending.append(group)
        self.telemetry["groups_final"] = len(finished)
        self.telemetry["trace_streams"] = self.store.stream_count
        return self._results(finished)

    def _after_quantum(self, group: _Group) -> List[_Group]:
        hook = group.hook
        if hook is None:
            return [group]
        sigs, ops = hook.boundary_sigs, hook.boundary_ops
        hook.boundary_sigs = hook.boundary_ops = None
        partitions: Dict[tuple, List[int]] = {}
        for pos, sig in enumerate(sigs):
            partitions.setdefault(sig, []).append(pos)
        if len(partitions) == 1:
            _apply_ops(group.proc, ops[0])
            hook.refresh_busy()
            return [group]

        # Fork: one machine clone per divergent partition. The first
        # partition keeps the original machine; the pristine (pre-ops)
        # state is pickled once and deserialized per extra partition —
        # the same object graph checkpointing already round-trips.
        self.telemetry["forks"] += len(partitions) - 1
        proc = group.proc
        saved_hook = proc.hook
        proc.hook = SchedulerHook()
        blob = pickle.dumps(proc, pickle.HIGHEST_PROTOCOL)
        proc.hook = saved_hook
        out: List[_Group] = []
        first = True
        for sig, positions in partitions.items():
            if first:
                machine = proc
                first = False
            else:
                machine = pickle.loads(blob)
                for ctx in machine.contexts:
                    self.store.rebind(ctx.trace)
            members = [group.members[pos] for pos in positions]
            sub = self._regroup(machine, members, group.total)
            _apply_ops(machine, ops[positions[0]])
            if sub.hook is not None:
                sub.hook.refresh_busy()
            out.append(sub)
        return out

    def _regroup(self, machine, members: List[_Member], total: int) -> _Group:
        controllers = [m.controller for m in members if m.controller is not None]
        if controllers:
            hook: Optional[SchedulerHook] = _GroupHook(members)
            machine.hook = hook
            hook.attach(machine)
            machine._hook_inert = False
            for controller in controllers:
                controller.attach(machine)
        else:
            # An all-fixed partition downgrades to the inert hook, which
            # re-enables idle-cycle skipping — trajectory-neutral by the
            # engine's own golden test.
            hook = None
            machine.hook = SchedulerHook()
            machine.hook.attach(machine)
            machine._hook_inert = True
        return _Group(machine, members, hook, total, solo=False)

    # -- results ------------------------------------------------------------
    def _results(self, groups: List[_Group]) -> List[BatchCellResult]:
        out: List[Optional[BatchCellResult]] = [None] * len(self.cells)
        for group in groups:
            fingerprint = group.proc.fingerprint()
            history = group.proc.stats.quantum_history
            for member in group.members:
                cell = member.cell
                window = history[cell.warmup_quanta:cell.total_quanta()]
                committed = sum(q.committed for q in window)
                cycles = sum(q.cycles for q in window)
                if cell.mode == "adts":
                    scheduler = {"mode": "adts", "heuristic": cell.heuristic}
                    scheduler.update(member.controller.summary())
                else:
                    scheduler = {"mode": "fixed", "policy": cell.policy}
                if member.injector is not None:
                    scheduler.update(member.injector.summary())
                out[member.index] = BatchCellResult(
                    index=member.index,
                    cell=cell,
                    ipc=committed / cycles if cycles else 0.0,
                    committed=committed,
                    cycles=cycles,
                    quantum_ipcs=[q.ipc for q in window],
                    scheduler=scheduler,
                    fingerprint=fingerprint,
                )
        return out  # type: ignore[return-value]


def run_batch_cells(cells: Sequence[BatchCell], progress=None,
                    store: Optional[SharedTraceStore] = None) -> List[BatchCellResult]:
    """Convenience wrapper: one engine pass over ``cells``."""
    return BatchEngine(cells, store=store).run(progress=progress)
