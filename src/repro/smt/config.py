"""Machine configuration.

Defaults follow the paper's "resources compatible with previous research on
SMT" (Tullsen et al., ISCA'96): 8 hardware contexts, ICOUNT.2.8 fetch
(8 instructions from up to 2 threads per cycle), 8-wide decode/rename/
commit, 6 integer units of which 4 can issue memory operations, 3 FP
units, 32-entry integer and FP instruction queues, and a 32-entry
load/store queue. One extra context is reserved for the detector thread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.hierarchy import HierarchyConfig

from repro.smt.instruction import FADD, FDIV, FMUL, IALU, IMUL, LOAD, STORE, BRANCH, SYSCALL


#: Execution latency per opcode class (cycles in a functional unit),
#: SimpleScalar-style. Loads add memory-hierarchy latency on top.
DEFAULT_LATENCIES = {
    IALU: 1,
    IMUL: 3,
    FADD: 2,
    FMUL: 4,
    FDIV: 12,
    LOAD: 0,  # address generation folded into cache latency
    STORE: 1,
    BRANCH: 1,
    SYSCALL: 1,
}


@dataclass(frozen=True)
class SMTConfig:
    """Full pipeline + hierarchy configuration.

    Attributes mirror the knobs the paper (and its baseline, Tullsen'96)
    expose; everything the benchmarks sweep is here so experiment configs
    are plain replaced dataclasses.
    """

    # Contexts and fetch.
    num_threads: int = 8
    fetch_width: int = 8
    fetch_threads_per_cycle: int = 2  # the ".2" of ICOUNT.2.8
    # *Shared* front-end capacity (fetch buffer + decode + rename slots,
    # ~width x depth). Shared is load-bearing: a clogged thread can hog the
    # front end, which is exactly the imbalance ICOUNT-class policies exist
    # to prevent — per-thread caps would hand every policy that fairness
    # for free and flatten the policy differences the paper studies.
    fetch_buffer_entries: int = 32
    # Front-end widths and depth.
    decode_width: int = 8
    rename_width: int = 8
    front_end_stages: int = 5  # fetch->queue depth; sets misfetch penalty
    # Queues / windows. Tullsen'96 used 32-entry IQs; the synthetic traces
    # carry somewhat less ILP than compiled SPEC code, so the calibrated
    # default is 64/48 to put the machine in the same fetch-limited regime
    # (32-entry queues leave it permanently issue-clogged).
    int_iq_entries: int = 64
    fp_iq_entries: int = 64
    lsq_entries: int = 48
    rob_entries_per_thread: int = 64
    rename_registers: int = 200  # shared pool beyond architectural state
    # Issue / execute.
    issue_width: int = 8
    int_units: int = 6
    mem_ports: int = 4  # subset of int units able to start a load/store
    fp_units: int = 3
    commit_width: int = 8
    # Branch handling. Default is bimodal: the synthetic branch-outcome
    # model is per-site Bernoulli (no inter-branch history correlation), so
    # history-based indexing adds aliasing without signal; gshare remains
    # available for sensitivity studies.
    predictor: str = "bimodal"  # "bimodal" | "gshare" | "local" | "tournament"
    # Larger than Tullsen-era tables: the synthetic control-flow model
    # spreads dynamic branches over more sites than compiled SPEC code
    # does, so matched *accuracy* needs more entries than matched *area*.
    predictor_entries: int = 8192
    btb_entries: int = 1024
    misprediction_penalty: int = 7
    # Memory hierarchy.
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    # L2 prefetching: off by default (SimpleScalar-era baseline); the A6
    # ablation turns it on.
    prefetcher: str = "none"  # "none" | "nextline" | "stride"
    # System-call model: conservative full-pipeline flush (paper §6).
    syscall_flush: bool = True
    syscall_drain_cycles: int = 20
    # Detector-thread context (modeled outside the normal contexts).
    detector_enabled: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.num_threads <= 32:
            raise ValueError("num_threads must be in [1, 32]")
        if self.fetch_threads_per_cycle < 1:
            raise ValueError("fetch_threads_per_cycle must be >= 1")
        if self.fetch_width < 1 or self.issue_width < 1 or self.commit_width < 1:
            raise ValueError("pipeline widths must be >= 1")
        if self.mem_ports > self.int_units:
            raise ValueError("mem_ports cannot exceed int_units")
        if self.rob_entries_per_thread < 1:
            raise ValueError("rob_entries_per_thread must be >= 1")
        if self.predictor not in ("gshare", "bimodal", "local", "tournament"):
            raise ValueError(f"unknown predictor {self.predictor!r}")
        if self.prefetcher not in ("none", "nextline", "stride"):
            raise ValueError(f"unknown prefetcher {self.prefetcher!r}")

    @property
    def misfetch_penalty(self) -> int:
        """Cycles of fetch bubble after a BTB miss on a taken branch."""
        return max(1, self.front_end_stages - 3)

    def scaled(self, num_threads: int) -> "SMTConfig":
        """Same machine with a different context count (thread-scaling runs)."""
        from dataclasses import replace

        return replace(self, num_threads=num_threads)
