"""Opt-in runtime invariant checking for the SMT pipeline.

The simulator maintains redundant views of the same machine state — live
occupancy gauges in :class:`~repro.smt.counters.ThreadCounters` mirror the
physical queues, per-thread committed counts mirror the aggregate, quantum
snapshots mirror the record the IPC check reads. The paper's mechanism
*trusts* those mirrors (the detector thread schedules off the counters, not
the queues), so a drifted mirror silently mis-schedules long before it
crashes anything. The :class:`InvariantChecker` closes that hole: once per
quantum boundary it cross-checks every mirror against ground truth and
reports drift as a structured :class:`InvariantViolation`.

It is a :class:`~repro.smt.pipeline.SchedulerHook` interposer, installed
*outside* any fault injector, so it always sees the true record/snapshots —
injected telemetry corruption is the watchdog's business (downstream of the
injector), while a violation here means the machine model itself is
inconsistent (a genuine bug or memory corruption).

Three reactions are supported (``mode``):

* ``"raise"`` (default) — raise the violation; a supervisor classifies it
  into its failure taxonomy and can retry/quarantine the cell;
* ``"watchdog"`` — feed the downstream hook a record flagged implausible
  (negative committed count), which trips the ADTS watchdog's plausibility
  check and drops the controller into safe-mode fixed ICOUNT — graceful
  degradation instead of a crash;
* ``"record"`` — tally only (telemetry in ``summary()``).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.policies.registry import POLICY_NAMES
from repro.smt.pipeline import SchedulerHook

_MODES = ("raise", "watchdog", "record")


class InvariantViolation(Exception):
    """One machine invariant failed; carries a machine-readable report.

    Attributes:
        name: stable identifier of the violated invariant.
        cycle: cycle at which the check ran.
        details: the numbers that disagreed.
    """

    def __init__(self, name: str, cycle: int, message: str, **details) -> None:
        self.name = name
        self.cycle = cycle
        self.details = details
        extra = f" ({', '.join(f'{k}={v!r}' for k, v in details.items())})" if details else ""
        super().__init__(f"invariant {name!r} violated at cycle {cycle}: {message}{extra}")


class InvariantChecker(SchedulerHook):
    """Per-quantum cross-check of the pipeline's redundant state views."""

    def __init__(self, inner: Optional[SchedulerHook] = None, mode: str = "raise") -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.inner = inner or SchedulerHook()
        self.mode = mode
        self.processor = None
        self.checked_quanta = 0
        self.violations: List[InvariantViolation] = []
        self._last_committed = 0
        self._last_per_thread_committed: List[int] = []

    # -- SchedulerHook ------------------------------------------------------
    def attach(self, processor) -> None:
        self.processor = processor
        self._last_per_thread_committed = [0] * processor.num_threads
        self.inner.attach(processor)

    def on_cycle(self, now: int, idle_slots: int) -> int:
        return self.inner.on_cycle(now, idle_slots)

    def on_quantum_end(self, now: int, record, snapshots) -> None:
        violation = self._check(now, record, snapshots)
        if violation is not None:
            self.violations.append(violation)
            if self.mode == "raise":
                raise violation
            if self.mode == "watchdog":
                # A physically impossible committed count is guaranteed to
                # fail the ADTS watchdog's plausibility check: the controller
                # discards the boundary and (on a streak) enters safe mode.
                record = dataclasses.replace(record, committed=-1)
        self.checked_quanta += 1
        self.inner.on_quantum_end(now, record, snapshots)

    # -- the invariants -----------------------------------------------------
    def _check(self, now: int, record, snapshots) -> Optional[InvariantViolation]:
        proc = self.processor
        cfg = proc.config

        # 1. Queue occupancy within physical capacity.
        for iq in (proc.iq_int, proc.iq_fp):
            if len(iq) > iq.capacity:
                return InvariantViolation(
                    f"iq_{iq.name}_capacity", now, "instruction queue over capacity",
                    occupancy=len(iq), capacity=iq.capacity,
                )
        if len(proc.lsq) > proc.lsq.capacity:
            return InvariantViolation(
                "lsq_capacity", now, "LSQ over capacity",
                occupancy=len(proc.lsq), capacity=proc.lsq.capacity,
            )
        if not 0 <= proc.regs.in_use <= proc.regs.capacity:
            return InvariantViolation(
                "rename_pool", now, "rename-register pool accounting out of range",
                in_use=proc.regs.in_use, capacity=proc.regs.capacity,
            )
        if not 0 <= proc._front_total <= cfg.fetch_buffer_entries:
            return InvariantViolation(
                "fetch_buffer", now, "front-end occupancy out of range",
                occupancy=proc._front_total, capacity=cfg.fetch_buffer_entries,
            )

        # 2. Counter gauges agree with the structures they mirror.
        front_sum = 0
        for ctx, tc in zip(proc.contexts, proc.counters):
            tid = ctx.tid
            front_sum += tc.front_end
            if tc.front_end != len(proc.front_q[tid]):
                return InvariantViolation(
                    "front_end_gauge", now, "front-end gauge disagrees with delay line",
                    tid=tid, gauge=tc.front_end, actual=len(proc.front_q[tid]),
                )
            if tc.rob != len(ctx.rob):
                return InvariantViolation(
                    "rob_gauge", now, "ROB gauge disagrees with the ROB",
                    tid=tid, gauge=tc.rob, actual=len(ctx.rob),
                )
            if tc.lsq != proc.lsq.occupancy_of(tid):
                return InvariantViolation(
                    "lsq_gauge", now, "LSQ gauge disagrees with the LSQ",
                    tid=tid, gauge=tc.lsq, actual=proc.lsq.occupancy_of(tid),
                )
        if front_sum != proc._front_total:
            return InvariantViolation(
                "front_end_total", now, "per-thread front-end gauges disagree with total",
                per_thread_sum=front_sum, total=proc._front_total,
            )

        # 3. Counter non-negativity (event counters can never go negative).
        for tc in proc.counters:
            for name, value in tc.as_dict().items():
                if value < 0:
                    return InvariantViolation(
                        "counter_negative", now, "negative hardware counter",
                        tid=tc.tid, counter=name, value=value,
                    )

        # 4. Per-thread/aggregate consistency of this quantum's telemetry.
        snap_committed = sum(s.committed for s in snapshots)
        if snap_committed != record.committed:
            return InvariantViolation(
                "quantum_committed", now,
                "per-thread snapshot committed counts disagree with the record",
                per_thread_sum=snap_committed, record=record.committed,
            )
        stats_per_thread = sum(proc.stats.per_thread_committed.values())
        if stats_per_thread != proc.stats.committed:
            return InvariantViolation(
                "lifetime_committed", now,
                "per-thread lifetime committed counts disagree with the aggregate",
                per_thread_sum=stats_per_thread, aggregate=proc.stats.committed,
            )

        # 5. Monotone committed counts.
        if proc.stats.committed < self._last_committed:
            return InvariantViolation(
                "committed_monotone", now, "aggregate committed count went backwards",
                previous=self._last_committed, current=proc.stats.committed,
            )
        self._last_committed = proc.stats.committed
        for tc in proc.counters:
            if tc.total_committed < self._last_per_thread_committed[tc.tid]:
                return InvariantViolation(
                    "thread_committed_monotone", now,
                    "per-thread committed count went backwards",
                    tid=tc.tid,
                    previous=self._last_per_thread_committed[tc.tid],
                    current=tc.total_committed,
                )
            self._last_per_thread_committed[tc.tid] = tc.total_committed

        # 6. The active policy is a registered one.
        if proc.policy_name not in POLICY_NAMES:
            return InvariantViolation(
                "policy_registered", now, "active fetch policy not in the registry",
                policy=proc.policy_name, registry=list(POLICY_NAMES),
            )
        return None

    # -- telemetry ----------------------------------------------------------
    def summary(self) -> dict:
        """Checker telemetry, merged into ``RunResult.scheduler``."""
        return {
            "invariant_checked_quanta": self.checked_quanta,
            "invariant_violations": len(self.violations),
            "invariant_first_violation": (
                str(self.violations[0]) if self.violations else None
            ),
        }
