"""SMT processor pipeline substrate.

An instruction-granular, cycle-driven model of an 8-context simultaneous
multithreading processor in the style of SimpleSMT / Tullsen's ICOUNT.2.8
machine: shared fetch (8-wide from up to 2 threads per cycle with
cache-block fetch fragmentation), decode/rename front end, separate integer
and floating-point instruction queues, a shared load/store queue, a pool of
functional units, per-thread reorder buffers, and the per-thread hardware
status counters that the ADTS detector thread reads.

The model is *coarse* relative to a validated cycle-accurate simulator (see
DESIGN.md §2) but preserves the inter-thread resource-competition dynamics
— IQ clogging, wrong-path fetch waste, shared-cache interference, MLP —
that drive the per-quantum counters ADTS consumes.
"""

from repro.smt.config import SMTConfig
from repro.smt.instruction import (
    Instruction,
    OpClass,
    KIND_NAMES,
    IALU,
    IMUL,
    FADD,
    FMUL,
    FDIV,
    LOAD,
    STORE,
    BRANCH,
    SYSCALL,
)
from repro.smt.counters import ThreadCounters, CounterBank
from repro.smt.pipeline import SMTProcessor
from repro.smt.stats import SimStats
from repro.smt.checkpoint import (
    CheckpointError,
    CheckpointPlan,
    Snapshot,
    discard_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.smt.invariants import InvariantChecker, InvariantViolation

__all__ = [
    "SMTConfig",
    "CheckpointError",
    "CheckpointPlan",
    "Snapshot",
    "save_checkpoint",
    "load_checkpoint",
    "discard_checkpoint",
    "InvariantChecker",
    "InvariantViolation",
    "Instruction",
    "OpClass",
    "KIND_NAMES",
    "ThreadCounters",
    "CounterBank",
    "SMTProcessor",
    "SimStats",
    "IALU",
    "IMUL",
    "FADD",
    "FMUL",
    "FDIV",
    "LOAD",
    "STORE",
    "BRANCH",
    "SYSCALL",
]
