"""Shared instruction queues and the load/store queue.

SimpleSMT's main departure from SimpleScalar (paper §5) is separate integer
and floating-point instruction queues; both are shared by all threads,
which is precisely how one thread's unissueable instructions can "clog" the
machine for everyone — the imbalance ADTS watches for.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.smt.instruction import Instruction


class InstructionQueue:
    """A shared issue queue: bounded, dispatch-ordered, lazily compacted."""

    __slots__ = ("capacity", "name", "_entries")

    def __init__(self, capacity: int, name: str) -> None:
        if capacity <= 0:
            raise ValueError("IQ capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._entries: List[Instruction] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def free(self) -> int:
        return self.capacity - len(self._entries)

    def insert(self, instr: Instruction) -> None:
        """Append at the tail; raises on overflow (callers check .full)."""
        if self.full:
            raise RuntimeError(f"{self.name} IQ overflow")
        self._entries.append(instr)

    def set_entries(self, entries: List[Instruction]) -> None:
        """Replace the physical entry list (issue-scan compaction)."""
        self._entries = entries

    def compact(self) -> None:
        """Physically drop issued and squashed entries (kept lazily in
        between so squash is O(1) flag-setting)."""
        self._entries = [e for e in self._entries if not (e.issued or e.squashed)]

    def occupancy_of(self, tid: int) -> int:
        """Live entries belonging to thread ``tid``."""
        return sum(1 for e in self._entries if e.tid == tid and not (e.issued or e.squashed))


class LoadStoreQueue:
    """Shared LSQ modeled as bounded per-thread occupancy counts.

    Address disambiguation is not modeled (synthetic traces have no real
    aliasing); what the LSQ contributes to the reproduction is its *capacity
    pressure*: LSQ-full events per cycle feed the COND_MEM heuristic
    condition directly (threshold 0.45/cycle, paper §4.3.2).
    """

    __slots__ = ("capacity", "_per_thread", "_total", "full_events")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("LSQ capacity must be positive")
        self.capacity = capacity
        self._per_thread: List[int] = []
        self._total = 0
        self.full_events = 0

    def reset_threads(self, num_threads: int) -> None:
        """Size the per-thread attribution for ``num_threads`` contexts."""
        self._per_thread = [0] * num_threads
        self._total = 0

    def __len__(self) -> int:
        return self._total

    @property
    def full(self) -> bool:
        return self._total >= self.capacity

    def allocate(self, tid: int) -> bool:
        """Reserve an entry; False (and a full-event) when out of space."""
        if self._total >= self.capacity:
            self.full_events += 1
            return False
        self._per_thread[tid] += 1
        self._total += 1
        return True

    def release(self, tid: int) -> None:
        """Free one entry held by ``tid``."""
        if self._per_thread[tid] <= 0:
            raise RuntimeError(f"LSQ underflow for thread {tid}")
        self._per_thread[tid] -= 1
        self._total -= 1

    def occupancy_of(self, tid: int) -> int:
        """Entries currently held by thread ``tid``."""
        return self._per_thread[tid]

    def release_all(self, tid: int, count: int) -> None:
        """Bulk release on squash."""
        if count <= 0:
            return
        if count > self._per_thread[tid]:
            raise RuntimeError(f"LSQ bulk underflow for thread {tid}")
        self._per_thread[tid] -= count
        self._total -= count
