"""Simulation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class QuantumRecord:
    """Aggregate outcome of one scheduling quantum."""

    index: int
    start_cycle: int
    cycles: int
    committed: int
    policy: str

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0


@dataclass
class SimStats:
    """Run-level statistics collected by :class:`SMTProcessor`."""

    cycles: int = 0
    committed: int = 0
    fetched: int = 0
    squashed: int = 0
    wrong_path_fetched: int = 0
    mispredicted_branches: int = 0
    cond_branches: int = 0
    syscalls: int = 0
    idle_fetch_slots: int = 0
    detector_slots_consumed: int = 0
    #: cycles fast-forwarded by the idle-cycle skip (subset of `cycles`).
    idle_skipped_cycles: int = 0
    #: number of idle-skip fast-forwards taken.
    idle_skips: int = 0
    per_thread_committed: Dict[int, int] = field(default_factory=dict)
    quantum_history: List[QuantumRecord] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        """Aggregate committed instructions per cycle — the paper's metric."""
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicted_branches / self.cond_branches if self.cond_branches else 0.0

    @property
    def wrong_path_fraction(self) -> float:
        return self.wrong_path_fetched / self.fetched if self.fetched else 0.0

    @property
    def fetch_utilization(self) -> float:
        """Fraction of fetch slots carrying (real-path) instructions."""
        total_slots = self.fetched + self.idle_fetch_slots
        return (self.fetched - self.wrong_path_fetched) / total_slots if total_slots else 0.0

    def thread_ipc(self, tid: int) -> float:
        """Committed IPC of one hardware context."""
        return self.per_thread_committed.get(tid, 0) / self.cycles if self.cycles else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict for reports."""
        return {
            "cycles": self.cycles,
            "committed": self.committed,
            "ipc": self.ipc,
            "mispredict_rate": self.mispredict_rate,
            "wrong_path_fraction": self.wrong_path_fraction,
            "fetch_utilization": self.fetch_utilization,
            "syscalls": self.syscalls,
        }
