"""Shared rename-register pool.

Tullsen'96 identifies the register file as a primary SMT scaling limit:
every in-flight instruction with a destination holds a physical register
from rename until commit (or squash), and the pool is shared by all
contexts — one more resource a clogging thread can exhaust for everyone.

The model is a counting semaphore with per-thread attribution (so the
status counters can expose per-thread register pressure to policies and to
the detector thread).
"""

from __future__ import annotations

from typing import List

from repro.smt.instruction import BRANCH, STORE, SYSCALL

#: Opcode classes that write no destination register.
_NO_DEST = frozenset((BRANCH, STORE, SYSCALL))


def needs_register(kind: int) -> bool:
    """Does an op of class ``kind`` allocate a rename register?"""
    return kind not in _NO_DEST


class RenameRegisterPool:
    """Bounded pool of physical registers beyond architectural state."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("register pool capacity must be positive")
        self.capacity = capacity
        self._free = capacity
        self._per_thread: List[int] = []
        self.alloc_failures = 0

    def reset_threads(self, num_threads: int) -> None:
        """Size the per-thread attribution for ``num_threads`` contexts."""
        self._per_thread = [0] * num_threads
        self._free = self.capacity

    @property
    def free(self) -> int:
        return self._free

    @property
    def in_use(self) -> int:
        return self.capacity - self._free

    def occupancy_of(self, tid: int) -> int:
        """Registers currently held by thread ``tid``."""
        return self._per_thread[tid]

    def allocate(self, tid: int) -> bool:
        """Claim one register; False (and a pressure event) when empty."""
        if self._free <= 0:
            self.alloc_failures += 1
            return False
        self._free -= 1
        self._per_thread[tid] += 1
        return True

    def release(self, tid: int) -> None:
        """Free one register held by ``tid`` (at commit or squash)."""
        if self._per_thread[tid] <= 0:
            raise RuntimeError(f"register underflow for thread {tid}")
        self._per_thread[tid] -= 1
        self._free += 1

    def release_all(self, tid: int) -> int:
        """Free every register held by ``tid`` (context switch); returns
        how many were freed."""
        held = self._per_thread[tid]
        self._per_thread[tid] = 0
        self._free += held
        return held
