"""Pipeline event tracing.

An optional observer the processor calls at each instruction lifecycle
transition. Useful for debugging scheduling pathologies (who clogged the
IQ? how long did the wrong path last?) and for the per-instruction latency
breakdowns the tests use to validate timing. Disabled (None) by default —
a single ``if tracer:`` test per event keeps the hot loop clean.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from repro.smt.instruction import KIND_NAMES, Instruction

#: Lifecycle stages, in pipeline order.
EVENTS = ("fetch", "dispatch", "issue", "complete", "commit", "squash")


@dataclass(frozen=True)
class TraceEvent:
    """One lifecycle transition."""

    cycle: int
    event: str
    tid: int
    seq: int
    kind: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.cycle:>8} {self.event:<8} t{self.tid}#{self.seq} {self.kind}"


class PipelineTracer:
    """Bounded ring buffer of pipeline events with query helpers."""

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.counts: Dict[str, int] = {e: 0 for e in EVENTS}

    # -- recording (called by the pipeline) ---------------------------------
    def record(self, cycle: int, event: str, instr: Instruction) -> None:
        """Append one lifecycle event (called by the pipeline)."""
        self.events.append(
            TraceEvent(cycle, event, instr.tid, instr.seq, KIND_NAMES[instr.kind])
        )
        self.counts[event] += 1

    # -- queries --------------------------------------------------------------
    def for_thread(self, tid: int) -> List[TraceEvent]:
        """All retained events of one hardware context."""
        return [e for e in self.events if e.tid == tid]

    def for_instruction(self, tid: int, seq: int) -> List[TraceEvent]:
        """All retained events of one dynamic instruction."""
        return [e for e in self.events if e.tid == tid and e.seq == seq]

    def lifecycle_latencies(self, tid: int, seq: int) -> Dict[str, int]:
        """Cycle deltas between consecutive lifecycle stages of one
        instruction (e.g. ``{"fetch->dispatch": 4, ...}``)."""
        events = sorted(self.for_instruction(tid, seq), key=lambda e: e.cycle)
        out: Dict[str, int] = {}
        for a, b in zip(events, events[1:]):
            out[f"{a.event}->{b.event}"] = b.cycle - a.cycle
        return out

    def window(self, start_cycle: int, end_cycle: int) -> List[TraceEvent]:
        """Events in the half-open cycle range [start, end)."""
        return [e for e in self.events if start_cycle <= e.cycle < end_cycle]

    def render(self, events: Optional[Iterable[TraceEvent]] = None, limit: int = 50) -> str:
        """Plain-text rendering of a slice of the trace."""
        rows = list(events if events is not None else self.events)[-limit:]
        header = f"{'cycle':>8} {'event':<8} instr"
        return "\n".join([header] + [str(e) for e in rows])

    def clear(self) -> None:
        """Drop all retained events and counts."""
        self.events.clear()
        self.counts = {e: 0 for e in EVENTS}
