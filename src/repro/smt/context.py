"""Per-thread hardware context.

Holds everything private to one thread: its trace-generator binding (the
"program"), fetch-side stall state, wrong-path mode, the per-thread reorder
buffer, and completion tracking for dependence resolution.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set

from repro.smt.instruction import Instruction


class ThreadContext:
    """Architected + microarchitected state of one hardware context."""

    __slots__ = (
        "tid",
        "trace",
        "pending",
        "fetch_ready_cycle",
        "wrong_path",
        "wp_branch_seq",
        "rob",
        "done_upto",
        "done_set",
        "waiters",
        "fetchable",
        "suspended",
        "syscall_waiting",
    )

    def __init__(self, tid: int, trace) -> None:
        self.tid = tid
        self.trace = trace
        #: one-instruction pushback buffer (fetch lookahead across block
        #: boundaries returns the instruction here for next cycle).
        self.pending: Optional[Instruction] = None
        #: cycle at which this thread may fetch again (icache miss, redirect,
        #: misfetch bubble, syscall drain).
        self.fetch_ready_cycle = 0
        #: True while fetching wrong-path junk behind a mispredicted branch.
        self.wrong_path = False
        #: seq of the unresolved mispredicted branch (-1 when none).
        self.wp_branch_seq = -1
        #: per-thread reorder buffer, program order.
        self.rob: Deque[Instruction] = deque()
        #: all seqs <= done_upto have completed execution.
        self.done_upto = -1
        #: completed seqs beyond done_upto (sparse out-of-order completions).
        self.done_set: Set[int] = set()
        #: wake-up lists: producer seq -> IQ entries waiting on it.  The
        #: dispatch stage registers not-ready entries; ``mark_completed``
        #: wakes them (re-checking the *other* operand), so the issue scan
        #: tests one flag instead of re-deriving readiness every cycle.
        self.waiters: Dict[int, List[Instruction]] = {}
        #: thread-control flag written by the detector thread: may fetch.
        self.fetchable = True
        #: thread-control flag: marked for suspension by the job scheduler.
        self.suspended = False
        #: a syscall from this thread is waiting for the pipeline to drain.
        self.syscall_waiting = False

    # -- trace access -------------------------------------------------------
    def next_instruction(self) -> Instruction:
        """Next real-path instruction (honouring the pushback buffer)."""
        if self.pending is not None:
            instr = self.pending
            self.pending = None
            return instr
        return self.trace.next_instruction()

    def push_back(self, instr: Instruction) -> None:
        """Return a fetched-but-not-consumed instruction for next cycle."""
        assert self.pending is None, "pushback buffer holds one instruction"
        self.pending = instr

    # -- dependence tracking --------------------------------------------------
    def mark_completed(self, seq: int) -> None:
        """Record that instruction ``seq`` finished execution and wake any
        IQ entries whose last outstanding producer this was."""
        if seq < 0:
            return
        if seq == self.done_upto + 1:
            self.done_upto = seq
            done = self.done_set
            while self.done_upto + 1 in done:
                self.done_upto += 1
                done.remove(self.done_upto)
        elif seq > self.done_upto:
            self.done_set.add(seq)
        waiters = self.waiters
        if waiters:
            woken = waiters.pop(seq, None)
            if woken:
                done_upto = self.done_upto
                done = self.done_set
                for instr in woken:
                    d1 = instr.dep1
                    d2 = instr.dep2
                    if (d1 <= done_upto or d1 in done) and (
                        d2 <= done_upto or d2 in done
                    ):
                        instr.iq_ready = True

    def dep_satisfied(self, dep: int) -> bool:
        """Is the producer with sequence number ``dep`` complete?"""
        return dep <= self.done_upto or dep in self.done_set

    def is_ready(self, instr: Instruction) -> bool:
        """All of ``instr``'s producers have completed."""
        d1, d2 = instr.dep1, instr.dep2
        done_upto = self.done_upto
        if d1 > done_upto and d1 not in self.done_set:
            return False
        if d2 > done_upto and d2 not in self.done_set:
            return False
        return True

    # -- fetch gating ---------------------------------------------------------
    def can_fetch(self, now: int) -> bool:
        """May the TSU consider this thread for fetch this cycle?"""
        return (
            self.fetchable
            and not self.suspended
            and not self.syscall_waiting
            and now >= self.fetch_ready_cycle
        )

    def block_fetch_until(self, cycle: int) -> None:
        """Extend the fetch stall to at least ``cycle``."""
        if cycle > self.fetch_ready_cycle:
            self.fetch_ready_cycle = cycle
